#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # vpbn-suite — querying virtual hierarchies with virtual prefix-based numbers
//!
//! Facade crate for the reproduction of *"Querying Virtual Hierarchies using
//! Virtual Prefix-Based Numbers"* (Dyreson, Bhowmick, Grapp — SIGMOD 2014).
//! It re-exports the public API of every workspace crate so examples and
//! downstream users need a single dependency:
//!
//! * [`xml`] — XML data model, parser, serializer ([`vh_xml`]).
//! * [`pbn`] — prefix-based (Dewey) numbering ([`vh_pbn`]).
//! * [`dataguide`] — structural summaries ([`vh_dataguide`]).
//! * [`core`] — the paper's contribution: vDataGuides, level arrays, vPBN
//!   numbers, virtual axes and virtual values ([`vh_core`]).
//! * [`storage`] — simulated XML DBMS storage with value/type indexes
//!   ([`vh_storage`]).
//! * [`query`] — XPath and mini-XQuery engine with `virtualDoc`
//!   ([`vh_query`]); `query::api` is the blessed flat entry surface.
//! * [`obs`] — query observability: span trees, stage counters and the
//!   EXPLAIN text/JSON/Prometheus exporters ([`vh_obs`]).
//! * [`workload`] — synthetic corpora and transformation scenarios
//!   ([`vh_workload`]).
//! * [`serve`] — the multi-tenant VHRPC query server and its blocking
//!   client: prefix-routed tenants, admission control, live metrics
//!   ([`vh_serve`]).
//!
//! Failures from every layer converge into [`VhError`], which carries a
//! stable error code, a process exit code, and the full cause chain (see
//! the [`error`] module and `DESIGN.md` § "Fault model & error taxonomy").
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture.

pub mod error;

pub use error::VhError;

pub use vh_core as core;
pub use vh_dataguide as dataguide;
pub use vh_obs as obs;
pub use vh_pbn as pbn;
pub use vh_query as query;
pub use vh_serve as serve;
pub use vh_storage as storage;
pub use vh_workload as workload;
pub use vh_xml as xml;
