//! Suite-wide error facade.
//!
//! Every crate in the workspace reports failures through its own layered
//! error type (`ParseError`, `VdgError`, `QueryError`, `StorageError`,
//! `ValueError`).  [`VhError`] converges them into one enum so that
//! embedders — and the `vpbn` CLI — can match on a single type, print a
//! full cause chain, and map each failure class to a stable error code
//! and process exit code.
//!
//! # Exit codes
//!
//! | class                         | exit code |
//! |-------------------------------|-----------|
//! | command-line usage            | 2         |
//! | file I/O                      | 3         |
//! | XML parsing                   | 4         |
//! | vDataGuide specification      | 5         |
//! | query (syntax / evaluation)   | 6         |
//! | storage (faults, corruption)  | 7         |
//! | resource limits exceeded      | 8         |
//! | edit rejected                 | 9         |
//! | serve (wire / admission)      | 10        |

use std::error::Error;
use std::fmt;

use vh_core::value::ValueError;
use vh_core::VdgError;
use vh_query::QueryError;
use vh_serve::ClientError;
use vh_storage::StorageError;
use vh_xml::ParseError;

/// One error type for the whole suite.
///
/// Constructed via `From` impls from each layer's error, or via
/// [`VhError::usage`] / [`VhError::io`] for CLI-level failures.
#[derive(Debug)]
pub enum VhError {
    /// The command line was malformed (missing operand, unknown command).
    Usage(String),
    /// A file could not be read.
    Io {
        /// Path we tried to read.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The XML input was not well-formed.
    Xml(ParseError),
    /// A vDataGuide specification was invalid or too deep.
    Vdg(VdgError),
    /// A query failed to parse or evaluate (including resource limits).
    Query(QueryError),
    /// The storage layer reported a fault or corruption.
    Storage(StorageError),
    /// Value stitching failed; usually wraps a [`StorageError`].
    Value(ValueError),
    /// A VHRPC client call failed: transport, protocol, or a server
    /// rejection (including admission-control shedding).
    Serve(ClientError),
}

impl VhError {
    /// A command-line usage error (exit code 2).
    pub fn usage(msg: impl Into<String>) -> Self {
        VhError::Usage(msg.into())
    }

    /// A file-read error for `path` (exit code 3).
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Self {
        VhError::Io {
            path: path.into(),
            source,
        }
    }

    /// Stable machine-readable code for the failure class.
    ///
    /// For wrapped layer errors this defers to the layer's own `code()`
    /// where one exists, so the facade never loses precision.
    pub fn code(&self) -> &'static str {
        match self {
            VhError::Usage(_) => "CLI_USAGE",
            VhError::Io { .. } => "CLI_IO",
            VhError::Xml(_) => "XML_PARSE",
            VhError::Vdg(_) => "VDG_SPEC",
            VhError::Query(e) => e.code(),
            VhError::Storage(e) => e.code(),
            VhError::Value(e) => match e.inner().downcast_ref::<StorageError>() {
                Some(s) => s.code(),
                None => "VALUE",
            },
            VhError::Serve(_) => "SERVE",
        }
    }

    /// Process exit code for the failure class (see module docs).
    pub fn exit_code(&self) -> u8 {
        match self {
            VhError::Usage(_) => 2,
            VhError::Io { .. } => 3,
            VhError::Xml(_) => 4,
            VhError::Vdg(_) => 5,
            // Resource exhaustion gets its own code so scripts can
            // distinguish "query is wrong" from "query is too big".
            VhError::Query(QueryError::ResourceExhausted { .. }) => 8,
            // Rejected edits likewise: "the document refused this
            // mutation" is actionable differently from a bad query.
            VhError::Query(QueryError::Edit(_)) => 9,
            VhError::Query(_) => 6,
            VhError::Storage(_) => 7,
            // A ValueError is a storage-class failure whether or not the
            // boxed inner error is literally a StorageError.
            VhError::Value(_) => 7,
            VhError::Serve(_) => 10,
        }
    }

    /// Render the full cause chain, one `caused by:` line per link.
    ///
    /// The facade's own `Display` delegates to the wrapped layer error, so
    /// a chain link whose message merely repeats the previous one is
    /// elided rather than printed twice.
    pub fn render_chain(&self) -> String {
        let mut out = format!("error[{}]: {self}", self.code());
        let mut prev = self.to_string();
        let mut cause = self.source();
        while let Some(c) = cause {
            let msg = c.to_string();
            if msg != prev {
                out.push_str(&format!("\n  caused by: {msg}"));
            }
            prev = msg;
            cause = c.source();
        }
        out
    }
}

impl fmt::Display for VhError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VhError::Usage(m) => write!(f, "{m}"),
            VhError::Io { path, source } => write!(f, "cannot read '{path}': {source}"),
            VhError::Xml(e) => write!(f, "{e}"),
            VhError::Vdg(e) => write!(f, "{e}"),
            VhError::Query(e) => write!(f, "{e}"),
            VhError::Storage(e) => write!(f, "{e}"),
            VhError::Value(e) => write!(f, "{e}"),
            VhError::Serve(e) => write!(f, "{e}"),
        }
    }
}

impl Error for VhError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VhError::Usage(_) => None,
            VhError::Io { source, .. } => Some(source),
            VhError::Xml(e) => Some(e),
            VhError::Vdg(e) => Some(e),
            VhError::Query(e) => Some(e),
            VhError::Storage(e) => Some(e),
            VhError::Value(e) => Some(e),
            VhError::Serve(e) => Some(e),
        }
    }
}

impl From<ParseError> for VhError {
    fn from(e: ParseError) -> Self {
        VhError::Xml(e)
    }
}

impl From<VdgError> for VhError {
    fn from(e: VdgError) -> Self {
        VhError::Vdg(e)
    }
}

impl From<QueryError> for VhError {
    fn from(e: QueryError) -> Self {
        // Queries that die on a vDataGuide problem are vDataGuide
        // failures to the user, whichever layer noticed first.
        match e {
            QueryError::Vdg(v) => VhError::Vdg(v),
            other => VhError::Query(other),
        }
    }
}

impl From<StorageError> for VhError {
    fn from(e: StorageError) -> Self {
        VhError::Storage(e)
    }
}

impl From<ValueError> for VhError {
    fn from(e: ValueError) -> Self {
        VhError::Value(e)
    }
}

impl From<ClientError> for VhError {
    fn from(e: ClientError) -> Self {
        VhError::Serve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vh_query::{Limits, ResourceKind};

    #[test]
    fn exit_codes_partition_the_failure_classes() {
        let usage = VhError::usage("no action given");
        let io = VhError::io(
            "missing.xml",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        let xml: VhError = vh_xml::parse("bad.xml", "<a>").unwrap_err().into();
        let vdg: VhError = VdgError::UnknownLabel("nope".into()).into();
        let query: VhError = QueryError::Parse("bad".into()).into();
        let resource: VhError = QueryError::ResourceExhausted {
            resource: ResourceKind::Steps,
            limit: Limits::default().max_steps,
        }
        .into();
        let storage: VhError = StorageError::Corrupt { page: 3 }.into();
        let edit: VhError = QueryError::Edit(vh_dataguide::EditError::RootTarget).into();
        let serve: VhError = ClientError::Rejected {
            status: vh_serve::WireStatus::Shed,
            message: "quota".into(),
        }
        .into();
        let codes = [
            usage.exit_code(),
            io.exit_code(),
            xml.exit_code(),
            vdg.exit_code(),
            query.exit_code(),
            storage.exit_code(),
            resource.exit_code(),
            edit.exit_code(),
            serve.exit_code(),
        ];
        assert_eq!(codes, [2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(edit.code(), "QUERY_EDIT");
        assert_eq!(serve.code(), "SERVE");
    }

    #[test]
    fn rejected_column_loads_are_storage_class_failures() {
        // A malformed persisted PBN column (bad CRC, truncated keys, …)
        // must land in the storage exit class with its own stable code.
        let e: VhError = StorageError::BadColumn {
            column: "pbn",
            reason: "key at slot 3: [PBN_TRUNCATED] truncated".into(),
        }
        .into();
        assert_eq!(e.exit_code(), 7);
        assert_eq!(e.code(), "STORAGE_BAD_COLUMN");
        assert!(e.render_chain().contains("PBN_TRUNCATED"));
    }

    #[test]
    fn query_vdg_errors_collapse_to_the_vdg_class() {
        let e: VhError = QueryError::Vdg(VdgError::UnknownLabel("x".into())).into();
        assert_eq!(e.exit_code(), 5);
        assert_eq!(e.code(), "VDG_SPEC");
    }

    #[test]
    fn value_errors_expose_the_inner_storage_code() {
        let v = ValueError::new(StorageError::Transient {
            page: 1,
            attempts: 4,
        });
        let e: VhError = v.into();
        assert_eq!(e.code(), "STORAGE_TRANSIENT");
        assert_eq!(e.exit_code(), 7);
    }

    #[test]
    fn render_chain_walks_every_source() {
        let v = ValueError::new(StorageError::Corrupt { page: 9 });
        let e: VhError = v.into();
        let chain = e.render_chain();
        assert!(chain.starts_with("error[STORAGE_CORRUPT]:"), "{chain}");
        assert!(chain.contains("caused by:"), "{chain}");
        assert!(chain.contains("page 9") || chain.contains('9'), "{chain}");
    }
}
