//! `vpbn` — command-line front end for the virtual-hierarchy query suite.
//!
//! ```text
//! vpbn load <uri> <file.xml>... query <flwr>        # run a FLWR query
//! vpbn load <uri> <file.xml>    xpath <path>        # physical XPath
//! vpbn load <uri> <file.xml>    vpath <spec> <path> # virtual XPath
//! vpbn load <uri> <file.xml>    explain <spec>      # show the compiled view
//! vpbn load <uri> <file.xml>    stats               # storage + engine stats
//! vpbn --wal <log> load <uri> <file.xml> edit <op>  # apply a logged edit
//! vpbn --wal <log> load <uri> <file.xml> recover    # replay the edit log
//! vpbn load <uri> <file.xml> serve <addr> <tenant>  # VHRPC query server
//! vpbn client <addr> <tenant> <verb> ...            # VHRPC client call
//! vpbn demo                                         # the paper's Figure 2/6
//! ```
//!
//! Commands are positional and composable: one or more `load` clauses
//! followed by exactly one action. Example:
//!
//! ```text
//! vpbn load books.xml data/books.xml \
//!      vpath "title { author { name } }" "//title/author/name"
//! ```
//!
//! Global flags (accepted anywhere before the action): `--threads N`
//! parallelizes node scans, axis filters and sorts over N worker threads
//! (`0` = all hardware threads; results are byte-identical to `--threads
//! 1`), `--cache on|off` controls the compiled-view artifact cache, and
//! the observability trio — `--trace` prints the query's span tree to
//! stderr alongside the results, while `--explain` / `--explain-json`
//! replace the results with the evaluated plan (text tree or JSON; see
//! `DESIGN.md` § "Observability").
//!
//! Mutations go through `edit` / `recover` with a `--wal <file>` log:
//! `edit` replays any existing log onto the loaded base document, applies
//! one new operation, and writes the extended log back atomically with the
//! acknowledgement; `recover` just replays, reporting (and quarantining)
//! torn or corrupt tails instead of applying them. `--dump` turns the
//! recover report into one line of JSON on stdout.
//!
//! `serve` exposes every loaded document over the VHRPC wire protocol
//! as one tenant (repeat `--tenant`-less `load` clauses share the
//! engine); `--quota burst,per_sec,max_concurrent` bounds its admission.
//! `client` speaks the same protocol back: `point`/`twig`/`flwr` query
//! verbs, plus `snapshot` and `metrics` admin verbs (see `DESIGN.md`
//! § "The query server").
//!
//! Failures print the full error cause chain to stderr and exit with a
//! class-specific code: usage=2, I/O=3, XML=4, vDataGuide=5, query=6,
//! storage=7, resource limits=8, edit rejected=9, serve=10 (see
//! `vpbn_suite::error`).

use std::process::ExitCode;
use vpbn_suite::dataguide::TypedDocument;
use vpbn_suite::query::api::{
    Edit, EditRecovery, Engine, ExecOptions, QueryError, QueryOutcome, QueryRequest,
    VirtualDocument,
};
use vpbn_suite::serve::{Client, ClientError, Registry, Server, ServerConfig, TenantQuota};
use vpbn_suite::xml::{serialize, SerializeOptions};
use vpbn_suite::VhError;

fn main() -> ExitCode {
    // args() panics on non-UTF-8 argv; go through args_os so garbage
    // arguments surface as a usage error instead.
    let args: Result<Vec<String>, VhError> = std::env::args_os()
        .skip(1)
        .map(|a| {
            a.into_string()
                .map_err(|bad| VhError::usage(format!("argument is not valid UTF-8: {bad:?}")))
        })
        .collect();
    match args.and_then(|args| run(&args)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("vpbn: {}", e.render_chain());
            if matches!(e, VhError::Usage(_)) {
                eprintln!();
                eprintln!("{USAGE}");
            }
            ExitCode::from(e.exit_code())
        }
    }
}

const USAGE: &str = "usage:
  vpbn [flags] load <uri> <file.xml> [load <uri> <file.xml> ...] <action>
  vpbn client <addr> <tenant> <verb> [operands...]
  vpbn demo

flags (anywhere before the action):
  --threads <n>                parallel workers for scans/filters/sorts
                               (default 1 = sequential, 0 = all cores;
                               results are identical at any thread count)
  --cache <on|off>             compiled-view artifact cache (default on)
  --trace                      print the query's span tree to stderr
  --explain                    print the evaluated plan instead of results
  --explain-json               like --explain, as one line of JSON
  --wal <file>                 write-ahead log for edit/recover actions
  --dump                       recover: print the recovery report as JSON
  --quota <b>,<r>,<c>          serve: admission quota — token-bucket
                               burst, refill tokens/s, max concurrent
                               (default: effectively unlimited)

actions:
  query   <flwr-text>          evaluate a FLWR query (doc()/virtualDoc())
  xpath   <path>               evaluate an XPath over the last-loaded doc
  vpath   <vdataguide> <path>  evaluate an XPath over a virtual view
  value   <vdataguide> <path>  print the virtual VALUE of each result
  explain <vdataguide>         show the compiled view (types, level arrays)
  stats                        storage, cache and query-counter statistics
  edit    <operation>          apply one edit to the last-loaded doc and
                               append it to the --wal log; operations:
                                 insert <parent-path> <pos> <fragment-xml>
                                 delete <target-path>
                                 move   <target-path> <parent-path> <pos>
                                 set    <target-path> <value>
                               (paths are dotted child indexes, e.g. 1.2.1)
  recover                      replay the --wal log onto the loaded doc,
                               quarantining torn/corrupt tails
  serve   <addr> <tenant>      serve every loaded document over VHRPC on
                               <addr> (e.g. 127.0.0.1:7001) as <tenant>;
                               runs until interrupted

client verbs (vpbn client <addr> <tenant> ...):
  point    <uri> <path>        count nodes matching a physical XPath
  twig     <uri> <spec> <path> count nodes through a virtual view
  flwr     <uri> <flwr-text>   evaluate a FLWR query, print the result
  snapshot <uri>               the tenant engine's counters as JSON
  metrics                      the server's Prometheus metrics text

exit codes:
  2 usage   3 I/O   4 XML parse   5 vDataGuide   6 query
  7 storage   8 resource limit exceeded   9 edit rejected   10 serve";

/// Global flags stripped off the argument list before the positional
/// commands are interpreted.
#[derive(Default)]
struct Flags {
    exec: ExecOptions,
    trace: bool,
    explain: bool,
    explain_json: bool,
    wal: Option<String>,
    dump: bool,
    quota: Option<TenantQuota>,
}

fn run(args: &[String]) -> Result<(), VhError> {
    let (flags, args) = parse_global_flags(args)?;
    let args = &args[..];
    let mut engine = Engine::new();
    engine.set_exec_options(flags.exec);
    let mut last_uri: Option<String> = None;
    let mut i = 0;

    if args.first().map(String::as_str) == Some("demo") {
        return demo();
    }
    if args.first().map(String::as_str) == Some("client") {
        return client(&args[1..]);
    }

    while i < args.len() {
        match args[i].as_str() {
            "load" => {
                let uri = args
                    .get(i + 1)
                    .ok_or_else(|| VhError::usage("load: missing <uri>"))?;
                let file = args
                    .get(i + 2)
                    .ok_or_else(|| VhError::usage("load: missing <file.xml>"))?;
                let xml = std::fs::read_to_string(file).map_err(|e| VhError::io(file, e))?;
                engine.register_xml(uri, &xml)?;
                let td = engine.document(uri).expect("just registered");
                eprintln!(
                    "loaded {uri}: {} nodes, {} types",
                    td.doc().len(),
                    td.guide().len()
                );
                last_uri = Some(uri.clone());
                i += 3;
            }
            "query" => {
                let q = args
                    .get(i + 1)
                    .ok_or_else(|| VhError::usage("query: missing FLWR text"))?;
                expect_end(args, i + 2)?;
                if let Some(out) = execute(&engine, &flags, QueryRequest::flwr(q.as_str()))? {
                    println!("{}", serialize(&out.document, SerializeOptions::pretty(2)));
                }
                return Ok(());
            }
            "xpath" => {
                let uri = last_uri
                    .as_deref()
                    .ok_or_else(|| VhError::usage("xpath: load a document first"))?;
                let p = args
                    .get(i + 1)
                    .ok_or_else(|| VhError::usage("xpath: missing <path>"))?;
                expect_end(args, i + 2)?;
                if let Some(out) = execute(&engine, &flags, QueryRequest::path(uri, p.as_str()))? {
                    let nodes = out.nodes.unwrap_or_default();
                    print_nodes(engine.document(uri).expect("loaded"), &nodes);
                }
                return Ok(());
            }
            "vpath" | "value" => {
                let action = args[i].clone();
                let uri = last_uri
                    .as_deref()
                    .ok_or_else(|| VhError::usage("vpath: load a document first"))?;
                let spec = args
                    .get(i + 1)
                    .ok_or_else(|| VhError::usage("vpath: missing <vdataguide>"))?;
                let p = args
                    .get(i + 2)
                    .ok_or_else(|| VhError::usage("vpath: missing <path>"))?;
                expect_end(args, i + 3)?;
                let req = QueryRequest::virtual_path(uri, spec.as_str(), p.as_str());
                if let Some(out) = execute(&engine, &flags, req)? {
                    let nodes = out.nodes.unwrap_or_default();
                    let td = engine.document(uri).expect("loaded");
                    if action == "vpath" {
                        print_nodes(td, &nodes);
                    } else {
                        let vd = engine.virtual_doc(uri, spec)?;
                        for &n in &nodes {
                            let (v, _) = vpbn_suite::core::value::virtual_value(&vd, td, n)?;
                            println!("{v}");
                        }
                        eprintln!("{} value(s)", nodes.len());
                    }
                }
                return Ok(());
            }
            "explain" => {
                let uri = last_uri
                    .as_deref()
                    .ok_or_else(|| VhError::usage("explain: load a document first"))?;
                let spec = args
                    .get(i + 1)
                    .ok_or_else(|| VhError::usage("explain: missing <vdataguide>"))?;
                expect_end(args, i + 2)?;
                let td = engine.document(uri).expect("loaded");
                let vd = VirtualDocument::open(td, spec)?;
                println!("view over {uri}: {spec}");
                println!(
                    "{} virtual types; {} of {} nodes visible",
                    vd.vdg().len(),
                    vd.visible_nodes(),
                    td.doc().len()
                );
                println!(
                    "{:<32} {:<28} {:>9}  notes",
                    "virtual path", "level array", "instances"
                );
                for vt in vd.vdg().guide().type_ids() {
                    println!(
                        "{:<32} {:<28} {:>9}  {}",
                        vd.vdg().guide().path_string(vt),
                        vd.array(vt).to_string(),
                        vd.nodes_of_vtype(vt).len(),
                        if vd.vdg().is_identity_below(vt) {
                            "identity region"
                        } else {
                            ""
                        }
                    );
                }
                return Ok(());
            }
            "stats" => {
                let uri = last_uri
                    .as_deref()
                    .ok_or_else(|| VhError::usage("stats: load a document first"))?;
                expect_end(args, i + 1)?;
                let s = engine.attach_store(uri)?.stats();
                println!("storage statistics for {uri}:");
                println!(
                    "  document string : {:>10} B over {} pages",
                    s.document_bytes, s.document_pages
                );
                println!("  value index     : {:>10} B", s.value_index_bytes);
                println!("  type index      : {:>10} B", s.type_index_bytes);
                println!("  name index      : {:>10} B", s.name_index_bytes);
                println!("  node headers    : {:>10} B", s.header_bytes);
                println!("  total           : {:>10} B", s.total_bytes());
                let snap = engine.snapshot();
                println!("compiled-view cache:");
                for (name, c) in [
                    ("expansions", snap.cache.expansions),
                    ("level maps", snap.cache.levels),
                    ("prefix tables", snap.cache.tables),
                    ("type indexes", snap.cache.indexes),
                ] {
                    println!(
                        "  {name:<16}: {} entries, {} hits / {} misses, {} evicted, {} invalidated",
                        c.entries, c.hits, c.misses, c.evictions, c.invalidations
                    );
                }
                println!(
                    "buffer pool: {} hits / {} misses, {} evicted, {} quarantined",
                    snap.buffers.hits,
                    snap.buffers.misses,
                    snap.buffers.evictions,
                    snap.buffers.quarantines
                );
                println!(
                    "queries: {} run ({} traced), {} failed, {} result node(s)",
                    snap.queries.queries,
                    snap.queries.traced,
                    snap.queries.failures,
                    snap.queries.result_nodes
                );
                println!();
                print!("{}", engine.metrics_text());
                return Ok(());
            }
            "edit" => {
                let uri = last_uri
                    .clone()
                    .ok_or_else(|| VhError::usage("edit: load a document first"))?;
                let wal_path = flags
                    .wal
                    .clone()
                    .ok_or_else(|| VhError::usage("edit: --wal <file> is required"))?;
                // An existing log is the durable history for this document:
                // replay it onto the freshly loaded base before appending.
                if let Some(rec) = replay_wal_file(&mut engine, &wal_path)? {
                    report_recovery(&wal_path, &rec);
                    if let Some(f) = rec.failed.first() {
                        return Err(VhError::Query(QueryError::Unsupported(format!(
                            "replay of '{wal_path}' stopped at seq {}: {}; \
                             the loaded document does not match the log, \
                             refusing to append",
                            f.seq, f.reason
                        ))));
                    }
                }
                let (edit, next) = parse_edit_op(args, i + 1, &uri)?;
                expect_end(args, next)?;
                let (receipt, trace) = engine.apply_traced(edit, flags.trace)?;
                if let Some(trace) = &trace {
                    eprint!("{}", trace.render_text());
                }
                std::fs::write(&wal_path, engine.wal_bytes())
                    .map_err(|e| VhError::io(&wal_path, e))?;
                eprintln!(
                    "edit {} acknowledged as seq {}: {} node(s) touched, \
                     {} slot(s) compacted",
                    receipt.kind, receipt.seq, receipt.nodes_touched, receipt.compacted
                );
                let td = engine.document(&uri).expect("loaded");
                println!("{}", serialize(td.doc(), SerializeOptions::pretty(2)));
                return Ok(());
            }
            "recover" => {
                let uri = last_uri
                    .as_deref()
                    .ok_or_else(|| VhError::usage("recover: load a document first"))?;
                let wal_path = flags
                    .wal
                    .clone()
                    .ok_or_else(|| VhError::usage("recover: --wal <file> is required"))?;
                expect_end(args, i + 1)?;
                let bytes = std::fs::read(&wal_path).map_err(|e| VhError::io(&wal_path, e))?;
                let rec = engine.recover_traced(&bytes, flags.trace)?;
                if let Some(trace) = &rec.trace {
                    eprint!("{}", trace.render_text());
                }
                report_recovery(&wal_path, &rec);
                if flags.dump {
                    println!("{}", rec.to_json());
                } else {
                    let td = engine.document(uri).expect("loaded");
                    println!("{}", serialize(td.doc(), SerializeOptions::pretty(2)));
                }
                return Ok(());
            }
            "serve" => {
                if last_uri.is_none() {
                    return Err(VhError::usage("serve: load a document first"));
                }
                let addr = args
                    .get(i + 1)
                    .ok_or_else(|| VhError::usage("serve: missing <addr> (host:port)"))?;
                let tenant = args
                    .get(i + 2)
                    .ok_or_else(|| VhError::usage("serve: missing <tenant>"))?;
                expect_end(args, i + 3)?;
                return serve(engine, addr, tenant, flags.quota.unwrap_or_default());
            }
            other => return Err(VhError::usage(format!("unknown command '{other}'"))),
        }
    }
    Err(VhError::usage("no action given"))
}

/// Starts a VHRPC server exposing `engine` as the single tenant
/// `tenant` on `addr`, then blocks until the process is interrupted.
fn serve(engine: Engine, addr: &str, tenant: &str, quota: TenantQuota) -> Result<(), VhError> {
    let mut registry = Registry::new();
    registry
        .add_tenant(tenant, engine, quota)
        .map_err(|r| VhError::Serve(ClientError::Protocol(r.message)))?;
    let server = Server::bind(addr, registry, ServerConfig::default())
        .map_err(|e| VhError::Serve(ClientError::Io(e)))?;
    let local = server.local_addr();
    let _handle = server
        .start()
        .map_err(|e| VhError::Serve(ClientError::Io(e)))?;
    eprintln!(
        "serving tenant '{tenant}' on {local} \
         (VHRPC; plain HTTP GET scrapes /metrics); interrupt to stop"
    );
    loop {
        std::thread::park();
    }
}

/// One VHRPC client call: `client <addr> <tenant> <verb> [operands...]`.
fn client(args: &[String]) -> Result<(), VhError> {
    let addr = args
        .first()
        .ok_or_else(|| VhError::usage("client: missing <addr> (host:port)"))?;
    let tenant = args
        .get(1)
        .ok_or_else(|| VhError::usage("client: missing <tenant>"))?;
    let verb = args
        .get(2)
        .ok_or_else(|| VhError::usage("client: missing <verb>"))?;
    let operand = |off: usize, what: &str| -> Result<&String, VhError> {
        args.get(2 + off)
            .ok_or_else(|| VhError::usage(format!("client {verb}: missing <{what}>")))
    };
    let mut c = Client::connect(addr.as_str(), tenant.as_str())
        .map_err(|e| VhError::Serve(ClientError::Io(e)))?;
    match verb.as_str() {
        "point" => {
            let (uri, path) = (operand(1, "uri")?, operand(2, "path")?);
            expect_end(args, 5)?;
            println!("{}", c.point(uri, path).map_err(VhError::from)?);
        }
        "twig" => {
            let (uri, spec) = (operand(1, "uri")?, operand(2, "spec")?);
            let path = operand(3, "path")?;
            expect_end(args, 6)?;
            println!("{}", c.twig(uri, spec, path).map_err(VhError::from)?);
        }
        "flwr" => {
            let (uri, q) = (operand(1, "uri")?, operand(2, "flwr-text")?);
            expect_end(args, 5)?;
            println!("{}", c.flwr(uri, q).map_err(VhError::from)?);
        }
        "snapshot" => {
            let uri = operand(1, "uri")?;
            expect_end(args, 4)?;
            println!("{}", c.snapshot(uri).map_err(VhError::from)?);
        }
        "metrics" => {
            expect_end(args, 3)?;
            print!("{}", c.metrics().map_err(VhError::from)?);
        }
        other => {
            return Err(VhError::usage(format!(
                "client: unknown verb '{other}' \
                 (point|twig|flwr|snapshot|metrics)"
            )))
        }
    }
    Ok(())
}

/// Runs one request under the global observability flags: `--explain`
/// prints the evaluated plan instead of results and returns `None`;
/// `--trace` prints the span tree to stderr and hands the outcome back.
fn execute(
    engine: &Engine,
    flags: &Flags,
    req: QueryRequest,
) -> Result<Option<QueryOutcome>, VhError> {
    if flags.explain {
        let ex = engine.explain(&req)?;
        if flags.explain_json {
            println!("{}", ex.json());
        } else {
            print!("{}", ex.text());
        }
        return Ok(None);
    }
    let out = engine.run(&req.with_trace(flags.trace))?;
    if let Some(trace) = &out.trace {
        eprint!("{}", trace.render_text());
    }
    Ok(Some(out))
}

/// Strips the global flags (`--threads N`, `--cache on|off`, `--trace`,
/// `--explain`, `--explain-json`) from anywhere in the argument list and
/// returns them plus the remaining positional arguments.
fn parse_global_flags(args: &[String]) -> Result<(Flags, Vec<String>), VhError> {
    let mut flags = Flags::default();
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                let v = it
                    .next()
                    .ok_or_else(|| VhError::usage("--threads: missing worker count"))?;
                flags.exec.threads = v.parse().map_err(|_| {
                    VhError::usage(format!("--threads: '{v}' is not a thread count"))
                })?;
            }
            "--cache" => {
                let v = it
                    .next()
                    .ok_or_else(|| VhError::usage("--cache: missing on|off"))?;
                flags.exec.cache = match v.as_str() {
                    "on" => true,
                    "off" => false,
                    other => {
                        return Err(VhError::usage(format!(
                            "--cache: expected on|off, got '{other}'"
                        )))
                    }
                };
            }
            "--trace" => flags.trace = true,
            "--wal" => {
                let v = it
                    .next()
                    .ok_or_else(|| VhError::usage("--wal: missing <file>"))?;
                flags.wal = Some(v.clone());
            }
            "--dump" => flags.dump = true,
            "--quota" => {
                let v = it.next().ok_or_else(|| {
                    VhError::usage("--quota: missing <burst>,<per_sec>,<max_concurrent>")
                })?;
                let parts: Vec<&str> = v.split(',').collect();
                let [burst, per_sec, max_concurrent] = parts.as_slice() else {
                    return Err(VhError::usage(format!(
                        "--quota: expected <burst>,<per_sec>,<max_concurrent>, got '{v}'"
                    )));
                };
                let bad = |what: &str| VhError::usage(format!("--quota: bad {what} in '{v}'"));
                flags.quota = Some(TenantQuota {
                    burst: burst.parse().map_err(|_| bad("burst"))?,
                    per_sec: per_sec.parse().map_err(|_| bad("per_sec"))?,
                    max_concurrent: max_concurrent.parse().map_err(|_| bad("max_concurrent"))?,
                    ..TenantQuota::default()
                });
            }
            "--explain" => flags.explain = true,
            "--explain-json" => {
                flags.explain = true;
                flags.explain_json = true;
            }
            _ => rest.push(a.clone()),
        }
    }
    Ok((flags, rest))
}

/// Parses one `edit` operation starting at `args[at]`, returning the
/// [`Edit`] and the index of the first argument after it.
fn parse_edit_op(args: &[String], at: usize, uri: &str) -> Result<(Edit, usize), VhError> {
    let op = args
        .get(at)
        .ok_or_else(|| VhError::usage("edit: missing operation (insert|delete|move|set)"))?;
    let operand = |off: usize, what: &str| -> Result<String, VhError> {
        args.get(at + off)
            .cloned()
            .ok_or_else(|| VhError::usage(format!("edit {op}: missing <{what}>")))
    };
    let pos = |off: usize| -> Result<usize, VhError> {
        let v = operand(off, "pos")?;
        v.parse()
            .map_err(|_| VhError::usage(format!("edit {op}: '{v}' is not a sibling position")))
    };
    let uri = uri.to_owned();
    match op.as_str() {
        "insert" => Ok((
            Edit::InsertSubtree {
                uri,
                parent: operand(1, "parent-path")?,
                pos: pos(2)?,
                xml: operand(3, "fragment-xml")?,
            },
            at + 4,
        )),
        "delete" => Ok((
            Edit::DeleteSubtree {
                uri,
                target: operand(1, "target-path")?,
            },
            at + 2,
        )),
        "move" => Ok((
            Edit::MoveSubtree {
                uri,
                target: operand(1, "target-path")?,
                parent: operand(2, "parent-path")?,
                pos: pos(3)?,
            },
            at + 4,
        )),
        "set" => Ok((
            Edit::SetValue {
                uri,
                target: operand(1, "target-path")?,
                value: operand(2, "value")?,
            },
            at + 3,
        )),
        other => Err(VhError::usage(format!(
            "edit: unknown operation '{other}' (expected insert|delete|move|set)"
        ))),
    }
}

/// Replays an existing WAL file into the engine. A missing file is an
/// empty log (`Ok(None)`), not an error, so the first `edit` against a
/// fresh `--wal` path just starts the log.
fn replay_wal_file(engine: &mut Engine, path: &str) -> Result<Option<EditRecovery>, VhError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(VhError::io(path, e)),
    };
    Ok(Some(engine.recover(&bytes)?))
}

/// Prints the recovery summary to stderr — loudly, so a quarantined tail
/// or a mid-log replay failure is never silent.
fn report_recovery(path: &str, rec: &EditRecovery) {
    eprintln!(
        "recovered {path}: {} edit(s) replayed, {} skipped, {} slot(s) compacted",
        rec.replayed, rec.skipped, rec.compacted
    );
    if rec.wal.quarantined_bytes > 0 {
        eprintln!(
            "warning: quarantined {} byte(s) of torn/corrupt log tail at offset {} ({})",
            rec.wal.quarantined_bytes,
            rec.wal.first_bad_offset.unwrap_or(0),
            rec.wal.reason.as_deref().unwrap_or("unknown reason")
        );
    }
    for f in &rec.failed {
        eprintln!("warning: replay stopped at seq {}: {}", f.seq, f.reason);
    }
}

fn expect_end(args: &[String], from: usize) -> Result<(), VhError> {
    if from < args.len() {
        Err(VhError::usage(format!(
            "unexpected trailing arguments: {:?}",
            &args[from..]
        )))
    } else {
        Ok(())
    }
}

fn print_nodes(td: &TypedDocument, nodes: &[vpbn_suite::xml::NodeId]) {
    for &n in nodes {
        println!(
            "{:<14} {}",
            td.pbn().pbn_of(n).to_string(),
            serialize::serialize_node(td.doc(), n, SerializeOptions::compact())
        );
    }
    eprintln!("{} node(s)", nodes.len());
}

/// The paper's running example, self-contained.
fn demo() -> Result<(), VhError> {
    let mut engine = Engine::new();
    engine.register(vpbn_suite::xml::builder::paper_figure2());
    println!("Figure 2 instance registered as book.xml\n");
    println!("Rhonda's query (Figure 6):\n");
    let q = r#"for $t in virtualDoc("book.xml", "title { author { name } }")//title
               return <result><title>{$t/text()}</title>
                              <count>{count($t/author)}</count></result>"#;
    println!("{q}\n");
    let out = engine.run(&QueryRequest::flwr(q))?.document;
    println!("{}", serialize(&out, SerializeOptions::pretty(2)));
    Ok(())
}
