#!/usr/bin/env bash
# Local CI gate — the same three checks the GitHub workflow runs.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors; unwrap/expect denied in lib crates)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> OK"
