#!/usr/bin/env bash
# Local CI gate — the same checks the GitHub workflow runs.
#
# Usage:
#   ./ci.sh                 lint + tests + docs (the default gate)
#   ./ci.sh --bench         additionally run the quick bench profile and
#                           compare against crates/bench/baselines/
#   ./ci.sh --bench-rebase  regenerate the committed bench baselines
#                           (run on the reference machine, then commit)
set -euo pipefail
cd "$(dirname "$0")"

MODE="${1:-}"

# Quick profile, sequential, JSON into a scratch dir — exactly what the
# GitHub bench-gate job runs. Gated rows are the axis/twig hot paths plus
# the observability layer's end-to-end query cost (exp_obs also enforces
# its own ≤2% disabled-mode overhead budget and exits nonzero past it).
BENCH_FLAGS=(--quick --threads 1)
BASELINE_DIR=crates/bench/baselines

run_bench() {
  local out="$1"
  cargo build --release -p vh-bench --bins
  for exp in exp_axes exp_twig exp_sjoin exp_space exp_obs; do
    "./target/release/$exp" "${BENCH_FLAGS[@]}" --json "$out" >/dev/null
  done
}

if [ "$MODE" = "--bench-rebase" ]; then
  echo "==> regenerating bench baselines in $BASELINE_DIR"
  run_bench "$BASELINE_DIR"
  ls -l "$BASELINE_DIR"
  echo "==> OK (commit the updated baselines)"
  exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors; unwrap/expect denied in lib crates)"
cargo clippy --workspace --all-targets -- -D warnings -D clippy::dbg_macro

echo "==> vh-obs builds without default features (no-std-clock consumers)"
cargo build -p vh-obs --no-default-features --quiet

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test --release (optimized build exercises the byte-scan fast paths)"
cargo test --workspace --release -q

echo "==> cargo doc (no deps, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

if [ "$MODE" = "--bench" ]; then
  echo "==> bench gate (quick profile vs $BASELINE_DIR)"
  OUT=target/bench-current
  rm -rf "$OUT"
  run_bench "$OUT"
  ./target/release/bench_diff "$BASELINE_DIR" "$OUT"
fi

echo "==> OK"
