#!/usr/bin/env bash
# Local CI gate — the same checks the GitHub workflow runs.
#
# Usage:
#   ./ci.sh [FLAGS]        flags combine freely, e.g. `./ci.sh --bench --vet`
#
# Without flags, the default gate runs: fmt, clippy, vh-vet, the vh-obs
# no-default-features build, tests (debug + release) and rustdoc.
# Flags are additive on top of the gate:
#   --bench         run the quick bench profile and compare against
#                   crates/bench/baselines/
#   --miri          run the Miri leg (vh-core exec/cache + the interleaving
#                   stress test + vh-pbn arena + the vh-storage WAL frame
#                   codec) — needs the nightly `miri` component; skipped
#                   with a notice when it is missing
#   --recovery      run the fault-injected recovery matrix (crash-point
#                   truncations + bit flips) over the widened CI seed set
#   --serve         run the query-server leg: the vh-serve protocol fuzz
#                   + end-to-end suites in release mode (real loopback
#                   sockets, 8-client mixed traffic, crash-mid-frame
#                   serviceability)
#   --tsan          run the ThreadSanitizer leg over the partition/merge and
#                   cache tests — needs nightly + `rust-src` (std must be
#                   rebuilt instrumented); skipped with a notice otherwise
#   --vet           run vh-vet (already part of the gate; useful with
#                   --no-gate for a lint-only run)
#   --bench-history run the quick bench profile, append this commit's
#                   machine-normalized medians to
#                   target/bench-history/BENCH_history.jsonl and print the
#                   trend report (JSON + markdown land next to the history;
#                   gated rows drifting >10% across the window fail)
#   --no-gate       skip the default gate and run only the selected legs
#   --bench-rebase  regenerate the committed bench baselines
#                   (run on the reference machine, then commit)
set -euo pipefail
cd "$(dirname "$0")"

RUN_GATE=1
RUN_BENCH=0
RUN_MIRI=0
RUN_TSAN=0
RUN_VET=0
RUN_REBASE=0
RUN_RECOVERY=0
RUN_HISTORY=0
RUN_SERVE=0

for arg in "$@"; do
  case "$arg" in
    --bench)        RUN_BENCH=1 ;;
    --bench-history) RUN_HISTORY=1 ;;
    --miri)         RUN_MIRI=1 ;;
    --tsan)         RUN_TSAN=1 ;;
    --vet)          RUN_VET=1 ;;
    --recovery)     RUN_RECOVERY=1 ;;
    --serve)        RUN_SERVE=1 ;;
    --no-gate)      RUN_GATE=0 ;;
    --bench-rebase) RUN_REBASE=1 ;;
    -h|--help)      grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) echo "ci.sh: unknown flag '$arg' (see --help)" >&2; exit 2 ;;
  esac
done

# Quick profile, sequential, JSON into a scratch dir — exactly what the
# GitHub bench-gate job runs. Gated rows are the axis/twig hot paths, the
# observability layer's end-to-end query cost (exp_obs also enforces its
# own ≤2% disabled-mode overhead budget and exits nonzero past it) and the
# edit subsystem's throughput (exp_update likewise enforces its ≤1.25x
# post-edit slowdown and ≤2x arena-growth acceptance bounds itself) and
# the query server's loopback throughput/tail (exp_serve self-enforces
# zero sheds and zero dropped connections under the default quota, and
# that a tight quota sheds with the distinct wire status).
BENCH_FLAGS=(--quick --threads 1)
BASELINE_DIR=crates/bench/baselines

run_bench() {
  local out="$1"
  cargo build --release -p vh-bench --bins
  for exp in exp_axes exp_twig exp_sjoin exp_space exp_obs exp_update exp_serve; do
    "./target/release/$exp" "${BENCH_FLAGS[@]}" --json "$out" >/dev/null
  done
}

run_vet() {
  echo "==> vh-vet (workspace invariants; reports in target/vet-findings.{json,sarif})"
  cargo build --release -p vh-vet --quiet
  ./target/release/vh-vet --json target/vet-findings.json \
    --sarif target/vet-findings.sarif
}

# Miri and TSan want the nightly toolchain plus specific components; on
# machines without them the legs skip loudly instead of failing, so the
# default developer loop never needs nightly. CI installs the real thing.
nightly_has() {
  rustup component list --installed --toolchain nightly 2>/dev/null | grep -q "^$1"
}

run_miri() {
  echo "==> miri leg (vh-core exec/cache, interleaving stress, vh-pbn arena, WAL codec)"
  if ! nightly_has miri; then
    echo "    SKIPPED: nightly 'miri' component not installed" >&2
    echo "    (rustup component add --toolchain nightly miri)" >&2
    return 0
  fi
  cargo +nightly miri test -q -p vh-core --lib -- exec:: cache::
  cargo +nightly miri test -q -p vh-core --test stress_interleave
  cargo +nightly miri test -q -p vh-pbn --lib -- arena::
  cargo +nightly miri test -q -p vh-storage --lib -- wal::
}

# The same matrix `cargo test` runs on its three default seeds, widened to
# the CI seed set. Failures drop RecoveryReport JSON into
# target/recovery-reports/ — the GitHub job uploads that as an artifact.
run_recovery() {
  echo "==> recovery matrix (crash-point truncations + bit flips, CI seeds)"
  VPBN_RECOVERY_SEEDS="11,42,2026,7,1914" \
    cargo test --release --test recovery -q
}

# Release mode so the loopback timing-sensitive tests (stall timeouts,
# 8-client mixed traffic) run at realistic speed.
run_serve() {
  echo "==> serve leg (VHRPC protocol fuzz + end-to-end over loopback sockets)"
  cargo test --release -p vh-serve -q
}

run_tsan() {
  echo "==> tsan leg (partition/merge + cache under ThreadSanitizer)"
  if ! nightly_has rust-src; then
    echo "    SKIPPED: nightly 'rust-src' component not installed" >&2
    echo "    (TSan needs std rebuilt with instrumentation via -Zbuild-std;" >&2
    echo "     an uninstrumented std reports phantom races on every futex)" >&2
    return 0
  fi
  local host
  host="$(rustc -vV | sed -n 's/^host: //p')"
  RUSTFLAGS="-Zsanitizer=thread" CARGO_TARGET_DIR=target/tsan \
    cargo +nightly test -q -Zbuild-std --target "$host" \
    -p vh-core --lib -- exec:: cache::
  RUSTFLAGS="-Zsanitizer=thread" CARGO_TARGET_DIR=target/tsan \
    cargo +nightly test -q -Zbuild-std --target "$host" \
    -p vh-core --test stress_interleave
}

if [ "$RUN_REBASE" = 1 ]; then
  echo "==> regenerating bench baselines in $BASELINE_DIR"
  run_bench "$BASELINE_DIR"
  ls -l "$BASELINE_DIR"
  echo "==> OK (commit the updated baselines)"
  exit 0
fi

if [ "$RUN_GATE" = 1 ]; then
  echo "==> cargo fmt --check"
  cargo fmt --all -- --check

  echo "==> cargo clippy (warnings are errors; unwrap/expect denied in lib crates)"
  cargo clippy --workspace --all-targets -- -D warnings -D clippy::dbg_macro

  run_vet

  echo "==> vh-obs builds without default features (no-std-clock consumers)"
  cargo build -p vh-obs --no-default-features --quiet

  echo "==> the frozen v1 API builds both ways (legacy-api off is the default)"
  cargo build -p vh-query --no-default-features --quiet
  cargo test -p vh-query --features legacy-api -q

  echo "==> cargo test"
  cargo test --workspace -q

  echo "==> cargo test --release (optimized build exercises the byte-scan fast paths)"
  cargo test --workspace --release -q

  echo "==> cargo doc (no deps, warnings are errors)"
  RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
elif [ "$RUN_VET" = 1 ]; then
  run_vet
fi

if [ "$RUN_MIRI" = 1 ]; then
  run_miri
fi

if [ "$RUN_TSAN" = 1 ]; then
  run_tsan
fi

if [ "$RUN_RECOVERY" = 1 ]; then
  run_recovery
fi

if [ "$RUN_SERVE" = 1 ]; then
  run_serve
fi

if [ "$RUN_BENCH" = 1 ] || [ "$RUN_HISTORY" = 1 ]; then
  OUT=target/bench-current
  rm -rf "$OUT"
  run_bench "$OUT"
  if [ "$RUN_BENCH" = 1 ]; then
    echo "==> bench gate (quick profile vs $BASELINE_DIR)"
    ./target/release/bench_diff "$BASELINE_DIR" "$OUT"
  fi
  if [ "$RUN_HISTORY" = 1 ]; then
    HIST=target/bench-history
    mkdir -p "$HIST"
    COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo local)"
    echo "==> bench history (appending commit $COMMIT, trend over the last runs)"
    ./target/release/bench_history append "$OUT" "$HIST/BENCH_history.jsonl" \
      --commit "$COMMIT"
    ./target/release/bench_history report "$HIST/BENCH_history.jsonl" \
      --json "$HIST/trend.json" --markdown "$HIST/trend.md"
  fi
fi

echo "==> OK"
