//! Fault-injected recovery: the seeded crash-point matrix.
//!
//! For each seed, a skewed edit script runs through `Engine::apply`,
//! recording the WAL byte boundary after every acknowledged edit. The
//! matrix then simulates a crash at every interesting byte offset
//! (frame boundaries, their neighbours, mid-frame, inside the header)
//! by truncating the log there, plus a bit-flip sweep over the whole
//! log. Every mutilated log must recover without panicking to a
//! document *byte-identical* to the from-scratch oracle for the synced
//! prefix, with the dropped tail accounted for in the recovery report —
//! never silent loss.
//!
//! Seeds come from `VPBN_RECOVERY_SEEDS` (comma-separated) so the CI
//! recovery job can widen the matrix; the default covers three. On a
//! failed expectation the offending `RecoveryReport` JSON is written to
//! `target/recovery-reports/` before the test dies, so a red CI run can
//! be triaged from the artifact alone.

mod common;
use common::{concretize, URI};

use vpbn_suite::query::api::{Edit, EditRecovery, Engine};
use vpbn_suite::xml::{serialize, SerializeOptions};

/// WAL header length (`WAL_MAGIC`): cuts inside it are header-class
/// failures, not quarantined tails.
const HEADER: usize = vpbn_suite::storage::wal::WAL_MAGIC.len();

fn seeds() -> Vec<u64> {
    match std::env::var("VPBN_RECOVERY_SEEDS") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => vec![11, 42, 2026],
    }
}

/// A tiny deterministic generator for the abstract op stream (the
/// concrete edits depend on the evolving document, via `concretize`).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// One seeded run: the base XML, the acknowledged edits in order, the
/// full WAL image, and the log length after each acknowledged edit.
struct Run {
    base_xml: String,
    edits: Vec<Edit>,
    wal: Vec<u8>,
    boundaries: Vec<usize>,
}

fn build_run(seed: u64) -> Run {
    let cfg = vpbn_suite::workload::BooksConfig {
        books: 4,
        max_authors: 3,
        rare_fraction: 0.2,
        seed,
    };
    let base_xml = serialize(
        &vpbn_suite::workload::generate_books(URI, &cfg),
        SerializeOptions::compact(),
    );
    let mut engine = Engine::new();
    engine.register_xml(URI, &base_xml).expect("base registers");
    let mut rng = Lcg(seed);
    let mut edits = Vec::new();
    let mut boundaries = vec![HEADER];
    while edits.len() < 10 {
        let (op, a, b) = (rng.next() as u8, rng.next() as u16, rng.next() as u16);
        let Some(edit) = concretize(engine.document(URI).expect("registered").doc(), op, a, b)
        else {
            continue;
        };
        if engine.apply(edit.clone()).is_ok() {
            edits.push(edit);
            boundaries.push(engine.wal_bytes().len());
        }
    }
    Run {
        base_xml,
        edits,
        wal: engine.wal_bytes().to_vec(),
        boundaries,
    }
}

/// The from-scratch oracle: a fresh engine with the first `m` edits
/// applied directly (no WAL involved), serialized compactly.
fn oracle_doc(run: &Run, m: usize) -> String {
    let mut engine = Engine::new();
    engine
        .register_xml(URI, &run.base_xml)
        .expect("base registers");
    for e in &run.edits[..m] {
        engine.apply(e.clone()).expect("oracle edits re-apply");
    }
    serialize(
        engine.document(URI).expect("registered").doc(),
        SerializeOptions::compact(),
    )
}

/// Writes the failing report as a CI artifact, then panics with `msg`.
fn fail(seed: u64, label: &str, rec: Option<&EditRecovery>, msg: String) -> ! {
    let dir = std::path::Path::new("target/recovery-reports");
    let _ = std::fs::create_dir_all(dir);
    let body = rec.map_or_else(|| "{\"error\":\"no report\"}".to_string(), |r| r.to_json());
    let path = dir.join(format!("RecoveryReport-seed{seed}-{label}.json"));
    let _ = std::fs::write(&path, body);
    panic!("seed {seed} [{label}]: {msg} (report: {})", path.display());
}

/// Recovers `bytes` onto a fresh base and checks the full contract:
/// `expect_m` edits replayed, document byte-identical to the oracle,
/// no replay failures, and every dropped byte accounted for.
fn check_recovery(run: &Run, seed: u64, label: &str, bytes: &[u8], expect_m: usize) {
    let mut engine = Engine::new();
    engine
        .register_xml(URI, &run.base_xml)
        .expect("base registers");
    let rec = match engine.recover(bytes) {
        Ok(rec) => rec,
        Err(e) => fail(seed, label, None, format!("recover errored: {e}")),
    };
    if rec.replayed != expect_m as u64 {
        let msg = format!("replayed {} edits, expected {expect_m}", rec.replayed);
        fail(seed, label, Some(&rec), msg);
    }
    if !rec.failed.is_empty() {
        let msg = format!("replay failures on a valid prefix: {:?}", rec.failed);
        fail(seed, label, Some(&rec), msg);
    }
    // No silent loss: the valid prefix plus the quarantined tail must
    // cover the mutilated log exactly.
    let covered = run.boundaries[expect_m] + rec.wal.quarantined_bytes;
    if covered != bytes.len() {
        let msg = format!(
            "{} prefix bytes + {} quarantined != {} total",
            run.boundaries[expect_m],
            rec.wal.quarantined_bytes,
            bytes.len()
        );
        fail(seed, label, Some(&rec), msg);
    }
    let got = serialize(
        engine.document(URI).expect("registered").doc(),
        SerializeOptions::compact(),
    );
    let want = oracle_doc(run, expect_m);
    if got != want {
        let msg = format!("document diverged from the {expect_m}-edit oracle");
        fail(seed, label, Some(&rec), msg);
    }
}

/// Crash points for one run: every frame boundary, its neighbours, a
/// mid-frame cut, and cuts inside the header.
fn crash_points(run: &Run) -> Vec<usize> {
    let mut cuts = vec![0, 1, HEADER - 1];
    for w in run.boundaries.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        cuts.extend([lo, lo + 1, (lo + hi) / 2, hi - 1, hi]);
    }
    cuts.retain(|&c| c <= run.wal.len());
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

#[test]
fn crash_point_matrix_recovers_byte_identically() {
    for seed in seeds() {
        let run = build_run(seed);
        assert_eq!(run.edits.len(), 10, "seed {seed} built a full script");
        for cut in crash_points(&run) {
            let truncated = &run.wal[..cut];
            if cut < HEADER {
                // Inside the header there is no log at all: a hard
                // storage error is the honest answer — but never a panic.
                let mut engine = Engine::new();
                engine
                    .register_xml(URI, &run.base_xml)
                    .expect("base registers");
                assert!(
                    engine.recover(truncated).is_err(),
                    "seed {seed}: cut {cut} inside the header must be rejected"
                );
                continue;
            }
            let m = run.boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            check_recovery(&run, seed, &format!("cut{cut}"), truncated, m);
        }
    }
}

#[test]
fn bit_flips_are_quarantined_from_the_damaged_frame() {
    for seed in seeds() {
        let run = build_run(seed);
        // Sweep the log: every frame-boundary neighbourhood plus a
        // stride-3 pass over the payload bytes.
        let mut flips: Vec<usize> = (HEADER..run.wal.len()).step_by(3).collect();
        for &b in &run.boundaries {
            for d in [0usize, 1, 2] {
                if b + d < run.wal.len() {
                    flips.push(b + d);
                }
            }
        }
        flips.sort_unstable();
        flips.dedup();
        for at in flips {
            let mut bad = run.wal.clone();
            bad[at] ^= 0x5A;
            // The flip lands in exactly one frame; everything before it
            // must replay, everything from it on must be quarantined.
            let m = run.boundaries.iter().filter(|&&b| b <= at).count() - 1;
            check_recovery(&run, seed, &format!("flip{at}"), &bad, m);
        }
    }
}

#[test]
fn recovered_engines_accept_new_edits_after_the_crash() {
    // Recovery is not a dead end: after adopting a torn log, the engine
    // must acknowledge new edits with the next sequence number and a
    // log that replays cleanly elsewhere.
    for seed in seeds() {
        let run = build_run(seed);
        let cut = run.boundaries[run.boundaries.len() - 2] + 3; // torn last frame
        let mut engine = Engine::new();
        engine
            .register_xml(URI, &run.base_xml)
            .expect("base registers");
        let rec = engine.recover(&run.wal[..cut]).expect("torn log recovers");
        assert_eq!(rec.replayed, run.edits.len() as u64 - 1);
        let receipt = engine
            .apply(Edit::InsertSubtree {
                uri: URI.into(),
                parent: "1".into(),
                pos: 0,
                xml: "<note>post-crash</note>".into(),
            })
            .expect("post-recovery edit applies");
        assert_eq!(receipt.seq, run.edits.len() as u64, "seq continues the log");
        let mut other = Engine::new();
        other
            .register_xml(URI, &run.base_xml)
            .expect("base registers");
        let rec2 = other.recover(engine.wal_bytes()).expect("new log replays");
        assert!(rec2.is_clean(), "{:?}", rec2.failed);
        assert_eq!(rec2.replayed, run.edits.len() as u64);
        assert_eq!(
            serialize(
                other.document(URI).expect("registered").doc(),
                SerializeOptions::compact()
            ),
            serialize(
                engine.document(URI).expect("registered").doc(),
                SerializeOptions::compact()
            )
        );
    }
}
