//! End-to-end pipeline tests through the [`Engine`]: the paper's Sam →
//! Rhonda workflow in both formulations (nested/materialized vs
//! `virtualDoc`), at generated-corpus scale, plus storage-backed value
//! stitching.

use vpbn_suite::core::value::virtual_value;
use vpbn_suite::core::VirtualDocument;
use vpbn_suite::dataguide::TypedDocument;
use vpbn_suite::query::{Engine, QueryRequest};
use vpbn_suite::storage::StoredDocument;
use vpbn_suite::workload::queries::{rhonda_flwr, rhonda_over_materialized, sam_flwr};
use vpbn_suite::workload::{generate_books, generate_xmark, BooksConfig, XmarkConfig};
use vpbn_suite::xml::{serialize, SerializeOptions};

/// The headline equivalence at corpus scale: Rhonda-over-virtualDoc equals
/// Rhonda-over-materialized-Sam, byte for byte.
#[test]
fn nested_and_virtualdoc_formulations_agree_on_books() {
    let mut e = Engine::new();
    e.register(generate_books(
        "books.xml",
        &BooksConfig {
            books: 40,
            max_authors: 4,
            rare_fraction: 0.2,
            seed: 17,
        },
    ));

    // Road 1: materialize Sam's output, query it physically.
    let sam_out = e
        .run(&QueryRequest::flwr(sam_flwr("books.xml")))
        .expect("Sam's query runs")
        .document;
    e.register(sam_out);
    let nested = e
        .run(&QueryRequest::flwr(rhonda_over_materialized("results")))
        .expect("Rhonda over materialized runs")
        .document;

    // Road 2: virtualDoc.
    let virtual_ = e
        .run(&QueryRequest::flwr(rhonda_flwr(
            "books.xml",
            "title { author { name } }",
        )))
        .expect("Rhonda over virtualDoc runs")
        .document;

    assert_eq!(
        serialize(&nested, SerializeOptions::compact()),
        serialize(&virtual_, SerializeOptions::compact())
    );
}

/// Counts in Rhonda's output equal the actual author multiplicities.
#[test]
fn rhonda_counts_match_author_fanout() {
    let cfg = BooksConfig {
        books: 25,
        max_authors: 5,
        rare_fraction: 0.0,
        seed: 23,
    };
    let doc = generate_books("books.xml", &cfg);
    // Ground truth from the physical tree.
    let truth: Vec<usize> = {
        let root = doc.root().unwrap();
        doc.children(root)
            .iter()
            .map(|&b| {
                doc.children(b)
                    .iter()
                    .filter(|&&c| doc.name(c) == Some("author"))
                    .count()
            })
            .collect()
    };
    let mut e = Engine::new();
    e.register(doc);
    let out = e
        .run(&QueryRequest::flwr(rhonda_flwr(
            "books.xml",
            "title { author { name } }",
        )))
        .unwrap()
        .document;
    let results = out.children(out.root().unwrap()).to_vec();
    assert_eq!(results.len(), truth.len());
    for (&r, &expected) in results.iter().zip(&truth) {
        let count_el = out.children(r)[1];
        assert_eq!(out.string_value(count_el), expected.to_string());
    }
}

/// XPath over a virtual view equals XPath over the materialized instance,
/// for a mixed query set on the auction corpus.
#[test]
fn virtual_xpath_equals_materialized_xpath_on_xmark() {
    let td = TypedDocument::analyze(generate_xmark(
        "xmark.xml",
        &XmarkConfig {
            scale: 0.02,
            seed: 9,
        },
    ));
    let spec = "open_auction { initial bidder { increase } }";
    let mut e = Engine::new();
    e.register(td.doc().clone());

    // Materialize through vh-core and register the result.
    let vdg = vpbn_suite::core::VDataGuide::compile(spec, td.guide()).unwrap();
    let mat = vpbn_suite::core::transform::materialize(&td, &vdg);
    e.register(mat.doc);

    for q in [
        "//open_auction",
        "//open_auction/bidder/increase",
        "//open_auction[count(bidder) >= 2]",
        "//open_auction[initial > 100]/bidder",
    ] {
        let virt = e
            .run(&QueryRequest::virtual_path("xmark.xml", spec, q))
            .unwrap()
            .nodes
            .unwrap_or_default()
            .len();
        let mat = e
            .run(&QueryRequest::path(
                format!("materialized:{}", "xmark.xml"),
                q,
            ))
            .unwrap()
            .nodes
            .unwrap_or_default()
            .len();
        assert_eq!(virt, mat, "query {q}");
    }
}

/// Store-backed stitching equals the reference (tree-serializing) source.
#[test]
fn stored_values_equal_reference_values() {
    let stored = StoredDocument::build(TypedDocument::analyze(generate_books(
        "books.xml",
        &BooksConfig {
            books: 15,
            max_authors: 3,
            rare_fraction: 0.1,
            seed: 31,
        },
    )));
    let td = stored.typed();
    for spec in [
        "title { author { name } }",
        "title { name { author } }",
        "location { title author { name } }",
        "data { ** }",
    ] {
        let vd = VirtualDocument::open(td, spec).unwrap();
        for root in vd.roots() {
            let (from_store, _) = virtual_value(&vd, &stored, root).expect("fault-free store");
            let (from_tree, _) = virtual_value(&vd, td, root).expect("in-memory stitch");
            assert_eq!(from_store, from_tree, "spec {spec}");
        }
    }
}

/// The engine's `virtualDoc` FLWR queries work on the auction corpus too
/// (different schema, case-2 view).
#[test]
fn flwr_over_xmark_person_city_view() {
    let mut e = Engine::new();
    e.register(generate_xmark(
        "xmark.xml",
        &XmarkConfig {
            scale: 0.02,
            seed: 9,
        },
    ));
    let out = e
        .run(&QueryRequest::flwr(
            r#"for $c in virtualDoc("xmark.xml",
                   "city { person { person.name emailaddress } }")//city
               return <row><city>{$c/text()}</city>
                           <n>{count($c/person)}</n></row>"#,
        ))
        .unwrap()
        .document;
    let rows = out.children(out.root().unwrap()).to_vec();
    assert!(!rows.is_empty());
    // Physically, each city sits inside exactly one person: every row
    // counts 1.
    for &r in &rows {
        assert_eq!(out.string_value(out.children(r)[1]), "1");
    }
}

/// Cross-document pipeline: join the books corpus against a separately
/// registered ratings document THROUGH a virtual view of the former.
#[test]
fn cross_document_join_through_a_virtual_view() {
    let mut e = Engine::new();
    e.register(generate_books(
        "books.xml",
        &BooksConfig {
            books: 5,
            max_authors: 2,
            rare_fraction: 0.0,
            seed: 77,
        },
    ));
    e.register_xml(
        "ratings.xml",
        "<ratings>\
           <r title='Title 0'>5</r>\
           <r title='Title 2'>3</r>\
           <r title='Title 4'>4</r>\
         </ratings>",
    )
    .unwrap();
    let out = e
        .run(&QueryRequest::flwr(
            r#"for $t in virtualDoc("books.xml", "title { author { name } }")//title
               for $r in doc("ratings.xml")//r
               where $t/text() = $r/@title
               order by $r descending
               return <hit><t>{$t/text()}</t>
                           <stars>{$r/text()}</stars>
                           <authors>{count($t/author)}</authors></hit>"#,
        ))
        .unwrap()
        .document;
    let rows = out.children(out.root().unwrap()).to_vec();
    assert_eq!(rows.len(), 3);
    // Ordered by rating, descending: 5, 4, 3.
    let stars: Vec<String> = rows
        .iter()
        .map(|&r| out.string_value(out.children(r)[1]))
        .collect();
    assert_eq!(stars, vec!["5", "4", "3"]);
    // Author counts come from the VIRTUAL hierarchy.
    for &r in &rows {
        let n: usize = out.string_value(out.children(r)[2]).parse().unwrap();
        assert!((1..=2).contains(&n));
    }
}

/// Identity view sanity at scale: every query answers identically over
/// `doc(...)` and `virtualDoc(..., "site { ** }")`.
#[test]
fn identity_view_is_transparent_on_xmark() {
    let mut e = Engine::new();
    e.register(generate_xmark(
        "xmark.xml",
        &XmarkConfig {
            scale: 0.01,
            seed: 2,
        },
    ));
    for q in [
        "//person/name",
        "//regions/europe/item",
        "//closed_auction[price >= 100]",
        "//open_auction/bidder[1]/increase",
    ] {
        let phys = e.run(&QueryRequest::path("xmark.xml", q)).unwrap().nodes;
        let virt = e
            .run(&QueryRequest::virtual_path("xmark.xml", "site { ** }", q))
            .unwrap()
            .nodes;
        assert_eq!(phys, virt, "query {q}");
    }
}
