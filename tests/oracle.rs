//! The materialization oracle: the virtual machinery (level arrays +
//! virtual predicates + virtual navigation + virtual values) must agree
//! with physically materializing the transformation and using plain PBN —
//! across corpora and scenarios.
//!
//! `vh_core::transform::materialize` places nodes by the instance-level
//! least-common-ancestor rule without touching level arrays, so agreement
//! here genuinely validates Algorithm 1 and the §5 predicates (Theorem 1).

use vpbn_suite::core::transform::materialize;
use vpbn_suite::core::value::virtual_value;
use vpbn_suite::core::{axes, VDataGuide, VirtualDocument};
use vpbn_suite::dataguide::TypedDocument;
use vpbn_suite::pbn::axes as phys_axes;
use vpbn_suite::workload::{
    book_scenarios, generate_books, generate_xmark, xmark_scenarios, BooksConfig, Scenario,
    XmarkConfig,
};
use vpbn_suite::xml::{serialize, NodeId, NodeKind, SerializeOptions};

fn corpora() -> Vec<(TypedDocument, Vec<Scenario>)> {
    vec![
        (
            TypedDocument::analyze(generate_books(
                "books.xml",
                &BooksConfig {
                    books: 12,
                    max_authors: 3,
                    rare_fraction: 0.25,
                    seed: 5,
                },
            )),
            book_scenarios(),
        ),
        (
            TypedDocument::analyze(generate_xmark(
                "xmark.xml",
                &XmarkConfig {
                    scale: 0.01,
                    seed: 5,
                },
            )),
            xmark_scenarios(),
        ),
    ]
}

/// Virtual preorder of the virtual document == preorder of the
/// materialized instance (matched through the source map).
#[test]
fn virtual_preorder_matches_materialized_preorder() {
    for (td, scenarios) in corpora() {
        for s in scenarios {
            let vd = VirtualDocument::open(&td, s.spec).unwrap();
            let vdg = VDataGuide::compile(s.spec, td.guide()).unwrap();
            let mat = materialize(&td, &vdg);

            // Materialized preorder, skipping the synthetic root, mapped
            // back to source nodes.
            let mroot = mat.doc.root().unwrap();
            let mat_sources: Vec<NodeId> = mat
                .doc
                .descendants_or_self(mroot)
                .skip(1)
                .map(|m| mat.source_of[m.index()].expect("copied node has a source"))
                .collect();
            let virt = vd.preorder();
            assert_eq!(
                virt,
                mat_sources,
                "corpus {} scenario {}",
                td.doc().uri(),
                s.name
            );
        }
    }
}

/// Virtual parent/children navigation == materialized tree structure.
#[test]
fn virtual_navigation_matches_materialized_structure() {
    for (td, scenarios) in corpora() {
        for s in scenarios {
            let vd = VirtualDocument::open(&td, s.spec).unwrap();
            let vdg = VDataGuide::compile(s.spec, td.guide()).unwrap();
            let mat = materialize(&td, &vdg);
            let mroot = mat.doc.root().unwrap();
            for m in mat.doc.descendants_or_self(mroot).skip(1) {
                let src = mat.source_of[m.index()].unwrap();
                // children
                let mat_child_sources: Vec<NodeId> = mat
                    .doc
                    .children(m)
                    .iter()
                    .map(|&c| mat.source_of[c.index()].unwrap())
                    .collect();
                assert_eq!(
                    vd.children(src),
                    mat_child_sources,
                    "children of {src:?} in scenario {}",
                    s.name
                );
                // parent — under join multiplicity (one source node placed
                // beneath several parent instances) `VirtualDocument::parent`
                // returns the first parent in virtual document order, so the
                // oracle checks *membership* among the copies' parents and
                // exact equality when the source has a single copy.
                let mat_parent_source = mat
                    .doc
                    .parent(m)
                    .filter(|&p| p != mroot)
                    .map(|p| mat.source_of[p.index()].unwrap());
                let copies = mat.source_of.iter().filter(|&&x| x == Some(src)).count();
                if copies == 1 {
                    assert_eq!(
                        vd.parent(src),
                        mat_parent_source,
                        "parent of {src:?} in scenario {}",
                        s.name
                    );
                } else if let Some(vp) = vd.parent(src) {
                    // One of the copies must sit under the chosen parent.
                    let ok = mat
                        .doc
                        .descendants_or_self(mroot)
                        .skip(1)
                        .filter(|&c| mat.source_of[c.index()] == Some(src))
                        .any(|c| {
                            mat.doc
                                .parent(c)
                                .map(|p| mat.source_of[p.index()] == Some(vp))
                                .unwrap_or(false)
                        });
                    assert!(ok, "parent of duplicated {src:?} in scenario {}", s.name);
                }
            }
        }
    }
}

/// Theorem 1 and friends: every virtual predicate on source-node pairs
/// equals the corresponding *physical* PBN predicate evaluated on the
/// materialized instance.
#[test]
fn virtual_predicates_match_physical_predicates_on_materialized() {
    for (td, scenarios) in corpora() {
        for s in scenarios {
            let vd = VirtualDocument::open(&td, s.spec).unwrap();
            let vdg = VDataGuide::compile(s.spec, td.guide()).unwrap();
            let mat = materialize(&td, &vdg);
            let mat_td = TypedDocument::analyze(mat.doc.clone());
            let mroot = mat.doc.root().unwrap();

            // Source → all materialized copies. Join multiplicity (one
            // source placed under several parent instances) turns the
            // vertical predicates into "some copy pair nests"; the ordering
            // predicates are only well-defined for singly-placed nodes.
            let mut to_mat: std::collections::HashMap<NodeId, Vec<NodeId>> =
                std::collections::HashMap::new();
            for m in mat.doc.descendants_or_self(mroot).skip(1) {
                to_mat
                    .entry(mat.source_of[m.index()].unwrap())
                    .or_default()
                    .push(m);
            }
            // Sample a bounded set of pairs for the quadratic check.
            let sources: Vec<NodeId> = {
                let mut v: Vec<NodeId> = to_mat.keys().copied().collect();
                v.sort();
                v.truncate(60);
                v
            };
            let any_pair = |x: NodeId, y: NodeId, pred: &dyn Fn(&vpbn_suite::pbn::Pbn, &vpbn_suite::pbn::Pbn) -> bool| {
                to_mat[&x].iter().any(|&mx| {
                    to_mat[&y]
                        .iter()
                        .any(|&my| pred(mat_td.pbn().pbn_of(mx), mat_td.pbn().pbn_of(my)))
                })
            };
            for &x in &sources {
                for &y in &sources {
                    let (vx, vy) = (vd.vpbn_of(x).unwrap(), vd.vpbn_of(y).unwrap());
                    let ctx = format!("scenario {} x={x:?} y={y:?}", s.name);
                    assert_eq!(
                        axes::v_ancestor(vd.vdg(), &vx, &vy),
                        any_pair(x, y, &phys_axes::is_ancestor),
                        "vAncestor {ctx}"
                    );
                    assert_eq!(
                        axes::v_parent(vd.vdg(), &vx, &vy),
                        any_pair(x, y, &phys_axes::is_parent),
                        "vParent {ctx}"
                    );
                    assert_eq!(
                        axes::v_child(vd.vdg(), &vx, &vy),
                        any_pair(x, y, &phys_axes::is_child),
                        "vChild {ctx}"
                    );
                    assert_eq!(
                        axes::v_descendant(vd.vdg(), &vx, &vy),
                        any_pair(x, y, &phys_axes::is_descendant),
                        "vDescendant {ctx}"
                    );
                    if to_mat[&x].len() == 1 && to_mat[&y].len() == 1 {
                        let (mx, my) = (
                            mat_td.pbn().pbn_of(to_mat[&x][0]),
                            mat_td.pbn().pbn_of(to_mat[&y][0]),
                        );
                        assert_eq!(
                            axes::v_self(vd.vdg(), &vx, &vy),
                            phys_axes::is_self(mx, my),
                            "vSelf {ctx}"
                        );
                        assert_eq!(
                            axes::v_preceding(vd.vdg(), &vx, &vy),
                            phys_axes::is_preceding(mx, my),
                            "vPreceding {ctx}"
                        );
                        assert_eq!(
                            axes::v_following(vd.vdg(), &vx, &vy),
                            phys_axes::is_following(mx, my),
                            "vFollowing {ctx}"
                        );
                        assert_eq!(
                            axes::v_preceding_sibling(vd.vdg(), &vx, &vy),
                            phys_axes::is_preceding_sibling(mx, my),
                            "vPrecedingSibling {ctx}"
                        );
                        assert_eq!(
                            axes::v_following_sibling(vd.vdg(), &vx, &vy),
                            phys_axes::is_following_sibling(mx, my),
                            "vFollowingSibling {ctx}"
                        );
                    }
                }
            }
        }
    }
}

/// §6: virtual values equal the serialization of the materialized subtree.
#[test]
fn virtual_values_match_materialized_serialization() {
    for (td, scenarios) in corpora() {
        for s in scenarios {
            let vd = VirtualDocument::open(&td, s.spec).unwrap();
            let vdg = VDataGuide::compile(s.spec, td.guide()).unwrap();
            let mat = materialize(&td, &vdg);
            let mroot = mat.doc.root().unwrap();
            for m in mat.doc.descendants_or_self(mroot).skip(1) {
                let src = mat.source_of[m.index()].unwrap();
                // Only check element values (text values are trivial).
                if !matches!(mat.doc.kind(m), NodeKind::Element { .. }) {
                    continue;
                }
                let physical = serialize::serialize_node(&mat.doc, m, SerializeOptions::compact());
                let (virt, _) = virtual_value(&vd, &td, src).expect("in-memory stitch");
                assert_eq!(physical, virt, "value of {src:?} in scenario {}", s.name);
            }
        }
    }
}

/// Sibling ordinals (§5.1, computed dynamically) equal the materialized
/// sibling positions.
#[test]
fn sibling_ordinals_match_materialized_positions() {
    for (td, scenarios) in corpora() {
        for s in scenarios {
            let vd = VirtualDocument::open(&td, s.spec).unwrap();
            let vdg = VDataGuide::compile(s.spec, td.guide()).unwrap();
            let mat = materialize(&td, &vdg);
            let mroot = mat.doc.root().unwrap();
            for m in mat.doc.descendants_or_self(mroot).skip(1) {
                let src = mat.source_of[m.index()].unwrap();
                assert_eq!(
                    vd.sibling_ordinal(src),
                    Some(mat.doc.sibling_ordinal(m)),
                    "ordinal of {src:?} in scenario {}",
                    s.name
                );
            }
        }
    }
}

/// Cache invalidation: re-registering a mutated document under the same
/// URI must evict the stale compiled-view artifacts (vDataGuide
/// expansion, level-array map, prefix tables, node index), and the next
/// open must
/// agree with the materialization oracle on the *new* instance — a stale
/// level array would place nodes at the old document's positions.
#[test]
fn mutating_a_document_evicts_stale_view_artifacts() {
    use vpbn_suite::query::Engine;
    const SPEC: &str = "title { author { name } }";
    const URI: &str = "books.xml";

    let old_cfg = BooksConfig {
        books: 9,
        max_authors: 3,
        rare_fraction: 0.25,
        seed: 11,
    };
    // The mutation: more books, different shapes — every level array and
    // prefix table changes.
    let new_cfg = BooksConfig {
        books: 14,
        max_authors: 2,
        rare_fraction: 0.5,
        seed: 12,
    };

    let mut engine = Engine::new();
    engine.register(generate_books(URI, &old_cfg));

    // Cold open fills the cache; warm open hits every shard.
    let old_pre = engine.virtual_doc(URI, SPEC).unwrap().preorder();
    let cold = engine.snapshot().cache;
    assert_eq!(
        cold.total_misses(),
        4,
        "expansion + levels + tables + index miss"
    );
    assert_eq!(cold.total_hits(), 0);
    let _ = engine.virtual_doc(URI, SPEC).unwrap();
    let warm = engine.snapshot().cache;
    assert_eq!(warm.total_hits(), 4, "warm open hits all four caches");
    assert_eq!(warm.total_misses(), 4);

    // Mutate: same URI, new instance. Registration must invalidate.
    engine.register(generate_books(URI, &new_cfg));
    let after = engine.snapshot().cache;
    assert_eq!(
        after.total_invalidations(),
        4,
        "stale expansion, level map, prefix tables and node index are evicted"
    );

    // The next open recompiles (miss, not hit) ...
    let new_pre = engine.virtual_doc(URI, SPEC).unwrap().preorder();
    let refilled = engine.snapshot().cache;
    assert_eq!(refilled.total_misses(), 8, "recompiled after invalidation");
    assert_eq!(refilled.total_hits(), 4, "no stale hits served");
    assert_ne!(old_pre, new_pre, "the mutation changed the view");

    // ... and agrees with materializing the new instance from scratch.
    let td = TypedDocument::analyze(generate_books(URI, &new_cfg));
    let vdg = VDataGuide::compile(SPEC, td.guide()).unwrap();
    let mat = materialize(&td, &vdg);
    let mroot = mat.doc.root().unwrap();
    let oracle: Vec<NodeId> = mat
        .doc
        .descendants_or_self(mroot)
        .skip(1)
        .map(|m| mat.source_of[m.index()].unwrap())
        .collect();
    assert_eq!(new_pre, oracle, "post-mutation view matches the oracle");

    // Unrelated URIs are untouched by invalidation.
    engine.register(generate_books("other.xml", &old_cfg));
    let _ = engine.virtual_doc("other.xml", SPEC).unwrap();
    let with_other = engine.snapshot().cache;
    engine.register(generate_books(URI, &new_cfg));
    let stats = engine.snapshot().cache;
    assert_eq!(
        stats.total_invalidations(),
        with_other.total_invalidations() + 4,
        "only books.xml entries are evicted"
    );
    let other_pre = engine.virtual_doc("other.xml", SPEC).unwrap().preorder();
    let hits_after = engine.snapshot().cache.total_hits();
    assert_eq!(
        hits_after,
        stats.total_hits() + 4,
        "other.xml still served from cache"
    );
    assert!(!other_pre.is_empty());
}
