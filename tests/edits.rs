//! Crash-safe mutation properties.
//!
//! Random edit scripts (skewed toward front-position inserts, the worst
//! case for gap minting) run through `Engine::apply` against the rebuild
//! oracle: an engine built from scratch on the final document must give
//! byte-identical query results at 1, 2 and 8 threads. The edited
//! engine's caches are warmed *before* the script runs, so any stale
//! `ExecCache` entry surviving an edit shows up as an oracle mismatch.

use proptest::prelude::*;

mod common;
use common::{concretize, URI};
use vpbn_suite::query::api::{Engine, ExecOptions, QueryRequest};
use vpbn_suite::xml::{serialize, SerializeOptions};

/// The query suite both engines answer; results are compared as
/// serialized node text so differing `NodeId` spaces (the edited arena
/// has holes, the rebuilt one is dense) cannot mask or fake a match.
const PATHS: &[&str] = &["//book", "//name", "//book/title", "//*[position() = 1]"];
const VIEW: &str = "title { author { name } }";

/// Answers the query suite as lists of serialized result nodes.
fn answers(engine: &Engine) -> Vec<Vec<String>> {
    let td = engine.document(URI).expect("registered");
    let mut out = Vec::new();
    for p in PATHS {
        let res = engine
            .run(&QueryRequest::path(URI, *p))
            .unwrap_or_else(|e| panic!("path {p}: {e}"));
        out.push(
            res.nodes
                .unwrap_or_default()
                .iter()
                .map(|&n| {
                    vpbn_suite::xml::serialize::serialize_node(
                        td.doc(),
                        n,
                        SerializeOptions::compact(),
                    )
                })
                .collect(),
        );
    }
    // Random inserts can make the view's labels ambiguous (a second
    // `title` path appears); that rejection is part of the contract, so
    // the two engines must then fail with the same code.
    match engine.run(&QueryRequest::virtual_path(URI, VIEW, "//name")) {
        Ok(res) => out.push(
            res.nodes
                .unwrap_or_default()
                .iter()
                .map(|&n| td.doc().string_value(n))
                .collect(),
        ),
        Err(e) => out.push(vec![format!("error:{}", e.code())]),
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole property: an engine that lived through a random edit
    /// script equals an engine built from scratch on the final document,
    /// for every query in the suite, at 1, 2 and 8 threads.
    #[test]
    fn edited_engines_match_the_rebuild_oracle(
        books in 1usize..8,
        seed in 0u64..400,
        script in prop::collection::vec((0u8..=255, 0u16..=u16::MAX, 0u16..=u16::MAX), 1..30),
    ) {
        let cfg = vpbn_suite::workload::BooksConfig {
            books,
            max_authors: 3,
            rare_fraction: 0.2,
            seed,
        };
        let base = vpbn_suite::workload::generate_books(URI, &cfg);
        let base_xml = serialize(&base, SerializeOptions::compact());

        let mut edited = Engine::new();
        edited.register_xml(URI, &base_xml).expect("base registers");
        // Warm every cache *before* editing: a stale entry surviving an
        // edit would now surface as an oracle mismatch below.
        let _ = answers(&edited);

        let mut applied = 0u64;
        for &(op, a, b) in &script {
            let Some(edit) = concretize(edited.document(URI).expect("registered").doc(), op, a, b)
            else {
                continue;
            };
            match edited.apply(edit) {
                Ok(receipt) => {
                    applied += 1;
                    prop_assert_eq!(receipt.seq, applied, "sequence numbers are dense");
                }
                // Rejected edits (bad position after a previous delete,
                // cyclic move, mixed content, …) must change nothing;
                // the oracle comparison below verifies exactly that.
                Err(e) => prop_assert_eq!(e.code(), "QUERY_EDIT"),
            }
        }
        // Single applies drain the delta segment eagerly; an explicit
        // compaction pass must find nothing left to merge.
        prop_assert_eq!(edited.compact(), 0, "apply left un-drained delta");

        let final_xml = serialize(
            edited.document(URI).expect("registered").doc(),
            SerializeOptions::compact(),
        );
        for &threads in &[1usize, 2, 8] {
            let opts = ExecOptions { threads, cache: true, par_threshold: 1 };
            let mut rebuilt = Engine::new();
            rebuilt.set_exec_options(opts);
            rebuilt.register_xml(URI, &final_xml).expect("rebuild registers");
            edited.set_exec_options(opts);
            prop_assert_eq!(
                answers(&edited),
                answers(&rebuilt),
                "threads={} applied={} script={:?}",
                threads,
                applied,
                script
            );
        }
    }

    /// Batched scripts (`apply_all`) with a tiny mid-batch compaction
    /// threshold: delta segments accumulate and threshold drains fire
    /// mid-batch, then one merged `ViewDelta` per URI routes to the warm
    /// cache at each batch boundary. Queries run *between* batches so
    /// maintained entries serve real reads mid-script, and the surviving
    /// cache must still answer identically to an engine rebuilt from
    /// scratch on the final document at 1, 2 and 8 threads.
    #[test]
    fn batched_edits_across_the_compaction_threshold_match_the_oracle(
        books in 1usize..6,
        seed in 0u64..400,
        script in prop::collection::vec((0u8..=255, 0u16..=u16::MAX, 0u16..=u16::MAX), 4..40),
        threshold in 1usize..6,
        chunk in 2usize..7,
    ) {
        let cfg = vpbn_suite::workload::BooksConfig {
            books,
            max_authors: 3,
            rare_fraction: 0.2,
            seed,
        };
        let base_xml = serialize(
            &vpbn_suite::workload::generate_books(URI, &cfg),
            SerializeOptions::compact(),
        );
        let mut edited = Engine::new();
        edited.register_xml(URI, &base_xml).expect("base registers");
        edited.set_compact_threshold(threshold);
        // Warm every cache before the first batch.
        let _ = answers(&edited);
        for batch in script.chunks(chunk) {
            let doc = edited.document(URI).expect("registered").doc();
            let edits: Vec<_> = batch
                .iter()
                .filter_map(|&(op, a, b)| concretize(doc, op, a, b))
                .collect();
            // A rejected edit aborts the rest of its batch; the applied
            // prefix is durable and routed, which the oracle verifies.
            let _ = edited.apply_all(edits);
            let _ = answers(&edited);
        }
        prop_assert_eq!(edited.compact(), 0, "apply_all left un-drained delta");

        let final_xml = serialize(
            edited.document(URI).expect("registered").doc(),
            SerializeOptions::compact(),
        );
        for &threads in &[1usize, 2, 8] {
            let opts = ExecOptions { threads, cache: true, par_threshold: 1 };
            let mut rebuilt = Engine::new();
            rebuilt.set_exec_options(opts);
            rebuilt.register_xml(URI, &final_xml).expect("rebuild registers");
            edited.set_exec_options(opts);
            prop_assert_eq!(
                answers(&edited),
                answers(&rebuilt),
                "threads={} threshold={} chunk={} script={:?}",
                threads,
                threshold,
                chunk,
                script
            );
        }
    }

    /// Replaying the edited engine's WAL onto a fresh base reproduces
    /// the same document byte-for-byte — the recovery oracle, as a
    /// property over random scripts.
    #[test]
    fn wal_replay_reproduces_the_edited_document(
        books in 1usize..6,
        seed in 0u64..400,
        script in prop::collection::vec((0u8..=255, 0u16..=u16::MAX, 0u16..=u16::MAX), 1..20),
    ) {
        let cfg = vpbn_suite::workload::BooksConfig {
            books,
            max_authors: 3,
            rare_fraction: 0.2,
            seed,
        };
        let base_xml = serialize(
            &vpbn_suite::workload::generate_books(URI, &cfg),
            SerializeOptions::compact(),
        );
        let mut edited = Engine::new();
        edited.register_xml(URI, &base_xml).expect("base registers");
        for &(op, a, b) in &script {
            if let Some(edit) =
                concretize(edited.document(URI).expect("registered").doc(), op, a, b)
            {
                let _ = edited.apply(edit);
            }
        }
        let mut recovered = Engine::new();
        recovered.register_xml(URI, &base_xml).expect("base registers");
        let rec = recovered.recover(edited.wal_bytes()).expect("log replays");
        prop_assert!(rec.is_clean(), "{:?}", rec.failed);
        prop_assert_eq!(
            serialize(
                recovered.document(URI).expect("registered").doc(),
                SerializeOptions::compact()
            ),
            serialize(
                edited.document(URI).expect("registered").doc(),
                SerializeOptions::compact()
            )
        );
        prop_assert_eq!(recovered.applied_seq(), edited.applied_seq());
    }
}
