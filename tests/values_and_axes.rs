//! Deeper §6 value checks (escaping, page-size independence, buffer-pool
//! behaviour) and axis-heavy query equivalence between virtual views and
//! their materialized counterparts.

use vpbn_suite::core::transform::materialize;
use vpbn_suite::core::value::virtual_value;
use vpbn_suite::core::{VDataGuide, VirtualDocument};
use vpbn_suite::dataguide::TypedDocument;
use vpbn_suite::query::doc::{PhysicalDoc, VirtualDoc};
use vpbn_suite::query::xpath::{eval_xpath, parse_xpath};
use vpbn_suite::storage::StoredDocument;
use vpbn_suite::workload::{generate_books, BooksConfig};

/// Escaped characters survive the stored-range stitching byte-for-byte —
/// the ranges slice the *escaped* string, so no re-escaping may happen.
#[test]
fn stitched_values_preserve_escaping() {
    let td = TypedDocument::parse(
        "esc.xml",
        "<data><book><title>A &amp; B &lt;odd&gt;</title>\
         <author><name>O&apos;Hara &quot;Quote&quot;</name></author>\
         <publisher><location>X</location></publisher></book></data>",
    )
    .unwrap();
    let stored = StoredDocument::build(td.clone());
    let vd = VirtualDocument::open(stored.typed(), "title { author { name } }").unwrap();
    let title = vd.roots()[0];
    let (v, _) = virtual_value(&vd, &stored, title).expect("fault-free store");
    assert!(v.contains("A &amp; B &lt;odd&gt;"), "{v}");
    // The paper's value model serializes from the stored string: apostrophe
    // and quote are stored unescaped in text content.
    assert!(v.contains("O'Hara \"Quote\""), "{v}");
    // And the result re-parses.
    assert!(vpbn_suite::xml::parse("check", &v).is_ok());
}

/// Values are identical across page sizes (paging is an I/O accounting
/// concern, never a correctness one).
#[test]
fn values_are_page_size_independent() {
    let doc = generate_books("b.xml", &BooksConfig::sized(10));
    let mut outputs = Vec::new();
    for page_size in [16usize, 256, 4096] {
        let stored =
            StoredDocument::build_with_page_size(TypedDocument::analyze(doc.clone()), page_size);
        let vd = VirtualDocument::open(stored.typed(), "title { author { name } }").unwrap();
        let all: String = vd
            .roots()
            .iter()
            .map(|&r| virtual_value(&vd, &stored, r).expect("fault-free store").0)
            .collect();
        outputs.push(all);
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);
}

/// Repeatedly stitching the same virtual value becomes buffer-pool hits.
#[test]
fn repeated_stitching_warms_the_pool() {
    let stored = StoredDocument::build_with_page_size(
        TypedDocument::analyze(generate_books("b.xml", &BooksConfig::sized(50))),
        256,
    )
    .with_buffer_pool(64);
    let vd = VirtualDocument::open(stored.typed(), "title { author { name } }").unwrap();
    let title = vd.roots()[0];
    let _ = virtual_value(&vd, &stored, title);
    let cold = stored.buffer_stats().unwrap();
    assert!(cold.misses > 0);
    let _ = virtual_value(&vd, &stored, title);
    let warm = stored.buffer_stats().unwrap();
    assert_eq!(
        warm.misses, cold.misses,
        "second stitch of the same value reads only cached pages"
    );
    assert!(warm.hits > cold.hits);
}

/// Axis-heavy queries agree between the virtual view and its materialized
/// instance: ancestors, siblings, preceding/following, positions.
#[test]
fn axis_queries_agree_with_materialization() {
    let td = TypedDocument::analyze(generate_books(
        "b.xml",
        &BooksConfig {
            books: 10,
            max_authors: 3,
            rare_fraction: 0.2,
            seed: 41,
        },
    ));
    let spec = "title { author { name } }";
    let vd = VirtualDocument::open(&td, spec).unwrap();
    let vdg = VDataGuide::compile(spec, td.guide()).unwrap();
    let mat_td = TypedDocument::analyze(materialize(&td, &vdg).doc);

    let virt = VirtualDoc::new(&vd);
    let phys = PhysicalDoc::new(&mat_td);
    let mat_root = mat_td.doc().root().unwrap();
    for q in [
        "//name/ancestor::title",
        "//author/preceding-sibling::node()",
        "//author[1]/name",
        "//title/following-sibling::title",
        "//name/ancestor-or-self::*",
        "//title[last()]",
        "//author/parent::title",
        "//name/preceding::author",
    ] {
        let path = parse_xpath(q).unwrap();
        let virt_n = eval_xpath(&virt, &path).unwrap().len();
        // The materialized instance wraps the forest in a synthetic
        // `vroot` element; exclude it from wildcard results.
        let mat_n = eval_xpath(&phys, &path)
            .unwrap()
            .into_iter()
            .filter(|&n| n != mat_root)
            .count();
        assert_eq!(virt_n, mat_n, "query {q}");
    }
}

/// Virtual string values include exactly the virtual subtree's text — and
/// differ from the physical string value where the hierarchy moved.
#[test]
fn virtual_string_values_follow_the_virtual_subtree() {
    let td = TypedDocument::analyze(generate_books(
        "b.xml",
        &BooksConfig {
            books: 3,
            max_authors: 1,
            rare_fraction: 0.0,
            seed: 1,
        },
    ));
    let vd = VirtualDocument::open(&td, "title { author { name } }").unwrap();
    let virt = VirtualDoc::new(&vd);
    use vpbn_suite::query::doc::QueryDoc;
    for &t in &vd.roots() {
        let virtual_sv = virt.string_value(t);
        let physical_sv = td.doc().string_value(t);
        // Virtually, the title contains its author's name text too.
        assert!(virtual_sv.starts_with(&physical_sv));
        assert!(virtual_sv.len() > physical_sv.len());
    }
}
