//! Integration tests of the observability layer: stage timings, cache
//! provenance oracles, trace JSON round-trips and engine-wide metrics.

use vpbn_suite::obs::{CacheOutcome, QueryTrace, Span};
use vpbn_suite::query::api::{Engine, ExecOptions, QueryRequest};

const BOOKS: &str = "<data>\
       <book><title>Alpha</title>\
         <author><name>Ann</name></author>\
         <publisher><location>Oslo</location></publisher></book>\
       <book><title>Beta</title>\
         <author><name>Bob</name></author>\
         <author><name>Cy</name></author>\
         <publisher><location>Lima</location></publisher></book>\
     </data>";

const SPEC: &str = "title { author { name } }";

fn engine() -> Engine {
    let mut e = Engine::new();
    e.register_xml("b.xml", BOOKS).expect("fixture parses");
    e
}

fn rhonda() -> QueryRequest {
    QueryRequest::flwr(
        r#"for $t in virtualDoc("b.xml", "title { author { name } }")//title
           return <r>{count($t/author)}</r>"#,
    )
}

/// Children nest inside their parent, so their summed duration can never
/// exceed the parent's — recursively, for the whole tree.
fn assert_nested_durations(s: &Span) {
    assert!(
        s.child_duration_ns() <= s.duration_ns,
        "children of '{}' ({} ns) exceed the span itself ({} ns)",
        s.name,
        s.child_duration_ns(),
        s.duration_ns
    );
    for c in &s.children {
        assert_nested_durations(c);
    }
}

#[test]
fn stage_timings_are_monotone_and_sum_consistently() {
    let engine = engine();
    let out = engine.run(&rhonda().with_trace(true)).expect("query runs");
    let stats = &out.stats;

    // Stage timings sum to no more than the whole query.
    assert!(
        stats.stage_ns() <= stats.total_ns,
        "parse {} + plan {} + exec {} > total {}",
        stats.parse_ns,
        stats.plan_ns,
        stats.exec_ns,
        stats.total_ns
    );

    // The span tree obeys the same discipline at every level.
    let trace = out.trace.as_ref().expect("tracing was requested");
    assert_eq!(trace.root.name, "query");
    assert_nested_durations(&trace.root);

    // The trace and the stats describe the same run.
    let exec = trace.root.find("exec").expect("exec span exists");
    assert_eq!(exec.counter("result.nodes"), Some(stats.result_nodes));
    assert_eq!(stats.result_nodes, 2, "one <r> per title");
}

#[test]
fn cold_and_warm_runs_agree_with_the_cache_oracle() {
    let engine = engine();
    let req = rhonda().with_trace(true);

    let cold = engine.run(&req).expect("cold run");
    let warm = engine.run(&req).expect("warm run");

    // Provenance flips from computed to hit; nothing else may change.
    for v in &cold.stats.views {
        assert_eq!(v.expansion, CacheOutcome::Computed, "cold {}", v.uri);
    }
    for v in &warm.stats.views {
        assert_eq!(v.expansion, CacheOutcome::Hit, "warm {}", v.uri);
    }
    assert_eq!(cold.stats.axis, warm.stats.axis, "same scans either way");
    assert_eq!(cold.stats.result_nodes, warm.stats.result_nodes);
    assert_eq!(cold.to_string_compact(), warm.to_string_compact());

    // The trace's view spans carry the same verdict as the stats.
    let cold_trace = cold.trace.as_ref().expect("traced");
    let warm_trace = warm.trace.as_ref().expect("traced");
    let cold_exp = cold_trace.root.find("guide-expansion").expect("span");
    let warm_exp = warm_trace.root.find("guide-expansion").expect("span");
    assert_eq!(cold_exp.meta_value("cache"), Some("computed"));
    assert_eq!(warm_exp.meta_value("cache"), Some("hit"));

    // With the cache disabled the same query reports bypassed artifacts.
    let exec = ExecOptions {
        cache: false,
        ..ExecOptions::default()
    };
    let off = engine
        .run(&rhonda().with_exec(exec).with_trace(true))
        .expect("cache-off run");
    for v in &off.stats.views {
        assert_eq!(v.expansion, CacheOutcome::Bypassed, "bypassed {}", v.uri);
    }
    assert_eq!(off.to_string_compact(), warm.to_string_compact());
}

#[test]
fn traces_round_trip_through_json() {
    let engine = engine();
    let out = engine.run(&rhonda().with_trace(true)).expect("query runs");
    let trace = out.trace.expect("traced");
    let json = trace.to_json();
    let back = QueryTrace::from_json(&json).expect("own output parses");
    assert_eq!(back, trace, "round-trip is lossless");
    assert_eq!(back.to_json(), json, "re-serialization is stable");
}

#[test]
fn trace_json_golden_schema() {
    // External tooling parses this format: any change must be deliberate.
    let mut exec = Span::named("exec");
    exec.start_ns = 40;
    exec.duration_ns = 50;
    exec.counters.push(("result.nodes".into(), 2));
    let trace = QueryTrace {
        root: Span {
            name: "query".into(),
            start_ns: 1,
            duration_ns: 99,
            meta: vec![("kind".into(), "flwr".into())],
            counters: Vec::new(),
            children: vec![exec],
        },
    };
    let want = concat!(
        "{\"name\":\"query\",\"start_ns\":1,\"duration_ns\":99,",
        "\"meta\":{\"kind\":\"flwr\"},\"counters\":{},\"children\":[",
        "{\"name\":\"exec\",\"start_ns\":40,\"duration_ns\":50,",
        "\"meta\":{},\"counters\":{\"result.nodes\":2},\"children\":[]}]}",
    );
    assert_eq!(trace.to_json(), want);
    assert_eq!(QueryTrace::from_json(want).expect("golden parses"), trace);
}

#[test]
fn explain_names_every_required_stage() {
    let engine = engine();
    let ex = engine.explain(&rhonda()).expect("explain runs");
    let text = ex.text();
    for needle in [
        "query (",
        "parse (",
        "guide-expansion",
        "arena-range-selection",
        "twig.seeks=",
        "sjoin.comparisons=",
        "cache=computed",
        "index=[",
        "arena=[",
        "result.nodes=2",
    ] {
        assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
    }
    // The same plan survives the JSON exporter.
    let back = QueryTrace::from_json(&ex.json()).expect("explain JSON parses");
    assert_eq!(back, ex.trace);
}

#[test]
fn explain_covers_virtual_path_requests_too() {
    let engine = engine();
    let req = QueryRequest::virtual_path("b.xml", SPEC, "//title/author/name");
    let ex = engine.explain(&req).expect("explain runs");
    let text = ex.text();
    assert!(text.contains("kind=virtual-path"), "{text}");
    assert!(text.contains("arena-range-selection"), "{text}");
    assert_eq!(
        ex.trace
            .root
            .find("exec")
            .and_then(|s| s.counter("result.nodes")),
        Some(3),
        "Ann, Bob and Cy"
    );
}

#[test]
fn snapshot_and_metrics_accumulate_across_runs() {
    let mut engine = engine();
    engine.attach_store("b.xml").expect("store attaches");
    engine.run(&rhonda()).expect("untraced run");
    engine.run(&rhonda().with_trace(true)).expect("traced run");
    assert!(engine.run(&QueryRequest::flwr("for $x in")).is_err());

    let snap = engine.snapshot();
    assert_eq!(snap.queries.queries, 3, "attempts, including the failure");
    assert_eq!(snap.queries.traced, 1);
    assert_eq!(snap.queries.failures, 1);
    assert_eq!(snap.queries.result_nodes, 4);
    assert!(snap.storage.total_bytes() > 0, "store was attached");
    assert!(snap.cache.expansions.entries > 0, "view was cached");

    let m = engine.metrics_text();
    assert!(m.contains("vpbn_queries_total 3"), "{m}");
    assert!(m.contains("vpbn_query_failures_total 1"), "{m}");
    assert!(m.contains("vpbn_queries_traced_total 1"), "{m}");
    assert!(m.contains("vpbn_query_result_nodes_total 4"), "{m}");
    assert!(
        m.contains("vpbn_cache_hits_total{artifact=\"expansions\"} 1"),
        "{m}"
    );
    // Exposition discipline: every sample sits under its family's TYPE
    // line, before the next family begins.
    let mut current_family = String::new();
    for line in m.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            current_family = rest
                .split_whitespace()
                .next()
                .expect("metric name after TYPE")
                .to_owned();
        } else if !line.starts_with('#') && !line.is_empty() {
            let name = line.split(['{', ' ']).next().expect("sample name");
            assert_eq!(
                name, current_family,
                "sample '{line}' strayed from its TYPE declaration"
            );
        }
    }
}

#[test]
fn untraced_runs_carry_stats_but_no_trace() {
    let engine = engine();
    let out = engine.run(&rhonda()).expect("query runs");
    assert!(out.trace.is_none());
    assert_eq!(out.stats.result_nodes, 2);
    assert_eq!(out.stats.views.len(), 1, "provenance costs nothing to keep");
    assert_eq!(
        out.stats.axis.range_scans, 0,
        "axis counters are trace-only"
    );
}
