//! End-to-end fault-injection tests: a seeded faulty page device under the
//! full stack. The invariant throughout is *fail loudly, never lie* — a
//! read either returns the exact bytes the writer stored or a structured
//! [`StorageError`]; no fault may surface as a silently wrong answer.

use std::time::Duration;
use vpbn_suite::core::value::virtual_value;
use vpbn_suite::core::VirtualDocument;
use vpbn_suite::dataguide::TypedDocument;
use vpbn_suite::storage::{FaultConfig, RetryPolicy, StorageError, StoredDocument};
use vpbn_suite::workload::{generate_books, BooksConfig};
use vpbn_suite::VhError;

const PAGE: usize = 128;

fn corpus() -> TypedDocument {
    TypedDocument::analyze(generate_books("b.xml", &BooksConfig::sized(40)))
}

/// An instant-retry policy so fault-heavy tests don't sleep.
fn fast_retries(max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
    }
}

#[test]
fn transient_faults_heal_through_retry_and_are_counted() {
    let td = corpus();
    let oracle = StoredDocument::build_with_page_size(td.clone(), PAGE);
    let faulty = StoredDocument::build_with_faults(
        td,
        PAGE,
        FaultConfig::with_seed(42).transient_read_rate(0.3),
    )
    .with_retry_policy(fast_retries(16));

    // Every value matches the fault-free oracle byte for byte.
    for id in 0..oracle.typed().doc().len() {
        let id = vpbn_suite::xml::NodeId::from_index(id);
        assert_eq!(
            faulty.value_of(id).expect("retries heal transient faults"),
            oracle.value_of(id).expect("oracle store is fault-free"),
        );
    }

    // The healing was real work, and the stats surface it.
    let s = faulty.stats();
    assert!(s.transient_faults > 0, "faults were injected: {s:?}");
    assert!(s.read_retries > 0, "retries are visible in stats: {s:?}");
    assert!(
        s.read_retries >= s.transient_faults,
        "every transient fault costs at least one retry: {s:?}"
    );
    assert_eq!(s.checksum_failures, 0, "no corruption was injected");
}

#[test]
fn bit_flips_are_detected_and_healed_by_refetch() {
    let td = corpus();
    let oracle = StoredDocument::build_with_page_size(td.clone(), PAGE);
    // Flip a bit on ~40% of delivered pages; a refetch returns clean data,
    // so bounded retries always converge.
    let faulty =
        StoredDocument::build_with_faults(td, PAGE, FaultConfig::with_seed(7).bit_flip_rate(0.4))
            .with_retry_policy(fast_retries(32));

    for id in 0..oracle.typed().doc().len() {
        let id = vpbn_suite::xml::NodeId::from_index(id);
        assert_eq!(
            faulty.value_of(id).expect("refetch heals bit flips"),
            oracle.value_of(id).expect("oracle store is fault-free"),
            "a bit flip must never reach the caller"
        );
    }
    let s = faulty.stats();
    assert!(s.checksum_failures > 0, "flips were caught by CRC: {s:?}");
}

#[test]
fn torn_pages_surface_as_corrupt_never_as_wrong_bytes() {
    let td = corpus();
    let oracle = StoredDocument::build_with_page_size(td.clone(), PAGE);
    // Page 1 is torn: its tail half reads as zeroes on every attempt, so
    // no amount of retrying can produce a checksum-clean read.
    let faulty =
        StoredDocument::build_with_faults(td, PAGE, FaultConfig::with_seed(3).torn_page(1))
            .with_retry_policy(fast_retries(4));

    let mut corrupt_seen = 0usize;
    for id in 0..oracle.typed().doc().len() {
        let id = vpbn_suite::xml::NodeId::from_index(id);
        match faulty.value_of(id) {
            Ok(v) => assert_eq!(
                v,
                oracle.value_of(id).expect("oracle store is fault-free"),
                "values off the torn page must still be exact"
            ),
            Err(StorageError::Corrupt { page }) => {
                assert_eq!(page, 1, "only the torn page is corrupt");
                corrupt_seen += 1;
            }
            Err(other) => panic!("torn page must report Corrupt, got {other}"),
        }
    }
    assert!(corrupt_seen > 0, "some value spans the torn page");
}

#[test]
fn corruption_aborts_virtual_value_stitching_with_the_page() {
    let td = corpus();
    let faulty =
        StoredDocument::build_with_faults(td, PAGE, FaultConfig::with_seed(3).torn_page(0))
            .with_retry_policy(fast_retries(4));
    let vd =
        VirtualDocument::open(faulty.typed(), "title { author { name } }").expect("spec compiles");

    // The view's roots stitch values out of page 0; the fault must abort
    // the stitch with a chained StorageError, not return partial text.
    let title = vd.roots()[0];
    let err = virtual_value(&vd, &faulty, title).expect_err("page 0 is torn");
    let inner = err
        .inner()
        .downcast_ref::<StorageError>()
        .expect("stitch failures chain the storage cause");
    assert!(
        matches!(inner, StorageError::Corrupt { page: 0 }),
        "{inner}"
    );

    // And through the facade it keeps the precise storage code.
    let vh: VhError = err.into();
    assert_eq!(vh.code(), "STORAGE_CORRUPT");
    assert_eq!(vh.exit_code(), 7);
}

#[test]
fn quarantined_frames_are_refetched_not_served() {
    let td = corpus();
    let oracle = StoredDocument::build_with_page_size(td.clone(), PAGE);
    // Capacity covers the whole document so page 0 stays resident after
    // stitching the root's value (an 8-frame pool would evict it mid-read).
    let stored = StoredDocument::build_with_page_size(td, PAGE).with_buffer_pool(4096);

    let root = vpbn_suite::xml::NodeId::from_index(0);
    let clean = stored.value_of(root).expect("fault-free read");
    assert_eq!(
        clean,
        oracle.value_of(root).expect("oracle store is fault-free")
    );

    // Simulate in-memory corruption of a cached frame, then quarantine it:
    // the frame is dropped and the next read refetches from the device.
    let pool = stored.buffer_pool().expect("pool attached");
    assert!(pool.poison_frame(0, 3, 0xFF), "frame 0 is resident");
    assert!(pool.quarantine(0), "poisoned frame is quarantined");
    let after = stored.value_of(root).expect("refetch after quarantine");
    assert_eq!(after, clean, "quarantine must never serve poisoned bytes");
    assert!(stored.stats().quarantines > 0, "quarantine is in the stats");
}

#[test]
fn same_seed_reproduces_the_same_fault_history() {
    let run = || {
        let faulty = StoredDocument::build_with_faults(
            corpus(),
            PAGE,
            FaultConfig::with_seed(1234)
                .transient_read_rate(0.25)
                .bit_flip_rate(0.1),
        )
        .with_retry_policy(fast_retries(16));
        for id in 0..faulty.typed().doc().len() {
            let _ = faulty.value_of(vpbn_suite::xml::NodeId::from_index(id));
        }
        let s = faulty.stats();
        (s.transient_faults, s.checksum_failures, s.read_retries)
    };
    assert_eq!(run(), run(), "fault injection is deterministic per seed");
}
