//! Robustness suite: every parser in the system must reject garbage with
//! an error — never panic — and the engines must fail cleanly on bad
//! input. Uses proptest to fuzz the grammars with adversarial-ish strings.

use proptest::prelude::*;
use vpbn_suite::core::{VDataGuide, VdgSpec};
use vpbn_suite::dataguide::TypedDocument;
use vpbn_suite::query::flwr::parse_flwr;
use vpbn_suite::query::twig::TwigPattern;
use vpbn_suite::query::xpath::parse_xpath;
use vpbn_suite::query::{Engine, QueryRequest};
use vpbn_suite::xml::builder::paper_figure2;
use vpbn_suite::xml::parse;

/// Characters likely to hit every branch of the tokenizers.
fn grammar_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("book".to_owned()),
            Just("title".to_owned()),
            Just("/".to_owned()),
            Just("//".to_owned()),
            Just("[".to_owned()),
            Just("]".to_owned()),
            Just("(".to_owned()),
            Just(")".to_owned()),
            Just("{".to_owned()),
            Just("}".to_owned()),
            Just("*".to_owned()),
            Just("**".to_owned()),
            Just("$v".to_owned()),
            Just("@id".to_owned()),
            Just("'lit".to_owned()),
            Just("\"q\"".to_owned()),
            Just("=".to_owned()),
            Just("<".to_owned()),
            Just(">".to_owned()),
            Just("::".to_owned()),
            Just("..".to_owned()),
            Just(".".to_owned()),
            Just(",".to_owned()),
            Just("|".to_owned()),
            Just("+".to_owned()),
            Just("-".to_owned()),
            Just("1.5".to_owned()),
            Just("for".to_owned()),
            Just("return".to_owned()),
            Just("doc(".to_owned()),
            Just(" ".to_owned()),
            "[a-z<>&;#]{1,4}".prop_map(|s| s),
        ],
        0..24,
    )
    .prop_map(|parts| parts.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The XPath parser never panics.
    #[test]
    fn xpath_parser_never_panics(input in grammar_soup()) {
        let _ = parse_xpath(&input);
    }

    /// The FLWR parser never panics.
    #[test]
    fn flwr_parser_never_panics(input in grammar_soup()) {
        let _ = parse_flwr(&input);
    }

    /// The vDataGuide parser never panics, and whatever parses either
    /// compiles against the Figure 2 guide or errors cleanly.
    #[test]
    fn vdg_parser_and_compiler_never_panic(input in grammar_soup()) {
        if let Ok(spec) = VdgSpec::parse(&input) {
            let td = TypedDocument::analyze(paper_figure2());
            let _ = spec.expand(td.guide());
        }
    }

    /// The twig pattern parser never panics.
    #[test]
    fn twig_parser_never_panics(input in grammar_soup()) {
        let _ = TwigPattern::parse(&input);
    }

    /// The XML parser never panics on arbitrary input (including markup
    /// fragments and control characters).
    #[test]
    fn xml_parser_never_panics(input in "[\\x20-\\x7e\\n<>&;'\"]{0,64}") {
        let _ = parse("fuzz", &input);
    }

    /// Whatever the XPath parser accepts, the evaluator processes without
    /// panicking on the Figure 2 document.
    #[test]
    fn accepted_xpaths_evaluate_cleanly(input in grammar_soup()) {
        if let Ok(p) = parse_xpath(&input) {
            let td = TypedDocument::analyze(paper_figure2());
            let doc = vpbn_suite::query::doc::PhysicalDoc::new(&td);
            let _ = vpbn_suite::query::xpath::eval_xpath(&doc, &p);
        }
    }
}

#[test]
fn engine_reports_clean_errors() {
    let mut e = Engine::new();
    e.register(paper_figure2());
    // Bad vDataGuide inside virtualDoc: error, not panic.
    let r = e.run(&QueryRequest::flwr(
        r#"for $t in virtualDoc("book.xml", "nosuch {")//t return <x/>"#,
    ));
    assert!(r.is_err());
    // Ambiguous label: error mentions candidates.
    let r = e.run(&QueryRequest::flwr(
        r##"for $t in virtualDoc("book.xml", "#text")//t return <x/>"##,
    ));
    let msg = format!("{}", r.unwrap_err());
    assert!(msg.contains("ambiguous"), "{msg}");
    // Unknown function.
    let r = e.run(&QueryRequest::flwr(
        r#"for $t in doc("book.xml")//book[frob()] return <x/>"#,
    ));
    assert!(r.is_err());
    // Bad XML registration.
    assert!(e.register_xml("bad.xml", "<a><b></a>").is_err());
}

#[test]
fn compile_errors_are_descriptive() {
    let td = TypedDocument::analyze(paper_figure2());
    let err = VDataGuide::compile("title { title }", td.guide()).unwrap_err();
    assert!(format!("{err}").contains("two virtual locations"), "{err}");
    let err = VDataGuide::compile("ghost", td.guide()).unwrap_err();
    assert!(format!("{err}").contains("matches no type"), "{err}");
}
