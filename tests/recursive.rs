//! Recursive schemas: §4.1 stipulates that "for a recursive schema type,
//! each level of recursion is a different (actual) type". These tests
//! exercise vPBN over self-nested data — a bill-of-materials `part` tree —
//! where a bare `part` label is ambiguous and every virtual construct must
//! be qualified per recursion level.

use vpbn_suite::core::transform::materialize;
use vpbn_suite::core::{VDataGuide, VdgError, VirtualDocument};
use vpbn_suite::dataguide::TypedDocument;
use vpbn_suite::query::doc::VirtualDoc;
use vpbn_suite::query::xpath::{eval_xpath, parse_xpath};
use vpbn_suite::xml::NodeId;

/// A three-level bill of materials with two assemblies.
fn bom() -> TypedDocument {
    TypedDocument::parse(
        "bom.xml",
        "<bom>\
           <part><id>engine</id>\
             <part><id>piston</id><part><id>ring</id></part></part>\
             <part><id>valve</id></part>\
           </part>\
           <part><id>chassis</id>\
             <part><id>axle</id></part>\
           </part>\
         </bom>",
    )
    .unwrap()
}

#[test]
fn each_recursion_level_is_a_distinct_type() {
    let td = bom();
    let g = td.guide();
    // part, part.part, part.part.part are three distinct types.
    let l1 = g.lookup_path(&["bom", "part"]).unwrap();
    let l2 = g.lookup_path(&["bom", "part", "part"]).unwrap();
    let l3 = g.lookup_path(&["bom", "part", "part", "part"]).unwrap();
    assert_ne!(l1, l2);
    assert_ne!(l2, l3);
    assert_eq!(g.length(l1), 2);
    assert_eq!(g.length(l3), 4);
    // A bare `part` label is ambiguous across the levels, and so is the
    // partially qualified `part.part` (levels 2 and 3 both match the
    // suffix): full qualification is required.
    assert!(matches!(
        VDataGuide::compile("part", g),
        Err(VdgError::AmbiguousLabel { .. })
    ));
    assert!(matches!(
        VDataGuide::compile("part.part", g),
        Err(VdgError::AmbiguousLabel { .. })
    ));
    assert!(VDataGuide::compile("bom.part.part", g).is_ok());
}

#[test]
fn level_targeted_view_lifts_one_recursion_level() {
    let td = bom();
    // Lift the level-2 parts to the top, keeping their ids and subtrees.
    let vd = VirtualDocument::open(&td, "bom.part.part { ** }").unwrap();
    let roots = vd.roots();
    assert_eq!(roots.len(), 3, "piston, valve, axle");
    let ids: Vec<String> = roots
        .iter()
        .map(|&r| {
            let kids = vd.children(r);
            td.doc().string_value(kids[0])
        })
        .collect();
    assert_eq!(ids, vec!["piston", "valve", "axle"]);
    // piston keeps its nested ring (identity below).
    let q = parse_xpath("//part[id = 'ring']").unwrap();
    let rings = eval_xpath(&VirtualDoc::new(&vd), &q).unwrap();
    assert_eq!(rings.len(), 1);
}

#[test]
fn inverted_recursion_matches_materialization() {
    let td = bom();
    // Hang level-1 parts below their level-2 children's ids — a case-2
    // inversion across recursion levels.
    let spec = "bom.part.part.id { bom.part }";
    let vd = VirtualDocument::open(&td, spec).unwrap();
    let vdg = VDataGuide::compile(spec, td.guide()).unwrap();
    let mat = materialize(&td, &vdg);
    let mroot = mat.doc.root().unwrap();
    let mat_sources: Vec<NodeId> = mat
        .doc
        .descendants_or_self(mroot)
        .skip(1)
        .map(|m| mat.source_of[m.index()].unwrap())
        .collect();
    assert_eq!(vd.preorder(), mat_sources);
    // Each level-2 id now (virtually) contains its level-1 ancestor.
    let roots = vd.roots();
    assert_eq!(roots.len(), 3);
    for &r in &roots {
        let kids = vd.children(r);
        // The containing level-1 part (prefix-holder, canonical first) +
        // the id's own text.
        assert_eq!(kids.len(), 2, "children of {:?}", td.doc().string_value(r));
        assert_eq!(td.doc().name(kids[0]), Some("part"));
        assert!(td.doc().kind(kids[1]).is_text());
        assert!(vd.check(vpbn_suite::core::axes::v_parent, r, kids[0]));
    }
}

#[test]
fn identity_view_over_recursive_data_is_transparent() {
    let td = bom();
    let vd = VirtualDocument::open(&td, "bom { ** }").unwrap();
    assert_eq!(vd.visible_nodes(), td.doc().len());
    let phys: Vec<NodeId> = td.doc().preorder().collect();
    assert_eq!(vd.preorder(), phys);
    // Queries agree with the physical document.
    let q = parse_xpath("//part/part/part/id").unwrap();
    let deep = eval_xpath(&VirtualDoc::new(&vd), &q).unwrap();
    assert_eq!(deep.len(), 1);
    assert_eq!(td.doc().string_value(deep[0]), "ring");
}

#[test]
fn level_arrays_grow_with_recursion_depth() {
    let td = bom();
    let vd = VirtualDocument::open(&td, "bom.part.part { ** }").unwrap();
    // The root type (orig path bom.part.part, length 3) gets [1,1,1];
    // its recursive child (bom.part.part.part, length 4) gets [1,1,1,2].
    let root_vt = vd.vdg().roots()[0];
    assert_eq!(vd.array(root_vt).levels(), &[1, 1, 1]);
    let deeper = vd
        .vdg()
        .guide()
        .lookup_path(&["part", "part"])
        .expect("recursive child type exists in the view");
    assert_eq!(vd.array(deeper).levels(), &[1, 1, 1, 2]);
}
