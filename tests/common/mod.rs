//! Shared helpers for the mutation test binaries (`edits.rs`,
//! `recovery.rs`): dotted-path addressing and the skewed random edit
//! scripts both suites drive through `Engine::apply`.

use vpbn_suite::query::api::Edit;
use vpbn_suite::xml::{Document, NodeId};

/// The document URI every mutation test registers its corpus under.
pub const URI: &str = "books.xml";

/// Dotted 1-based child-index path of `n` (the addressing scheme of
/// `Edit` targets): `"1"` is the root, `"1.2"` its second child, …
pub fn dotted_path(doc: &Document, n: NodeId) -> String {
    let mut steps = Vec::new();
    let mut cur = n;
    while let Some(p) = doc.parent(cur) {
        let idx = doc
            .children(p)
            .iter()
            .position(|&c| c == cur)
            .expect("child lists are consistent")
            + 1;
        steps.push(idx);
        cur = p;
    }
    steps.push(1);
    steps.reverse();
    steps
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(".")
}

/// Concretizes one abstract op against the *current* document state.
/// `op` is skewed: 60% inserts (mostly at position 0 — the front gap is
/// the minting worst case), 20% value rewrites, 10% deletes, 10% moves.
pub fn concretize(doc: &Document, op: u8, a: u16, b: u16) -> Option<Edit> {
    let nodes: Vec<NodeId> = doc.preorder().collect();
    let elements: Vec<NodeId> = nodes
        .iter()
        .copied()
        .filter(|&n| doc.kind(n).is_element())
        .collect();
    let pick = |pool: &[NodeId], salt: u16| pool.get(salt as usize % pool.len().max(1)).copied();
    let uri = URI.to_string();
    match op % 10 {
        0..=5 => {
            let parent = pick(&elements, a)?;
            let len = doc.children(parent).len();
            // Skew toward the front: repeated pos-0 inserts force the
            // arithmetic front-gap minting path.
            let pos = if b % 4 != 0 {
                0
            } else {
                b as usize % (len + 1)
            };
            let xml = match b % 3 {
                0 => format!("<book><title>T{a}</title><author><name>N{b}</name></author></book>"),
                1 => format!("<note>n{a}</note>"),
                _ => format!("<author><name>M{b}</name><note>x</note></author>"),
            };
            Some(Edit::InsertSubtree {
                uri,
                parent: dotted_path(doc, parent),
                pos,
                xml,
            })
        }
        6 | 7 => {
            let target = pick(&elements, a.wrapping_add(b))?;
            Some(Edit::SetValue {
                uri,
                target: dotted_path(doc, target),
                value: format!("v{b}"),
            })
        }
        8 => {
            let target = pick(&nodes[1..], a)?;
            Some(Edit::DeleteSubtree {
                uri,
                target: dotted_path(doc, target),
            })
        }
        _ => {
            let target = pick(&elements[1.min(elements.len())..], a)?;
            let dest = elements
                .iter()
                .copied()
                .cycle()
                .skip(b as usize % elements.len().max(1))
                .take(elements.len())
                .find(|&p| p != target && !doc.is_ancestor(target, p))?;
            Some(Edit::MoveSubtree {
                uri,
                target: dotted_path(doc, target),
                parent: dotted_path(doc, dest),
                pos: 0,
            })
        }
    }
}
