//! Paper-fidelity suite: every figure and worked example in the available
//! text, pinned verbatim. If an implementation change breaks any number
//! the paper prints, it breaks here.

use vpbn_suite::core::{axes, VirtualDocument};
use vpbn_suite::dataguide::TypedDocument;
use vpbn_suite::query::{Engine, QueryRequest};
use vpbn_suite::xml::builder::paper_figure2;
use vpbn_suite::xml::NodeId;

fn setup() -> TypedDocument {
    TypedDocument::analyze(paper_figure2())
}

/// Figure 8: the PBN numbers of the Figure 2 instance, all nineteen.
#[test]
fn figure8_every_pbn_number() {
    let td = setup();
    let expected = [
        ("data", "1"),
        ("book", "1.1"),
        ("title", "1.1.1"),
        ("X", "1.1.1.1"),
        ("author", "1.1.2"),
        ("name", "1.1.2.1"),
        ("C", "1.1.2.1.1"),
        ("publisher", "1.1.3"),
        ("location", "1.1.3.1"),
        ("W", "1.1.3.1.1"),
        ("book", "1.2"),
        ("title", "1.2.1"),
        ("Y", "1.2.1.1"),
        ("author", "1.2.2"),
        ("name", "1.2.2.1"),
        ("D", "1.2.2.1.1"),
        ("publisher", "1.2.3"),
        ("location", "1.2.3.1"),
        ("M", "1.2.3.1.1"),
    ];
    let actual: Vec<(String, String)> = td
        .doc()
        .preorder()
        .map(|id| {
            let label = match td.doc().kind(id) {
                vpbn_suite::xml::NodeKind::Element { name, .. } => name.clone(),
                vpbn_suite::xml::NodeKind::Text(t) => t.clone(),
                other => format!("{other:?}"),
            };
            (label, td.pbn().pbn_of(id).to_string())
        })
        .collect();
    assert_eq!(actual.len(), expected.len());
    for ((al, an), (el, en)) in actual.iter().zip(expected.iter()) {
        assert_eq!((al.as_str(), an.as_str()), (*el, *en));
    }
}

/// Figure 7(a): the DataGuide of the original data — ten types.
#[test]
fn figure7a_dataguide() {
    let td = setup();
    let g = td.guide();
    assert_eq!(g.len(), 10);
    for path in [
        "data",
        "data.book",
        "data.book.title",
        "data.book.title.#text",
        "data.book.author",
        "data.book.author.name",
        "data.book.author.name.#text",
        "data.book.publisher",
        "data.book.publisher.location",
        "data.book.publisher.location.#text",
    ] {
        let parts: Vec<&str> = path.split('.').collect();
        assert!(g.lookup_path(&parts).is_some(), "missing type {path}");
    }
}

/// §4.1's worked example: "the typeOf author in Figure 7(b) is
/// title.author, and it has a length of 2. Its originalTypeOf is
/// data.book.author. The lcaTypeOf of title.author and title is title."
#[test]
fn section_4_1_type_examples() {
    let td = setup();
    let vd = VirtualDocument::open(&td, "title { author { name } }").unwrap();
    let vg = vd.vdg().guide();
    let author = vg.lookup_path(&["title", "author"]).unwrap();
    assert_eq!(vg.path_string(author), "title.author");
    assert_eq!(vg.length(author), 2);
    assert_eq!(
        td.guide().path_string(vd.vdg().original_type(author)),
        "data.book.author"
    );
    let title = vg.lookup_path(&["title"]).unwrap();
    assert_eq!(vg.lca(author, title), Some(title));
}

/// Figure 10: the complete vPBN table — every visible node's number and
/// level array under Sam's transformation.
#[test]
fn figure10_complete_vpbn_table() {
    let td = setup();
    let vd = VirtualDocument::open(&td, "title { author { name } }").unwrap();
    let expected: &[(&str, &[u32])] = &[
        ("1.1.1", &[1, 1, 1]),           // title
        ("1.1.1.1", &[1, 1, 1, 2]),      // X
        ("1.1.2", &[1, 1, 2]),           // author
        ("1.1.2.1", &[1, 1, 2, 3]),      // name
        ("1.1.2.1.1", &[1, 1, 2, 3, 4]), // C
        ("1.2.1", &[1, 1, 1]),           // title
        ("1.2.1.1", &[1, 1, 1, 2]),      // Y
        ("1.2.2", &[1, 1, 2]),           // author
        ("1.2.2.1", &[1, 1, 2, 3]),      // name
        ("1.2.2.1.1", &[1, 1, 2, 3, 4]), // D
    ];
    let actual: Vec<(String, Vec<u32>)> = vd
        .preorder()
        .iter()
        .map(|&n| {
            let v = vd.vpbn_of(n).unwrap();
            (td.pbn().pbn_of(n).to_string(), v.a.to_vec())
        })
        .collect();
    assert_eq!(actual.len(), expected.len());
    for ((an, aa), (en, ea)) in actual.iter().zip(expected.iter()) {
        assert_eq!(an, en, "number order");
        assert_eq!(aa.as_slice(), *ea, "level array of {an}");
    }
}

/// §5's worked predicate examples over Figure 10, all four, verbatim.
#[test]
fn section_5_predicate_walkthrough() {
    let td = setup();
    let vd = VirtualDocument::open(&td, "title { author { name } }").unwrap();
    let by_pbn = |s: &str| -> NodeId {
        let p: vpbn_suite::pbn::Pbn = s.parse().unwrap();
        td.pbn().node_of(&p).unwrap()
    };
    // "The leftmost <name> is a virtual descendant of the leftmost <title>"
    assert!(vd.check(axes::v_descendant, by_pbn("1.1.2.1"), by_pbn("1.1.1")));
    // "But <name> is not a virtual descendant of the rightmost <title>"
    assert!(!vd.check(axes::v_descendant, by_pbn("1.1.2.1"), by_pbn("1.2.1")));
    // "Text node C 1.1.2.1.1 virtually precedes <author> 1.2.2"
    assert!(vd.check(axes::v_preceding, by_pbn("1.1.2.1.1"), by_pbn("1.2.2")));
    // "Finally C is not a virtual following-sibling of D"
    assert!(!vd.check(
        axes::v_following_sibling,
        by_pbn("1.1.2.1.1"),
        by_pbn("1.2.2.1.1")
    ));
}

/// §4.2's physical walkthrough: 1.1.2 vs 1.2.
#[test]
fn section_4_2_pbn_walkthrough() {
    use vpbn_suite::pbn::{axes as pax, Pbn};
    let a: Pbn = "1.1.2".parse().unwrap();
    let b: Pbn = "1.2".parse().unwrap();
    assert!(!pax::is_child(&a, &b));
    assert!(!pax::is_parent(&a, &b));
    assert!(!pax::is_ancestor(&a, &b));
    assert!(!pax::is_descendant(&a, &b));
    assert!(pax::is_preceding(&a, &b));
    assert!(!pax::is_preceding_sibling(&a, &b));
}

/// Figures 1/3: Sam's query produces the Figure 3 instance.
#[test]
fn figure1_and_3_sams_query() {
    let mut e = Engine::new();
    e.register(paper_figure2());
    let got = e
        .run(&QueryRequest::flwr(
            r#"for $t in doc("book.xml")//book/title
               let $a := $t/../author
               return <title>{$t/text()}{$a}</title>"#,
        ))
        .unwrap()
        .to_string_compact();
    assert_eq!(
        got,
        "<results>\
         <title>X<author><name>C</name></author></title>\
         <title>Y<author><name>D</name></author></title>\
         </results>"
    );
}

/// Figures 4/6: Rhonda's nested query and the virtualDoc formulation agree
/// and yield the counts the paper describes.
#[test]
fn figure4_and_6_rhondas_query() {
    let mut e = Engine::new();
    e.register(paper_figure2());
    // Figure 6 directly.
    let direct = e
        .run(&QueryRequest::flwr(
            r#"for $t in virtualDoc("book.xml", "title { author { name } }")//title
               return <result><title>{$t/text()}</title>
                              <count>{count($t/author)}</count></result>"#,
        ))
        .unwrap()
        .to_string_compact();
    assert_eq!(
        direct,
        "<results>\
         <result><title>X</title><count>1</count></result>\
         <result><title>Y</title><count>1</count></result>\
         </results>"
    );
    // Figure 4: nested (Sam materialized, then counted).
    let sam = e
        .run(&QueryRequest::flwr(
            r#"for $t in doc("book.xml")//book/title
               let $a := $t/../author
               return <title>{$t/text()}{$a}</title>"#,
        ))
        .unwrap()
        .document;
    e.register(sam);
    let nested = e
        .run(&QueryRequest::flwr(
            r#"for $t in doc("results")//title
               return <result><title>{$t/text()}</title>
                              <count>{count($t/author)}</count></result>"#,
        ))
        .unwrap()
        .to_string_compact();
    assert_eq!(nested, direct);
}

/// §4.1: the identity transformation in both spellings.
#[test]
fn section_4_1_identity_spellings() {
    let td = setup();
    let long = VirtualDocument::open(
        &td,
        "data { book { title author { name } publisher { location } } }",
    )
    .unwrap();
    let short = VirtualDocument::open(&td, "data { ** }").unwrap();
    assert_eq!(long.preorder(), short.preorder());
    assert_eq!(long.preorder(), td.doc().preorder().collect::<Vec<_>>());
}
