//! Property-based tests (proptest) on the core invariants.

use proptest::prelude::*;
use vpbn_suite::core::transform::materialize;
use vpbn_suite::core::{VDataGuide, VirtualDocument};
use vpbn_suite::dataguide::TypedDocument;
use vpbn_suite::pbn::{axes, EncodedPbn, Pbn, PbnAssignment};
use vpbn_suite::xml::{parse, serialize, Document, ElementBuilder, NodeId, SerializeOptions};

// ---------------------------------------------------------------- PBN ----

fn arb_pbn() -> impl Strategy<Value = Pbn> {
    prop::collection::vec(1u32..100_000, 1..8).prop_map(Pbn::new)
}

proptest! {
    /// Compact encoding round-trips.
    #[test]
    fn encoding_round_trips(p in arb_pbn()) {
        let e = EncodedPbn::encode(&p);
        prop_assert_eq!(e.decode(), p);
    }

    /// Byte comparison of encodings equals document order of numbers.
    #[test]
    fn encoding_preserves_order(a in arb_pbn(), b in arb_pbn()) {
        let (ea, eb) = (EncodedPbn::encode(&a), EncodedPbn::encode(&b));
        prop_assert_eq!(ea.cmp(&eb), a.cmp(&b));
    }

    /// The encoded prefix property mirrors the ancestor relationship.
    #[test]
    fn encoding_prefix_matches_ancestry(a in arb_pbn(), b in arb_pbn()) {
        let (ea, eb) = (EncodedPbn::encode(&a), EncodedPbn::encode(&b));
        prop_assert_eq!(ea.is_prefix_of(&eb), a.is_prefix_of(&b));
    }

    /// The two facts the byte-range scans rest on, stated on raw key
    /// bytes: `enc(p)` is a byte-prefix of every child extension, and
    /// `memcmp` of encodings equals document order of the numbers.
    #[test]
    fn encoded_key_bytes_support_range_scans(
        p in arb_pbn(),
        a in arb_pbn(),
        k in 1u32..100_000,
    ) {
        let ep = EncodedPbn::encode(&p);
        let ec = EncodedPbn::encode(&p.child(k));
        prop_assert!(ec.as_bytes().starts_with(ep.as_bytes()));
        let ea = EncodedPbn::encode(&a);
        prop_assert_eq!(ea.as_bytes().cmp(ep.as_bytes()), a.cmp(&p));
    }

    /// Relationship classification is consistent: exactly one coarse class
    /// holds for any pair from the same tree.
    #[test]
    fn relationship_is_a_partition(a in arb_pbn(), b in arb_pbn()) {
        let classes = [
            axes::is_self(&a, &b),
            axes::is_ancestor(&a, &b),
            axes::is_descendant(&a, &b),
            axes::is_preceding(&a, &b),
            axes::is_following(&a, &b),
        ];
        let true_count = classes.iter().filter(|&&c| c).count();
        if a.components()[0] == b.components()[0] {
            prop_assert_eq!(true_count, 1, "{} vs {}", a, b);
        } else {
            // Different trees: only preceding/following can hold.
            prop_assert!(!classes[0] && !classes[1] && !classes[2]);
        }
    }

    /// `subtree_range` contains exactly the descendants-or-self.
    #[test]
    fn subtree_range_is_exact(a in arb_pbn(), b in arb_pbn()) {
        let (lo, hi) = vpbn_suite::pbn::order::subtree_range(&a);
        let inside = lo <= b && b < hi;
        prop_assert_eq!(inside, a.is_prefix_of(&b));
    }
}

// ------------------------------------------------------- random trees ----

/// A random tree over a small element alphabet, then a random document.
fn arb_tree() -> impl Strategy<Value = Document> {
    let leaf = (0u8..4).prop_map(|i| ElementBuilder::new(format!("e{i}")).text("t"));
    let node = leaf.prop_recursive(3, 24, 4, |inner| {
        (0u8..4, prop::collection::vec(inner, 0..4)).prop_map(|(i, kids)| {
            let mut b = ElementBuilder::new(format!("e{i}"));
            for k in kids {
                b = b.child(k);
            }
            b
        })
    });
    node.prop_map(|b| {
        ElementBuilder::new("root")
            .child(b)
            .into_document("random.xml")
    })
}

/// Ground-truth relationship from tree structure, for cross-checking the
/// number-based predicates.
fn tree_says_ancestor(doc: &Document, a: NodeId, b: NodeId) -> bool {
    doc.is_ancestor(a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Serialization round-trips through the parser for arbitrary trees.
    #[test]
    fn serialize_parse_round_trip(doc in arb_tree()) {
        let s1 = serialize(&doc, SerializeOptions::compact());
        let re = parse("random.xml", &s1).unwrap();
        let s2 = serialize(&re, SerializeOptions::compact());
        prop_assert_eq!(s1, s2);
    }

    /// PBN predicates agree with tree structure on random documents.
    #[test]
    fn pbn_axes_match_tree_structure(doc in arb_tree()) {
        let assignment = PbnAssignment::assign(&doc);
        let nodes: Vec<NodeId> = doc.preorder().collect();
        for &a in nodes.iter().take(20) {
            for &b in nodes.iter().take(20) {
                let (pa, pb) = (assignment.pbn_of(a), assignment.pbn_of(b));
                prop_assert_eq!(
                    axes::is_ancestor(pa, pb),
                    tree_says_ancestor(&doc, a, b)
                );
                prop_assert_eq!(
                    axes::is_parent(pa, pb),
                    doc.parent(b) == Some(a)
                );
                let preorder_before = nodes.iter().position(|&n| n == a).unwrap()
                    < nodes.iter().position(|&n| n == b).unwrap();
                prop_assert_eq!(
                    axes::is_preceding(pa, pb),
                    preorder_before && !tree_says_ancestor(&doc, a, b)
                );
            }
        }
    }

    /// The identity virtual view of an arbitrary tree is fully transparent:
    /// same visible nodes, same navigation.
    #[test]
    fn identity_view_is_transparent(doc in arb_tree()) {
        let td = TypedDocument::analyze(doc);
        let vd = VirtualDocument::open(&td, "root { ** }").unwrap();
        prop_assert_eq!(vd.visible_nodes(), td.doc().len());
        let phys: Vec<NodeId> = td.doc().preorder().collect();
        prop_assert_eq!(vd.preorder(), phys);
        for id in td.doc().preorder() {
            prop_assert_eq!(vd.parent(id), td.doc().parent(id));
            prop_assert_eq!(vd.children(id), td.doc().children(id).to_vec());
        }
    }

    /// Level arrays of any compiled view are non-decreasing and end at the
    /// type's virtual level (max(xa) = level).
    #[test]
    fn level_arrays_are_monotone_and_level_terminated(doc in arb_tree()) {
        let td = TypedDocument::analyze(doc);
        // Choose the deepest e0 chain type as a virtual root if present,
        // plus the identity view which always compiles.
        let vd = VirtualDocument::open(&td, "root { ** }").unwrap();
        for vt in vd.vdg().guide().type_ids() {
            let a = vd.array(vt);
            prop_assert!(a.levels().windows(2).all(|w| w[0] <= w[1]));
            prop_assert_eq!(a.max_level() as usize, vd.vdg().level(vt));
        }
    }
}

// ----------------------------------- random views over book corpora ----

// Virtual document order is a total order: antisymmetric and transitive
// on every sampled triple, across scenarios — `sort_by` panics on
// comparators that violate this, so it is a hard requirement.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn v_cmp_is_a_total_order(
        books in 1usize..12,
        max_authors in 1usize..4,
        seed in 0u64..500,
    ) {
        use std::cmp::Ordering;
        use vpbn_suite::core::order::v_cmp;
        let cfg = vpbn_suite::workload::BooksConfig {
            books,
            max_authors,
            rare_fraction: 0.2,
            seed,
        };
        let td = TypedDocument::analyze(
            vpbn_suite::workload::generate_books("books.xml", &cfg),
        );
        for s in vpbn_suite::workload::book_scenarios() {
            let vd = VirtualDocument::open(&td, s.spec).unwrap();
            // Join multiplicity places one node at several virtual
            // positions; no node-level total order can exist there (the
            // node genuinely sits in two places), so the axioms are only
            // required for uniquely-placed views.
            let vdg = VDataGuide::compile(s.spec, td.guide()).unwrap();
            let mat = materialize(&td, &vdg);
            let placed = mat.source_of.iter().flatten().count();
            let distinct: std::collections::HashSet<_> =
                mat.source_of.iter().flatten().collect();
            if placed != distinct.len() {
                continue;
            }
            let nodes: Vec<NodeId> = vd.preorder().into_iter().take(24).collect();
            let v = |n: NodeId| vd.vpbn_of(n).unwrap();
            for &a in &nodes {
                prop_assert_eq!(
                    v_cmp(vd.vdg(), &v(a), &v(a)),
                    Ordering::Equal,
                    "reflexive, scenario {}",
                    s.name
                );
                for &b in &nodes {
                    let ab = v_cmp(vd.vdg(), &v(a), &v(b));
                    let ba = v_cmp(vd.vdg(), &v(b), &v(a));
                    prop_assert_eq!(ab, ba.reverse(), "antisymmetry, scenario {}", s.name);
                    if ab != Ordering::Less {
                        continue;
                    }
                    for &c in &nodes {
                        if v_cmp(vd.vdg(), &v(b), &v(c)) == Ordering::Less {
                            prop_assert_eq!(
                                v_cmp(vd.vdg(), &v(a), &v(c)),
                                Ordering::Less,
                                "transitivity, scenario {}",
                                s.name
                            );
                        }
                    }
                }
            }
        }
    }
}

// Twig joins: the holistic algorithm equals naive enumeration on random
// corpora, physically and virtually.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn twig_join_matches_naive_enumeration(
        books in 1usize..15,
        max_authors in 1usize..4,
        seed in 0u64..500,
    ) {
        use vpbn_suite::query::twig::{
            twig_join, twig_join_naive, PhysicalTwigSource, TwigPattern,
            VirtualTwigSource,
        };
        let cfg = vpbn_suite::workload::BooksConfig {
            books,
            max_authors,
            rare_fraction: 0.2,
            seed,
        };
        let td = TypedDocument::analyze(
            vpbn_suite::workload::generate_books("books.xml", &cfg),
        );
        let sort = |mut v: Vec<Vec<NodeId>>| {
            v.sort();
            v.dedup();
            v
        };
        let phys = PhysicalTwigSource::new(&td);
        for pat in ["book(title, author(name))", "data(book(author), book(publisher))"] {
            let p = TwigPattern::parse(pat).unwrap();
            prop_assert_eq!(
                sort(twig_join(&phys, &p)),
                sort(twig_join_naive(&phys, &p)),
                "physical pattern {}",
                pat
            );
        }
        let vd = VirtualDocument::open(&td, "title { author { name } }").unwrap();
        let virt = VirtualTwigSource::new(&vd);
        for pat in ["title(author)", "title(author(name))", "title(name)"] {
            let p = TwigPattern::parse(pat).unwrap();
            prop_assert_eq!(
                sort(twig_join(&virt, &p)),
                sort(twig_join_naive(&virt, &p)),
                "virtual pattern {}",
                pat
            );
        }
    }
}

// Random books corpus + every scenario: virtual preorder equals the
// materialized instance (the oracle, as a property).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn oracle_property_on_random_corpora(
        books in 1usize..20,
        max_authors in 1usize..5,
        seed in 0u64..1000,
    ) {
        let cfg = vpbn_suite::workload::BooksConfig {
            books,
            max_authors,
            rare_fraction: 0.3,
            seed,
        };
        let td = TypedDocument::analyze(
            vpbn_suite::workload::generate_books("books.xml", &cfg),
        );
        for s in vpbn_suite::workload::book_scenarios() {
            let vd = VirtualDocument::open(&td, s.spec).unwrap();
            let vdg = VDataGuide::compile(s.spec, td.guide()).unwrap();
            let mat = materialize(&td, &vdg);
            let mroot = mat.doc.root().unwrap();
            let mat_sources: Vec<NodeId> = mat
                .doc
                .descendants_or_self(mroot)
                .skip(1)
                .map(|m| mat.source_of[m.index()].unwrap())
                .collect();
            prop_assert_eq!(
                vd.preorder(),
                mat_sources,
                "scenario {} books={} authors={} seed={}",
                s.name,
                books,
                max_authors,
                seed
            );
        }
    }
}

// Range-scan axis evaluation is byte-identical to the predicate-scan
// oracle: the binary-searched candidate slice (plus the collapsed check
// for exact ranges) must select exactly the nodes the full Algorithm-1
// predicate scan does — for every scenario view, with and without prefix
// tables, at thread counts 1, 2 and 8.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn range_scan_axes_match_the_predicate_oracle(
        books in 1usize..12,
        max_authors in 1usize..4,
        seed in 0u64..500,
    ) {
        use vpbn_suite::core::ExecOptions;
        let cfg = vpbn_suite::workload::BooksConfig {
            books,
            max_authors,
            rare_fraction: 0.25,
            seed,
        };
        let td = TypedDocument::analyze(
            vpbn_suite::workload::generate_books("books.xml", &cfg),
        );
        for s in vpbn_suite::workload::book_scenarios() {
            for &threads in &[1usize, 2, 8] {
                let mut vd = VirtualDocument::open(&td, s.spec).unwrap();
                vd.set_exec(ExecOptions { threads, cache: true, par_threshold: 1 });
                // Exercise both the per-call prefix computation (t=1) and
                // the precomputed tables (t=2, t=8).
                if threads > 1 {
                    vd.build_prefix_tables();
                }
                let contexts: Vec<NodeId> =
                    vd.preorder().into_iter().take(20).collect();
                for vt in vd.vdg().guide().type_ids() {
                    for &x in &contexts {
                        prop_assert_eq!(
                            vd.descendants_of_type(x, vt),
                            vd.descendants_of_type_filter(x, vt),
                            "scenario {} t={} vtype {:?}",
                            s.name,
                            threads,
                            vt
                        );
                    }
                }
            }
        }
    }
}

// Parallel execution is deterministic: every navigation primitive, the
// chunked Stack-Tree join and the parallel twig join return results
// identical to the single-threaded run, for random trees and every
// sampled thread count. `par_threshold` is lowered to 1 so the parallel
// paths actually run on these small corpora.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn parallel_execution_matches_sequential(
        books in 1usize..10,
        max_authors in 1usize..4,
        seed in 0u64..500,
    ) {
        use vpbn_suite::core::ExecOptions;
        use vpbn_suite::query::sjoin::virtual_structural_join;
        use vpbn_suite::query::twig::{twig_join_opts, TwigPattern, VirtualTwigSource};

        let cfg = vpbn_suite::workload::BooksConfig {
            books,
            max_authors,
            rare_fraction: 0.2,
            seed,
        };
        let td = TypedDocument::analyze(
            vpbn_suite::workload::generate_books("books.xml", &cfg),
        );

        // Navigation over every scenario view.
        for s in vpbn_suite::workload::book_scenarios() {
            let base = VirtualDocument::open(&td, s.spec).unwrap();
            let base_pre = base.preorder();
            let base_roots = base.roots();
            for &threads in &[2usize, 3, 8] {
                let mut vd = VirtualDocument::open(&td, s.spec).unwrap();
                vd.set_exec(ExecOptions { threads, cache: true, par_threshold: 1 });
                vd.build_prefix_tables();
                prop_assert_eq!(&vd.preorder(), &base_pre,
                    "preorder, scenario {} t={}", s.name, threads);
                prop_assert_eq!(&vd.roots(), &base_roots,
                    "roots, scenario {} t={}", s.name, threads);
                for &x in base_pre.iter().take(16) {
                    prop_assert_eq!(vd.children(x), base.children(x),
                        "children, scenario {} t={}", s.name, threads);
                    prop_assert_eq!(vd.parent(x), base.parent(x),
                        "parent, scenario {} t={}", s.name, threads);
                    prop_assert_eq!(vd.ancestors(x), base.ancestors(x),
                        "ancestors, scenario {} t={}", s.name, threads);
                }
                for vt in vd.vdg().guide().type_ids() {
                    for &r in &base_roots {
                        prop_assert_eq!(
                            vd.descendants_of_type(r, vt),
                            base.descendants_of_type(r, vt),
                            "descendants_of_type, scenario {} t={}", s.name, threads);
                    }
                }
            }
        }

        // Joins over Sam's view (guaranteed present in the books corpus).
        const SPEC: &str = "title { author { name } }";
        let base = VirtualDocument::open(&td, SPEC).unwrap();
        let title_vt = base.vdg().guide().lookup_path(&["title"]).unwrap();
        let name_vt = base
            .vdg()
            .guide()
            .lookup_path(&["title", "author", "name"])
            .unwrap();
        let titles = base.nodes_of_vtype(title_vt).to_vec();
        let names = base.nodes_of_vtype(name_vt).to_vec();
        let base_join = virtual_structural_join(&base, &titles, &names);
        let pattern = TwigPattern::parse("title(author(name))").unwrap();
        let base_src = VirtualTwigSource::new(&base);
        let base_twig = twig_join_opts(&base_src, &pattern, &ExecOptions::sequential());
        for &threads in &[2usize, 3, 8] {
            let ex = ExecOptions { threads, cache: true, par_threshold: 1 };
            let mut vd = VirtualDocument::open(&td, SPEC).unwrap();
            vd.set_exec(ex);
            prop_assert_eq!(
                &virtual_structural_join(&vd, &titles, &names),
                &base_join,
                "structural join t={}", threads);
            let src = VirtualTwigSource::new(&vd);
            prop_assert_eq!(
                &twig_join_opts(&src, &pattern, &ex),
                &base_twig,
                "twig join t={}", threads);
        }
    }
}
