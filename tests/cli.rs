//! End-to-end tests of the `vpbn` command-line binary.

use std::process::{Command, Output};

fn vpbn(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_vpbn"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn books_file() -> tempfile_path::TempPath {
    tempfile_path::write(
        "<data>\
           <book><title>Alpha</title>\
             <author><name>Ann</name></author>\
             <publisher><location>Oslo</location></publisher></book>\
           <book><title>Beta</title>\
             <author><name>Bob</name></author>\
             <author><name>Cy</name></author>\
             <publisher><location>Lima</location></publisher></book>\
         </data>",
    )
}

/// Minimal temp-file helper (no external crates).
mod tempfile_path {
    use std::path::PathBuf;

    pub struct TempPath(pub PathBuf);

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    impl TempPath {
        pub fn as_str(&self) -> &str {
            self.0.to_str().expect("utf-8 path")
        }
    }

    pub fn write(content: &str) -> TempPath {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "vpbn-cli-test-{}-{}.xml",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&p, content).expect("temp file writes");
        TempPath(p)
    }
}

#[test]
fn demo_prints_rhondas_result() {
    let out = vpbn(&["demo"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("<title>X</title>"));
    assert!(stdout.contains("<count>1</count>"));
}

#[test]
fn xpath_lists_nodes_with_their_numbers() {
    let f = books_file();
    let out = vpbn(&["load", "b.xml", f.as_str(), "xpath", "//title"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("1.1.1"));
    assert!(stdout.contains("<title>Alpha</title>"));
    assert!(stdout.contains("1.2.1"));
}

#[test]
fn vpath_and_value_answer_through_the_view() {
    let f = books_file();
    let spec = "title { author { name } }";
    let out = vpbn(&[
        "load",
        "b.xml",
        f.as_str(),
        "vpath",
        spec,
        "//title/author/name",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("<name>Ann</name>"));
    assert!(stdout.contains("<name>Cy</name>"));

    let out = vpbn(&[
        "load",
        "b.xml",
        f.as_str(),
        "value",
        spec,
        "//title[text() = 'Beta']",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains(
            "<title>Beta<author><name>Bob</name></author><author><name>Cy</name></author></title>"
        ),
        "{stdout}"
    );
}

#[test]
fn explain_shows_level_arrays() {
    let f = books_file();
    let out = vpbn(&[
        "load",
        "b.xml",
        f.as_str(),
        "explain",
        "title { author { name } }",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("[1,1,1]"), "{stdout}");
    assert!(stdout.contains("[1,1,2,3]"));
    assert!(stdout.contains("identity region"));
}

#[test]
fn query_runs_flwr_against_loaded_documents() {
    let f = books_file();
    let out = vpbn(&[
        "load",
        "b.xml",
        f.as_str(),
        "query",
        r#"for $t in virtualDoc("b.xml", "title { author { name } }")//title
           return <c>{count($t/author)}</c>"#,
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("<c>1</c>"));
    assert!(stdout.contains("<c>2</c>"));
}

#[test]
fn stats_reports_storage_sizes() {
    let f = books_file();
    let out = vpbn(&["load", "b.xml", f.as_str(), "stats"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("document string"));
    assert!(stdout.contains("value index"));
}

#[test]
fn trace_flag_prints_the_span_tree_to_stderr() {
    let f = books_file();
    let out = vpbn(&[
        "--trace",
        "load",
        "b.xml",
        f.as_str(),
        "query",
        r#"for $t in virtualDoc("b.xml", "title { author { name } }")//title
           return <c>{count($t/author)}</c>"#,
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("<c>2</c>"),
        "results stay on stdout: {stdout}"
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    for needle in ["query (", "parse (", "guide-expansion", "result.nodes=2"] {
        assert!(stderr.contains(needle), "missing '{needle}': {stderr}");
    }
}

#[test]
fn explain_flag_replaces_results_with_the_plan() {
    let f = books_file();
    let out = vpbn(&[
        "--explain",
        "load",
        "b.xml",
        f.as_str(),
        "vpath",
        "title { author { name } }",
        "//title/author/name",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(!stdout.contains("<name>"), "no result nodes: {stdout}");
    for needle in [
        "parse (",
        "guide-expansion",
        "arena-range-selection",
        "twig.seeks=",
        "sjoin.comparisons=",
        "cache=",
        "arena=[",
    ] {
        assert!(stdout.contains(needle), "missing '{needle}': {stdout}");
    }
}

#[test]
fn explain_json_round_trips_through_the_obs_parser() {
    let f = books_file();
    let out = vpbn(&[
        "--explain-json",
        "load",
        "b.xml",
        f.as_str(),
        "vpath",
        "title { author { name } }",
        "//title",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let trace = vpbn_suite::obs::QueryTrace::from_json(stdout.trim())
        .expect("stdout is one valid trace document");
    assert_eq!(trace.root.name, "query");
    assert_eq!(trace.root.meta_value("kind"), Some("virtual-path"));
    assert_eq!(trace.to_json(), stdout.trim(), "round-trip is lossless");
}

#[test]
fn stats_reports_engine_counters_and_prometheus_metrics() {
    let f = books_file();
    let out = vpbn(&["load", "b.xml", f.as_str(), "stats"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("compiled-view cache:"), "{stdout}");
    assert!(stdout.contains("buffer pool:"), "{stdout}");
    assert!(
        stdout.contains("# TYPE vpbn_queries_total counter"),
        "{stdout}"
    );
    assert!(stdout.contains("vpbn_storage_resident_bytes"), "{stdout}");
}

#[test]
fn errors_exit_nonzero_with_usage() {
    let out = vpbn(&["frobnicate"]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown command"));
    assert!(stderr.contains("usage:"));

    let out = vpbn(&["xpath", "//x"]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));

    let out = vpbn(&["load", "u", "/nonexistent-file.xml", "xpath", "//x"]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("cannot read"));
}

#[test]
fn bad_specs_report_compile_errors() {
    let f = books_file();
    let out = vpbn(&["load", "b.xml", f.as_str(), "explain", "ghost { title }"]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(5), "vDataGuide errors exit 5");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("matches no type"), "{stderr}");
}

#[test]
fn failure_classes_map_to_distinct_exit_codes() {
    // XML that is not well-formed → exit 4.
    let bad = tempfile_path::write("<data><book></data>");
    let out = vpbn(&["load", "b.xml", bad.as_str(), "xpath", "//x"]);
    assert_eq!(out.status.code(), Some(4), "XML parse errors exit 4");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("error[XML_PARSE]"), "{stderr}");

    // A query that cannot be parsed → exit 6.
    let f = books_file();
    let out = vpbn(&["load", "b.xml", f.as_str(), "query", "for $ in in in"]);
    assert_eq!(out.status.code(), Some(6), "query errors exit 6");

    // A syntactically invalid XPath → exit 6 as well.
    let out = vpbn(&["load", "b.xml", f.as_str(), "xpath", "//["]);
    assert_eq!(out.status.code(), Some(6), "XPath errors exit 6");

    // Pathological nesting trips the recursion-depth guard → exit 8.
    let deep = format!("//book[{}1{}]", "(".repeat(200), ")".repeat(200));
    let out = vpbn(&["load", "b.xml", f.as_str(), "xpath", &deep]);
    assert_eq!(out.status.code(), Some(8), "resource exhaustion exits 8");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("error[QUERY_RESOURCE]"), "{stderr}");
}
