#![forbid(unsafe_code)]

//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the small fork-join subset the workspace actually uses:
//! [`scope`] (re-exported from `std::thread`, whose `Scope::spawn` closure
//! takes no scope argument — the one API difference from real rayon),
//! [`join`], and [`current_num_threads`]. There is no work-stealing pool:
//! every spawn is an OS thread, so callers chunk work coarsely (one task
//! per hardware thread) rather than spawning per item. `vh_core::exec`
//! is the only intended consumer; it layers deterministic partition/merge
//! helpers on top.

/// Scoped threads: `rayon::scope(|s| { s.spawn(|| ...); ... })`.
///
/// Re-export of [`std::thread::scope`]; all spawned threads are joined
/// before `scope` returns, and panics are propagated to the caller.
pub use std::thread::scope;

/// The scope handle passed to the [`scope`] closure.
pub use std::thread::Scope;

/// Runs both closures, potentially in parallel, and returns both results.
///
/// `oper_b` runs on a freshly spawned scoped thread while `oper_a` runs on
/// the calling thread; a panic in either is propagated.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(oper_b);
        let ra = oper_a();
        let rb = match hb.join() {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// Number of hardware threads available to this process (≥ 1).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_runs_both_and_returns_in_order() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn scope_joins_spawned_threads() {
        let mut results = vec![0u32; 4];
        scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.spawn(move || *slot = i as u32 + 1);
            }
        });
        assert_eq!(results, vec![1, 2, 3, 4]);
    }

    #[test]
    fn at_least_one_thread_reported() {
        assert!(current_num_threads() >= 1);
    }
}
