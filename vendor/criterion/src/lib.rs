#![forbid(unsafe_code)]

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the API subset the workspace's benches use: benchmark
//! groups, [`BenchmarkId`], `bench_function`/`bench_with_input`,
//! `sample_size` and the [`criterion_group!`]/[`criterion_main!`] macros.
//! Instead of criterion's statistical analysis it runs each benchmark for
//! a fixed number of timed samples and prints mean wall-clock time per
//! iteration — enough to eyeball regressions and to keep `cargo bench`
//! compiling and running offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver. Construct with `Criterion::default()`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&id.id, 10, f);
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to benchmark closures; `iter` times the supplied routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Calibrate the per-sample iteration count so one sample takes
    // roughly a millisecond, then time `samples` samples.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(1).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
    }
    let mean = total.as_nanos() as f64 / total_iters.max(1) as f64;
    println!(
        "bench: {label:<50} {:>12.1} ns/iter ({total_iters} iters)",
        mean
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut ran = 0u32;
        g.bench_function("noop", |b| {
            ran += 1;
            b.iter(|| black_box(1 + 1))
        });
        g.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        assert!(ran >= 2, "calibration + samples should run the closure");
    }
}
