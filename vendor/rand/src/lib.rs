#![forbid(unsafe_code)]

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the small API subset the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! over integer ranges, and [`Rng::gen_bool`]. The generator is a
//! deterministic SplitMix64 — statistically fine for synthetic workloads
//! and property tests, NOT cryptographically secure. Workload output is
//! reproducible per seed but differs from the real `rand` stream.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // 53 high-quality bits -> uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3i32..=9);
            assert!((3..=9).contains(&x));
            let y = r.gen_range(10u64..500);
            assert!((10..500).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&hits), "p=0.5 gave {hits}/10000");
    }
}
