//! Test configuration, RNG and failure type for the proptest shim.

use std::fmt;

/// Configuration for a `proptest!` block. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case (produced by `prop_assert!`/`prop_assert_eq!`).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic SplitMix64 RNG, seeded per (test name, case index).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds deterministically from the property name and case index, so a
    /// failing case is reproducible by rerunning the same test binary.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` must be non-zero).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "TestRng::below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = TestRng::for_case("prop", 3);
        let mut b = TestRng::for_case("prop", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("prop", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
