#![forbid(unsafe_code)]

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! - [`strategy::Strategy`] with `prop_map`, `prop_recursive`, `boxed`
//! - strategies for integer ranges, tuples, [`strategy::Just`], vectors
//!   ([`collection::vec`]) and a limited `[class]{m,n}` regex subset for
//!   `&str` patterns
//! - the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros
//! - [`test_runner::ProptestConfig`] (only `cases` is honoured)
//!
//! Generation is deterministic (seeded per test name and case index) and
//! there is **no shrinking**: a failing case reports its case index and
//! seed instead of a minimized input. `*.proptest-regressions` files are
//! ignored.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Vector of values from `element`, length uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy::new(element, len)
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Mirror of proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Runs one named property test: generates `cases` inputs and invokes
/// `body` on each, panicking with seed/case diagnostics on the first
/// failure. Used by the [`proptest!`] macro expansion.
pub fn run_property_test<F>(name: &str, config: &test_runner::ProptestConfig, mut body: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    for case in 0..config.cases {
        let mut rng = test_runner::TestRng::for_case(name, case);
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest shim: property `{name}` failed at case {case}/{}: {e}\n\
                 (deterministic: re-running reproduces this case)",
                config.cases
            );
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $config;
            $crate::run_property_test(stringify!($name), &config, |__rng| {
                $(let $arg = ($strat).generate(__rng);)+
                $body
                #[allow(unreachable_code)]
                ::std::result::Result::Ok(())
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}: {:?} != {:?}",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u32>> {
        prop::collection::vec(1u32..10, 0..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..9, y in 0u64..500) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 500);
        }

        #[test]
        fn vec_lengths_in_bounds(v in small_vec()) {
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|&x| (1..10).contains(&x)));
        }

        #[test]
        fn regex_class_strings(s in "[a-c]{1,4}") {
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn oneof_and_map(s in prop_oneof![
            Just("x".to_owned()),
            "[yz]{1,1}".prop_map(|s| s),
        ]) {
            prop_assert!(s == "x" || s == "y" || s == "z", "got {s}");
        }
    }

    #[test]
    fn recursive_strategies_bottom_out() {
        #[derive(Clone, Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = (0u8..4).prop_map(Tree::Leaf);
        let tree = leaf.prop_recursive(3, 24, 4, |inner| {
            prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut rng = crate::test_runner::TestRng::for_case("recursive", 0);
        for _ in 0..200 {
            let t = tree.generate(&mut rng);
            assert!(depth(&t) <= 5, "depth {} of {t:?}", depth(&t));
        }
    }

    #[test]
    #[should_panic(expected = "property `fails` failed")]
    fn failures_panic_with_diagnostics() {
        // No inner #[test]: the enclosing function drives the property
        // directly, so the harness doesn't try to collect a nested test.
        proptest! {
            fn fails(x in 0u32..10) {
                prop_assert!(x < 5, "x was {x}");
            }
        }
        fails();
    }
}
