//! Strategy trait and combinators (generation only, no shrinking).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of values of type `Value`.
///
/// Unlike real proptest there is no value tree: a strategy simply produces
/// a value from the test RNG, and failures are reported unshrunk.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Recursive strategy: unrolls `depth` levels, choosing at each level
    /// between the leaf strategy (`self`) and one application of `f`.
    /// `desired_size` and `expected_branch_size` are accepted for API
    /// compatibility but ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut current = self.clone().boxed();
        for _ in 0..depth {
            let leaf = self.clone().boxed();
            let deeper = f(current).boxed();
            current = Union::new(vec![leaf, deeper]).boxed();
        }
        current
    }

    /// Type-erase the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// Type-erased strategy; clones share the underlying generator.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Strategy producing a single fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

/// Vector strategy (see [`crate::collection::vec`]).
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S> VecStrategy<S> {
    pub fn new(element: S, len: Range<usize>) -> Self {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.start + rng.below(self.len.end - self.len.start);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
}

/// `&str` patterns act as string strategies for a limited regex subset:
/// a single character class with a bounded repetition, `[class]{m,n}`.
/// The class supports literals, `a-z` ranges and the escapes `\n`, `\t`,
/// `\r`, `\\`, `\xHH`. Anything else panics: the shim's regex support is
/// intentionally only as wide as the workspace's tests need.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|e| panic!("proptest shim: unsupported regex pattern {self:?}: {e}"));
        let n = min + rng.below(max - min + 1);
        (0..n).map(|_| chars[rng.below(chars.len())]).collect()
    }
}

/// Parses `[class]{m,n}` into (expanded characters, m, n).
fn parse_class_pattern(pat: &str) -> Result<(Vec<char>, usize, usize), String> {
    let rest = pat
        .strip_prefix('[')
        .ok_or_else(|| "expected `[class]{m,n}`".to_owned())?;
    let close = rest
        .find(']')
        .ok_or_else(|| "unterminated character class".to_owned())?;
    let (class, tail) = (&rest[..close], &rest[close + 1..]);

    let mut chars = Vec::new();
    let mut pending: Vec<char> = Vec::new();
    let mut it = class.chars().peekable();
    while let Some(c) = it.next() {
        let lit = if c == '\\' {
            match it.next() {
                Some('n') => '\n',
                Some('t') => '\t',
                Some('r') => '\r',
                Some('\\') => '\\',
                Some('x') => {
                    let h1 = it.next().ok_or("truncated \\x escape")?;
                    let h2 = it.next().ok_or("truncated \\x escape")?;
                    let v = u32::from_str_radix(&format!("{h1}{h2}"), 16)
                        .map_err(|_| "bad \\x escape".to_owned())?;
                    char::from_u32(v).ok_or("bad \\x escape")?
                }
                Some(other) => other,
                None => return Err("trailing backslash in class".into()),
            }
        } else if c == '-' && !pending.is_empty() && it.peek().is_some() {
            // Range: previous literal through the next one.
            let lo = pending.pop().ok_or("bad range")?;
            let hi_raw = it.next().ok_or("bad range")?;
            let hi = if hi_raw == '\\' {
                match it.next() {
                    Some('x') => {
                        let h1 = it.next().ok_or("truncated \\x escape")?;
                        let h2 = it.next().ok_or("truncated \\x escape")?;
                        let v = u32::from_str_radix(&format!("{h1}{h2}"), 16)
                            .map_err(|_| "bad \\x escape".to_owned())?;
                        char::from_u32(v).ok_or("bad \\x escape")?
                    }
                    Some(other) => other,
                    None => return Err("trailing backslash in class".into()),
                }
            } else {
                hi_raw
            };
            if hi < lo {
                return Err(format!("inverted range {lo:?}-{hi:?}"));
            }
            chars.extend(lo..=hi);
            continue;
        } else {
            c
        };
        pending.push(lit);
        // Keep at most one literal pending (range lookbehind); flush older.
        if pending.len() > 1 {
            chars.push(pending.remove(0));
        }
    }
    chars.append(&mut pending);

    let reps = tail
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| "expected `{m,n}` repetition".to_owned())?;
    let (m, n) = reps
        .split_once(',')
        .ok_or_else(|| "expected `{m,n}` repetition".to_owned())?;
    let min: usize = m.trim().parse().map_err(|_| "bad repetition".to_owned())?;
    let max: usize = n.trim().parse().map_err(|_| "bad repetition".to_owned())?;
    if min > max {
        return Err("inverted repetition".into());
    }
    if chars.is_empty() && min > 0 {
        return Err("empty character class".into());
    }
    Ok((chars, min, max))
}

#[cfg(test)]
mod tests {
    use super::parse_class_pattern;

    #[test]
    fn parses_simple_class() {
        let (chars, min, max) = parse_class_pattern("[a-c<>]{1,4}").unwrap();
        assert_eq!(min, 1);
        assert_eq!(max, 4);
        assert_eq!(chars, vec!['a', 'b', 'c', '<', '>']);
    }

    #[test]
    fn parses_hex_escapes_and_ranges() {
        let (chars, min, max) = parse_class_pattern("[\\x20-\\x22\\n'\"]{0,64}").unwrap();
        assert_eq!((min, max), (0, 64));
        assert_eq!(chars, vec![' ', '!', '"', '\n', '\'', '"']);
    }

    #[test]
    fn rejects_unsupported_patterns() {
        assert!(parse_class_pattern("abc{1,2}").is_err());
        assert!(parse_class_pattern("[a-z]+").is_err());
        assert!(parse_class_pattern("[a-z]{2,1}").is_err());
    }
}
