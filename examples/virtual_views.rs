//! Virtual views tour: every transformation scenario over a generated
//! books corpus, cross-checked against physical materialization.
//!
//! For each scenario this example compiles the vDataGuide, reports the
//! level-array map, navigates the virtual hierarchy, and verifies that the
//! virtual values equal the serialization of the physically materialized
//! instance — the §4.3 baseline acting as an oracle.
//!
//! Run with: `cargo run --example virtual_views`

use vpbn_suite::core::transform::materialize;
use vpbn_suite::core::value::virtual_value;
use vpbn_suite::core::{VDataGuide, VirtualDocument};
use vpbn_suite::dataguide::TypedDocument;
use vpbn_suite::workload::{book_scenarios, generate_books, BooksConfig};
use vpbn_suite::xml::{serialize, SerializeOptions};

fn main() {
    let cfg = BooksConfig {
        books: 6,
        max_authors: 2,
        rare_fraction: 0.3,
        seed: 99,
    };
    let td = TypedDocument::analyze(generate_books("books.xml", &cfg));
    println!(
        "corpus: {} nodes, {} types\n",
        td.doc().len(),
        td.guide().len()
    );

    for s in book_scenarios() {
        println!("=== scenario '{}' — {}", s.name, s.description);
        println!("    spec: {}", s.spec);

        let vd = VirtualDocument::open(&td, s.spec).expect("scenario compiles");
        println!(
            "    {} virtual types, {} visible of {} nodes",
            vd.vdg().len(),
            vd.visible_nodes(),
            td.doc().len()
        );
        for vt in vd.vdg().guide().type_ids() {
            println!(
                "      {:<28} {}  ({} instances{})",
                vd.vdg().guide().path_string(vt),
                vd.array(vt),
                vd.nodes_of_vtype(vt).len(),
                if vd.vdg().is_identity_below(vt) {
                    ", identity region"
                } else {
                    ""
                }
            );
        }

        // Cross-check: virtual values equal the materialized subtrees.
        let vdg = VDataGuide::compile(s.spec, td.guide()).unwrap();
        let mat = materialize(&td, &vdg);
        let mroot = mat.doc.root().unwrap();
        let mat_children = mat.doc.children(mroot);
        let vroots = vd.roots();
        assert_eq!(
            mat_children.len(),
            vroots.len(),
            "root instance counts agree"
        );
        let mut checked = 0;
        for (&m, &v) in mat_children.iter().zip(&vroots) {
            let physical = serialize::serialize_node(&mat.doc, m, SerializeOptions::compact());
            let (virtual_, _) = virtual_value(&vd, &td, v).expect("in-memory stitch cannot fault");
            assert_eq!(physical, virtual_, "scenario {}", s.name);
            checked += 1;
        }
        println!("    ✓ {checked} virtual root values match the materialized instance");
        if let Some(&first) = vroots.first() {
            let (value, stats) =
                virtual_value(&vd, &td, first).expect("in-memory stitch cannot fault");
            let preview: String = value.chars().take(72).collect();
            println!(
                "    first root value ({} B, {} raw copies): {preview}…",
                value.len(),
                stats.raw_copies
            );
        }
        println!();
    }
}
