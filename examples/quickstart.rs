//! Quickstart: the paper's running example, end to end.
//!
//! Builds the Figure 2 instance, shows its PBN numbers, compiles Sam's
//! virtual hierarchy (`title { author { name } }`), prints the Figure 10
//! level arrays, navigates the virtual document, and finally runs Rhonda's
//! `virtualDoc` query (Figure 6).
//!
//! Run with: `cargo run --example quickstart`

use vpbn_suite::core::value::virtual_value;
use vpbn_suite::dataguide::TypedDocument;
use vpbn_suite::query::api::{Engine, QueryRequest, VirtualDocument};
use vpbn_suite::xml::builder::paper_figure2;

fn main() {
    // ----- the source document (Figure 2) --------------------------------
    let doc = paper_figure2();
    println!("source (Figure 2):");
    println!(
        "  {}",
        vpbn_suite::xml::serialize(&doc, vpbn_suite::xml::SerializeOptions::compact())
    );

    // ----- analysis: PBN numbers + DataGuide (Figures 7a, 8) -------------
    let td = TypedDocument::analyze(doc);
    println!("\nPBN numbers (Figure 8):");
    for (pbn, id) in td.pbn().in_document_order() {
        let label = match td.doc().kind(*id) {
            vpbn_suite::xml::NodeKind::Element { name, .. } => name.clone(),
            vpbn_suite::xml::NodeKind::Text(t) => format!("{t:?}"),
            other => format!("{other:?}"),
        };
        println!("  {pbn:<12} {label}");
    }

    // ----- the virtual hierarchy (Figures 6, 7b, 10) ----------------------
    let spec = "title { author { name } }";
    let vd = VirtualDocument::open(&td, spec).expect("specification compiles");
    println!("\nvDataGuide: {spec}");
    println!("level arrays (Figure 10):");
    for vt in vd.vdg().guide().type_ids() {
        println!(
            "  {:<24} {}",
            vd.vdg().guide().path_string(vt),
            vd.array(vt)
        );
    }

    // ----- virtual navigation ---------------------------------------------
    println!("\nvirtual hierarchy (preorder):");
    for n in vd.preorder() {
        let depth = vd.ancestors(n).len();
        let label = match td.doc().kind(n) {
            vpbn_suite::xml::NodeKind::Element { name, .. } => name.clone(),
            vpbn_suite::xml::NodeKind::Text(t) => format!("{t:?}"),
            other => format!("{other:?}"),
        };
        println!(
            "  {}{label}  (pbn {})",
            "  ".repeat(depth),
            td.pbn().pbn_of(n)
        );
    }

    // ----- virtual values (§6) --------------------------------------------
    let title1 = vd.roots()[0];
    let (value, stats) = virtual_value(&vd, &td, title1).expect("in-memory stitch cannot fault");
    println!("\nvirtual value of the first title:");
    println!("  {value}");
    println!(
        "  (stitched from {} stored-range copies + {} constructed tags)",
        stats.raw_copies, stats.constructed_elements
    );

    // ----- Rhonda's query (Figure 6) ---------------------------------------
    let mut engine = Engine::new();
    engine.register(paper_figure2());
    let request = QueryRequest::flwr(
        r#"for $t in virtualDoc("book.xml", "title { author { name } }")//title
           return <result><title>{$t/text()}</title>
                          <count>{count($t/author)}</count></result>"#,
    );
    let out = engine.run(&request).expect("query runs");
    println!("\nRhonda's query result (Figure 6):");
    println!("  {}", out.to_string_compact());
    println!(
        "  ({} result nodes; parse {} ns, exec {} ns)",
        out.stats.result_nodes, out.stats.parse_ns, out.stats.exec_ns
    );
}
