//! Report pipeline: a multi-document analytics query over a virtual view.
//!
//! Joins a generated book catalog (queried through Sam's virtual hierarchy)
//! against a separately registered ratings feed, ordering the report by
//! rating — exercising `virtualDoc`, cross-document joins, `order by`,
//! arithmetic, and the aggregate functions in one query.
//!
//! Run with: `cargo run --example report_pipeline`

use vpbn_suite::query::api::{Engine, QueryRequest};
use vpbn_suite::workload::{generate_books, BooksConfig};
use vpbn_suite::xml::{serialize, SerializeOptions};

fn main() {
    let mut engine = Engine::new();

    // Catalog: 8 books with up to 3 authors each.
    engine.register(generate_books(
        "catalog.xml",
        &BooksConfig {
            books: 8,
            max_authors: 3,
            rare_fraction: 0.0,
            seed: 2024,
        },
    ));

    // Ratings arrive from a different system, keyed by title.
    let ratings: String = (0..8)
        .map(|i| format!("<r title='Title {i}'>{}</r>", (i * 37 + 11) % 50 + 1))
        .collect();
    engine
        .register_xml("ratings.xml", &format!("<ratings>{ratings}</ratings>"))
        .expect("ratings parse");

    // The report: titles from the VIRTUAL hierarchy (so author counts are
    // virtual children), stars from the ratings document, top-rated first,
    // and a derived score = stars * authors.
    let query = r#"
        for $t in virtualDoc("catalog.xml", "title { author { name } }")//title
        for $r in doc("ratings.xml")//r
        where $t/text() = $r/@title and $r/text() >= 10
        order by $r descending
        return <entry>
                 <title>{$t/text()}</title>
                 <stars>{$r/text()}</stars>
                 <authors>{count($t/author)}</authors>
                 <score>{$r/text() * count($t/author)}</score>
               </entry>"#;

    let outcome = engine
        .run(&QueryRequest::flwr(query).with_trace(true))
        .expect("report query runs");
    if let Some(trace) = &outcome.trace {
        eprint!("{}", trace.render_text());
    }
    let out = outcome.document;
    println!("{}", serialize(&out, SerializeOptions::pretty(2)));

    // Sanity: entries are sorted by stars, descending.
    let root = out.root().expect("results root");
    let stars: Vec<i64> = out
        .children(root)
        .iter()
        .map(|&e| {
            out.string_value(out.children(e)[1])
                .parse()
                .expect("stars are numeric")
        })
        .collect();
    assert!(
        stars.windows(2).all(|w| w[0] >= w[1]),
        "report is ordered: {stars:?}"
    );
    println!(
        "\n{} entries, ordered by rating (max {})",
        stars.len(),
        stars[0]
    );
}
