//! Auction pipeline: virtual hierarchies over an XMark-style corpus, with
//! the simulated store's I/O accounting and a virtual structural join.
//!
//! Mirrors the paper's motivating pipeline at a realistic schema: a
//! "reporting" virtual hierarchy regroups persons under the cities they
//! live in (a case-2 inversion — `city` is physically a *descendant* of
//! `person`), and queries run directly against the virtual space.
//!
//! Run with: `cargo run --example auction_pipeline`

use vpbn_suite::core::value::virtual_value;
use vpbn_suite::core::VirtualDocument;
use vpbn_suite::dataguide::TypedDocument;
use vpbn_suite::query::api::{eval_xpath, parse_xpath, virtual_structural_join, VirtualDoc};
use vpbn_suite::storage::StoredDocument;
use vpbn_suite::workload::{generate_xmark, XmarkConfig};

fn main() {
    // ----- generate + store the corpus ------------------------------------
    let cfg = XmarkConfig {
        scale: 0.02,
        seed: 7,
    };
    let stored = StoredDocument::build(TypedDocument::analyze(generate_xmark("xmark.xml", &cfg)));
    let td = stored.typed();
    let stats = stored.stats();
    println!(
        "corpus: {} nodes, {} types, {} B document string over {} pages",
        td.doc().len(),
        td.guide().len(),
        stats.document_bytes,
        stats.document_pages
    );
    println!(
        "indexes: value {} B, type {} B, name {} B, headers {} B\n",
        stats.value_index_bytes, stats.type_index_bytes, stats.name_index_bytes, stats.header_bytes
    );

    // ----- the reporting view ----------------------------------------------
    let spec = "city { person { person.name emailaddress } }";
    let vd = VirtualDocument::open(td, spec).expect("view compiles");
    println!("view: {spec}");
    println!(
        "  {} cities become virtual roots; {} nodes visible",
        vd.roots().len(),
        vd.visible_nodes()
    );

    // ----- query the virtual hierarchy -------------------------------------
    let qdoc = VirtualDoc::new(&vd);
    let per_city = parse_xpath("//city/person/name").expect("query parses");
    let names = eval_xpath(&qdoc, &per_city).expect("query runs");
    println!("  //city/person/name finds {} names", names.len());

    // Count persons per distinct city value.
    let cities = eval_xpath(&qdoc, &parse_xpath("//city").unwrap()).unwrap();
    let mut by_city: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for &c in &cities {
        let city_name = td.doc().string_value(c);
        let persons = vd
            .children(c)
            .iter()
            .filter(|&&k| td.doc().name(k) == Some("person"))
            .count();
        *by_city.entry(city_name).or_default() += persons;
    }
    println!("  persons per city (virtual children of each city instance):");
    for (city, n) in by_city.iter().take(5) {
        println!("    {city:<10} {n}");
    }

    // ----- virtual structural join ------------------------------------------
    let city_vt = vd.vdg().guide().lookup_path(&["city"]).unwrap();
    let name_vt = vd
        .vdg()
        .guide()
        .lookup_path(&["city", "person", "name"])
        .unwrap();
    let pairs =
        virtual_structural_join(&vd, vd.nodes_of_vtype(city_vt), vd.nodes_of_vtype(name_vt));
    println!(
        "\n  virtual structural join city ⋈ name: {} pairs (one per housed person)",
        pairs.len()
    );

    // ----- virtual values from the store, with I/O accounting ---------------
    stored.reset_counters();
    let first_city = vd.roots()[0];
    let (value, vstats) =
        virtual_value(&vd, &stored, first_city).expect("fault-free store stitches");
    let io = stored.stats();
    println!("\n  value of the first virtual city ({} B):", value.len());
    let preview: String = value.chars().take(100).collect();
    println!("    {preview}…");
    println!(
        "    assembled from {} stored-range copies + {} constructed tags,",
        vstats.raw_copies, vstats.constructed_elements
    );
    println!(
        "    touching {} pages / {} bytes of the store",
        io.pages_read, io.bytes_read
    );
}
