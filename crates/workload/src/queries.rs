//! Query workloads per scenario, used by the benchmark harness.

use crate::scenarios::Scenario;

/// A benchmark query: an XPath evaluated over the *virtual* hierarchy of a
/// scenario, with a FLWR formulation for the end-to-end experiments.
#[derive(Clone, Debug)]
pub struct BenchQuery {
    /// Identifier used in experiment output.
    pub name: &'static str,
    /// XPath over the virtual hierarchy.
    pub xpath: &'static str,
    /// Expected result multiplicity class, for sanity checks:
    /// `PerBook`-style linear counts vs. selective.
    pub selective: bool,
}

/// The queries the book experiments run against a scenario.
pub fn book_queries(scenario: &Scenario) -> Vec<BenchQuery> {
    match scenario.name {
        "sam" => vec![
            BenchQuery {
                name: "q_titles",
                xpath: "//title",
                selective: false,
            },
            BenchQuery {
                name: "q_title_authors",
                xpath: "//title/author/name",
                selective: false,
            },
            BenchQuery {
                name: "q_rare",
                xpath: "//title[contains(text(), 'RARE')]/author",
                selective: true,
            },
        ],
        "invert" => vec![
            BenchQuery {
                name: "q_name_authors",
                xpath: "//title/name/author",
                selective: false,
            },
            BenchQuery {
                name: "q_rare_names",
                xpath: "//title[contains(text(), 'RARE')]/name",
                selective: true,
            },
        ],
        "regroup" => vec![BenchQuery {
            name: "q_by_location",
            xpath: "//location/title",
            selective: false,
        }],
        "project" => vec![BenchQuery {
            name: "q_locations",
            xpath: "//book/publisher/location",
            selective: false,
        }],
        _ => vec![BenchQuery {
            name: "q_all_names",
            xpath: "//book/author/name",
            selective: false,
        }],
    }
}

/// Rhonda's FLWR query (Figure 6) parameterized by the document URI and
/// scenario specification.
pub fn rhonda_flwr(uri: &str, spec: &str) -> String {
    format!(
        r#"for $t in virtualDoc("{uri}", "{spec}")//title
           return <result><title>{{$t/text()}}</title>
                          <count>{{count($t/author)}}</count></result>"#
    )
}

/// Sam's transformation as a FLWR query (Figure 1) over the physical
/// document — used by the materializing baseline.
pub fn sam_flwr(uri: &str) -> String {
    format!(
        r#"for $t in doc("{uri}")//book/title
           let $a := $t/../author
           return <title>{{$t/text()}}{{$a}}</title>"#
    )
}

/// Rhonda's counting query over an (already materialized) transformation
/// result — the second stage of the nested-query baseline.
pub fn rhonda_over_materialized(uri: &str) -> String {
    format!(
        r#"for $t in doc("{uri}")//title
           return <result><title>{{$t/text()}}</title>
                          <count>{{count($t/author)}}</count></result>"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::book_scenarios;

    #[test]
    fn every_scenario_has_queries() {
        for s in book_scenarios() {
            assert!(!book_queries(&s).is_empty(), "scenario {}", s.name);
        }
    }

    #[test]
    fn flwr_templates_interpolate() {
        let q = rhonda_flwr("books.xml", "title { author { name } }");
        assert!(q.contains("virtualDoc(\"books.xml\""));
        assert!(q.contains("{count($t/author)}"));
        let s = sam_flwr("books.xml");
        assert!(s.contains("doc(\"books.xml\")"));
        assert!(rhonda_over_materialized("m").contains("doc(\"m\")"));
    }
}
