//! Mixed point/twig/edit traffic for the query server.
//!
//! [`serve_ops`] deals a deterministic, seeded stream of wire-shaped
//! operations over the books corpus; `exp_serve` and the vh-serve tests
//! replay it through a [`vh_serve` client] (one stream per client
//! thread, distinguished by seed) so the traffic mix is reproducible
//! run-to-run. Ops are plain data — this crate knows nothing about the
//! wire — and every edit inserts vocabulary the corpus already uses, so
//! cached views take the maintenance path exactly as in [`readwrite`].
//!
//! [`vh_serve` client]: https://docs.rs/vh-serve
//! [`readwrite`]: crate::readwrite

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vh_query::{Edit, Engine};

use crate::books::{generate_books, BooksConfig};

/// The URI the serve scenario registers its corpus under.
pub const SERVE_URI: &str = "books.xml";

/// The virtual view twig queries go through (Sam's transformation).
pub const SERVE_SPEC: &str = "title { author { name } }";

/// Point-query suite, sampled uniformly.
pub const SERVE_POINT_PATHS: &[&str] = &["//title", "//name", "//book", "//author/name"];

/// Twig-query suite over [`SERVE_SPEC`], sampled uniformly.
pub const SERVE_TWIG_PATHS: &[&str] = &["//title", "//author", "//name"];

/// One wire-shaped operation against the serve corpus.
#[derive(Clone, Debug)]
pub enum ServeOp {
    /// Count nodes matching `path` in the base document.
    Point {
        /// Query path.
        path: &'static str,
    },
    /// Count nodes matching `path` through the [`SERVE_SPEC`] view.
    Twig {
        /// Query path (evaluated against the virtual document).
        path: &'static str,
    },
    /// Apply an insertion edit to the base document.
    Edit {
        /// The edit, ready for [`Engine::apply`] or the wire.
        edit: Edit,
    },
}

/// Knobs for [`serve_ops`].
#[derive(Clone, Copy, Debug)]
pub struct ServeMixConfig {
    /// Operations to deal.
    pub ops: usize,
    /// Fraction of ops that are edits (`0.0..=1.0`).
    pub edit_fraction: f64,
    /// Fraction of the *remaining* ops that are twig queries.
    pub twig_fraction: f64,
    /// RNG seed; give each client thread its own.
    pub seed: u64,
}

impl Default for ServeMixConfig {
    fn default() -> Self {
        ServeMixConfig {
            ops: 256,
            edit_fraction: 0.1,
            twig_fraction: 0.4,
            seed: 42,
        }
    }
}

/// Deals the deterministic op stream for one client.
pub fn serve_ops(cfg: &ServeMixConfig) -> Vec<ServeOp> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.ops)
        .map(|i| {
            if rng.gen_bool(cfg.edit_fraction) {
                ServeOp::Edit {
                    edit: Edit::InsertSubtree {
                        uri: SERVE_URI.to_owned(),
                        parent: "1".to_owned(),
                        pos: 0,
                        xml: format!(
                            "<book><title>Wire {seed}.{i}</title>\
                             <author><name>Client {seed}</name></author></book>",
                            seed = cfg.seed
                        ),
                    },
                }
            } else if rng.gen_bool(cfg.twig_fraction) {
                ServeOp::Twig {
                    path: SERVE_TWIG_PATHS[rng.gen_range(0..SERVE_TWIG_PATHS.len())],
                }
            } else {
                ServeOp::Point {
                    path: SERVE_POINT_PATHS[rng.gen_range(0..SERVE_POINT_PATHS.len())],
                }
            }
        })
        .collect()
}

/// Builds the engine a serve tenant starts from: the books corpus under
/// [`SERVE_URI`].
pub fn serve_engine(books: usize, seed: u64) -> Engine {
    let mut engine = Engine::new();
    engine.register(generate_books(
        SERVE_URI,
        &BooksConfig {
            books: books.max(1),
            seed,
            ..BooksConfig::default()
        },
    ));
    engine
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let cfg = ServeMixConfig::default();
        let a = serve_ops(&cfg);
        let b = serve_ops(&cfg);
        assert_eq!(a.len(), cfg.ops);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
        let c = serve_ops(&ServeMixConfig { seed: 43, ..cfg });
        assert!(
            a.iter()
                .zip(&c)
                .any(|(x, y)| format!("{x:?}") != format!("{y:?}")),
            "different seeds must deal different streams"
        );
    }

    #[test]
    fn the_mix_respects_the_fractions() {
        let ops = serve_ops(&ServeMixConfig {
            ops: 2000,
            edit_fraction: 0.25,
            twig_fraction: 0.5,
            seed: 7,
        });
        let edits = ops
            .iter()
            .filter(|o| matches!(o, ServeOp::Edit { .. }))
            .count();
        let twigs = ops
            .iter()
            .filter(|o| matches!(o, ServeOp::Twig { .. }))
            .count();
        assert!((350..650).contains(&edits), "edits: {edits}");
        assert!((600..900).contains(&twigs), "twigs: {twigs}");
    }

    #[test]
    fn every_op_replays_against_the_engine() {
        let mut engine = serve_engine(16, 5);
        for op in serve_ops(&ServeMixConfig {
            ops: 64,
            ..ServeMixConfig::default()
        }) {
            match op {
                ServeOp::Point { path } => {
                    engine
                        .run(&vh_query::QueryRequest::path(SERVE_URI, path))
                        .expect("point runs");
                }
                ServeOp::Twig { path } => {
                    engine
                        .run(&vh_query::QueryRequest::virtual_path(
                            SERVE_URI, SERVE_SPEC, path,
                        ))
                        .expect("twig runs");
                }
                ServeOp::Edit { edit } => {
                    engine.apply(edit).expect("edit applies");
                }
            }
        }
    }
}
