//! Concurrent reader/writer scenario: readers query warm virtual views
//! while a writer streams edit batches through [`Engine::apply_all`].
//!
//! This is the workload the delta-aware `ExecCache` exists for. Every
//! batch the writer commits routes one merged `ViewDelta` through the
//! cache; because the inserted fragments reuse the corpus vocabulary,
//! the affected views are spliced in place (`maintained`) rather than
//! rebuilt, and the readers keep hitting warm artifacts throughout.
//! The report surfaces the engine's maintenance counters so callers —
//! the bench harness and the integration tests — can assert the edits
//! actually took the maintenance path instead of silently falling back
//! to eviction.
//!
//! Everything is deterministic given the config except the interleaving
//! itself (and thus the per-reader query counts); the *final document*
//! and the post-quiesce query answers are interleaving-independent,
//! which is exactly the correctness claim maintained views must uphold.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use vh_query::{Edit, Engine, MaintenancePolicy, QueryRequest};

use crate::books::{generate_books, BooksConfig};

/// Pins an always-splice maintenance policy on `engine`: the scenario
/// exists to exercise the splice path under concurrency, and the default
/// cost model's verdict on a small corpus depends on observed rebuild
/// timings. The crossover itself is priced by `exp_update` (UPD-d).
fn pin_splice_policy(engine: &mut Engine) {
    engine.set_maintenance_policy(MaintenancePolicy {
        clone_node_ns: 0,
        splice_op_ns: 0,
        ..MaintenancePolicy::default()
    });
}

/// The URI the scenario registers its corpus under.
pub const READWRITE_URI: &str = "books.xml";

/// Sam's transformation (Figure 1/6) — the virtual view the readers
/// query through.
pub const READWRITE_SPEC: &str = "title { author { name } }";

/// The reader query suite, cycled per reader thread.
pub const READWRITE_PATHS: &[&str] = &["//title", "//name", "//title/author"];

/// Knobs for [`run_readwrite`].
#[derive(Clone, Debug)]
pub struct ReadWriteConfig {
    /// Books in the initial corpus.
    pub books: usize,
    /// Concurrent reader threads.
    pub readers: usize,
    /// Edit batches the writer commits.
    pub batches: usize,
    /// Insertions per batch (one `apply_all` call each).
    pub batch_size: usize,
    /// RNG seed for the corpus generator.
    pub seed: u64,
}

impl Default for ReadWriteConfig {
    fn default() -> Self {
        ReadWriteConfig {
            books: 64,
            readers: 4,
            batches: 8,
            batch_size: 8,
            seed: 42,
        }
    }
}

/// What [`run_readwrite`] observed.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReadWriteReport {
    /// Queries the readers completed while the writer was active.
    pub queries: u64,
    /// Result nodes those queries returned in total.
    pub result_nodes: u64,
    /// Edits committed (batches × batch size).
    pub edits: u64,
    /// Cache entries kept alive by delta maintenance.
    pub maintained: u64,
    /// Cache entries a delta invalidated for recomputation.
    pub recomputed: u64,
    /// Maintenance fallback evictions (cost model, overflow, compaction).
    pub fallback_evictions: u64,
}

/// The book fragment the writer inserts: every tag already exists in the
/// generated corpus, so edits never mint new types and the cache's
/// maintenance path — not the recompute fallback — absorbs them.
fn fresh_book(batch: usize, i: usize) -> String {
    format!(
        "<book><title>Edit {batch}.{i}</title>\
         <author><name>Writer {i}</name></author></book>"
    )
}

/// Runs the scenario: registers a books corpus, warms the virtual view,
/// then lets `cfg.readers` threads query it while the writer commits
/// `cfg.batches` batches of front-position inserts.
pub fn run_readwrite(cfg: &ReadWriteConfig) -> ReadWriteReport {
    let mut engine = Engine::new();
    pin_splice_policy(&mut engine);
    engine.register(generate_books(
        READWRITE_URI,
        &BooksConfig {
            books: cfg.books.max(1),
            seed: cfg.seed,
            ..BooksConfig::default()
        },
    ));
    // Warm every artifact the readers will touch before contention starts.
    for p in READWRITE_PATHS {
        let _ = engine.run(&QueryRequest::virtual_path(
            READWRITE_URI,
            READWRITE_SPEC,
            *p,
        ));
    }

    // `Engine` is `Send` but not `Sync` (storage counters are `Cell`s),
    // so cross-thread sharing goes through a mutex: readers and the
    // writer interleave rather than overlap. Readers drop the lock
    // between queries, so every batch commit slots into the stream.
    let shared = Mutex::new(engine);
    let done = AtomicBool::new(false);
    let queries = AtomicU64::new(0);
    let result_nodes = AtomicU64::new(0);

    std::thread::scope(|s| {
        for r in 0..cfg.readers.max(1) {
            let (shared, done) = (&shared, &done);
            let (queries, result_nodes) = (&queries, &result_nodes);
            s.spawn(move || {
                let mut i = r; // offset so readers interleave the suite
                while !done.load(Ordering::Acquire) {
                    let path = READWRITE_PATHS[i % READWRITE_PATHS.len()];
                    i += 1;
                    let engine = shared.lock().unwrap_or_else(PoisonError::into_inner);
                    // vet: allow(hold-across-blocking) — the scenario measures reader/writer interleaving on one shared engine; the lock spanning run() is the workload
                    if let Ok(out) = engine.run(&QueryRequest::virtual_path(
                        READWRITE_URI,
                        READWRITE_SPEC,
                        path,
                    )) {
                        queries.fetch_add(1, Ordering::Relaxed);
                        let n = out.nodes.map_or(0, |ns| ns.len() as u64);
                        result_nodes.fetch_add(n, Ordering::Relaxed);
                    }
                }
            });
        }
        for b in 0..cfg.batches {
            let edits: Vec<Edit> = (0..cfg.batch_size.max(1))
                .map(|i| Edit::InsertSubtree {
                    uri: READWRITE_URI.to_owned(),
                    parent: "1".to_owned(),
                    pos: 0,
                    xml: fresh_book(b, i),
                })
                .collect();
            let mut engine = shared.lock().unwrap_or_else(PoisonError::into_inner);
            // vet: allow(hold-across-blocking) — the writer batch holds the engine for the whole burst by design: the scenario exists to stress exactly this contention
            let _ = engine.apply_all(edits);
        }
        done.store(true, Ordering::Release);
    });

    let engine = Mutex::into_inner(shared).unwrap_or_else(PoisonError::into_inner);
    let cache = engine.snapshot().cache;
    ReadWriteReport {
        queries: queries.load(Ordering::Relaxed),
        result_nodes: result_nodes.load(Ordering::Relaxed),
        edits: (cfg.batches * cfg.batch_size.max(1)) as u64,
        maintained: cache.maintained,
        recomputed: cache.recomputed,
        fallback_evictions: cache.fallback_evictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vh_xml::{serialize, SerializeOptions};

    /// Replays the writer's batches single-threaded and returns the
    /// final serialized document plus the engine that produced it.
    fn writer_only(cfg: &ReadWriteConfig) -> (Engine, String) {
        let mut engine = Engine::new();
        pin_splice_policy(&mut engine);
        engine.register(generate_books(
            READWRITE_URI,
            &BooksConfig {
                books: cfg.books,
                seed: cfg.seed,
                ..BooksConfig::default()
            },
        ));
        for p in READWRITE_PATHS {
            engine
                .run(&QueryRequest::virtual_path(
                    READWRITE_URI,
                    READWRITE_SPEC,
                    *p,
                ))
                .expect("warm query runs");
        }
        for b in 0..cfg.batches {
            let edits: Vec<Edit> = (0..cfg.batch_size)
                .map(|i| Edit::InsertSubtree {
                    uri: READWRITE_URI.to_owned(),
                    parent: "1".to_owned(),
                    pos: 0,
                    xml: fresh_book(b, i),
                })
                .collect();
            engine.apply_all(edits).expect("batch applies");
        }
        let xml = serialize(
            engine.document(READWRITE_URI).expect("registered").doc(),
            SerializeOptions::compact(),
        );
        (engine, xml)
    }

    #[test]
    fn concurrent_run_matches_the_single_threaded_writer() {
        let cfg = ReadWriteConfig {
            books: 16,
            readers: 3,
            batches: 4,
            batch_size: 5,
            seed: 7,
        };
        let report = run_readwrite(&cfg);
        assert_eq!(report.edits, 20);
        assert!(
            report.maintained > 0,
            "vocabulary-preserving inserts must take the maintenance path: {report:?}"
        );
        assert_eq!(
            report.fallback_evictions, 0,
            "nothing should trip the cost-model fallback: {report:?}"
        );

        // The interleaving cannot change the final document: a fresh
        // engine replaying the same batches alone must agree with a
        // cold engine registered with the concurrent run's output.
        let (warm, xml) = writer_only(&cfg);
        let mut cold = Engine::new();
        cold.register_xml(READWRITE_URI, &xml)
            .expect("final document re-registers");
        for p in READWRITE_PATHS {
            let req = QueryRequest::virtual_path(READWRITE_URI, READWRITE_SPEC, *p);
            let w = warm.run(&req).expect("warm query runs");
            let c = cold.run(&req).expect("cold query runs");
            assert_eq!(
                w.to_string_compact(),
                c.to_string_compact(),
                "maintained views diverged from the rebuild on {p}"
            );
        }
    }

    #[test]
    fn report_counts_reader_progress() {
        let report = run_readwrite(&ReadWriteConfig {
            books: 8,
            readers: 2,
            batches: 2,
            batch_size: 3,
            seed: 1,
        });
        assert_eq!(report.edits, 6);
        assert_eq!(report.recomputed, 0, "no new types were minted: {report:?}");
    }
}
