//! Synthetic "comb" documents with controlled DataGuide size and depth,
//! used by the F1 (Algorithm 1 cost) experiment: the guide of a comb with
//! `width` branches of `depth` chained elements has `width × depth + 1`
//! types and maximum depth `depth + 1`.

use vh_xml::{Document, ElementBuilder};

/// Generates a comb: `root` with `width` branches, each a chain
/// `b{i}x1/b{i}x2/…/b{i}x{depth}` ending in a text leaf. Every element
/// name is unique, so types = nodes (minus text sharing).
pub fn generate_comb(uri: &str, width: usize, depth: usize) -> Document {
    let mut root = ElementBuilder::new("root");
    for b in 0..width {
        let mut node = ElementBuilder::new(format!("b{b}x{depth}")).text("leaf");
        for d in (1..depth).rev() {
            node = ElementBuilder::new(format!("b{b}x{d}")).child(node);
        }
        root = root.child(node);
    }
    root.into_document(uri)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comb_shape() {
        let d = generate_comb("u", 3, 4);
        let root = d.root().unwrap();
        assert_eq!(d.children(root).len(), 3);
        // Each branch: 4 elements + 1 text.
        assert_eq!(d.len(), 1 + 3 * 5);
        // Depth of a leaf element is depth+1.
        let mut cur = d.children(root)[0];
        let mut steps = 1;
        while let Some(&c) = d.children(cur).first() {
            if d.kind(c).is_element() {
                cur = c;
                steps += 1;
            } else {
                break;
            }
        }
        assert_eq!(steps, 4);
    }

    #[test]
    fn degenerate_sizes() {
        let d = generate_comb("u", 1, 1);
        assert_eq!(d.len(), 3); // root, b0x1, text
        let d = generate_comb("u", 0, 5);
        assert_eq!(d.len(), 1);
    }
}
