#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # vh-workload — synthetic corpora, transformations, and query workloads
//!
//! The paper's evaluation substrate. Two generators:
//!
//! * [`books`] — a parameterized version of the paper's running example
//!   (Figure 2): a `data` root holding books with titles, authors (with
//!   names), and publishers (with locations). Skew knobs control fan-out.
//! * [`xmark`] — an XMark-style auction corpus (the de-facto standard XML
//!   benchmark schema): regions/items, people, open and closed auctions,
//!   scaled by a factor like the original benchmark.
//!
//! [`scenarios`] names the virtual transformations each corpus is queried
//! through (inversion, regrouping, projection, identity, …) and
//! [`queries`] the query workloads per scenario. [`readwrite`] drives a
//! live engine with concurrent readers while a writer streams edit
//! batches — the scenario behind the cache-maintenance experiments —
//! and [`serve`] deals the seeded point/twig/edit op streams the query
//! server's bench replays over the wire. All are consumed by the
//! benchmark harness (`vh-bench`) and the integration tests.
//!
//! All generation is deterministic given a seed.

pub mod books;
pub mod queries;
pub mod readwrite;
pub mod scenarios;
pub mod serve;
pub mod synthetic;
pub mod xmark;

pub use books::{generate_books, BooksConfig};
pub use readwrite::{run_readwrite, ReadWriteConfig, ReadWriteReport};
pub use scenarios::{book_scenarios, xmark_scenarios, Scenario};
pub use serve::{serve_engine, serve_ops, ServeMixConfig, ServeOp, SERVE_SPEC, SERVE_URI};
pub use synthetic::generate_comb;
pub use xmark::{generate_xmark, XmarkConfig};
