//! Named transformation scenarios: the virtual hierarchies each corpus is
//! queried through in the experiments.

/// A transformation scenario: a vDataGuide specification plus metadata.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Short identifier used in experiment output.
    pub name: &'static str,
    /// What the transformation does.
    pub description: &'static str,
    /// The vDataGuide specification string.
    pub spec: &'static str,
    /// Which of the paper's level-array cases it exercises (1, 2, 3), in
    /// the order they appear.
    pub cases: &'static [u8],
}

/// Scenarios over the books corpus.
pub fn book_scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "identity",
            description: "data { ** } — the identity transformation (sanity baseline)",
            spec: "data { ** }",
            cases: &[1],
        },
        Scenario {
            name: "sam",
            description: "Sam's transformation (Figure 1/6): titles own their authors",
            spec: "title { author { name } }",
            cases: &[1, 3],
        },
        Scenario {
            name: "invert",
            description: "case-2 inversion: authors hang below their own names",
            spec: "title { name { author } }",
            cases: &[1, 2, 3],
        },
        Scenario {
            name: "regroup",
            description: "books regrouped under publisher locations",
            spec: "location { title author { name } }",
            cases: &[1, 3],
        },
        Scenario {
            name: "project",
            description: "projection: books reduced to their publisher subtree",
            spec: "book { publisher }",
            cases: &[1],
        },
        Scenario {
            name: "deep_invert",
            description: "double inversion: names own their authors, which \
                          own the sibling titles — every ancestor's number \
                          extends or diverges from its descendants'",
            spec: "name { author { title } }",
            cases: &[1, 2, 3],
        },
    ]
}

/// Scenarios over the XMark-style corpus.
pub fn xmark_scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "identity",
            description: "site { ** } — identity over the auction site",
            spec: "site { ** }",
            cases: &[1],
        },
        Scenario {
            name: "items_flat",
            description: "European items lifted out of the region hierarchy \
                          (labels qualified per §4.1 — `item` alone is \
                          ambiguous across the six regions)",
            spec: "europe.item { europe.item.name europe.item.description }",
            cases: &[1],
        },
        Scenario {
            name: "person_city",
            description: "persons regrouped under their cities (case-2 \
                          inversion: city is a descendant of person)",
            spec: "city { person { person.name emailaddress } }",
            cases: &[1, 2],
        },
        Scenario {
            name: "auction_view",
            description: "open auctions reduced to initial price and bidders",
            spec: "open_auction { initial bidder { increase } }",
            cases: &[1],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::books::{generate_books, BooksConfig};
    use crate::xmark::{generate_xmark, XmarkConfig};
    use vh_core::VDataGuide;
    use vh_dataguide::TypedDocument;

    #[test]
    fn every_book_scenario_compiles_against_the_corpus() {
        let td = TypedDocument::analyze(generate_books("b", &BooksConfig::sized(5)));
        for s in book_scenarios() {
            VDataGuide::compile(s.spec, td.guide())
                .unwrap_or_else(|e| panic!("scenario {}: {e}", s.name));
        }
    }

    #[test]
    fn every_xmark_scenario_compiles_against_the_corpus() {
        let td = TypedDocument::analyze(generate_xmark(
            "x",
            &XmarkConfig {
                scale: 0.01,
                seed: 1,
            },
        ));
        for s in xmark_scenarios() {
            VDataGuide::compile(s.spec, td.guide())
                .unwrap_or_else(|e| panic!("scenario {}: {e}", s.name));
        }
    }

    #[test]
    fn scenario_metadata_is_populated() {
        for s in book_scenarios().iter().chain(xmark_scenarios().iter()) {
            assert!(!s.name.is_empty());
            assert!(!s.description.is_empty());
            assert!(!s.cases.is_empty());
        }
    }
}
