//! An XMark-style auction corpus.
//!
//! XMark is the standard XML benchmark; its generator (`xmlgen`) is not
//! redistributable here, so this module synthesizes documents with the same
//! schema skeleton and similar proportions (≈25 items, 25 persons, 12 open
//! and 9 closed auctions per 0.01 scale units in the original):
//!
//! ```text
//! site
//! ├── regions ── africa|asia|europe|… ── item* ── name, description ── text
//! ├── people ── person* ── name, emailaddress, [address ── city, country]
//! ├── open_auctions ── open_auction* ── initial, bidder*(increase), itemref
//! └── closed_auctions ── closed_auction* ── price, buyer, itemref
//! ```
//!
//! `itemref/@item` and `buyer/@person` reference generated ids, so join
//! queries over the corpus are meaningful.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vh_xml::{Document, ElementBuilder};

/// Configuration of the XMark-style generator.
#[derive(Clone, Debug)]
pub struct XmarkConfig {
    /// Scale factor; 1.0 ≈ 2 500 items / 2 500 persons / 1 200 open and
    /// 900 closed auctions (a hundredth of XMark's sf=1 counts, keeping
    /// experiment runtimes laptop-friendly; shapes are unaffected).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for XmarkConfig {
    fn default() -> Self {
        XmarkConfig {
            scale: 0.1,
            seed: 7,
        }
    }
}

const REGIONS: [&str; 6] = [
    "africa",
    "asia",
    "australia",
    "europe",
    "namerica",
    "samerica",
];
const CITIES: [&str; 8] = [
    "Rome", "Lagos", "Lima", "Kyoto", "Graz", "Pune", "Bergen", "Quebec",
];
const WORDS: [&str; 12] = [
    "vintage", "rare", "restored", "mint", "boxed", "signed", "antique", "classic", "limited",
    "original", "pristine", "curious",
];

impl XmarkConfig {
    fn items(&self) -> usize {
        ((2500.0 * self.scale) as usize).max(1)
    }
    fn persons(&self) -> usize {
        ((2500.0 * self.scale) as usize).max(1)
    }
    fn open_auctions(&self) -> usize {
        ((1200.0 * self.scale) as usize).max(1)
    }
    fn closed_auctions(&self) -> usize {
        ((900.0 * self.scale) as usize).max(1)
    }
}

/// Generates an auction site document under the given URI.
pub fn generate_xmark(uri: &str, cfg: &XmarkConfig) -> Document {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n_items = cfg.items();
    let n_persons = cfg.persons();

    // regions: items distributed round-robin over the six regions.
    let mut region_builders: Vec<ElementBuilder> =
        REGIONS.iter().map(|r| ElementBuilder::new(*r)).collect();
    for i in 0..n_items {
        let w1 = WORDS[rng.gen_range(0..WORDS.len())];
        let w2 = WORDS[rng.gen_range(0..WORDS.len())];
        let item = ElementBuilder::new("item")
            .attr("id", format!("item{i}"))
            .child(ElementBuilder::new("name").text(format!("{w1} lot {i}")))
            .child(ElementBuilder::new("description").text(format!("{w1} {w2} piece")));
        let r = i % REGIONS.len();
        region_builders[r] = region_builders[r].clone().child(item);
    }
    let mut regions = ElementBuilder::new("regions");
    for rb in region_builders {
        regions = regions.child(rb);
    }

    // people.
    let mut people = ElementBuilder::new("people");
    for p in 0..n_persons {
        let mut person = ElementBuilder::new("person")
            .attr("id", format!("person{p}"))
            .child(ElementBuilder::new("name").text(format!("Person {p}")))
            .child(ElementBuilder::new("emailaddress").text(format!("p{p}@example.org")));
        if rng.gen_bool(0.6) {
            person = person.child(
                ElementBuilder::new("address")
                    .child(ElementBuilder::new("city").text(CITIES[rng.gen_range(0..CITIES.len())]))
                    .child(ElementBuilder::new("country").text("XK")),
            );
        }
        people = people.child(person);
    }

    // open auctions.
    let mut open = ElementBuilder::new("open_auctions");
    for a in 0..cfg.open_auctions() {
        let mut auction = ElementBuilder::new("open_auction")
            .attr("id", format!("open{a}"))
            .child(ElementBuilder::new("initial").text(format!("{}", rng.gen_range(1..200))));
        for _ in 0..rng.gen_range(0..4) {
            auction =
                auction.child(ElementBuilder::new("bidder").child(
                    ElementBuilder::new("increase").text(format!("{}", rng.gen_range(1..50))),
                ));
        }
        auction = auction.child(
            ElementBuilder::new("itemref")
                .attr("item", format!("item{}", rng.gen_range(0..n_items))),
        );
        open = open.child(auction);
    }

    // closed auctions.
    let mut closed = ElementBuilder::new("closed_auctions");
    for a in 0..cfg.closed_auctions() {
        closed = closed.child(
            ElementBuilder::new("closed_auction")
                .attr("id", format!("closed{a}"))
                .child(ElementBuilder::new("price").text(format!("{}", rng.gen_range(10..500))))
                .child(
                    ElementBuilder::new("buyer")
                        .attr("person", format!("person{}", rng.gen_range(0..n_persons))),
                )
                .child(
                    ElementBuilder::new("itemref")
                        .attr("item", format!("item{}", rng.gen_range(0..n_items))),
                ),
        );
    }

    ElementBuilder::new("site")
        .child(regions)
        .child(people)
        .child(open)
        .child(closed)
        .into_document(uri)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_has_the_four_sections() {
        let d = generate_xmark(
            "x",
            &XmarkConfig {
                scale: 0.01,
                seed: 1,
            },
        );
        let root = d.root().unwrap();
        let names: Vec<_> = d.children(root).iter().filter_map(|&c| d.name(c)).collect();
        assert_eq!(
            names,
            vec!["regions", "people", "open_auctions", "closed_auctions"]
        );
    }

    #[test]
    fn counts_scale_linearly() {
        let small = XmarkConfig {
            scale: 0.01,
            seed: 1,
        };
        let big = XmarkConfig {
            scale: 0.04,
            seed: 1,
        };
        assert_eq!(small.items(), 25);
        assert_eq!(big.items(), 100);
        assert_eq!(small.open_auctions(), 12);
        assert_eq!(small.closed_auctions(), 9);
        let d = generate_xmark("x", &small);
        let items = d.preorder().filter(|&n| d.name(n) == Some("item")).count();
        assert_eq!(items, 25);
    }

    #[test]
    fn references_point_at_existing_ids() {
        let d = generate_xmark(
            "x",
            &XmarkConfig {
                scale: 0.01,
                seed: 3,
            },
        );
        let ids: std::collections::HashSet<String> = d
            .preorder()
            .filter(|&n| d.name(n) == Some("item"))
            .filter_map(|n| d.attribute(n, "id").map(str::to_owned))
            .collect();
        for n in d.preorder() {
            if d.name(n) == Some("itemref") {
                let r = d.attribute(n, "item").unwrap();
                assert!(ids.contains(r), "dangling itemref {r}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_xmark(
            "x",
            &XmarkConfig {
                scale: 0.02,
                seed: 5,
            },
        );
        let b = generate_xmark(
            "x",
            &XmarkConfig {
                scale: 0.02,
                seed: 5,
            },
        );
        let c = generate_xmark(
            "x",
            &XmarkConfig {
                scale: 0.02,
                seed: 6,
            },
        );
        let ser = |d: &Document| vh_xml::serialize(d, vh_xml::SerializeOptions::compact());
        assert_eq!(ser(&a), ser(&b));
        assert_ne!(ser(&a), ser(&c));
    }
}
