//! The books corpus: the paper's Figure 2, scaled.
//!
//! ```text
//! data { book { title {◦} author { name {◦} }* publisher { location {◦} } }* }
//! ```
//!
//! Knobs: number of books, author fan-out (1..=max uniformly), optional
//! per-book genre wrapper to deepen the tree, and a deterministic seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vh_xml::{Document, ElementBuilder};

/// Configuration of the books generator.
#[derive(Clone, Debug)]
pub struct BooksConfig {
    /// Number of `book` elements.
    pub books: usize,
    /// Maximum authors per book (uniform in `1..=max_authors`).
    pub max_authors: usize,
    /// Fraction of books whose title contains the selective marker
    /// `"RARE"` (drives the selectivity experiment F4). `0.0..=1.0`.
    pub rare_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BooksConfig {
    fn default() -> Self {
        BooksConfig {
            books: 100,
            max_authors: 3,
            rare_fraction: 0.1,
            seed: 42,
        }
    }
}

impl BooksConfig {
    /// A config sized to roughly `n` books with the default knobs.
    pub fn sized(books: usize) -> Self {
        BooksConfig {
            books,
            ..BooksConfig::default()
        }
    }
}

const LOCATIONS: [&str; 8] = [
    "Boston", "Munich", "Tokyo", "Oslo", "Perth", "Quito", "Seoul", "Cairo",
];

const SURNAMES: [&str; 12] = [
    "Codd",
    "Gray",
    "Stonebraker",
    "Date",
    "Chen",
    "Ullman",
    "Widom",
    "Garcia",
    "Molina",
    "Abiteboul",
    "Hull",
    "Vianu",
];

/// Generates the corpus under the given URI.
pub fn generate_books(uri: &str, cfg: &BooksConfig) -> Document {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut data = ElementBuilder::new("data");
    for i in 0..cfg.books {
        let rare = rng.gen_bool(cfg.rare_fraction.clamp(0.0, 1.0));
        let title = if rare {
            format!("RARE Title {i}")
        } else {
            format!("Title {i}")
        };
        let mut book = ElementBuilder::new("book")
            .attr("id", format!("b{i}"))
            .child(ElementBuilder::new("title").text(title));
        let n_authors = rng.gen_range(1..=cfg.max_authors.max(1));
        for a in 0..n_authors {
            let surname = SURNAMES[rng.gen_range(0..SURNAMES.len())];
            book = book.child(
                ElementBuilder::new("author")
                    .child(ElementBuilder::new("name").text(format!("{surname} {a}"))),
            );
        }
        let loc = LOCATIONS[rng.gen_range(0..LOCATIONS.len())];
        book = book.child(
            ElementBuilder::new("publisher").child(ElementBuilder::new("location").text(loc)),
        );
        data = data.child(book);
    }
    data.into_document(uri)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_books("u", &BooksConfig::default());
        let b = generate_books("u", &BooksConfig::default());
        assert_eq!(
            vh_xml::serialize(&a, vh_xml::SerializeOptions::compact()),
            vh_xml::serialize(&b, vh_xml::SerializeOptions::compact())
        );
    }

    #[test]
    fn shape_matches_figure2() {
        let d = generate_books("u", &BooksConfig::sized(10));
        let root = d.root().unwrap();
        assert_eq!(d.name(root), Some("data"));
        assert_eq!(d.children(root).len(), 10);
        for &book in d.children(root) {
            let names: Vec<_> = d.children(book).iter().filter_map(|&c| d.name(c)).collect();
            assert_eq!(names.first(), Some(&"title"));
            assert_eq!(names.last(), Some(&"publisher"));
            assert!(names.iter().filter(|&&n| n == "author").count() >= 1);
        }
    }

    #[test]
    fn author_fanout_respects_the_knob() {
        let cfg = BooksConfig {
            books: 200,
            max_authors: 5,
            ..BooksConfig::default()
        };
        let d = generate_books("u", &cfg);
        let root = d.root().unwrap();
        let mut max_seen = 0;
        for &book in d.children(root) {
            let authors = d
                .children(book)
                .iter()
                .filter(|&&c| d.name(c) == Some("author"))
                .count();
            assert!((1..=5).contains(&authors));
            max_seen = max_seen.max(authors);
        }
        assert!(max_seen >= 3, "with 200 books the fan-out should spread");
    }

    #[test]
    fn rare_fraction_controls_selectivity() {
        let low = generate_books(
            "u",
            &BooksConfig {
                books: 500,
                rare_fraction: 0.02,
                ..BooksConfig::default()
            },
        );
        let count = |d: &Document| {
            d.preorder()
                .filter(|&n| d.kind(n).text().is_some_and(|t| t.starts_with("RARE")))
                .count()
        };
        let c_low = count(&low);
        assert!((2..=40).contains(&c_low), "got {c_low}");
        let all = generate_books(
            "u",
            &BooksConfig {
                books: 100,
                rare_fraction: 1.0,
                ..BooksConfig::default()
            },
        );
        assert_eq!(count(&all), 100);
    }
}
