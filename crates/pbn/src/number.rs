//! The [`Pbn`] number type: a sequence of 1-based sibling ordinals.

use std::fmt;
use std::str::FromStr;

/// A prefix-based number such as `1.2.2`.
///
/// The root of a document is `1`; the k-th child of a node numbered `p`
/// is `p.k`. Components are 1-based and never zero.
///
/// `Ord` is **document order**: a lexicographic comparison of components in
/// which a proper prefix (an ancestor) sorts before its extensions — the
/// order in which a preorder traversal visits nodes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pbn {
    components: Vec<u32>,
}

impl Pbn {
    /// The root number `1`.
    pub fn root() -> Self {
        Pbn {
            components: vec![1],
        }
    }

    /// Builds a number from components.
    ///
    /// # Panics
    /// Panics if any component is zero (ordinals are 1-based). Trusted
    /// internal call sites only; untrusted input goes through
    /// [`Pbn::try_new`] or [`str::parse`].
    pub fn new(components: impl Into<Vec<u32>>) -> Self {
        let components = components.into();
        assert!(
            components.iter().all(|&c| c > 0),
            "PBN components are 1-based, got {components:?}"
        );
        Pbn { components }
    }

    /// Builds a number from components, rejecting zero ordinals instead of
    /// panicking — the constructor for externally supplied values.
    pub fn try_new(components: impl Into<Vec<u32>>) -> Result<Self, PbnParseError> {
        let components = components.into();
        if let Some(zero_at) = components.iter().position(|&c| c == 0) {
            return Err(PbnParseError(format!(
                "component {zero_at} is zero in {components:?} (ordinals are 1-based)"
            )));
        }
        Ok(Pbn { components })
    }

    /// The empty number (no components). Used only as the numbering-space
    /// origin (e.g. the parent of every tree root in a forest).
    pub fn empty() -> Self {
        Pbn {
            components: Vec::new(),
        }
    }

    /// The components of this number.
    #[inline]
    pub fn components(&self) -> &[u32] {
        &self.components
    }

    /// Number of components (the node's depth; the root has length 1).
    #[inline]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True for the empty number.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The number of this node's `k`-th child.
    pub fn child(&self, k: u32) -> Pbn {
        assert!(k > 0, "sibling ordinals are 1-based");
        let mut components = Vec::with_capacity(self.components.len() + 1);
        components.extend_from_slice(&self.components);
        components.push(k);
        Pbn { components }
    }

    /// The parent's number, or `None` for a root (length ≤ 1).
    pub fn parent(&self) -> Option<Pbn> {
        if self.components.len() <= 1 {
            return None;
        }
        Some(Pbn {
            components: self.components[..self.components.len() - 1].to_vec(),
        })
    }

    /// The final component: this node's sibling ordinal.
    pub fn ordinal(&self) -> Option<u32> {
        self.components.last().copied()
    }

    /// True if `self` is a (non-strict) prefix of `other`.
    #[inline]
    pub fn is_prefix_of(&self, other: &Pbn) -> bool {
        other.components.len() >= self.components.len()
            && other.components[..self.components.len()] == self.components[..]
    }

    /// True if `self` is a strict prefix of `other` (i.e. a proper
    /// ancestor's number).
    #[inline]
    pub fn is_strict_prefix_of(&self, other: &Pbn) -> bool {
        other.components.len() > self.components.len()
            && other.components[..self.components.len()] == self.components[..]
    }

    /// Length of the longest common prefix with `other` — the depth of the
    /// two nodes' lowest common ancestor.
    pub fn common_prefix_len(&self, other: &Pbn) -> usize {
        self.components
            .iter()
            .zip(&other.components)
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// The number of the lowest common ancestor of `self` and `other`
    /// (empty if the two numbers share no prefix, which cannot happen for
    /// two nodes of the same single-rooted document).
    pub fn lca(&self, other: &Pbn) -> Pbn {
        Pbn {
            components: self.components[..self.common_prefix_len(other)].to_vec(),
        }
    }

    /// Truncates to the first `len` components.
    ///
    /// # Panics
    /// Panics if `len` exceeds the number's length.
    pub fn prefix(&self, len: usize) -> Pbn {
        Pbn {
            components: self.components[..len].to_vec(),
        }
    }

    /// The immediate successor of this number among its siblings (`p.k` →
    /// `p.(k+1)`). Useful for building exclusive scan bounds: the subtree of
    /// `x` is exactly the document-order interval `[x, x.sibling_successor())`.
    ///
    /// # Panics
    /// Panics on the empty number, which has no siblings.
    pub fn sibling_successor(&self) -> Pbn {
        let mut components = self.components.clone();
        // Documented panic: the empty number has no sibling ordinal to bump.
        #[allow(clippy::expect_used)]
        let last = components
            .last_mut()
            // vet: allow(no-panic) — documented panic: the empty number has no siblings
            .expect("sibling_successor of the empty number");
        *last += 1;
        Pbn { components }
    }
}

impl fmt::Display for Pbn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

// Debug delegates to Display: numbers read better as `1.2.2` than as a
// struct dump in test failures.
impl fmt::Debug for Pbn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Error returned when parsing a PBN string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PbnParseError(pub String);

impl fmt::Display for PbnParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid PBN number: {}", self.0)
    }
}

impl std::error::Error for PbnParseError {}

impl FromStr for Pbn {
    type Err = PbnParseError;

    /// Parses the dotted form, e.g. `"1.2.2"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Ok(Pbn::empty());
        }
        let mut components = Vec::new();
        for part in s.split('.') {
            let v: u32 = part.parse().map_err(|_| PbnParseError(s.to_owned()))?;
            if v == 0 {
                return Err(PbnParseError(s.to_owned()));
            }
            components.push(v);
        }
        Ok(Pbn { components })
    }
}

/// Convenience macro for writing PBN literals in tests: `pbn![1, 2, 2]`.
#[macro_export]
macro_rules! pbn {
    ($($c:expr),* $(,)?) => {
        $crate::Pbn::new(vec![$($c as u32),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        assert_eq!(Pbn::root().to_string(), "1");
        assert_eq!(pbn![1, 2, 2].to_string(), "1.2.2");
        assert_eq!(Pbn::empty().to_string(), "");
    }

    #[test]
    fn parse_round_trips() {
        let p: Pbn = "1.2.10".parse().unwrap();
        assert_eq!(p, pbn![1, 2, 10]);
        assert_eq!(p.to_string().parse::<Pbn>().unwrap(), p);
        assert_eq!("".parse::<Pbn>().unwrap(), Pbn::empty());
        assert!("1.0".parse::<Pbn>().is_err());
        assert!("1..2".parse::<Pbn>().is_err());
        assert!("a.b".parse::<Pbn>().is_err());
    }

    #[test]
    fn child_and_parent_are_inverse() {
        let p = pbn![1, 2];
        assert_eq!(p.child(3), pbn![1, 2, 3]);
        assert_eq!(p.child(3).parent(), Some(p.clone()));
        assert_eq!(Pbn::root().parent(), None);
        assert_eq!(p.ordinal(), Some(2));
    }

    #[test]
    fn prefix_tests_follow_the_paper_example() {
        // §4.2: 1.1.2 vs 1.2 — neither a prefix of the other.
        let a = pbn![1, 1, 2];
        let b = pbn![1, 2];
        assert!(!a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        // 1.1 is the parent of 1.1.2.
        assert!(pbn![1, 1].is_strict_prefix_of(&a));
        assert!(a.is_prefix_of(&a));
        assert!(!a.is_strict_prefix_of(&a));
    }

    #[test]
    fn lca_and_common_prefix() {
        let a = pbn![1, 1, 2, 1];
        let b = pbn![1, 1, 3];
        assert_eq!(a.common_prefix_len(&b), 2);
        assert_eq!(a.lca(&b), pbn![1, 1]);
        assert_eq!(a.lca(&a), a);
        assert_eq!(a.prefix(2), pbn![1, 1]);
    }

    #[test]
    fn document_order_is_preorder() {
        // Ancestor before descendant, siblings by ordinal.
        assert!(pbn![1] < pbn![1, 1]);
        assert!(pbn![1, 1] < pbn![1, 1, 1]);
        assert!(pbn![1, 1, 9] < pbn![1, 2]);
        assert!(pbn![1, 2] < pbn![1, 10]); // numeric, not string, comparison
    }

    #[test]
    fn sibling_successor_bounds_the_subtree() {
        let x = pbn![1, 2];
        let succ = x.sibling_successor();
        assert_eq!(succ, pbn![1, 3]);
        // Every descendant of x lies in [x, succ).
        assert!(x < pbn![1, 2, 7] && pbn![1, 2, 7] < succ);
        assert!(pbn![1, 2, 999, 4] < succ);
        assert!(succ <= pbn![1, 3]);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_component_rejected() {
        let _ = Pbn::new(vec![1, 0]);
    }

    #[test]
    fn try_new_reports_zero_components_instead_of_panicking() {
        assert_eq!(Pbn::try_new(vec![1, 2, 2]).unwrap(), pbn![1, 2, 2]);
        assert_eq!(Pbn::try_new(Vec::new()).unwrap(), Pbn::empty());
        let err = Pbn::try_new(vec![1, 0, 3]).unwrap_err();
        assert!(err.to_string().contains("1-based"), "{err}");
    }
}
