//! The [`Pbn`] number type: a sequence of 1-based sibling ordinals,
//! optionally extended with minted *gap fractions* (see [`crate::mint`]).

use std::fmt;
use std::str::FromStr;

/// One component of a PBN number.
///
/// A *plain* component is a 1-based sibling ordinal, exactly as in §4.2 of
/// the paper. A *minted* component additionally carries a non-empty
/// `frac` byte string allocated by [`crate::mint::KeyGen`] so that a new
/// sibling can be placed **between** two existing ordinals without
/// renumbering either: `{ord: j, frac: F}` sorts after the entire subtree
/// of plain `j` and before plain `j + 1`, and `{ord: 0, frac: F}` sorts
/// before plain `1` (a front insertion; `ord` 0 never appears without a
/// fraction).
///
/// `Ord` is `(ord, frac)` lexicographic, empty fraction first — exactly
/// the order of the byte encoding in [`crate::encode`]. The comparisons
/// are written by hand (not derived) so the plain/plain case — virtually
/// every comparison on an undisturbed document, and the innermost loop of
/// the §5 axis predicates — stays a branch on two integers instead of a
/// `memcmp` call against two empty fractions.
///
/// Fraction bytes are drawn from `0x01..=0xFF` (never `0x00`, which the
/// encoding uses as the fraction terminator) and by minting convention end
/// with a byte `>= 0x02` so there is always room to mint below them.
#[derive(Clone, Eq)]
pub struct Comp {
    ord: u32,
    // Box<[u8]>, not Vec<u8>: one word smaller, and number comparison is
    // the innermost loop of every axis predicate. Empty boxes (plain
    // components — virtually all of them) never allocate.
    frac: Box<[u8]>,
}

impl std::hash::Hash for Comp {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.ord.hash(state);
        self.frac.hash(state);
    }
}

impl PartialEq for Comp {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.ord == other.ord
            && self.frac.len() == other.frac.len()
            && (self.frac.is_empty() || self.frac == other.frac)
    }
}

impl PartialOrd for Comp {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Comp {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match self.ord.cmp(&other.ord) {
            std::cmp::Ordering::Equal => {
                // Keep the empty-frac fast path: dense documents never pay
                // for the fraction compare. Minted keys fall through to the
                // word-parallel byte compare.
                if self.frac.is_empty() && other.frac.is_empty() {
                    std::cmp::Ordering::Equal
                } else {
                    crate::keys::cmp(&self.frac, &other.frac)
                }
            }
            unequal => unequal,
        }
    }
}

impl Comp {
    /// A plain 1-based ordinal component.
    ///
    /// # Panics
    /// Panics if `ord` is zero (ordinals are 1-based; `ord` 0 exists only
    /// on minted front-gap components).
    pub fn new(ord: u32) -> Self {
        assert!(ord > 0, "PBN components are 1-based, got 0");
        Comp {
            ord,
            frac: Box::default(),
        }
    }

    /// A minted gap component: sorts after the subtree of plain `ord` and
    /// before plain `ord + 1` (for `ord` 0: before plain `1`).
    ///
    /// # Panics
    /// Panics if `frac` is empty or contains a `0x00` byte — minted
    /// components always carry a well-formed fraction. Trusted internal
    /// call sites only ([`crate::mint`], the codec).
    pub fn minted(ord: u32, frac: Vec<u8>) -> Self {
        assert!(
            !frac.is_empty() && !frac.contains(&0),
            "minted components need a non-empty, zero-free fraction"
        );
        Comp {
            ord,
            frac: frac.into_boxed_slice(),
        }
    }

    /// The ordinal part. For a minted component this names the gap the
    /// component lives in, not a sibling position.
    #[inline]
    pub fn ord(&self) -> u32 {
        self.ord
    }

    /// The minted fraction — empty for plain components.
    #[inline]
    pub fn frac(&self) -> &[u8] {
        &self.frac
    }

    /// True for a plain (fraction-free) ordinal component.
    #[inline]
    pub fn is_plain(&self) -> bool {
        self.frac.is_empty()
    }

    /// The next component in the classic dense numbering: `j` → `j + 1`
    /// for plain components; for minted components the fraction is
    /// extended with a `0x00` sentinel (a **bound**, not a mintable
    /// component), which sorts after the fraction itself and before every
    /// longer minted sibling.
    fn successor(&self) -> Comp {
        if self.frac.is_empty() {
            Comp {
                ord: self.ord.saturating_add(1),
                frac: Box::default(),
            }
        } else {
            self.bound()
        }
    }

    /// The *tight* exclusive upper bound of this component's subtree: the
    /// fraction (empty for plain components) extended with a `0x00`
    /// sentinel. `{j, frac·0x00}` sorts after every descendant of
    /// `{j, frac}` and before every minted sibling in its gap — unlike
    /// `j + 1`, which would swallow the gap. A **bound**, never a valid
    /// mintable component.
    fn bound(&self) -> Comp {
        let mut frac = self.frac.to_vec();
        frac.push(0);
        Comp {
            ord: self.ord,
            frac: frac.into_boxed_slice(),
        }
    }
}

impl From<u32> for Comp {
    fn from(ord: u32) -> Self {
        Comp::new(ord)
    }
}

impl fmt::Display for Comp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.ord)?;
        if !self.frac.is_empty() {
            f.write_str("~")?;
            for b in &self.frac {
                write!(f, "{b:02x}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Comp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A prefix-based number such as `1.2.2`.
///
/// The root of a document is `1`; the k-th child of a node numbered `p`
/// is `p.k`. Components are 1-based and never zero; nodes inserted after
/// the initial numbering may carry minted components (see [`Comp`]) whose
/// dotted form looks like `1.2~80.1`.
///
/// `Ord` is **document order**: a lexicographic comparison of components in
/// which a proper prefix (an ancestor) sorts before its extensions — the
/// order in which a preorder traversal visits nodes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pbn {
    components: Vec<Comp>,
}

impl Pbn {
    /// The root number `1`.
    pub fn root() -> Self {
        Pbn {
            components: vec![Comp::new(1)],
        }
    }

    /// Builds a number from plain ordinal components.
    ///
    /// # Panics
    /// Panics if any component is zero (ordinals are 1-based). Trusted
    /// internal call sites only; untrusted input goes through
    /// [`Pbn::try_new`] or [`str::parse`].
    pub fn new(components: impl Into<Vec<u32>>) -> Self {
        let raw = components.into();
        assert!(
            raw.iter().all(|&c| c > 0),
            "PBN components are 1-based, got {raw:?}"
        );
        Pbn {
            components: raw.into_iter().map(Comp::new).collect(),
        }
    }

    /// Builds a number from plain components, rejecting zero ordinals
    /// instead of panicking — the constructor for externally supplied
    /// values.
    pub fn try_new(components: impl Into<Vec<u32>>) -> Result<Self, PbnParseError> {
        let raw = components.into();
        if let Some(zero_at) = raw.iter().position(|&c| c == 0) {
            return Err(PbnParseError(format!(
                "component {zero_at} is zero in {raw:?} (ordinals are 1-based)"
            )));
        }
        Ok(Pbn {
            components: raw.into_iter().map(Comp::new).collect(),
        })
    }

    /// Builds a number directly from components (plain or minted).
    pub fn from_comps(components: Vec<Comp>) -> Self {
        Pbn { components }
    }

    /// The empty number (no components). Used only as the numbering-space
    /// origin (e.g. the parent of every tree root in a forest).
    pub fn empty() -> Self {
        Pbn {
            components: Vec::new(),
        }
    }

    /// The components of this number.
    #[inline]
    pub fn components(&self) -> &[Comp] {
        &self.components
    }

    /// Number of components (the node's depth; the root has length 1).
    #[inline]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True for the empty number.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The number of this node's `k`-th child.
    pub fn child(&self, k: u32) -> Pbn {
        assert!(k > 0, "sibling ordinals are 1-based");
        self.child_comp(Comp::new(k))
    }

    /// The number formed by appending `comp` as a child component.
    pub fn child_comp(&self, comp: Comp) -> Pbn {
        let mut components = Vec::with_capacity(self.components.len() + 1);
        components.extend_from_slice(&self.components);
        components.push(comp);
        Pbn { components }
    }

    /// The parent's number, or `None` for a root (length ≤ 1).
    pub fn parent(&self) -> Option<Pbn> {
        if self.components.len() <= 1 {
            return None;
        }
        Some(Pbn {
            components: self.components[..self.components.len() - 1].to_vec(),
        })
    }

    /// The final component's ordinal part. For minted components this is
    /// the gap ordinal, not a sibling position (sibling positions are
    /// computed dynamically under vPBN anyway, §5.1).
    pub fn ordinal(&self) -> Option<u32> {
        self.components.last().map(Comp::ord)
    }

    /// The final component.
    pub fn last_comp(&self) -> Option<&Comp> {
        self.components.last()
    }

    /// True if `self` is a (non-strict) prefix of `other`.
    #[inline]
    pub fn is_prefix_of(&self, other: &Pbn) -> bool {
        other.components.len() >= self.components.len()
            && other.components[..self.components.len()] == self.components[..]
    }

    /// True if `self` is a strict prefix of `other` (i.e. a proper
    /// ancestor's number).
    #[inline]
    pub fn is_strict_prefix_of(&self, other: &Pbn) -> bool {
        other.components.len() > self.components.len()
            && other.components[..self.components.len()] == self.components[..]
    }

    /// Length of the longest common prefix with `other` — the depth of the
    /// two nodes' lowest common ancestor.
    pub fn common_prefix_len(&self, other: &Pbn) -> usize {
        self.components
            .iter()
            .zip(&other.components)
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// The number of the lowest common ancestor of `self` and `other`
    /// (empty if the two numbers share no prefix, which cannot happen for
    /// two nodes of the same single-rooted document).
    pub fn lca(&self, other: &Pbn) -> Pbn {
        Pbn {
            components: self.components[..self.common_prefix_len(other)].to_vec(),
        }
    }

    /// Truncates to the first `len` components.
    ///
    /// # Panics
    /// Panics if `len` exceeds the number's length.
    pub fn prefix(&self, len: usize) -> Pbn {
        Pbn {
            components: self.components[..len].to_vec(),
        }
    }

    /// The immediate successor of this number among its siblings (`p.k` →
    /// `p.(k+1)`; minted components get a sentinel-extended fraction).
    /// Useful for building exclusive scan bounds: the subtree of `x` is
    /// exactly the document-order interval `[x, x.sibling_successor())`.
    ///
    /// # Panics
    /// Panics on the empty number, which has no siblings.
    pub fn sibling_successor(&self) -> Pbn {
        let mut components = self.components.clone();
        // Documented panic: the empty number has no sibling ordinal to bump.
        #[allow(clippy::expect_used)]
        let last = components
            .last_mut()
            // vet: allow(no-panic) — documented panic: the empty number has no siblings
            .expect("sibling_successor of the empty number");
        *last = last.successor();
        Pbn { components }
    }

    /// The tight exclusive upper bound of this node's subtree in document
    /// order: every descendant-or-self `d` satisfies `self <= d <
    /// self.subtree_bound()`, and nothing else does — **including** minted
    /// gap siblings, which `sibling_successor` (the classic `p.(k+1)`
    /// bound) would wrongly cover. Scan bounds must use this form.
    ///
    /// # Panics
    /// Panics on the empty number (its subtree is the whole space).
    pub fn subtree_bound(&self) -> Pbn {
        let mut components = self.components.clone();
        #[allow(clippy::expect_used)]
        let last = components
            .last_mut()
            // vet: allow(no-panic) — documented panic: the empty number bounds nothing
            .expect("subtree_bound of the empty number");
        *last = last.bound();
        Pbn { components }
    }
}

impl fmt::Display for Pbn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

// Debug delegates to Display: numbers read better as `1.2.2` than as a
// struct dump in test failures.
impl fmt::Debug for Pbn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Error returned when parsing a PBN string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PbnParseError(pub String);

impl fmt::Display for PbnParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid PBN number: {}", self.0)
    }
}

impl std::error::Error for PbnParseError {}

impl FromStr for Pbn {
    type Err = PbnParseError;

    /// Parses the dotted form, e.g. `"1.2.2"`. Minted components use the
    /// display form `ord~hexfrac`, e.g. `"1.2~80.1"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Ok(Pbn::empty());
        }
        let mut components = Vec::new();
        for part in s.split('.') {
            components.push(parse_comp(part).ok_or_else(|| PbnParseError(s.to_owned()))?);
        }
        Ok(Pbn { components })
    }
}

/// Parses one dotted-form component: `"12"` or `"12~80ff"`.
fn parse_comp(part: &str) -> Option<Comp> {
    match part.split_once('~') {
        None => {
            let v: u32 = part.parse().ok()?;
            if v == 0 {
                return None;
            }
            Some(Comp::new(v))
        }
        Some((ord, hex)) => {
            let ord: u32 = ord.parse().ok()?;
            if hex.is_empty() || hex.len() % 2 != 0 {
                return None;
            }
            let mut frac = Vec::with_capacity(hex.len() / 2);
            for i in (0..hex.len()).step_by(2) {
                let b = u8::from_str_radix(&hex[i..i + 2], 16).ok()?;
                if b == 0 {
                    return None; // fractions never contain the terminator byte
                }
                frac.push(b);
            }
            Some(Comp::minted(ord, frac))
        }
    }
}

/// Convenience macro for writing PBN literals in tests: `pbn![1, 2, 2]`.
#[macro_export]
macro_rules! pbn {
    ($($c:expr),* $(,)?) => {
        $crate::Pbn::new(vec![$($c as u32),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        assert_eq!(Pbn::root().to_string(), "1");
        assert_eq!(pbn![1, 2, 2].to_string(), "1.2.2");
        assert_eq!(Pbn::empty().to_string(), "");
    }

    #[test]
    fn parse_round_trips() {
        let p: Pbn = "1.2.10".parse().unwrap();
        assert_eq!(p, pbn![1, 2, 10]);
        assert_eq!(p.to_string().parse::<Pbn>().unwrap(), p);
        assert_eq!("".parse::<Pbn>().unwrap(), Pbn::empty());
        assert!("1.0".parse::<Pbn>().is_err());
        assert!("1..2".parse::<Pbn>().is_err());
        assert!("a.b".parse::<Pbn>().is_err());
    }

    #[test]
    fn minted_components_display_and_parse() {
        let m = Pbn::root().child_comp(Comp::minted(2, vec![0x80]));
        assert_eq!(m.to_string(), "1.2~80");
        assert_eq!(m.to_string().parse::<Pbn>().unwrap(), m);
        let front = Pbn::root().child_comp(Comp::minted(0, vec![0x80, 0x02]));
        assert_eq!(front.to_string(), "1.0~8002");
        assert_eq!(front.to_string().parse::<Pbn>().unwrap(), front);
        // Malformed fraction forms are rejected.
        assert!("1.2~".parse::<Pbn>().is_err());
        assert!("1.2~8".parse::<Pbn>().is_err());
        assert!("1.2~00".parse::<Pbn>().is_err());
    }

    #[test]
    fn minted_components_sit_between_their_neighbours() {
        // {j, F} sorts after the whole subtree of j and before j + 1;
        // {0, F} sorts before 1.
        let plain2 = pbn![1, 2];
        let deep2 = pbn![1, 2, 9, 9];
        let after2 = Pbn::root().child_comp(Comp::minted(2, vec![0x80]));
        let plain3 = pbn![1, 3];
        assert!(plain2 < after2 && deep2 < after2 && after2 < plain3);
        let front = Pbn::root().child_comp(Comp::minted(0, vec![0x80]));
        assert!(pbn![1] < front && front < pbn![1, 1]);
        // A minted node's own descendants stay inside its subtree bound.
        let child_of_minted = after2.child(1);
        assert!(after2 < child_of_minted && child_of_minted < after2.sibling_successor());
        assert!(after2.is_strict_prefix_of(&child_of_minted));
    }

    #[test]
    fn child_and_parent_are_inverse() {
        let p = pbn![1, 2];
        assert_eq!(p.child(3), pbn![1, 2, 3]);
        assert_eq!(p.child(3).parent(), Some(p.clone()));
        assert_eq!(Pbn::root().parent(), None);
        assert_eq!(p.ordinal(), Some(2));
    }

    #[test]
    fn prefix_tests_follow_the_paper_example() {
        // §4.2: 1.1.2 vs 1.2 — neither a prefix of the other.
        let a = pbn![1, 1, 2];
        let b = pbn![1, 2];
        assert!(!a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        // 1.1 is the parent of 1.1.2.
        assert!(pbn![1, 1].is_strict_prefix_of(&a));
        assert!(a.is_prefix_of(&a));
        assert!(!a.is_strict_prefix_of(&a));
    }

    #[test]
    fn lca_and_common_prefix() {
        let a = pbn![1, 1, 2, 1];
        let b = pbn![1, 1, 3];
        assert_eq!(a.common_prefix_len(&b), 2);
        assert_eq!(a.lca(&b), pbn![1, 1]);
        assert_eq!(a.lca(&a), a);
        assert_eq!(a.prefix(2), pbn![1, 1]);
    }

    #[test]
    fn document_order_is_preorder() {
        // Ancestor before descendant, siblings by ordinal.
        assert!(pbn![1] < pbn![1, 1]);
        assert!(pbn![1, 1] < pbn![1, 1, 1]);
        assert!(pbn![1, 1, 9] < pbn![1, 2]);
        assert!(pbn![1, 2] < pbn![1, 10]); // numeric, not string, comparison
    }

    #[test]
    fn sibling_successor_bounds_the_subtree() {
        let x = pbn![1, 2];
        let succ = x.sibling_successor();
        assert_eq!(succ, pbn![1, 3]);
        // Every descendant of x lies in [x, succ).
        assert!(x < pbn![1, 2, 7] && pbn![1, 2, 7] < succ);
        assert!(pbn![1, 2, 999, 4] < succ);
        assert!(succ <= pbn![1, 3]);
    }

    #[test]
    fn sibling_successor_bounds_minted_subtrees() {
        let x = Pbn::root().child_comp(Comp::minted(2, vec![0x80]));
        let succ = x.sibling_successor();
        // Descendants are inside the bound …
        assert!(x < x.child(1) && x.child(1) < succ);
        assert!(x.child(7).child(3) < succ);
        // … while a longer minted sibling (fraction 0x80 0x02 > 0x80) is not.
        let later = Pbn::root().child_comp(Comp::minted(2, vec![0x80, 0x02]));
        assert!(x < later && succ <= later);
        assert!(later < pbn![1, 3]);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_component_rejected() {
        let _ = Pbn::new(vec![1, 0]);
    }

    #[test]
    fn try_new_reports_zero_components_instead_of_panicking() {
        assert_eq!(Pbn::try_new(vec![1, 2, 2]).unwrap(), pbn![1, 2, 2]);
        assert_eq!(Pbn::try_new(Vec::new()).unwrap(), Pbn::empty());
        let err = Pbn::try_new(vec![1, 0, 3]).unwrap_err();
        assert!(err.to_string().contains("1-based"), "{err}");
    }
}
