//! Minting sibling keys between existing ones — renumbering-free inserts.
//!
//! The paper's contrast case (§3, `crate::update`) shows what plain PBN
//! pays for an insert: every following sibling's subtree is renumbered.
//! [`KeyGen`] avoids that entirely, in the spirit of Hazel's rational
//! nested-set keys and Tropashko's nested intervals: a new sibling's
//! component is allocated **between** its neighbours and no existing
//! number changes, ever.
//!
//! Three allocation strategies, cheapest first (DESIGN.md §12):
//!
//! 1. **Dense** — appends after the last child, and inserts where an
//!    integer ordinal is free (after deletions), mint a plain component.
//!    Appends are therefore always as compact as initial assignment.
//! 2. **Gap fractions** — between adjacent ordinals `j` and `j + 1`
//!    there is no integer, so the new component is `{j, F}`: a minted
//!    [`Comp`] living in `j`'s *gap*, encoded as
//!    `enc(j) · GAP_MARK · F · 0x00` (before the first plain child:
//!    `{0, F}`, encoded `FRONT_MARK · F · 0x00`).
//! 3. **Fraction stepping** — within a gap, fractions are byte strings
//!    over `0x01..=0xFF` ending `>= 0x02`. Minting below `F` first steps
//!    the leading byte down arithmetically (≈ 253 inserts per added
//!    byte); only when that floor is reached does the fraction grow by
//!    one byte. Repeatedly inserting at the *same* point therefore grows
//!    keys by O(1) byte per ~253 inserts front-of-gap and 1 byte per
//!    insert for pathological midpoint splits — the worst case the
//!    DESIGN.md space-bound discussion quantifies.

use crate::number::{Comp, Pbn};

/// Stateless key minter. All decisions derive from the two neighbouring
/// components, so replaying the same edit sequence (e.g. WAL recovery)
/// mints identical keys.
pub struct KeyGen;

impl KeyGen {
    /// The number for a new child of `parent` inserted between the
    /// existing children numbered `left` and `right` (`None` at the
    /// ends: `(None, None)` = first child ever, `(Some, None)` = append,
    /// `(None, Some)` = insert at the front).
    ///
    /// Guarantees, given `left < right` and both children of `parent`:
    /// the result is strictly between them (document order and byte
    /// order), distinct from every existing key, and **no existing key
    /// changes** — the insert is renumbering-free.
    pub fn between(parent: &Pbn, left: Option<&Pbn>, right: Option<&Pbn>) -> Pbn {
        let comp = Self::between_comps(
            left.and_then(|p| p.last_comp()),
            right.and_then(|p| p.last_comp()),
        );
        parent.child_comp(comp)
    }

    /// Component-level minting: a component strictly between `left` and
    /// `right` among siblings.
    pub fn between_comps(left: Option<&Comp>, right: Option<&Comp>) -> Comp {
        match (left, right) {
            // No children at all: dense numbering starts at 1.
            (None, None) => Comp::new(1),
            // Append: the slot after the last child's gap ordinal is
            // always free, so appends stay dense.
            (Some(l), None) => match l.ord().checked_add(1) {
                Some(next) => Comp::new(next),
                None => Comp::minted(
                    l.ord(),
                    if l.frac().is_empty() {
                        vec![0x80]
                    } else {
                        frac_after(l.frac())
                    },
                ),
            },
            // Insert before the first child.
            (None, Some(r)) => match (r.ord(), r.is_plain()) {
                (0, _) => Comp::minted(0, frac_before(r.frac())),
                (1, true) => Comp::minted(0, vec![0x80]),
                // `r` is the first child, so the plain ordinal below it
                // (or its own gap ordinal, for a minted `r`) is free.
                (j, true) => Comp::new(j - 1),
                (j, false) => Comp::new(j),
            },
            // Insert between two adjacent children.
            (Some(l), Some(r)) => {
                let (j, k) = (l.ord(), r.ord());
                debug_assert!((j, l.frac()) < (k, r.frac()), "siblings out of order");
                if k > j && k - j >= 2 {
                    // An integer ordinal is free between them (deletion
                    // gap): stay dense.
                    Comp::new(j + 1)
                } else if k == j + 1 {
                    // Adjacent ordinals: open (or extend) j's gap.
                    Comp::minted(
                        j,
                        if l.frac().is_empty() {
                            vec![0x80]
                        } else {
                            frac_after(l.frac())
                        },
                    )
                } else {
                    // Same gap: split the fraction interval.
                    Comp::minted(
                        j,
                        if l.frac().is_empty() {
                            frac_before(r.frac())
                        } else {
                            frac_between(l.frac(), r.frac())
                        },
                    )
                }
            }
        }
    }
}

/// A fraction strictly below `f` (which is non-empty and, by minting
/// convention, not all-`0x01`): step the first non-`0x01` byte down, or —
/// when it has hit the `0x02` floor — descend one level and restart at
/// `0xFF`, so each added byte buys another ~253 arithmetic steps.
fn frac_before(f: &[u8]) -> Vec<u8> {
    let k = f.iter().take_while(|&&b| b == 0x01).count();
    let b = f.get(k).copied().unwrap_or(0x02);
    if b >= 0x03 {
        let mut out = vec![0x01; k];
        out.push(b - 1);
        out
    } else {
        let mut out = vec![0x01; k + 1];
        out.push(0xFF);
        out
    }
}

/// A fraction strictly above `f` with nothing between them in use: bump
/// the last byte, or extend when it is already `0xFF`.
fn frac_after(f: &[u8]) -> Vec<u8> {
    let mut out = f.to_vec();
    match out.last_mut() {
        Some(last) if *last < 0xFF => *last += 1,
        _ => out.push(0x02),
    }
    out
}

/// A fraction strictly between `f` and `g` (`f < g`).
fn frac_between(f: &[u8], g: &[u8]) -> Vec<u8> {
    if g.starts_with(f) {
        // g = f · tail: anything of the form f · (fraction below tail).
        let mut out = f.to_vec();
        out.extend_from_slice(&frac_before(&g[f.len()..]));
        out
    } else {
        // f and g diverge within f's length, so any extension of f stays
        // below g.
        let mut out = f.to_vec();
        out.push(0x02);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::EncodedPbn;
    use crate::pbn;

    fn assert_between(parent: &Pbn, left: Option<&Pbn>, right: Option<&Pbn>) -> Pbn {
        let minted = KeyGen::between(parent, left, right);
        if let Some(l) = left {
            assert!(l < &minted, "{minted} not after {l}");
            // Strictly after the *subtree* of the left sibling.
            assert!(l.subtree_bound() <= minted, "{minted} inside {l}");
        }
        if let Some(r) = right {
            assert!(&minted < r, "{minted} not before {r}");
        }
        assert!(parent.is_strict_prefix_of(&minted));
        assert_eq!(minted.len(), parent.len() + 1, "minted key is a child");
        minted
    }

    #[test]
    fn dense_cases_stay_dense() {
        let p = pbn![1];
        assert_eq!(assert_between(&p, None, None), pbn![1, 1]);
        assert_eq!(assert_between(&p, Some(&pbn![1, 3]), None), pbn![1, 4]);
        // Deletion gaps are reused.
        assert_eq!(
            assert_between(&p, Some(&pbn![1, 3]), Some(&pbn![1, 7])),
            pbn![1, 4]
        );
        assert_eq!(assert_between(&p, None, Some(&pbn![1, 5])), pbn![1, 4]);
    }

    #[test]
    fn adjacent_ordinals_open_a_gap() {
        let p = pbn![1];
        let m = assert_between(&p, Some(&pbn![1, 2]), Some(&pbn![1, 3]));
        assert_eq!(m.to_string(), "1.2~80");
        // The minted key leaves both neighbours' byte keys untouched and
        // sits between them byte-wise too.
        let (el, em, er) = (
            EncodedPbn::encode(&pbn![1, 2]),
            EncodedPbn::encode(&m),
            EncodedPbn::encode(&pbn![1, 3]),
        );
        assert!(el < em && em < er);
    }

    #[test]
    fn front_inserts_use_the_front_gap() {
        let p = pbn![1];
        let m = assert_between(&p, None, Some(&pbn![1, 1]));
        assert_eq!(m.to_string(), "1.0~80");
        // And again before the minted one.
        let m2 = assert_between(&p, None, Some(&m));
        assert!(m2 < m);
        assert_eq!(m2.to_string(), "1.0~7f");
    }

    #[test]
    fn repeated_midpoint_splits_stay_ordered_and_unique() {
        // Keep inserting at the same point (after node "1.1", before
        // whatever was minted last) — the adversarial worst case.
        let p = pbn![1];
        let left = pbn![1, 1];
        let right = pbn![1, 2];
        let mut last = assert_between(&p, Some(&left), Some(&right));
        let mut seen = vec![left.clone(), right.clone(), last.clone()];
        for _ in 0..200 {
            let m = assert_between(&p, Some(&left), Some(&last));
            assert!(!seen.contains(&m), "duplicate mint {m}");
            seen.push(m.clone());
            last = m;
        }
        // Byte order agrees with document order over everything minted.
        let mut encoded: Vec<_> = seen.iter().map(EncodedPbn::encode).collect();
        let mut by_pbn = seen.clone();
        by_pbn.sort();
        encoded.sort();
        let decoded: Vec<_> = encoded.iter().map(|e| e.decode()).collect();
        assert_eq!(decoded, by_pbn);
    }

    #[test]
    fn front_of_gap_growth_is_arithmetic_not_geometric() {
        // 200 inserts at the front of a gap must step bytes down one at a
        // time — roughly 253 inserts per added byte, not one byte each.
        let p = pbn![1];
        let mut right = assert_between(&p, Some(&pbn![1, 1]), Some(&pbn![1, 2]));
        for _ in 0..200 {
            right = assert_between(&p, Some(&pbn![1, 1]), Some(&right));
        }
        let frac_len = right.last_comp().unwrap().frac().len();
        assert!(frac_len <= 2, "front-of-gap fraction grew to {frac_len}");
    }

    #[test]
    fn random_insert_storm_preserves_order_and_neighbours() {
        // Simulate a sibling list under random positional inserts and
        // check global invariants after every mint.
        let parent = pbn![1];
        let mut sibs: Vec<Pbn> = Vec::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..500 {
            let pos = (rng() as usize) % (sibs.len() + 1);
            let left = pos.checked_sub(1).map(|i| sibs[i].clone());
            let right = sibs.get(pos).cloned();
            let m = assert_between(&parent, left.as_ref(), right.as_ref());
            sibs.insert(pos, m);
            // The list must still be strictly sorted, in both forms.
            for w in sibs.windows(2) {
                assert!(w[0] < w[1]);
                assert!(EncodedPbn::encode(&w[0]) < EncodedPbn::encode(&w[1]));
                // And the left subtree bound clears the right sibling.
                assert!(w[0].subtree_bound() <= w[1]);
            }
        }
    }

    #[test]
    fn minting_under_minted_parents_works() {
        let parent = Pbn::root().child_comp(crate::number::Comp::minted(2, vec![0x80]));
        let c1 = assert_between(&parent, None, None);
        assert_eq!(c1, parent.child(1));
        let c2 = assert_between(&parent, Some(&c1), None);
        let m = assert_between(&parent, Some(&c1), Some(&c2));
        assert!(c1 < m && m < c2);
    }
}
