//! Primitives on encoded PBN byte keys.
//!
//! The [`crate::encode`] scheme guarantees two structural facts about the
//! byte strings it produces:
//!
//! 1. `memcmp(enc(x), enc(y))` equals document order `x.cmp(y)`, and
//! 2. `enc(p)` is a byte-prefix of `enc(p.k)` for every child `p.k` — and
//!    the *only* byte-extensions of `enc(p)` that are **not** descendants
//!    of `p` are the minted gap siblings continuing with
//!    [`GAP_MARK`] (see `DESIGN.md` §12).
//!
//! Everything in this module follows from those facts alone, so the
//! functions take plain `&[u8]` slices — typically borrowed from a
//! [`crate::arena::PbnArena`] — and never allocate on the comparison path.
//! This is what turns the §5 axis predicates into `starts_with` /
//! `memcmp` calls and subtree axes into byte-range scans.
//!
//! The prefix predicates require `p` to end on a component boundary (a
//! full node key, or a [`component_boundary`] cut of one); `y` may be any
//! valid key.

use crate::encode::{ordinal_len, FRAC_END, FRONT_MARK, GAP_MARK};
use std::cmp::Ordering;

/// Document order of two encoded keys: a plain byte comparison.
#[inline]
pub fn cmp(a: &[u8], b: &[u8]) -> Ordering {
    a.cmp(b)
}

/// True when `y`'s byte at the end of prefix `p` continues into `p`'s
/// sibling gap — i.e. `y` byte-extends `p` but is a minted *following
/// sibling* (or its descendant), not a descendant of `p`.
#[inline]
fn extends_into_gap(p: &[u8], y: &[u8]) -> bool {
    y.get(p.len()) == Some(&GAP_MARK)
}

/// True if `p` encodes an ancestor-or-self of `y`.
///
/// A byte-prefix test, refined for minted keys: an extension continuing
/// with [`GAP_MARK`] right after `p` lies in
/// `p`'s sibling gap and is excluded. (Front-gap children, continuing
/// with `0x00`, *are* descendants and remain included.)
#[inline]
pub fn is_prefix(p: &[u8], y: &[u8]) -> bool {
    y.starts_with(p) && !extends_into_gap(p, y)
}

/// True if `p` encodes a proper ancestor of `y` (strict prefix, same
/// gap-sibling exclusion as [`is_prefix`]).
#[inline]
pub fn is_strict_prefix(p: &[u8], y: &[u8]) -> bool {
    y.len() > p.len() && y.starts_with(p) && !extends_into_gap(p, y)
}

/// Number of bytes of the first component of `key`.
///
/// Components are self-delimiting: a plain ordinal's length follows from
/// the leading bits of its first byte; a minted component appends a
/// `0x00`-terminated fraction opened by `FRONT_MARK`/`GAP_MARK`. The
/// ordinal **and** its gap fraction are one component. Saturates at the
/// end of the key for truncated input (the codec, not this walker, is
/// responsible for rejecting it).
pub fn component_len(key: &[u8]) -> usize {
    let Some(&b0) = key.first() else {
        return 0;
    };
    let after_ord = if b0 == FRONT_MARK { 1 } else { ordinal_len(b0) };
    if after_ord > key.len() {
        return key.len();
    }
    let has_frac = b0 == FRONT_MARK || key.get(after_ord) == Some(&GAP_MARK);
    if !has_frac {
        return after_ord;
    }
    let frac_from = if b0 == FRONT_MARK {
        after_ord
    } else {
        after_ord + 1
    };
    match key[frac_from..].iter().position(|&b| b == FRAC_END) {
        Some(p) => frac_from + p + 1,
        None => key.len(),
    }
}

/// Byte offset of the end of the first `m` components of `key`, i.e.
/// `enc(x)[..component_boundary(enc(x), m)] == enc(x.prefix(m))`.
///
/// Walks at most `m` components; saturates at the end of the key (a key
/// with fewer than `m` components yields its full length).
pub fn component_boundary(key: &[u8], m: usize) -> usize {
    let mut i = 0;
    for _ in 0..m {
        if i >= key.len() {
            break;
        }
        i += component_len(&key[i..]);
    }
    i.min(key.len())
}

/// Number of components encoded in `key`.
pub fn component_count(key: &[u8]) -> usize {
    let mut i = 0;
    let mut n = 0;
    while i < key.len() {
        i += component_len(&key[i..]);
        n += 1;
    }
    n
}

/// The exclusive upper bound of the subtree rooted at the node with key
/// `p`: `p · GAP_MARK`. Every descendant key is below it (component first
/// bytes are `<= 0xF0` or `FRONT_MARK`), and every minted following
/// sibling of `p` — which byte-extends `p` with `GAP_MARK` — is at or
/// above it.
pub fn subtree_end(p: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(p.len() + 1);
    out.extend_from_slice(p);
    out.push(GAP_MARK);
    out
}

/// The smallest byte string strictly greater than **every** string with
/// prefix `p`: drop trailing `0xFF` bytes and increment the last remaining
/// byte. Returns `None` when no such string exists (`p` empty or all
/// `0xFF`), meaning the range extends to the end of the key space.
///
/// This is the *raw byte-extension* bound; subtree scans over minted keys
/// use the tighter [`subtree_end`] / [`before_subtree_end`], which stop
/// before `p`'s sibling gap.
pub fn prefix_succ(p: &[u8]) -> Option<Vec<u8>> {
    let end = p.iter().rposition(|&b| b != 0xFF)?;
    let mut out = p[..=end].to_vec();
    out[end] += 1;
    Some(out)
}

/// True iff `y < subtree_end(p)` — the allocation-free form of the subtree
/// upper bound. Equivalent to `y < p || is_prefix(p, y)`: a key below the
/// subtree's end either precedes the subtree entirely or lies inside it.
#[inline]
pub fn before_subtree_end(p: &[u8], y: &[u8]) -> bool {
    (y.starts_with(p) && !extends_into_gap(p, y)) || y < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::number::Comp;
    use crate::{pbn, EncodedPbn, Pbn};

    fn enc(p: &Pbn) -> Vec<u8> {
        EncodedPbn::encode(p).as_bytes().to_vec()
    }

    /// A key universe mixing plain and minted numbers.
    fn universe() -> Vec<(Pbn, Vec<u8>)> {
        let mut nums = vec![
            pbn![1],
            pbn![1, 1],
            pbn![1, 1, 200],
            pbn![1, 2],
            pbn![1, 2, 7],
            pbn![1, 2, 999, 4],
            pbn![1, 3],
            pbn![1, 127],
            pbn![1, 128],
            pbn![1, 128, 1],
            pbn![1, 129],
            pbn![2],
        ];
        nums.push(Pbn::root().child_comp(Comp::minted(0, vec![0x80])));
        nums.push(Pbn::root().child_comp(Comp::minted(0, vec![0x80])).child(2));
        nums.push(Pbn::root().child_comp(Comp::minted(2, vec![0x40])));
        nums.push(Pbn::root().child_comp(Comp::minted(2, vec![0x40, 0x02])));
        nums.push(Pbn::root().child_comp(Comp::minted(2, vec![0x40])).child(1));
        nums.push(Pbn::root().child_comp(Comp::minted(128, vec![0x80])));
        nums.into_iter().map(|p| (p.clone(), enc(&p))).collect()
    }

    #[test]
    fn cmp_is_document_order() {
        let u = universe();
        for (x, kx) in &u {
            for (y, ky) in &u {
                assert_eq!(cmp(kx, ky), x.cmp(y), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn prefix_predicates_match_number_prefixes() {
        // Including minted keys: byte predicates must agree with the
        // component-level prefix tests, which are gap-correct by
        // construction (a minted component never equals a plain one).
        let u = universe();
        for (x, kx) in &u {
            for (y, ky) in &u {
                assert_eq!(is_prefix(kx, ky), x.is_prefix_of(y), "{x} vs {y}");
                assert_eq!(
                    is_strict_prefix(kx, ky),
                    x.is_strict_prefix_of(y),
                    "{x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn component_walks_agree_with_the_number_form() {
        let p = pbn![1, 128, 2, 300_000, 5];
        let k = enc(&p);
        assert_eq!(component_count(&k), 5);
        for m in 0..=5 {
            let boundary = component_boundary(&k, m);
            assert_eq!(&k[..boundary], &enc(&p.prefix(m))[..], "m = {m}");
        }
        // Saturation past the end.
        assert_eq!(component_boundary(&k, 99), k.len());
    }

    #[test]
    fn component_walks_treat_a_minted_component_as_one_unit() {
        let p = Pbn::root()
            .child_comp(Comp::minted(2, vec![0x40, 0x02]))
            .child(3)
            .child_comp(Comp::minted(0, vec![0x80]));
        let k = enc(&p);
        assert_eq!(component_count(&k), 4);
        for m in 0..=4 {
            let boundary = component_boundary(&k, m);
            assert_eq!(&k[..boundary], &enc(&p.prefix(m))[..], "m = {m}");
        }
    }

    #[test]
    fn prefix_succ_drops_ff_tails_and_increments() {
        assert_eq!(prefix_succ(&[1, 2]), Some(vec![1, 3]));
        assert_eq!(prefix_succ(&[1, 0xFF, 0xFF]), Some(vec![2]));
        assert_eq!(prefix_succ(&[0xFF, 0xFF]), None);
        assert_eq!(prefix_succ(&[]), None);
    }

    #[test]
    fn subtree_end_bounds_exactly_the_subtree() {
        // Membership in [p, subtree_end(p)) equals the ancestor-or-self
        // test — the theorem the range scans rely on — for plain *and*
        // minted keys.
        let u = universe();
        for (x, p) in &u {
            let hi = subtree_end(p);
            for (y, k) in &u {
                let inside = p.as_slice() <= k.as_slice() && k.as_slice() < hi.as_slice();
                assert_eq!(inside, x.is_prefix_of(y), "p={x} y={y}");
                assert_eq!(
                    k.as_slice() < hi.as_slice(),
                    before_subtree_end(p, k),
                    "p={x} y={y}"
                );
            }
        }
    }

    #[test]
    fn empty_prefix_spans_everything() {
        assert!(before_subtree_end(&[], &enc(&pbn![1])));
        assert!(is_prefix(&[], &enc(&pbn![7, 7])));
    }
}
