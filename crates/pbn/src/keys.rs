//! Primitives on encoded PBN byte keys.
//!
//! The [`crate::encode`] scheme guarantees two structural facts about the
//! byte strings it produces:
//!
//! 1. `memcmp(enc(x), enc(y))` equals document order `x.cmp(y)`, and
//! 2. `enc(p)` is a byte-prefix of `enc(p.k)` for every child `p.k` — and
//!    the *only* byte-extensions of `enc(p)` that are **not** descendants
//!    of `p` are the minted gap siblings continuing with
//!    [`GAP_MARK`] (see `DESIGN.md` §12).
//!
//! Everything in this module follows from those facts alone, so the
//! functions take plain `&[u8]` slices — typically borrowed from a
//! [`crate::arena::PbnArena`] — and never allocate on the comparison path.
//! This is what turns the §5 axis predicates into `starts_with` /
//! `memcmp` calls and subtree axes into byte-range scans.
//!
//! The prefix predicates require `p` to end on a component boundary (a
//! full node key, or a [`component_boundary`] cut of one); `y` may be any
//! valid key.

use crate::encode::{ordinal_len, FRAC_END, FRONT_MARK, GAP_MARK};
use std::cmp::Ordering;

// --------------------------------------------------------- SWAR kernels ---
//
// The innermost operations — "is this key a prefix of that one", "which
// key sorts first" — run on every axis predicate, every binary-search
// probe and every structural-join containment test. The kernels below
// process keys a `u64` word at a time (SWAR: SIMD within a register)
// under `#![forbid(unsafe_code)]`: `from_le_bytes` on an 8-byte window
// compiles to one unaligned load, the XOR of two windows is zero exactly
// on equal bytes, and `trailing_zeros >> 3` names the first differing
// byte (little-endian keeps byte 0 in the low bits). No `std::simd`
// (nightly-only) and no `memchr`-style dependency — the workspace is
// dependency-free and pinned to MSRV 1.85 (DESIGN.md §13).
//
// Every `*_swar` kernel has a byte-at-a-time scalar twin it must agree
// with on all inputs; the `// oracle:` comments are load-bearing — the
// vh-vet `oracle-twin` lint fails the build when a kernel loses its twin.

/// Bytes per SWAR word.
const WORD: usize = 8;

/// Full-width little-endian load of `bytes[at..at + 8]`.
#[inline]
fn load_le(bytes: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; WORD];
    // vet: allow(hot-path) — every caller checks at + WORD ≤ bytes.len() before loading
    buf.copy_from_slice(&bytes[at..at + WORD]);
    u64::from_le_bytes(buf)
}

/// Length of the longest common byte prefix of `a` and `b`, one `u64`
/// word per step: XOR the windows, and the first set bit's byte index is
/// the first difference.
///
/// oracle: common_prefix_len_scalar
// vet: hot
#[inline]
pub fn common_prefix_len_swar(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i + WORD <= n {
        let x = load_le(a, i) ^ load_le(b, i);
        if x != 0 {
            return i + (x.trailing_zeros() as usize >> 3);
        }
        i += WORD;
    }
    // Tail (< 8 bytes): plain byte loop. A zero-padded word load costs a
    // variable-length copy per side, which loses to straight-line byte
    // compares on the short keys shallow documents mint.
    // vet: allow(hot-path) — i < n ≤ min(a.len(), b.len()) bounds both probes
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

/// Scalar twin of [`common_prefix_len_swar`]: the byte loop the kernel
/// must be indistinguishable from. Kept `pub` so property tests and the
/// bench ablation can drive both sides.
#[inline]
pub fn common_prefix_len_scalar(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// Word-parallel `y.starts_with(p)`: full 8-byte windows of `p` compare
/// as `u64`s, the sub-word tail as one slice equality (`memcmp`-class
/// code), so short prefixes pay exactly what `std`'s `starts_with` does
/// and long ones drop the per-byte loop.
///
/// oracle: starts_with_scalar
// vet: hot
#[inline]
pub fn starts_with_swar(y: &[u8], p: &[u8]) -> bool {
    if p.len() > y.len() {
        return false;
    }
    let mut i = 0;
    while i + WORD <= p.len() {
        if load_le(p, i) != load_le(y, i) {
            return false;
        }
        i += WORD;
    }
    // vet: allow(hot-path) — p.len() ≤ y.len() was checked at entry and i ≤ p.len()
    p[i..] == y[i..p.len()]
}

/// Scalar twin of [`starts_with_swar`] (`std`'s byte-loop semantics).
#[inline]
pub fn starts_with_scalar(y: &[u8], p: &[u8]) -> bool {
    y.starts_with(p)
}

/// Word-parallel lexicographic byte comparison: walk full 8-byte windows
/// until one XORs non-zero — `trailing_zeros >> 3` then names the
/// deciding byte — and hand the sub-word tail to `std`'s slice ordering
/// (`memcmp`-class), so short keys pay exactly what `a.cmp(b)` does.
///
/// oracle: cmp_scalar
// vet: hot
#[inline]
pub fn cmp_swar(a: &[u8], b: &[u8]) -> Ordering {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i + WORD <= n {
        let x = load_le(a, i) ^ load_le(b, i);
        if x != 0 {
            let k = i + (x.trailing_zeros() as usize >> 3);
            // vet: allow(hot-path) — k < i + WORD ≤ n ≤ both lengths: the differing byte lies inside the loaded window
            return a[k].cmp(&b[k]);
        }
        i += WORD;
    }
    // vet: allow(hot-path) — i ≤ n ≤ both lengths, so both range tails are in bounds
    a[i..].cmp(&b[i..])
}

/// Scalar twin of [`cmp_swar`]: `std`'s slice ordering.
#[inline]
pub fn cmp_scalar(a: &[u8], b: &[u8]) -> Ordering {
    a.cmp(b)
}

/// Document order of two encoded keys: a plain byte comparison (SWAR'd).
#[inline]
pub fn cmp(a: &[u8], b: &[u8]) -> Ordering {
    cmp_swar(a, b)
}

/// True when `y`'s byte at the end of prefix `p` continues into `p`'s
/// sibling gap — i.e. `y` byte-extends `p` but is a minted *following
/// sibling* (or its descendant), not a descendant of `p`.
#[inline]
fn extends_into_gap(p: &[u8], y: &[u8]) -> bool {
    y.get(p.len()) == Some(&GAP_MARK)
}

/// True if `p` encodes an ancestor-or-self of `y`.
///
/// A byte-prefix test, refined for minted keys: an extension continuing
/// with [`GAP_MARK`] right after `p` lies in
/// `p`'s sibling gap and is excluded. (Front-gap children, continuing
/// with `0x00`, *are* descendants and remain included.)
// vet: hot
#[inline]
pub fn is_prefix(p: &[u8], y: &[u8]) -> bool {
    starts_with_swar(y, p) && !extends_into_gap(p, y)
}

/// True if `p` encodes a proper ancestor of `y` (strict prefix, same
/// gap-sibling exclusion as [`is_prefix`]).
// vet: hot
#[inline]
pub fn is_strict_prefix(p: &[u8], y: &[u8]) -> bool {
    y.len() > p.len() && starts_with_swar(y, p) && !extends_into_gap(p, y)
}

/// Number of bytes of the first component of `key`.
///
/// Components are self-delimiting: a plain ordinal's length follows from
/// the leading bits of its first byte; a minted component appends a
/// `0x00`-terminated fraction opened by `FRONT_MARK`/`GAP_MARK`. The
/// ordinal **and** its gap fraction are one component. Saturates at the
/// end of the key for truncated input (the codec, not this walker, is
/// responsible for rejecting it).
pub fn component_len(key: &[u8]) -> usize {
    let Some(&b0) = key.first() else {
        return 0;
    };
    let after_ord = if b0 == FRONT_MARK { 1 } else { ordinal_len(b0) };
    if after_ord > key.len() {
        return key.len();
    }
    let has_frac = b0 == FRONT_MARK || key.get(after_ord) == Some(&GAP_MARK);
    if !has_frac {
        return after_ord;
    }
    let frac_from = if b0 == FRONT_MARK {
        after_ord
    } else {
        after_ord + 1
    };
    match key[frac_from..].iter().position(|&b| b == FRAC_END) {
        Some(p) => frac_from + p + 1,
        None => key.len(),
    }
}

/// Byte offset of the end of the first `m` components of `key`, i.e.
/// `enc(x)[..component_boundary(enc(x), m)] == enc(x.prefix(m))`.
///
/// Walks at most `m` components; saturates at the end of the key (a key
/// with fewer than `m` components yields its full length).
pub fn component_boundary(key: &[u8], m: usize) -> usize {
    let mut i = 0;
    for _ in 0..m {
        if i >= key.len() {
            break;
        }
        i += component_len(&key[i..]);
    }
    i.min(key.len())
}

/// Number of components encoded in `key`.
pub fn component_count(key: &[u8]) -> usize {
    let mut i = 0;
    let mut n = 0;
    while i < key.len() {
        i += component_len(&key[i..]);
        n += 1;
    }
    n
}

/// The exclusive upper bound of the subtree rooted at the node with key
/// `p`: `p · GAP_MARK`. Every descendant key is below it (component first
/// bytes are `<= 0xF0` or `FRONT_MARK`), and every minted following
/// sibling of `p` — which byte-extends `p` with `GAP_MARK` — is at or
/// above it.
pub fn subtree_end(p: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(p.len() + 1);
    out.extend_from_slice(p);
    out.push(GAP_MARK);
    out
}

/// The smallest byte string strictly greater than **every** string with
/// prefix `p`: drop trailing `0xFF` bytes and increment the last remaining
/// byte. Returns `None` when no such string exists (`p` empty or all
/// `0xFF`), meaning the range extends to the end of the key space.
///
/// This is the *raw byte-extension* bound; subtree scans over minted keys
/// use the tighter [`subtree_end`] / [`before_subtree_end`], which stop
/// before `p`'s sibling gap.
pub fn prefix_succ(p: &[u8]) -> Option<Vec<u8>> {
    let end = p.iter().rposition(|&b| b != 0xFF)?;
    let mut out = p[..=end].to_vec();
    out[end] += 1;
    Some(out)
}

/// True iff `y < subtree_end(p)` — the allocation-free form of the subtree
/// upper bound. Equivalent to `y < p || is_prefix(p, y)`: a key below the
/// subtree's end either precedes the subtree entirely or lies inside it.
#[inline]
pub fn before_subtree_end(p: &[u8], y: &[u8]) -> bool {
    before_subtree_end_swar(p, y)
}

/// One SWAR pass decides both arms of [`before_subtree_end`]: with `k`
/// common bytes, `y` extends `p` iff `k == p.len() ≤ y.len()`, and
/// otherwise `y < p` iff the first differing byte (or `y` running out)
/// says so.
///
/// oracle: before_subtree_end_scalar
// vet: hot
#[inline]
pub fn before_subtree_end_swar(p: &[u8], y: &[u8]) -> bool {
    let k = common_prefix_len_swar(p, y);
    if k == p.len() && y.len() >= p.len() {
        !extends_into_gap(p, y)
    } else {
        match (y.get(k), p.get(k)) {
            (Some(a), Some(b)) => a < b,
            _ => y.len() < p.len(),
        }
    }
}

/// Scalar twin of [`before_subtree_end_swar`], byte loops only — the
/// form the SWAR rewrite must agree with on every key pair.
#[inline]
pub fn before_subtree_end_scalar(p: &[u8], y: &[u8]) -> bool {
    (y.starts_with(p) && !extends_into_gap(p, y)) || y < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::number::Comp;
    use crate::{pbn, EncodedPbn, Pbn};

    fn enc(p: &Pbn) -> Vec<u8> {
        EncodedPbn::encode(p).as_bytes().to_vec()
    }

    /// A key universe mixing plain and minted numbers.
    fn universe() -> Vec<(Pbn, Vec<u8>)> {
        let mut nums = vec![
            pbn![1],
            pbn![1, 1],
            pbn![1, 1, 200],
            pbn![1, 2],
            pbn![1, 2, 7],
            pbn![1, 2, 999, 4],
            pbn![1, 3],
            pbn![1, 127],
            pbn![1, 128],
            pbn![1, 128, 1],
            pbn![1, 129],
            pbn![2],
        ];
        nums.push(Pbn::root().child_comp(Comp::minted(0, vec![0x80])));
        nums.push(Pbn::root().child_comp(Comp::minted(0, vec![0x80])).child(2));
        nums.push(Pbn::root().child_comp(Comp::minted(2, vec![0x40])));
        nums.push(Pbn::root().child_comp(Comp::minted(2, vec![0x40, 0x02])));
        nums.push(Pbn::root().child_comp(Comp::minted(2, vec![0x40])).child(1));
        nums.push(Pbn::root().child_comp(Comp::minted(128, vec![0x80])));
        nums.into_iter().map(|p| (p.clone(), enc(&p))).collect()
    }

    #[test]
    fn cmp_is_document_order() {
        let u = universe();
        for (x, kx) in &u {
            for (y, ky) in &u {
                assert_eq!(cmp(kx, ky), x.cmp(y), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn prefix_predicates_match_number_prefixes() {
        // Including minted keys: byte predicates must agree with the
        // component-level prefix tests, which are gap-correct by
        // construction (a minted component never equals a plain one).
        let u = universe();
        for (x, kx) in &u {
            for (y, ky) in &u {
                assert_eq!(is_prefix(kx, ky), x.is_prefix_of(y), "{x} vs {y}");
                assert_eq!(
                    is_strict_prefix(kx, ky),
                    x.is_strict_prefix_of(y),
                    "{x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn component_walks_agree_with_the_number_form() {
        let p = pbn![1, 128, 2, 300_000, 5];
        let k = enc(&p);
        assert_eq!(component_count(&k), 5);
        for m in 0..=5 {
            let boundary = component_boundary(&k, m);
            assert_eq!(&k[..boundary], &enc(&p.prefix(m))[..], "m = {m}");
        }
        // Saturation past the end.
        assert_eq!(component_boundary(&k, 99), k.len());
    }

    #[test]
    fn component_walks_treat_a_minted_component_as_one_unit() {
        let p = Pbn::root()
            .child_comp(Comp::minted(2, vec![0x40, 0x02]))
            .child(3)
            .child_comp(Comp::minted(0, vec![0x80]));
        let k = enc(&p);
        assert_eq!(component_count(&k), 4);
        for m in 0..=4 {
            let boundary = component_boundary(&k, m);
            assert_eq!(&k[..boundary], &enc(&p.prefix(m))[..], "m = {m}");
        }
    }

    #[test]
    fn prefix_succ_drops_ff_tails_and_increments() {
        assert_eq!(prefix_succ(&[1, 2]), Some(vec![1, 3]));
        assert_eq!(prefix_succ(&[1, 0xFF, 0xFF]), Some(vec![2]));
        assert_eq!(prefix_succ(&[0xFF, 0xFF]), None);
        assert_eq!(prefix_succ(&[]), None);
    }

    #[test]
    fn subtree_end_bounds_exactly_the_subtree() {
        // Membership in [p, subtree_end(p)) equals the ancestor-or-self
        // test — the theorem the range scans rely on — for plain *and*
        // minted keys.
        let u = universe();
        for (x, p) in &u {
            let hi = subtree_end(p);
            for (y, k) in &u {
                let inside = p.as_slice() <= k.as_slice() && k.as_slice() < hi.as_slice();
                assert_eq!(inside, x.is_prefix_of(y), "p={x} y={y}");
                assert_eq!(
                    k.as_slice() < hi.as_slice(),
                    before_subtree_end(p, k),
                    "p={x} y={y}"
                );
            }
        }
    }

    #[test]
    fn empty_prefix_spans_everything() {
        assert!(before_subtree_end(&[], &enc(&pbn![1])));
        assert!(is_prefix(&[], &enc(&pbn![7, 7])));
    }

    // ------------------------- SWAR kernels vs their scalar twins ---------

    /// Asserts every SWAR kernel agrees with its scalar twin on one pair.
    fn assert_twins_agree(a: &[u8], b: &[u8]) {
        assert_eq!(
            common_prefix_len_swar(a, b),
            common_prefix_len_scalar(a, b),
            "common_prefix_len on {a:02x?} vs {b:02x?}"
        );
        assert_eq!(
            starts_with_swar(a, b),
            starts_with_scalar(a, b),
            "starts_with on {a:02x?} vs {b:02x?}"
        );
        assert_eq!(
            cmp_swar(a, b),
            cmp_scalar(a, b),
            "cmp on {a:02x?} vs {b:02x?}"
        );
        assert_eq!(
            before_subtree_end_swar(a, b),
            before_subtree_end_scalar(a, b),
            "before_subtree_end on {a:02x?} vs {b:02x?}"
        );
    }

    /// Adversarial lengths: every pairing of lengths 0..17 straddles the
    /// 8-byte word boundary (0, 7, 8, 9, 15, 16 in particular), with the
    /// shared prefix ending at every byte of the shorter key — including
    /// mid-word — and the first difference being each of +1/-1/0xFF flips.
    #[test]
    fn swar_twins_agree_around_the_word_boundary() {
        for la in 0..17usize {
            for lb in 0..17usize {
                let base: Vec<u8> = (0..la.max(lb))
                    .map(|i| (i as u8).wrapping_mul(37))
                    .collect();
                for cut in 0..=la.min(lb) {
                    for flip in [0x01u8, 0xFF, 0x80] {
                        let a: Vec<u8> = base[..la].to_vec();
                        let mut b: Vec<u8> = base[..lb].to_vec();
                        if cut < b.len() {
                            b[cut] ^= flip;
                        }
                        assert_twins_agree(&a, &b);
                        assert_twins_agree(&b, &a);
                    }
                }
            }
        }
    }

    /// Saturated runs: keys that are all-0x00 or all-0xFF defeat any
    /// early-out keyed on byte values (a zero XOR word looks exactly like
    /// tail padding).
    #[test]
    fn swar_twins_agree_on_saturated_runs() {
        for la in 0..17usize {
            for lb in 0..17usize {
                for (fa, fb) in [(0x00u8, 0x00u8), (0xFF, 0xFF), (0x00, 0xFF), (0xFF, 0x00)] {
                    let a = vec![fa; la];
                    let b = vec![fb; lb];
                    assert_twins_agree(&a, &b);
                    // A single dissenting byte at each end of the run.
                    for pos in [0usize, la.saturating_sub(1)] {
                        let mut a2 = a.clone();
                        if pos < a2.len() {
                            a2[pos] ^= 0x10;
                        }
                        assert_twins_agree(&a2, &b);
                    }
                }
            }
        }
    }

    /// Minted gap-fraction keys: real encoder output whose GAP_MARK /
    /// FRONT_MARK / FRAC_END bytes sit at codec-chosen offsets, crossed
    /// against the whole universe and against component-boundary cuts of
    /// themselves (the prefixes the §5 predicates actually probe with).
    #[test]
    fn swar_twins_agree_on_minted_universe_keys() {
        let u = universe();
        for (_, ka) in &u {
            for (_, kb) in &u {
                assert_twins_agree(ka, kb);
            }
            for m in 0..=component_count(ka) {
                let p = &ka[..component_boundary(ka, m)];
                for (_, kb) in &u {
                    assert_twins_agree(p, kb);
                    assert_twins_agree(kb, p);
                }
            }
        }
    }

    /// A deterministic LCG fuzz pass over byte pairs sharing random-length
    /// prefixes, lengths skewed to hug the word boundary.
    #[test]
    fn swar_twins_agree_on_lcg_fuzz() {
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..4000 {
            let la = (next() % 24) as usize;
            let lb = (next() % 24) as usize;
            let shared = (next() as usize) % (la.min(lb) + 1);
            let mut a = vec![0u8; la];
            let mut b = vec![0u8; lb];
            for x in a.iter_mut() {
                *x = next() as u8;
            }
            b[..shared.min(la)].copy_from_slice(&a[..shared.min(la)]);
            for x in b.iter_mut().skip(shared) {
                *x = next() as u8;
            }
            assert_twins_agree(&a, &b);
        }
    }
}
