//! Primitives on encoded PBN byte keys.
//!
//! The [`crate::encode`] scheme guarantees two structural facts about the
//! byte strings it produces:
//!
//! 1. `memcmp(enc(x), enc(y))` equals document order `x.cmp(y)`, and
//! 2. `enc(p)` is a byte-prefix of `enc(p.k)` for every child `p.k`.
//!
//! Everything in this module follows from those two facts alone, so the
//! functions take plain `&[u8]` slices — typically borrowed from a
//! [`crate::arena::PbnArena`] — and never allocate on the comparison path.
//! This is what turns the §5 axis predicates into `starts_with` /
//! `memcmp` calls and subtree axes into byte-range scans.

use std::cmp::Ordering;

/// Document order of two encoded keys: a plain byte comparison.
#[inline]
pub fn cmp(a: &[u8], b: &[u8]) -> Ordering {
    a.cmp(b)
}

/// True if `p` encodes an ancestor-or-self of `y` (non-strict byte prefix).
#[inline]
pub fn is_prefix(p: &[u8], y: &[u8]) -> bool {
    y.starts_with(p)
}

/// True if `p` encodes a proper ancestor of `y` (strict byte prefix).
#[inline]
pub fn is_strict_prefix(p: &[u8], y: &[u8]) -> bool {
    y.len() > p.len() && y.starts_with(p)
}

/// Number of bytes of the component whose first byte is `b0`.
///
/// Components are self-delimiting: the tier (and hence the length) is
/// fully determined by the leading bits of the first byte.
#[inline]
pub fn component_len(b0: u8) -> usize {
    if b0 & 0b1000_0000 == 0 {
        1
    } else if b0 & 0b0100_0000 == 0 {
        2
    } else if b0 & 0b0010_0000 == 0 {
        3
    } else if b0 & 0b0001_0000 == 0 {
        4
    } else {
        5
    }
}

/// Byte offset of the end of the first `m` components of `key`, i.e.
/// `enc(x)[..component_boundary(enc(x), m)] == enc(x.prefix(m))`.
///
/// Walks at most `m` components; saturates at the end of the key (a key
/// with fewer than `m` components yields its full length).
pub fn component_boundary(key: &[u8], m: usize) -> usize {
    let mut i = 0;
    for _ in 0..m {
        if i >= key.len() {
            break;
        }
        i += component_len(key[i]);
    }
    i.min(key.len())
}

/// Number of components encoded in `key`.
pub fn component_count(key: &[u8]) -> usize {
    let mut i = 0;
    let mut n = 0;
    while i < key.len() {
        i += component_len(key[i]);
        n += 1;
    }
    n
}

/// The smallest byte string strictly greater than **every** string with
/// prefix `p`: drop trailing `0xFF` bytes and increment the last remaining
/// byte. Returns `None` when no such string exists (`p` empty or all
/// `0xFF`), meaning the subtree range extends to the end of the key space.
///
/// Correctness: `[p, prefix_succ(p))` in byte-lexicographic order contains
/// exactly `p` and its extensions — any `y ≥ p` below the bound must agree
/// with `p` on every non-dropped byte (it cannot exceed a `0xFF`), hence
/// carries `p` as a prefix.
pub fn prefix_succ(p: &[u8]) -> Option<Vec<u8>> {
    let end = p.iter().rposition(|&b| b != 0xFF)?;
    let mut out = p[..=end].to_vec();
    out[end] += 1;
    Some(out)
}

/// True iff `y < prefix_succ(p)` — the allocation-free form of the subtree
/// upper bound. Equivalent to `y < p || y.starts_with(p)`: a key below the
/// subtree's end either precedes the subtree entirely or lies inside it.
/// When `prefix_succ(p)` is `None` the bound is infinite and this is true
/// for every `y`, which the disjunction already yields.
#[inline]
pub fn before_subtree_end(p: &[u8], y: &[u8]) -> bool {
    y.starts_with(p) || y < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pbn, EncodedPbn, Pbn};

    fn enc(p: &Pbn) -> Vec<u8> {
        EncodedPbn::encode(p).as_bytes().to_vec()
    }

    #[test]
    fn cmp_is_document_order() {
        let nums = [
            pbn![1],
            pbn![1, 1],
            pbn![1, 1, 200],
            pbn![1, 2],
            pbn![1, 127],
            pbn![1, 128],
            pbn![1, 70_000],
            pbn![2],
        ];
        for x in &nums {
            for y in &nums {
                assert_eq!(cmp(&enc(x), &enc(y)), x.cmp(y), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn prefix_predicates_match_number_prefixes() {
        let p = pbn![1, 130];
        let c = pbn![1, 130, 99];
        let o = pbn![1, 131];
        assert!(is_prefix(&enc(&p), &enc(&c)));
        assert!(is_prefix(&enc(&p), &enc(&p)));
        assert!(!is_prefix(&enc(&p), &enc(&o)));
        assert!(is_strict_prefix(&enc(&p), &enc(&c)));
        assert!(!is_strict_prefix(&enc(&p), &enc(&p)));
    }

    #[test]
    fn component_walks_agree_with_the_number_form() {
        let p = pbn![1, 128, 2, 300_000, 5];
        let k = enc(&p);
        assert_eq!(component_count(&k), 5);
        for m in 0..=5 {
            let boundary = component_boundary(&k, m);
            assert_eq!(&k[..boundary], &enc(&p.prefix(m))[..], "m = {m}");
        }
        // Saturation past the end.
        assert_eq!(component_boundary(&k, 99), k.len());
    }

    #[test]
    fn prefix_succ_drops_ff_tails_and_increments() {
        assert_eq!(prefix_succ(&[1, 2]), Some(vec![1, 3]));
        assert_eq!(prefix_succ(&[1, 0xFF, 0xFF]), Some(vec![2]));
        assert_eq!(prefix_succ(&[0xFF, 0xFF]), None);
        assert_eq!(prefix_succ(&[]), None);
    }

    #[test]
    fn prefix_succ_bounds_exactly_the_prefix_extensions() {
        // For a spread of keys, membership in [p, succ) equals the prefix
        // test — the theorem the range scans rely on.
        let keys: Vec<Vec<u8>> = [
            pbn![1],
            pbn![1, 1],
            pbn![1, 2],
            pbn![1, 2, 7],
            pbn![1, 2, 999, 4],
            pbn![1, 3],
            pbn![1, 127],
            pbn![1, 128],
            pbn![1, 128, 1],
            pbn![1, 129],
            pbn![2],
        ]
        .iter()
        .map(enc)
        .collect();
        for p in &keys {
            for y in &keys {
                let inside = match prefix_succ(p) {
                    Some(hi) => p.as_slice() <= y.as_slice() && y.as_slice() < hi.as_slice(),
                    None => p.as_slice() <= y.as_slice(),
                };
                assert_eq!(inside, is_prefix(p, y), "p={p:?} y={y:?}");
                // And the allocation-free predicate agrees with `< succ`.
                let below = match prefix_succ(p) {
                    Some(hi) => y.as_slice() < hi.as_slice(),
                    None => true,
                };
                assert_eq!(below, before_subtree_end(p, y), "p={p:?} y={y:?}");
            }
        }
    }

    #[test]
    fn empty_prefix_spans_everything() {
        assert!(before_subtree_end(&[], &enc(&pbn![1])));
        assert!(is_prefix(&[], &enc(&pbn![7, 7])));
    }
}
