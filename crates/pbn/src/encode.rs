//! Compact, order-preserving byte encoding of PBN numbers.
//!
//! §4.2 notes that "there are strategies for packing PBN numbers into as few
//! bits as possible, making PBN numbers relatively concise" (citing UTF-8 /
//! ORDPATH-style schemes). This module implements such a scheme with the two
//! properties an index needs:
//!
//! 1. **Prefix property** — the encoding of `p` is a byte-prefix of the
//!    encoding of every `p.k`, so subtree scans become byte-range scans.
//! 2. **Order preservation** — plain `memcmp` of encodings equals document
//!    order, because each component's encoding is prefix-free and
//!    numerically order-preserving across byte lengths.
//!
//! Component tiers (values are 1-based ordinals):
//!
//! | first byte   | total bytes | values encoded              |
//! |--------------|-------------|-----------------------------|
//! | `0xxxxxxx`   | 1           | 1 ..= 2^7                   |
//! | `10xxxxxx`   | 2           | next 2^14                   |
//! | `110xxxxx`   | 3           | next 2^21                   |
//! | `1110xxxx`   | 4           | next 2^28                   |
//! | `11110000`   | 5           | the remaining u32 range     |

use crate::number::Pbn;

const T1: u64 = 1 << 7;
const T2: u64 = 1 << 14;
const T3: u64 = 1 << 21;
const T4: u64 = 1 << 28;

/// A PBN number in compact encoded form. Comparison (`Ord`) is a plain byte
/// comparison and equals document order.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EncodedPbn {
    bytes: Vec<u8>,
}

impl EncodedPbn {
    /// Encodes a number.
    pub fn encode(pbn: &Pbn) -> Self {
        let mut bytes = Vec::with_capacity(pbn.len() + 1);
        for &c in pbn.components() {
            encode_component(c, &mut bytes);
        }
        EncodedPbn { bytes }
    }

    /// Decodes back to component form.
    ///
    /// # Panics
    /// Panics if the bytes are not a valid encoding (cannot happen for
    /// values produced by [`EncodedPbn::encode`]).
    pub fn decode(&self) -> Pbn {
        let mut components = Vec::new();
        let mut i = 0;
        while i < self.bytes.len() {
            let (value, used) = decode_component(&self.bytes[i..]);
            components.push(value);
            i += used;
        }
        Pbn::new(components)
    }

    /// The encoded bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Size of the encoding in bytes.
    #[inline]
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// True if `self` encodes a (non-strict) ancestor-or-self of `other` —
    /// a plain byte-prefix test thanks to the prefix property.
    pub fn is_prefix_of(&self, other: &EncodedPbn) -> bool {
        other.bytes.len() >= self.bytes.len() && other.bytes[..self.bytes.len()] == self.bytes[..]
    }
}

impl std::fmt::Debug for EncodedPbn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EncodedPbn({})", self.decode())
    }
}

/// Encodes a single component (1-based) into `out`.
fn encode_component(c: u32, out: &mut Vec<u8>) {
    debug_assert!(c >= 1);
    let v = u64::from(c) - 1; // shift to 0-based for tier arithmetic
    if v < T1 {
        out.push(v as u8);
    } else if v < T1 + T2 {
        let r = v - T1;
        out.push(0b1000_0000 | (r >> 8) as u8);
        out.push((r & 0xFF) as u8);
    } else if v < T1 + T2 + T3 {
        let r = v - T1 - T2;
        out.push(0b1100_0000 | (r >> 16) as u8);
        out.push(((r >> 8) & 0xFF) as u8);
        out.push((r & 0xFF) as u8);
    } else if v < T1 + T2 + T3 + T4 {
        let r = v - T1 - T2 - T3;
        out.push(0b1110_0000 | (r >> 24) as u8);
        out.push(((r >> 16) & 0xFF) as u8);
        out.push(((r >> 8) & 0xFF) as u8);
        out.push((r & 0xFF) as u8);
    } else {
        let r = v - T1 - T2 - T3 - T4;
        out.push(0b1111_0000);
        out.extend_from_slice(&(r as u32).to_be_bytes());
    }
}

/// Decodes one component from the front of `bytes`; returns (value, bytes used).
fn decode_component(bytes: &[u8]) -> (u32, usize) {
    let b0 = bytes[0];
    if b0 & 0b1000_0000 == 0 {
        (b0 as u32 + 1, 1)
    } else if b0 & 0b0100_0000 == 0 {
        let r = ((u64::from(b0 & 0b0011_1111)) << 8) | u64::from(bytes[1]);
        ((r + T1) as u32 + 1, 2)
    } else if b0 & 0b0010_0000 == 0 {
        let r = ((u64::from(b0 & 0b0001_1111)) << 16)
            | (u64::from(bytes[1]) << 8)
            | u64::from(bytes[2]);
        ((r + T1 + T2) as u32 + 1, 3)
    } else if b0 & 0b0001_0000 == 0 {
        let r = ((u64::from(b0 & 0b0000_1111)) << 24)
            | (u64::from(bytes[1]) << 16)
            | (u64::from(bytes[2]) << 8)
            | u64::from(bytes[3]);
        ((r + T1 + T2 + T3) as u32 + 1, 4)
    } else {
        let r = u64::from(u32::from_be_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]));
        ((r + T1 + T2 + T3 + T4) as u32 + 1, 5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pbn;

    #[test]
    fn round_trip_representative_values() {
        for c in [
            1u32,
            2,
            127,
            128,
            129,
            1000,
            (T1 + T2) as u32,
            (T1 + T2) as u32 + 1,
            (T1 + T2 + T3) as u32,
            (T1 + T2 + T3) as u32 + 1,
            (T1 + T2 + T3 + T4) as u32,
            (T1 + T2 + T3 + T4) as u32 + 1,
            u32::MAX,
        ] {
            let p = Pbn::new(vec![c]);
            let e = EncodedPbn::encode(&p);
            assert_eq!(e.decode(), p, "component {c}");
        }
    }

    #[test]
    fn multi_component_round_trip() {
        let p = pbn![1, 128, 2, 300_000, 5];
        assert_eq!(EncodedPbn::encode(&p).decode(), p);
    }

    #[test]
    fn small_components_take_one_byte() {
        let p = pbn![1, 2, 3, 4];
        assert_eq!(EncodedPbn::encode(&p).size(), 4);
        // vs. 16 bytes for the raw u32 representation.
    }

    #[test]
    fn byte_order_equals_document_order() {
        let nums = [
            pbn![1],
            pbn![1, 1],
            pbn![1, 1, 200],
            pbn![1, 2],
            pbn![1, 127],
            pbn![1, 128],
            pbn![1, 129],
            pbn![1, 70_000],
            pbn![2],
        ];
        for x in &nums {
            for y in &nums {
                let (ex, ey) = (EncodedPbn::encode(x), EncodedPbn::encode(y));
                assert_eq!(ex.cmp(&ey), x.cmp(y), "byte order disagrees for {x} vs {y}");
            }
        }
    }

    #[test]
    fn prefix_property_holds() {
        let p = pbn![1, 130];
        let c = pbn![1, 130, 99];
        let other = pbn![1, 131];
        let (ep, ec, eo) = (
            EncodedPbn::encode(&p),
            EncodedPbn::encode(&c),
            EncodedPbn::encode(&other),
        );
        assert!(ep.is_prefix_of(&ec));
        assert!(!ep.is_prefix_of(&eo));
        assert!(ep.is_prefix_of(&ep));
    }

    #[test]
    fn empty_number_encodes_to_empty_bytes() {
        let e = EncodedPbn::encode(&Pbn::empty());
        assert_eq!(e.size(), 0);
        assert_eq!(e.decode(), Pbn::empty());
    }
}
