//! Compact, order-preserving byte encoding of PBN numbers.
//!
//! §4.2 notes that "there are strategies for packing PBN numbers into as few
//! bits as possible, making PBN numbers relatively concise" (citing UTF-8 /
//! ORDPATH-style schemes). This module implements such a scheme with the two
//! properties an index needs:
//!
//! 1. **Prefix property** — the encoding of `p` is a byte-prefix of the
//!    encoding of every `p.k`, so subtree scans become byte-range scans.
//! 2. **Order preservation** — plain `memcmp` of encodings equals document
//!    order, because each component's encoding is prefix-free and
//!    numerically order-preserving across byte lengths.
//!
//! Ordinal tiers (values are the 1-based ordinals themselves):
//!
//! | first byte   | total bytes | values encoded              |
//! |--------------|-------------|-----------------------------|
//! | `0xxxxxxx`   | 1           | 1 ..= 2^7 - 1               |
//! | `10xxxxxx`   | 2           | next 2^14                   |
//! | `110xxxxx`   | 3           | next 2^21                   |
//! | `1110xxxx`   | 4           | next 2^28                   |
//! | `11110000`   | 5           | the remaining u32 range     |
//!
//! Two byte values are deliberately **never** produced by the ordinal
//! tiers and serve as markers for minted gap components (DESIGN.md §12):
//!
//! * [`FRONT_MARK`] (`0x00`) — below every ordinal. `K · 0x00 · F · 0x00`
//!   is a child of `K` minted *before* its first plain child.
//! * [`GAP_MARK`] (`0xF8`) — above every ordinal first byte (`<= 0xF0`).
//!   `enc(j) · 0xF8 · F · 0x00` sorts after the entire subtree of `j` and
//!   before `enc(j+1)`: a sibling minted *between* `j` and `j + 1`.
//!
//! First bytes `0xF1..=0xFF` other than a mid-component `0xF8` are
//! reserved and rejected ([`PbnCodecError::Reserved`]) so hostile bytes
//! can never alias a minted key.

use crate::number::{Comp, Pbn};

const T1: u64 = 1 << 7;
const T2: u64 = 1 << 14;
const T3: u64 = 1 << 21;
const T4: u64 = 1 << 28;

/// Marker byte opening the fraction of a front-gap component (`ord` 0).
/// Sorts below every ordinal encoding.
pub const FRONT_MARK: u8 = 0x00;

/// Marker byte opening the fraction of an after-gap component. Sorts above
/// every ordinal first byte and every descendant of the preceding key.
pub const GAP_MARK: u8 = 0xF8;

/// Terminator closing a fraction (fractions themselves never contain it).
pub const FRAC_END: u8 = 0x00;

/// Error describing why a byte string is not a valid PBN encoding.
///
/// Raised only on untrusted input (disk pages, wire bytes); values built
/// by [`EncodedPbn::encode`] always decode. Carries a stable code so the
/// suite-level `VhError` facade can classify it like any layer error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PbnCodecError {
    /// The buffer ends in the middle of a multi-byte component or an
    /// unterminated fraction.
    Truncated {
        /// Byte offset of the truncated component's first byte.
        at: usize,
    },
    /// A five-byte component encodes a value past `u32::MAX`.
    Overflow {
        /// Byte offset of the overflowing component's first byte.
        at: usize,
    },
    /// A reserved byte pattern: a first byte in `0xF1..=0xFF` that is not
    /// a gap continuation, or an empty minted fraction.
    Reserved {
        /// Byte offset of the offending byte.
        at: usize,
    },
}

impl PbnCodecError {
    /// Stable machine-readable code for the failure class.
    pub fn code(&self) -> &'static str {
        match self {
            PbnCodecError::Truncated { .. } => "PBN_TRUNCATED",
            PbnCodecError::Overflow { .. } => "PBN_OVERFLOW",
            PbnCodecError::Reserved { .. } => "PBN_RESERVED",
        }
    }
}

impl std::fmt::Display for PbnCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PbnCodecError::Truncated { at } => {
                write!(
                    f,
                    "PBN encoding truncated inside the component at byte {at}"
                )
            }
            PbnCodecError::Overflow { at } => write!(
                f,
                "PBN component at byte {at} exceeds the 32-bit ordinal range"
            ),
            PbnCodecError::Reserved { at } => {
                write!(f, "PBN encoding uses a reserved byte pattern at byte {at}")
            }
        }
    }
}

impl std::error::Error for PbnCodecError {}

/// A PBN number in compact encoded form. Comparison (`Ord`) is a plain byte
/// comparison and equals document order.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct EncodedPbn {
    bytes: Vec<u8>,
}

impl PartialOrd for EncodedPbn {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EncodedPbn {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        crate::keys::cmp(&self.bytes, &other.bytes)
    }
}

impl EncodedPbn {
    /// Encodes a number.
    pub fn encode(pbn: &Pbn) -> Self {
        let mut bytes = Vec::with_capacity(pbn.len() + 1);
        for c in pbn.components() {
            encode_component(c, &mut bytes);
        }
        EncodedPbn { bytes }
    }

    /// Wraps raw bytes as an encoded number after validating that they
    /// parse as a well-formed component sequence. This is the entry point
    /// for untrusted input (disk pages, wire bytes).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, PbnCodecError> {
        let candidate = EncodedPbn { bytes };
        candidate.try_decode()?;
        Ok(candidate)
    }

    /// Decodes back to component form.
    ///
    /// # Panics
    /// Panics if the bytes are not a valid encoding (cannot happen for
    /// values produced by [`EncodedPbn::encode`] or accepted by
    /// [`EncodedPbn::from_bytes`]).
    pub fn decode(&self) -> Pbn {
        // Documented panic: trusted internal call sites only; untrusted
        // input must go through `try_decode` / `from_bytes`.
        #[allow(clippy::expect_used)]
        self.try_decode()
            // vet: allow(no-panic) — documented panic; untrusted input goes through try_decode
            .expect("EncodedPbn holds a valid encoding")
    }

    /// Decodes back to component form, reporting malformed input instead
    /// of panicking.
    pub fn try_decode(&self) -> Result<Pbn, PbnCodecError> {
        let mut components = Vec::new();
        let mut i = 0;
        while i < self.bytes.len() {
            let (comp, used) = decode_component_checked(&self.bytes[i..], i)?;
            components.push(comp);
            i += used;
        }
        Ok(Pbn::from_comps(components))
    }

    /// The encoded bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Size of the encoding in bytes.
    #[inline]
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// True if `self` encodes a (non-strict) ancestor-or-self of `other` —
    /// a byte-prefix test (excluding `other`s that continue into `self`'s
    /// sibling gap, see [`crate::keys::is_prefix`]).
    pub fn is_prefix_of(&self, other: &EncodedPbn) -> bool {
        crate::keys::is_prefix(&self.bytes, &other.bytes)
    }
}

impl std::fmt::Debug for EncodedPbn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EncodedPbn({})", self.decode())
    }
}

/// Encodes a single component into `out`.
fn encode_component(c: &Comp, out: &mut Vec<u8>) {
    if c.ord() >= 1 {
        encode_ordinal(c.ord(), out);
    }
    let frac = c.frac();
    if !frac.is_empty() {
        out.push(if c.ord() == 0 { FRONT_MARK } else { GAP_MARK });
        out.extend_from_slice(frac);
        out.push(FRAC_END);
    }
    debug_assert!(c.ord() >= 1 || !frac.is_empty(), "ord-0 needs a fraction");
}

/// Encodes a 1-based ordinal into `out`.
fn encode_ordinal(c: u32, out: &mut Vec<u8>) {
    debug_assert!(c >= 1);
    let v = u64::from(c); // 1-based direct: byte 0x00 is never produced
    if v < T1 {
        out.push(v as u8);
    } else if v < T1 + T2 {
        let r = v - T1;
        out.push(0b1000_0000 | (r >> 8) as u8);
        out.push((r & 0xFF) as u8);
    } else if v < T1 + T2 + T3 {
        let r = v - T1 - T2;
        out.push(0b1100_0000 | (r >> 16) as u8);
        out.push(((r >> 8) & 0xFF) as u8);
        out.push((r & 0xFF) as u8);
    } else if v < T1 + T2 + T3 + T4 {
        let r = v - T1 - T2 - T3;
        out.push(0b1110_0000 | (r >> 24) as u8);
        out.push(((r >> 16) & 0xFF) as u8);
        out.push(((r >> 8) & 0xFF) as u8);
        out.push((r & 0xFF) as u8);
    } else {
        let r = v - T1 - T2 - T3 - T4;
        out.push(0b1111_0000);
        out.extend_from_slice(&(r as u32).to_be_bytes());
    }
}

/// Reads a fraction `F · FRAC_END` starting at `bytes[from..]`; `at` is the
/// component's absolute offset. Returns `(frac, bytes used incl. the
/// terminator)`.
fn decode_frac(bytes: &[u8], from: usize, at: usize) -> Result<(Vec<u8>, usize), PbnCodecError> {
    let Some(end) = bytes[from..].iter().position(|&b| b == FRAC_END) else {
        return Err(PbnCodecError::Truncated { at });
    };
    if end == 0 {
        return Err(PbnCodecError::Reserved { at });
    }
    Ok((bytes[from..from + end].to_vec(), end + 1))
}

/// Decodes one component from the front of `bytes`, which must be
/// non-empty; `at` is its absolute offset (for error reporting). Returns
/// `(component, bytes used)`. Bounds-checked: truncated multi-byte
/// components, unterminated fractions, five-byte values past the `u32`
/// range and reserved byte patterns are errors, never panics or silent
/// wrap-around.
fn decode_component_checked(bytes: &[u8], at: usize) -> Result<(Comp, usize), PbnCodecError> {
    let b0 = bytes[0];
    if b0 == FRONT_MARK {
        let (frac, used) = decode_frac(bytes, 1, at)?;
        return Ok((Comp::minted(0, frac), 1 + used));
    }
    if b0 > 0b1111_0000 {
        // 0xF1..=0xFF never open a component (0xF8 only *continues* one).
        return Err(PbnCodecError::Reserved { at });
    }
    let len = ordinal_len(b0);
    if bytes.len() < len {
        return Err(PbnCodecError::Truncated { at });
    }
    let (r, offset) = match len {
        1 => (u64::from(b0), 0),
        2 => ((u64::from(b0 & 0b0011_1111) << 8) | u64::from(bytes[1]), T1),
        3 => (
            (u64::from(b0 & 0b0001_1111) << 16) | (u64::from(bytes[1]) << 8) | u64::from(bytes[2]),
            T1 + T2,
        ),
        4 => (
            (u64::from(b0 & 0b0000_1111) << 24)
                | (u64::from(bytes[1]) << 16)
                | (u64::from(bytes[2]) << 8)
                | u64::from(bytes[3]),
            T1 + T2 + T3,
        ),
        _ => (
            u64::from(u32::from_be_bytes([bytes[1], bytes[2], bytes[3], bytes[4]])),
            T1 + T2 + T3 + T4,
        ),
    };
    // The component is the 1-based ordinal r + offset; it must fit u32.
    let ord = u32::try_from(r + offset).map_err(|_| PbnCodecError::Overflow { at })?;
    if bytes.get(len) == Some(&GAP_MARK) {
        let (frac, used) = decode_frac(bytes, len + 1, at)?;
        return Ok((Comp::minted(ord, frac), len + 1 + used));
    }
    Ok((Comp::new(ord), len))
}

/// Encodes one standalone 1-based ordinal with the tiered coder — the
/// public entry point for callers packing *non-PBN* values (the vh-serve
/// wire address length-prefixes its segments this way, so addresses sort
/// byte-wise like keys). Zero is not an ordinal and is rejected as
/// [`PbnCodecError::Reserved`]; everything else is a 1–5 byte encoding
/// whose `memcmp` order equals numeric order.
pub fn encode_ordinal_value(v: u32, out: &mut Vec<u8>) -> Result<(), PbnCodecError> {
    if v == 0 {
        return Err(PbnCodecError::Reserved { at: 0 });
    }
    encode_ordinal(v, out);
    Ok(())
}

/// Decodes one standalone 1-based ordinal from the front of `bytes`,
/// returning `(value, bytes used)`. The inverse of
/// [`encode_ordinal_value`]: marker and reserved first bytes are
/// rejected, truncated multi-byte tiers are [`PbnCodecError::Truncated`],
/// and — unlike the PBN component decoder — a trailing [`GAP_MARK`] is
/// *not* consumed, so the bytes after the ordinal are the caller's.
pub fn decode_ordinal_value(bytes: &[u8]) -> Result<(u32, usize), PbnCodecError> {
    let Some(&b0) = bytes.first() else {
        return Err(PbnCodecError::Truncated { at: 0 });
    };
    if b0 == FRONT_MARK || b0 > 0b1111_0000 {
        return Err(PbnCodecError::Reserved { at: 0 });
    }
    let len = ordinal_len(b0);
    if bytes.len() < len {
        return Err(PbnCodecError::Truncated { at: 0 });
    }
    let (r, offset) = match len {
        1 => (u64::from(b0), 0),
        2 => ((u64::from(b0 & 0b0011_1111) << 8) | u64::from(bytes[1]), T1),
        3 => (
            (u64::from(b0 & 0b0001_1111) << 16) | (u64::from(bytes[1]) << 8) | u64::from(bytes[2]),
            T1 + T2,
        ),
        4 => (
            (u64::from(b0 & 0b0000_1111) << 24)
                | (u64::from(bytes[1]) << 16)
                | (u64::from(bytes[2]) << 8)
                | u64::from(bytes[3]),
            T1 + T2 + T3,
        ),
        _ => (
            u64::from(u32::from_be_bytes([bytes[1], bytes[2], bytes[3], bytes[4]])),
            T1 + T2 + T3 + T4,
        ),
    };
    let v = u32::try_from(r + offset).map_err(|_| PbnCodecError::Overflow { at: 0 })?;
    Ok((v, len))
}

/// Byte length of an ordinal encoding, from its first byte's leading bits.
pub(crate) fn ordinal_len(b0: u8) -> usize {
    if b0 & 0b1000_0000 == 0 {
        1
    } else if b0 & 0b0100_0000 == 0 {
        2
    } else if b0 & 0b0010_0000 == 0 {
        3
    } else if b0 & 0b0001_0000 == 0 {
        4
    } else {
        5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pbn;

    #[test]
    fn round_trip_representative_values() {
        for c in [
            1u32,
            2,
            127,
            128,
            129,
            1000,
            (T1 + T2) as u32 - 1,
            (T1 + T2) as u32,
            (T1 + T2 + T3) as u32 - 1,
            (T1 + T2 + T3) as u32,
            (T1 + T2 + T3 + T4) as u32 - 1,
            (T1 + T2 + T3 + T4) as u32,
            u32::MAX,
        ] {
            let p = Pbn::new(vec![c]);
            let e = EncodedPbn::encode(&p);
            assert_eq!(e.decode(), p, "component {c}");
        }
    }

    #[test]
    fn multi_component_round_trip() {
        let p = pbn![1, 128, 2, 300_000, 5];
        assert_eq!(EncodedPbn::encode(&p).decode(), p);
    }

    #[test]
    fn minted_components_round_trip() {
        let p = Pbn::root()
            .child_comp(Comp::minted(2, vec![0x80]))
            .child(3)
            .child_comp(Comp::minted(0, vec![0x01, 0x02]));
        let e = EncodedPbn::encode(&p);
        assert_eq!(e.decode(), p);
        assert_eq!(EncodedPbn::from_bytes(e.as_bytes().to_vec()).unwrap(), e);
    }

    #[test]
    fn ordinal_bytes_never_collide_with_the_markers() {
        // The ordinal coder never emits 0x00 or 0xF1..0xFF as a first byte.
        for c in [1u32, 127, 128, 1000, 1 << 20, 1 << 29, u32::MAX] {
            let mut out = Vec::new();
            encode_ordinal(c, &mut out);
            assert_ne!(out[0], FRONT_MARK, "ordinal {c}");
            assert!(out[0] <= 0xF0, "ordinal {c} first byte {:#x}", out[0]);
        }
    }

    #[test]
    fn small_components_take_one_byte() {
        let p = pbn![1, 2, 3, 4];
        assert_eq!(EncodedPbn::encode(&p).size(), 4);
        // vs. 16 bytes for the raw u32 representation.
    }

    #[test]
    fn byte_order_equals_document_order() {
        let nums = [
            pbn![1],
            pbn![1, 1],
            pbn![1, 1, 200],
            pbn![1, 2],
            pbn![1, 127],
            pbn![1, 128],
            pbn![1, 129],
            pbn![1, 70_000],
            pbn![2],
        ];
        for x in &nums {
            for y in &nums {
                let (ex, ey) = (EncodedPbn::encode(x), EncodedPbn::encode(y));
                assert_eq!(ex.cmp(&ey), x.cmp(y), "byte order disagrees for {x} vs {y}");
            }
        }
    }

    #[test]
    fn byte_order_equals_document_order_with_minted_keys() {
        let nums = [
            pbn![1],
            Pbn::root().child_comp(Comp::minted(0, vec![0x7F])),
            Pbn::root().child_comp(Comp::minted(0, vec![0x80])),
            Pbn::root().child_comp(Comp::minted(0, vec![0x80])).child(1),
            pbn![1, 1],
            pbn![1, 1, 200],
            Pbn::root().child_comp(Comp::minted(1, vec![0x80])),
            pbn![1, 2],
            pbn![1, 2, 7],
            Pbn::root().child_comp(Comp::minted(2, vec![0x40])),
            Pbn::root().child_comp(Comp::minted(2, vec![0x40, 0x02])),
            Pbn::root()
                .child_comp(Comp::minted(2, vec![0x40, 0x02]))
                .child(5),
            Pbn::root().child_comp(Comp::minted(2, vec![0x41])),
            pbn![1, 3],
            pbn![1, 128],
            Pbn::root().child_comp(Comp::minted(128, vec![0x80])),
            pbn![1, 129],
            pbn![2],
        ];
        for x in &nums {
            for y in &nums {
                let (ex, ey) = (EncodedPbn::encode(x), EncodedPbn::encode(y));
                assert_eq!(ex.cmp(&ey), x.cmp(y), "byte order disagrees for {x} vs {y}");
            }
        }
    }

    #[test]
    fn prefix_property_holds() {
        let p = pbn![1, 130];
        let c = pbn![1, 130, 99];
        let other = pbn![1, 131];
        let (ep, ec, eo) = (
            EncodedPbn::encode(&p),
            EncodedPbn::encode(&c),
            EncodedPbn::encode(&other),
        );
        assert!(ep.is_prefix_of(&ec));
        assert!(!ep.is_prefix_of(&eo));
        assert!(ep.is_prefix_of(&ep));
    }

    #[test]
    fn gap_keys_are_not_descendants_of_their_left_sibling() {
        // enc({j, F}) byte-extends enc(j) — the GAP_MARK continuation —
        // but the prefix predicate must classify it as a *sibling*.
        let left = pbn![1, 2];
        let minted = Pbn::root().child_comp(Comp::minted(2, vec![0x80]));
        let (el, em) = (EncodedPbn::encode(&left), EncodedPbn::encode(&minted));
        assert!(em.as_bytes().starts_with(el.as_bytes()));
        assert!(!el.is_prefix_of(&em), "gap sibling misread as descendant");
        // The minted node is an ancestor of its own children, though.
        let child = minted.child(1);
        assert!(em.is_prefix_of(&EncodedPbn::encode(&child)));
    }

    #[test]
    fn empty_number_encodes_to_empty_bytes() {
        let e = EncodedPbn::encode(&Pbn::empty());
        assert_eq!(e.size(), 0);
        assert_eq!(e.decode(), Pbn::empty());
    }

    #[test]
    fn from_bytes_accepts_exactly_the_valid_encodings() {
        let p = pbn![1, 128, 2, 300_000, 5];
        let bytes = EncodedPbn::encode(&p).as_bytes().to_vec();
        let e = EncodedPbn::from_bytes(bytes).unwrap();
        assert_eq!(e.decode(), p);
        assert_eq!(
            EncodedPbn::from_bytes(Vec::new()).unwrap(),
            EncodedPbn::default()
        );
    }

    #[test]
    fn truncated_components_are_rejected_not_panicked() {
        // A two-byte component's first byte with nothing after it.
        let err = EncodedPbn::from_bytes(vec![0b1000_0001]).unwrap_err();
        assert_eq!(err, PbnCodecError::Truncated { at: 0 });
        assert_eq!(err.code(), "PBN_TRUNCATED");
        // Valid one-byte component followed by a truncated five-byte one.
        let err = EncodedPbn::from_bytes(vec![0x03, 0b1111_0000, 0, 0]).unwrap_err();
        assert_eq!(err, PbnCodecError::Truncated { at: 1 });
        // An unterminated fraction.
        let err = EncodedPbn::from_bytes(vec![0x03, GAP_MARK, 0x80]).unwrap_err();
        assert_eq!(err, PbnCodecError::Truncated { at: 0 });
    }

    #[test]
    fn reserved_patterns_are_rejected_not_misread() {
        // 0xF9 can never open a component.
        let err = EncodedPbn::from_bytes(vec![0xF9]).unwrap_err();
        assert_eq!(err, PbnCodecError::Reserved { at: 0 });
        assert_eq!(err.code(), "PBN_RESERVED");
        // A gap marker with an empty fraction.
        let err = EncodedPbn::from_bytes(vec![0x03, GAP_MARK, FRAC_END]).unwrap_err();
        assert_eq!(err, PbnCodecError::Reserved { at: 0 });
        // A front marker with an empty fraction.
        let err = EncodedPbn::from_bytes(vec![FRONT_MARK, FRAC_END]).unwrap_err();
        assert_eq!(err, PbnCodecError::Reserved { at: 0 });
    }

    #[test]
    fn standalone_ordinal_values_round_trip_in_order() {
        let values = [1u32, 2, 127, 128, 300_000, (T1 + T2 + T3) as u32, u32::MAX];
        let mut prev: Option<Vec<u8>> = None;
        for v in values {
            let mut out = Vec::new();
            encode_ordinal_value(v, &mut out).unwrap();
            let (back, used) = decode_ordinal_value(&out).unwrap();
            assert_eq!((back, used), (v, out.len()), "value {v}");
            if let Some(p) = &prev {
                assert!(p.as_slice() < out.as_slice(), "order broke at {v}");
            }
            prev = Some(out);
        }
    }

    #[test]
    fn standalone_ordinal_decoder_leaves_trailing_bytes_alone() {
        let mut out = Vec::new();
        encode_ordinal_value(7, &mut out).unwrap();
        // A GAP_MARK after the ordinal is payload here, not a fraction.
        out.extend_from_slice(&[GAP_MARK, 0x42]);
        assert_eq!(decode_ordinal_value(&out).unwrap(), (7, 1));
    }

    #[test]
    fn standalone_ordinal_rejects_markers_and_truncation() {
        assert_eq!(
            encode_ordinal_value(0, &mut Vec::new()).unwrap_err(),
            PbnCodecError::Reserved { at: 0 }
        );
        assert_eq!(
            decode_ordinal_value(&[]).unwrap_err(),
            PbnCodecError::Truncated { at: 0 }
        );
        assert_eq!(
            decode_ordinal_value(&[FRONT_MARK]).unwrap_err(),
            PbnCodecError::Reserved { at: 0 }
        );
        assert_eq!(
            decode_ordinal_value(&[0xF9]).unwrap_err(),
            PbnCodecError::Reserved { at: 0 }
        );
        assert_eq!(
            decode_ordinal_value(&[0b1000_0001]).unwrap_err(),
            PbnCodecError::Truncated { at: 0 }
        );
    }

    #[test]
    fn five_byte_overflow_is_rejected_not_wrapped() {
        // Largest representable component is u32::MAX; its payload is
        // u32::MAX - (T1+T2+T3+T4). Anything above must error.
        let max_r = (u64::from(u32::MAX) - (T1 + T2 + T3 + T4)) as u32;
        let mut ok = vec![0b1111_0000];
        ok.extend_from_slice(&max_r.to_be_bytes());
        assert_eq!(
            EncodedPbn::from_bytes(ok).unwrap().decode(),
            Pbn::new(vec![u32::MAX])
        );
        let mut bad = vec![0b1111_0000];
        bad.extend_from_slice(&(max_r + 1).to_be_bytes());
        let err = EncodedPbn::from_bytes(bad).unwrap_err();
        assert_eq!(err, PbnCodecError::Overflow { at: 0 });
        assert_eq!(err.code(), "PBN_OVERFLOW");
    }
}
