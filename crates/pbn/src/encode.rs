//! Compact, order-preserving byte encoding of PBN numbers.
//!
//! §4.2 notes that "there are strategies for packing PBN numbers into as few
//! bits as possible, making PBN numbers relatively concise" (citing UTF-8 /
//! ORDPATH-style schemes). This module implements such a scheme with the two
//! properties an index needs:
//!
//! 1. **Prefix property** — the encoding of `p` is a byte-prefix of the
//!    encoding of every `p.k`, so subtree scans become byte-range scans.
//! 2. **Order preservation** — plain `memcmp` of encodings equals document
//!    order, because each component's encoding is prefix-free and
//!    numerically order-preserving across byte lengths.
//!
//! Component tiers (values are 1-based ordinals):
//!
//! | first byte   | total bytes | values encoded              |
//! |--------------|-------------|-----------------------------|
//! | `0xxxxxxx`   | 1           | 1 ..= 2^7                   |
//! | `10xxxxxx`   | 2           | next 2^14                   |
//! | `110xxxxx`   | 3           | next 2^21                   |
//! | `1110xxxx`   | 4           | next 2^28                   |
//! | `11110000`   | 5           | the remaining u32 range     |

use crate::keys::component_len;
use crate::number::Pbn;

const T1: u64 = 1 << 7;
const T2: u64 = 1 << 14;
const T3: u64 = 1 << 21;
const T4: u64 = 1 << 28;

/// Error describing why a byte string is not a valid PBN encoding.
///
/// Raised only on untrusted input (disk pages, wire bytes); values built
/// by [`EncodedPbn::encode`] always decode. Carries a stable code so the
/// suite-level `VhError` facade can classify it like any layer error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PbnCodecError {
    /// The buffer ends in the middle of a multi-byte component.
    Truncated {
        /// Byte offset of the truncated component's first byte.
        at: usize,
    },
    /// A five-byte component encodes a value past `u32::MAX`.
    Overflow {
        /// Byte offset of the overflowing component's first byte.
        at: usize,
    },
}

impl PbnCodecError {
    /// Stable machine-readable code for the failure class.
    pub fn code(&self) -> &'static str {
        match self {
            PbnCodecError::Truncated { .. } => "PBN_TRUNCATED",
            PbnCodecError::Overflow { .. } => "PBN_OVERFLOW",
        }
    }
}

impl std::fmt::Display for PbnCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PbnCodecError::Truncated { at } => {
                write!(
                    f,
                    "PBN encoding truncated inside the component at byte {at}"
                )
            }
            PbnCodecError::Overflow { at } => write!(
                f,
                "PBN component at byte {at} exceeds the 32-bit ordinal range"
            ),
        }
    }
}

impl std::error::Error for PbnCodecError {}

/// A PBN number in compact encoded form. Comparison (`Ord`) is a plain byte
/// comparison and equals document order.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EncodedPbn {
    bytes: Vec<u8>,
}

impl EncodedPbn {
    /// Encodes a number.
    pub fn encode(pbn: &Pbn) -> Self {
        let mut bytes = Vec::with_capacity(pbn.len() + 1);
        for &c in pbn.components() {
            encode_component(c, &mut bytes);
        }
        EncodedPbn { bytes }
    }

    /// Wraps raw bytes as an encoded number after validating that they
    /// parse as a well-formed component sequence. This is the entry point
    /// for untrusted input (disk pages, wire bytes).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, PbnCodecError> {
        let candidate = EncodedPbn { bytes };
        candidate.try_decode()?;
        Ok(candidate)
    }

    /// Decodes back to component form.
    ///
    /// # Panics
    /// Panics if the bytes are not a valid encoding (cannot happen for
    /// values produced by [`EncodedPbn::encode`] or accepted by
    /// [`EncodedPbn::from_bytes`]).
    pub fn decode(&self) -> Pbn {
        // Documented panic: trusted internal call sites only; untrusted
        // input must go through `try_decode` / `from_bytes`.
        #[allow(clippy::expect_used)]
        self.try_decode()
            // vet: allow(no-panic) — documented panic; untrusted input goes through try_decode
            .expect("EncodedPbn holds a valid encoding")
    }

    /// Decodes back to component form, reporting malformed input instead
    /// of panicking.
    pub fn try_decode(&self) -> Result<Pbn, PbnCodecError> {
        let mut components = Vec::new();
        let mut i = 0;
        while i < self.bytes.len() {
            let (value, used) = decode_component_checked(&self.bytes[i..], i)?;
            components.push(value);
            i += used;
        }
        // Components are ≥ 1 by construction (tier values are offset by 1),
        // so the panicking constructor is unreachable here.
        Ok(Pbn::new(components))
    }

    /// The encoded bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Size of the encoding in bytes.
    #[inline]
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// True if `self` encodes a (non-strict) ancestor-or-self of `other` —
    /// a plain byte-prefix test thanks to the prefix property.
    pub fn is_prefix_of(&self, other: &EncodedPbn) -> bool {
        other.bytes.len() >= self.bytes.len() && other.bytes[..self.bytes.len()] == self.bytes[..]
    }
}

impl std::fmt::Debug for EncodedPbn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EncodedPbn({})", self.decode())
    }
}

/// Encodes a single component (1-based) into `out`.
fn encode_component(c: u32, out: &mut Vec<u8>) {
    debug_assert!(c >= 1);
    let v = u64::from(c) - 1; // shift to 0-based for tier arithmetic
    if v < T1 {
        out.push(v as u8);
    } else if v < T1 + T2 {
        let r = v - T1;
        out.push(0b1000_0000 | (r >> 8) as u8);
        out.push((r & 0xFF) as u8);
    } else if v < T1 + T2 + T3 {
        let r = v - T1 - T2;
        out.push(0b1100_0000 | (r >> 16) as u8);
        out.push(((r >> 8) & 0xFF) as u8);
        out.push((r & 0xFF) as u8);
    } else if v < T1 + T2 + T3 + T4 {
        let r = v - T1 - T2 - T3;
        out.push(0b1110_0000 | (r >> 24) as u8);
        out.push(((r >> 16) & 0xFF) as u8);
        out.push(((r >> 8) & 0xFF) as u8);
        out.push((r & 0xFF) as u8);
    } else {
        let r = v - T1 - T2 - T3 - T4;
        out.push(0b1111_0000);
        out.extend_from_slice(&(r as u32).to_be_bytes());
    }
}

/// Decodes one component from the front of `bytes`, which must be
/// non-empty; `at` is its absolute offset (for error reporting). Returns
/// `(value, bytes used)`. Bounds-checked: truncated multi-byte components
/// and five-byte values past the `u32` range are errors, never panics or
/// silent wrap-around.
fn decode_component_checked(bytes: &[u8], at: usize) -> Result<(u32, usize), PbnCodecError> {
    let b0 = bytes[0];
    let len = component_len(b0);
    if bytes.len() < len {
        return Err(PbnCodecError::Truncated { at });
    }
    let (r, offset) = match len {
        1 => (u64::from(b0), 0),
        2 => ((u64::from(b0 & 0b0011_1111) << 8) | u64::from(bytes[1]), T1),
        3 => (
            (u64::from(b0 & 0b0001_1111) << 16) | (u64::from(bytes[1]) << 8) | u64::from(bytes[2]),
            T1 + T2,
        ),
        4 => (
            (u64::from(b0 & 0b0000_1111) << 24)
                | (u64::from(bytes[1]) << 16)
                | (u64::from(bytes[2]) << 8)
                | u64::from(bytes[3]),
            T1 + T2 + T3,
        ),
        _ => (
            u64::from(u32::from_be_bytes([bytes[1], bytes[2], bytes[3], bytes[4]])),
            T1 + T2 + T3 + T4,
        ),
    };
    // The component is the 1-based ordinal r + offset + 1; it must fit u32.
    let value = r + offset + 1;
    u32::try_from(value)
        .map(|v| (v, len))
        .map_err(|_| PbnCodecError::Overflow { at })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pbn;

    #[test]
    fn round_trip_representative_values() {
        for c in [
            1u32,
            2,
            127,
            128,
            129,
            1000,
            (T1 + T2) as u32,
            (T1 + T2) as u32 + 1,
            (T1 + T2 + T3) as u32,
            (T1 + T2 + T3) as u32 + 1,
            (T1 + T2 + T3 + T4) as u32,
            (T1 + T2 + T3 + T4) as u32 + 1,
            u32::MAX,
        ] {
            let p = Pbn::new(vec![c]);
            let e = EncodedPbn::encode(&p);
            assert_eq!(e.decode(), p, "component {c}");
        }
    }

    #[test]
    fn multi_component_round_trip() {
        let p = pbn![1, 128, 2, 300_000, 5];
        assert_eq!(EncodedPbn::encode(&p).decode(), p);
    }

    #[test]
    fn small_components_take_one_byte() {
        let p = pbn![1, 2, 3, 4];
        assert_eq!(EncodedPbn::encode(&p).size(), 4);
        // vs. 16 bytes for the raw u32 representation.
    }

    #[test]
    fn byte_order_equals_document_order() {
        let nums = [
            pbn![1],
            pbn![1, 1],
            pbn![1, 1, 200],
            pbn![1, 2],
            pbn![1, 127],
            pbn![1, 128],
            pbn![1, 129],
            pbn![1, 70_000],
            pbn![2],
        ];
        for x in &nums {
            for y in &nums {
                let (ex, ey) = (EncodedPbn::encode(x), EncodedPbn::encode(y));
                assert_eq!(ex.cmp(&ey), x.cmp(y), "byte order disagrees for {x} vs {y}");
            }
        }
    }

    #[test]
    fn prefix_property_holds() {
        let p = pbn![1, 130];
        let c = pbn![1, 130, 99];
        let other = pbn![1, 131];
        let (ep, ec, eo) = (
            EncodedPbn::encode(&p),
            EncodedPbn::encode(&c),
            EncodedPbn::encode(&other),
        );
        assert!(ep.is_prefix_of(&ec));
        assert!(!ep.is_prefix_of(&eo));
        assert!(ep.is_prefix_of(&ep));
    }

    #[test]
    fn empty_number_encodes_to_empty_bytes() {
        let e = EncodedPbn::encode(&Pbn::empty());
        assert_eq!(e.size(), 0);
        assert_eq!(e.decode(), Pbn::empty());
    }

    #[test]
    fn from_bytes_accepts_exactly_the_valid_encodings() {
        let p = pbn![1, 128, 2, 300_000, 5];
        let bytes = EncodedPbn::encode(&p).as_bytes().to_vec();
        let e = EncodedPbn::from_bytes(bytes).unwrap();
        assert_eq!(e.decode(), p);
        assert_eq!(
            EncodedPbn::from_bytes(Vec::new()).unwrap(),
            EncodedPbn::default()
        );
    }

    #[test]
    fn truncated_components_are_rejected_not_panicked() {
        // A two-byte component's first byte with nothing after it.
        let err = EncodedPbn::from_bytes(vec![0b1000_0001]).unwrap_err();
        assert_eq!(err, PbnCodecError::Truncated { at: 0 });
        assert_eq!(err.code(), "PBN_TRUNCATED");
        // Valid one-byte component followed by a truncated five-byte one.
        let err = EncodedPbn::from_bytes(vec![0x03, 0b1111_0000, 0, 0]).unwrap_err();
        assert_eq!(err, PbnCodecError::Truncated { at: 1 });
    }

    #[test]
    fn five_byte_overflow_is_rejected_not_wrapped() {
        // Largest representable component is u32::MAX; its payload is
        // u32::MAX - 1 - (T1+T2+T3+T4). Anything above must error.
        let max_r = (u64::from(u32::MAX) - 1 - (T1 + T2 + T3 + T4)) as u32;
        let mut ok = vec![0b1111_0000];
        ok.extend_from_slice(&max_r.to_be_bytes());
        assert_eq!(
            EncodedPbn::from_bytes(ok).unwrap().decode(),
            Pbn::new(vec![u32::MAX])
        );
        let mut bad = vec![0b1111_0000];
        bad.extend_from_slice(&(max_r + 1).to_be_bytes());
        let err = EncodedPbn::from_bytes(bad).unwrap_err();
        assert_eq!(err, PbnCodecError::Overflow { at: 0 });
        assert_eq!(err.code(), "PBN_OVERFLOW");
    }
}
