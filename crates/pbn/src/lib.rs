#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # vh-pbn — Prefix-based numbering (Dewey order)
//!
//! Section 4.2 of the paper: every node is numbered `p.k` where `p` is the
//! parent's number and `k` the 1-based sibling ordinal; the root is `1`.
//! Location-based relationships between nodes (child, parent, ancestor,
//! descendant, siblings, preceding/following) are decided purely by
//! comparing numbers.
//!
//! Modules:
//! * [`number`] — the [`Pbn`] type and prefix arithmetic.
//! * [`axes`] — the ten XPath location relationships on raw numbers.
//! * [`order`] — document-order comparison (lexicographic on components).
//! * [`encode`] — a compact, prefix-free, order-preserving byte encoding
//!   ("strategies for packing PBN numbers into as few bits as possible",
//!   §4.2's reference \[11\]).
//! * [`keys`] — allocation-free predicates on encoded byte keys
//!   (`memcmp` = document order, `starts_with` = ancestor-or-self) and
//!   the `prefix_succ` subtree upper bound.
//! * [`arena`] — the columnar [`PbnArena`]: every key of a document in
//!   one contiguous, document-order buffer.
//! * [`assign`] — numbering every node of a [`vh_xml::Document`].
//! * [`mint`] — renumbering-free sibling-key minting: [`KeyGen::between`]
//!   allocates a number strictly between two existing siblings without
//!   touching any assigned number.
//! * [`update`] — update renumbering (§3's contrast case): how many
//!   numbers an edit invalidates, measurably.

pub mod arena;
pub mod assign;
pub mod axes;
pub mod encode;
pub mod keys;
pub mod mint;
pub mod number;
pub mod order;
pub mod update;

pub use arena::{ArenaFormatError, PbnArena};
pub use assign::PbnAssignment;
pub use axes::{relationship, Relationship};
pub use encode::{decode_ordinal_value, encode_ordinal_value, EncodedPbn, PbnCodecError};
pub use mint::KeyGen;
pub use number::{Comp, Pbn};
