//! Assigning PBN numbers to every node of a document.
//!
//! The assignment is the bridge between the tree model (`vh-xml`) and the
//! numbering space: `by_node` maps a [`NodeId`] to its number in O(1), and a
//! sorted `(Pbn, NodeId)` table answers the reverse lookup in O(log n).
//! Comments and processing instructions are numbered like any other child,
//! exactly as a PBN-based DBMS would.

use crate::arena::PbnArena;
use crate::number::Pbn;
use vh_xml::{Document, NodeId};

/// The PBN numbering of a document.
///
/// After construction the assignment is **mutable**: minted numbers are
/// merged into `by_node`/`sorted` immediately (so every number-level read
/// is always current), while the columnar byte [`PbnArena`] is refreshed
/// lazily by [`PbnAssignment::compact`]. The set of edits the arena has
/// not yet absorbed is the *delta segment*; byte-key consumers (slot
/// windows, twig galloping) must compact first — the engine does this
/// before serving queries and bounds the delta with an automatic
/// compaction threshold.
#[derive(Clone, Debug)]
pub struct PbnAssignment {
    /// `by_node[id.index()]` is the number of node `id`.
    by_node: Vec<Pbn>,
    /// `(number, node)` pairs sorted by number (document order). Edits
    /// are merged here eagerly; this is the always-fresh read view.
    sorted: Vec<(Pbn, NodeId)>,
    /// Columnar encoded-key form of the numbering as of the last
    /// compaction; stale while `delta > 0`.
    arena: PbnArena,
    /// Number of edits (inserts + removals) not yet compacted into the
    /// arena.
    delta: usize,
}

impl PbnAssignment {
    /// Numbers every node of `doc` (root = `1`, k-th child appends `.k`).
    pub fn assign(doc: &Document) -> Self {
        let mut by_node = vec![Pbn::empty(); doc.len()];
        let mut sorted = Vec::with_capacity(doc.len());
        if let Some(root) = doc.root() {
            // Iterative preorder carrying the parent's number.
            let mut stack: Vec<(NodeId, Pbn)> = vec![(root, Pbn::root())];
            while let Some((id, num)) = stack.pop() {
                by_node[id.index()] = num.clone();
                sorted.push((num.clone(), id));
                for (i, &c) in doc.children(id).iter().enumerate().rev() {
                    stack.push((c, num.child(i as u32 + 1)));
                }
            }
        }
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        let arena = PbnArena::build(&sorted, by_node.len());
        PbnAssignment {
            by_node,
            sorted,
            arena,
            delta: 0,
        }
    }

    /// Rebuilds an assignment around an arena loaded from storage, decoding
    /// numbers from the keys instead of renumbering the document. The
    /// arena must come from [`PbnArena::from_parts`] (validated) and cover
    /// an id space of at least `id_space` entries.
    pub fn from_arena(arena: PbnArena, id_space: usize) -> Self {
        let mut by_node = vec![Pbn::empty(); id_space];
        let mut sorted = Vec::with_capacity(arena.len());
        for slot in 0..arena.len() {
            let id = arena.node_at_slot(slot);
            // Keys from a validated arena decode cleanly; a malformed key
            // would have failed `from_parts`' ordering check. Fall back to
            // the empty number rather than panicking on hostile bytes.
            let pbn = crate::encode::EncodedPbn::from_bytes(arena.key_at_slot(slot).to_vec())
                .map(|e| e.decode())
                .unwrap_or_else(|_| Pbn::empty());
            if let Some(cell) = by_node.get_mut(id.index()) {
                *cell = pbn.clone();
            }
            sorted.push((pbn, id));
        }
        PbnAssignment {
            by_node,
            sorted,
            arena,
            delta: 0,
        }
    }

    /// The columnar encoded-key arena of this numbering.
    #[inline]
    pub fn arena(&self) -> &PbnArena {
        &self.arena
    }

    /// The encoded byte key of a node — empty for ids outside the
    /// assignment. Borrowed from the arena; zero allocation.
    #[inline]
    pub fn key_of(&self, id: NodeId) -> &[u8] {
        self.arena.key_of(id)
    }

    /// The number of a node.
    ///
    /// # Panics
    /// Panics if `id` does not belong to the assigned document.
    #[inline]
    pub fn pbn_of(&self, id: NodeId) -> &Pbn {
        &self.by_node[id.index()]
    }

    /// The raw per-node entry, or `None` for ids past the end of this
    /// assignment (nodes created after it was built). Unreachable nodes
    /// keep the empty number.
    #[inline]
    pub fn by_node_checked(&self, id: NodeId) -> Option<&Pbn> {
        self.by_node.get(id.index())
    }

    /// The node with the given number, if any.
    pub fn node_of(&self, pbn: &Pbn) -> Option<NodeId> {
        self.sorted
            .binary_search_by(|(p, _)| p.cmp(pbn))
            .ok()
            .map(|i| self.sorted[i].1)
    }

    /// All `(number, node)` pairs in document order.
    #[inline]
    pub fn in_document_order(&self) -> &[(Pbn, NodeId)] {
        &self.sorted
    }

    /// Number of assigned nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if no nodes were assigned (empty document).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The nodes whose numbers fall in the half-open interval `[lo, hi)` in
    /// document order — the primitive behind subtree scans.
    pub fn range(&self, lo: &Pbn, hi: &Pbn) -> &[(Pbn, NodeId)] {
        let start = self.sorted.partition_point(|(p, _)| p < lo);
        let end = self.sorted.partition_point(|(p, _)| p < hi);
        &self.sorted[start..end]
    }

    /// Records a newly minted number for `id`, merging it into the sorted
    /// table and per-node map immediately. The arena is *not* updated —
    /// the edit joins the delta segment until [`PbnAssignment::compact`].
    ///
    /// Returns `false` (and changes nothing) if the number is already
    /// assigned to another node — minted keys must be unique.
    pub fn insert_node(&mut self, id: NodeId, pbn: Pbn) -> bool {
        let pos = match self.sorted.binary_search_by(|(p, _)| p.cmp(&pbn)) {
            Ok(_) => return false,
            Err(pos) => pos,
        };
        if self.by_node.len() <= id.index() {
            self.by_node.resize(id.index() + 1, Pbn::empty());
        }
        self.by_node[id.index()] = pbn.clone();
        self.sorted.insert(pos, (pbn, id));
        self.delta += 1;
        true
    }

    /// Removes the assignment of `id`, if any. The node's `by_node` entry
    /// reverts to the empty number; the arena keeps the stale key until
    /// [`PbnAssignment::compact`].
    pub fn remove_node(&mut self, id: NodeId) -> bool {
        let Some(pbn) = self.by_node.get(id.index()).cloned() else {
            return false;
        };
        if pbn.is_empty() {
            return false;
        }
        let Ok(pos) = self.sorted.binary_search_by(|(p, _)| p.cmp(&pbn)) else {
            return false;
        };
        self.sorted.remove(pos);
        self.by_node[id.index()] = Pbn::empty();
        self.delta += 1;
        true
    }

    /// Number of edits the arena has not yet absorbed. While non-zero,
    /// [`PbnAssignment::arena`] and [`PbnAssignment::key_of`] reflect the
    /// last compaction, not the current numbering.
    #[inline]
    pub fn delta_len(&self) -> usize {
        self.delta
    }

    /// Rebuilds the columnar arena from the (always-fresh) sorted table,
    /// absorbing the delta segment. Returns the number of edits merged.
    pub fn compact(&mut self) -> usize {
        let merged = self.delta;
        if merged > 0 {
            self.arena = PbnArena::build(&self.sorted, self.by_node.len());
            self.delta = 0;
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pbn;
    use vh_xml::builder::paper_figure2;

    #[test]
    fn figure8_numbers_match_the_paper() {
        // Figure 8 gives the PBN numbers for the Figure 2 instance.
        let doc = paper_figure2();
        let a = PbnAssignment::assign(&doc);
        let root = doc.root().unwrap();
        assert_eq!(a.pbn_of(root), &pbn![1]);

        let book1 = doc.children(root)[0];
        let book2 = doc.children(root)[1];
        assert_eq!(a.pbn_of(book1), &pbn![1, 1]);
        assert_eq!(a.pbn_of(book2), &pbn![1, 2]);

        // book2's children: title 1.2.1, author 1.2.2, publisher 1.2.3.
        let kids = doc.children(book2);
        assert_eq!(a.pbn_of(kids[0]), &pbn![1, 2, 1]);
        assert_eq!(a.pbn_of(kids[1]), &pbn![1, 2, 2]);
        assert_eq!(a.pbn_of(kids[2]), &pbn![1, 2, 3]);

        // name under author 1.2.2 is 1.2.2.1; its text D is 1.2.2.1.1.
        let author2 = kids[1];
        let name2 = doc.children(author2)[0];
        let d_text = doc.children(name2)[0];
        assert_eq!(a.pbn_of(name2), &pbn![1, 2, 2, 1]);
        assert_eq!(a.pbn_of(d_text), &pbn![1, 2, 2, 1, 1]);
    }

    #[test]
    fn node_lookup_round_trips() {
        let doc = paper_figure2();
        let a = PbnAssignment::assign(&doc);
        for id in doc.preorder() {
            let p = a.pbn_of(id);
            assert_eq!(a.node_of(p), Some(id));
        }
        assert_eq!(a.node_of(&pbn![9, 9]), None);
        assert_eq!(a.len(), doc.len());
    }

    #[test]
    fn sorted_table_is_document_order() {
        let doc = paper_figure2();
        let a = PbnAssignment::assign(&doc);
        let preorder: Vec<_> = doc.preorder().collect();
        let by_number: Vec<_> = a.in_document_order().iter().map(|(_, id)| *id).collect();
        assert_eq!(preorder, by_number);
    }

    #[test]
    fn range_scan_returns_a_subtree() {
        let doc = paper_figure2();
        let a = PbnAssignment::assign(&doc);
        let (lo, hi) = crate::order::subtree_range(&pbn![1, 1]);
        let sub = a.range(&lo, &hi);
        // book1 subtree: book, title, text, author, name, text, publisher,
        // location, text = 9 nodes.
        assert_eq!(sub.len(), 9);
        assert!(sub.iter().all(|(p, _)| pbn![1, 1].is_prefix_of(p)));
    }

    #[test]
    fn empty_document_is_empty_assignment() {
        let doc = Document::new("u");
        let a = PbnAssignment::assign(&doc);
        assert!(a.is_empty());
    }

    #[test]
    fn minted_inserts_merge_eagerly_and_compact_lazily() {
        let doc = paper_figure2();
        let mut a = PbnAssignment::assign(&doc);
        let before = a.len();

        // Mint a sibling between book1 (1.1) and book2 (1.2), attach it to
        // a fresh id past the current id space.
        let minted = crate::mint::KeyGen::between(&pbn![1], Some(&pbn![1, 1]), Some(&pbn![1, 2]));
        let new_id = NodeId::from_index(doc.len());
        assert!(a.insert_node(new_id, minted.clone()));
        assert!(!a.insert_node(NodeId::from_index(doc.len() + 1), minted.clone()));
        assert_eq!(a.delta_len(), 1);

        // Number-level reads see the edit immediately…
        assert_eq!(a.len(), before + 1);
        assert_eq!(a.pbn_of(new_id), &minted);
        assert_eq!(a.node_of(&minted), Some(new_id));
        let order: Vec<_> = a
            .in_document_order()
            .iter()
            .map(|(p, _)| p.clone())
            .collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted, "sorted table stays sorted after insert");

        // …while the byte arena is stale until compaction.
        assert!(a.key_of(new_id).is_empty());
        assert_eq!(a.compact(), 1);
        assert_eq!(a.delta_len(), 0);
        assert!(!a.key_of(new_id).is_empty());
        assert_eq!(a.arena().len(), before + 1);
        assert_eq!(a.compact(), 0, "compacting a clean assignment is free");
    }

    #[test]
    fn removals_free_the_number_for_reuse() {
        let doc = paper_figure2();
        let mut a = PbnAssignment::assign(&doc);
        let root = doc.root().unwrap();
        let book1 = doc.children(root)[0];
        let n = a.len();

        assert!(a.remove_node(book1));
        assert!(!a.remove_node(book1), "double remove is a no-op");
        assert_eq!(a.len(), n - 1);
        assert_eq!(a.node_of(&pbn![1, 1]), None);
        assert_eq!(a.by_node_checked(book1), Some(&Pbn::empty()));

        // The freed number can be re-minted for a different node.
        let id = NodeId::from_index(doc.len());
        assert!(a.insert_node(id, pbn![1, 1]));
        assert_eq!(a.node_of(&pbn![1, 1]), Some(id));
        assert_eq!(a.delta_len(), 2);
        a.compact();
        assert_eq!(a.key_of(id), a.arena().key_of(id));
        assert_eq!(a.arena().len(), n);
    }
}
