//! Update renumbering — the §3 contrast case.
//!
//! The paper distinguishes vPBN from *update renumbering* ([12, 18, 25, 30]
//! in its bibliography): after an edit, plain PBN must physically renumber
//! every node whose number changed — the inserted subtree plus every
//! following sibling's subtree at the insertion level. §3's argument is
//! that adapting this machinery to virtual hierarchies "would be very
//! expensive since all of the nodes in a data collection would have to be
//! individually, physically renumbered at query time"; vPBN instead leaves
//! every physical number untouched.
//!
//! This module implements the renumbering so the cost is measurable
//! (experiment F9): [`incremental_renumber`] recomputes exactly the
//! affected numbers after an insertion and reports how many changed.

use crate::assign::PbnAssignment;
use crate::number::Pbn;
use vh_xml::{Document, NodeId};

/// Outcome of an incremental renumbering pass.
#[derive(Clone, Debug)]
pub struct RenumberReport {
    /// The fresh assignment (valid for the updated document).
    pub assignment: PbnAssignment,
    /// Nodes whose number differs from the previous assignment (including
    /// nodes that previously had no number, i.e. the inserted subtree).
    pub changed: usize,
}

/// Renumbers after an edit under `parent`, comparing against the previous
/// assignment.
///
/// The implementation rebuilds the full assignment (document order makes
/// that a single O(n) pass — exactly what a real system's bulk renumber
/// does) and counts the numbers that actually changed; `changed` is the
/// work a *minimal* update renumbering scheme could not avoid: the
/// inserted node's subtree plus the subtrees of all following siblings
/// under `parent`.
pub fn incremental_renumber(
    doc: &Document,
    previous: &PbnAssignment,
    _parent: NodeId,
) -> RenumberReport {
    let assignment = PbnAssignment::assign(doc);
    let mut changed = 0;
    for (num, id) in assignment.in_document_order() {
        let old: Option<&Pbn> = previous.pbn_of_checked(*id);
        if old != Some(num) {
            changed += 1;
        }
    }
    RenumberReport {
        assignment,
        changed,
    }
}

impl PbnAssignment {
    /// The number of a node, or `None` when the node postdates this
    /// assignment (it was inserted after numbering) or was never reachable.
    pub fn pbn_of_checked(&self, id: NodeId) -> Option<&Pbn> {
        let p = self.by_node_checked(id)?;
        if p.is_empty() {
            None
        } else {
            Some(p)
        }
    }
}

/// Counts the nodes a minimal renumbering scheme must touch for an
/// insertion at `pos` under `parent`: the new node plus every node in the
/// subtrees of the siblings now sitting at positions `> pos`.
pub fn minimal_renumber_cost(doc: &Document, parent: NodeId, pos: usize) -> usize {
    let mut cost = 1; // the inserted node itself
    for &sib in doc.children(parent).iter().skip(pos + 1) {
        cost += doc.descendants_or_self(sib).count();
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use vh_xml::builder::paper_figure2;

    #[test]
    fn appending_at_the_end_renumbers_only_the_new_node() {
        let mut doc = paper_figure2();
        let root = doc.root().unwrap();
        let before = PbnAssignment::assign(&doc);
        let pos = doc.children(root).len();
        doc.insert_element(root, pos, "book");
        let report = incremental_renumber(&doc, &before, root);
        assert_eq!(report.changed, 1);
        assert_eq!(minimal_renumber_cost(&doc, root, pos), 1);
    }

    #[test]
    fn inserting_at_the_front_renumbers_every_following_subtree() {
        let mut doc = paper_figure2();
        let root = doc.root().unwrap();
        let before = PbnAssignment::assign(&doc);
        doc.insert_element(root, 0, "book");
        let report = incremental_renumber(&doc, &before, root);
        // The new node + both 9-node book subtrees shift from 1.k to 1.k+1.
        assert_eq!(report.changed, 1 + 18);
        assert_eq!(minimal_renumber_cost(&doc, root, 0), 1 + 18);
        // The fresh assignment is consistent with the updated tree.
        for id in doc.preorder() {
            assert_eq!(
                report.assignment.node_of(report.assignment.pbn_of(id)),
                Some(id)
            );
        }
    }

    #[test]
    fn middle_insertion_costs_match_the_minimal_bound() {
        let mut doc = paper_figure2();
        let root = doc.root().unwrap();
        let before = PbnAssignment::assign(&doc);
        doc.insert_element(root, 1, "book");
        let report = incremental_renumber(&doc, &before, root);
        assert_eq!(report.changed, minimal_renumber_cost(&doc, root, 1));
        assert_eq!(
            report.changed,
            1 + 9,
            "new node + the second book's subtree"
        );
    }

    #[test]
    fn detach_then_renumber_shrinks_the_assignment() {
        let mut doc = paper_figure2();
        let root = doc.root().unwrap();
        let book1 = doc.children(root)[0];
        doc.detach(book1);
        let after = PbnAssignment::assign(&doc);
        // 19 nodes minus book1's 9-node subtree remain numbered.
        assert_eq!(after.len(), 10);
        let book2 = doc.children(root)[0];
        assert_eq!(after.pbn_of(book2).to_string(), "1.1");
    }
}
