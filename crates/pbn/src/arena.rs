//! Columnar arena of encoded PBN keys.
//!
//! §4.2 packs numbers into order-preserving byte strings; this module packs
//! **all** of a document's numbers into one contiguous, document-order byte
//! buffer plus a `u32` offset table. A node's key is then a borrowed
//! `&[u8]` — zero per-node allocation, and a scan over keys in document
//! order is a linear walk of one buffer. Subtree-shaped axes become
//! binary-searched byte-range scans `[enc(p), prefix_succ(enc(p)))` over
//! the slot space (see [`crate::keys`]).
//!
//! Layout (also the on-disk column format in `vh-storage`):
//!
//! * `bytes`   — the concatenated encodings, slot 0 first;
//! * `offsets` — `n + 1` entries, slot `s` spans `bytes[offsets[s]..offsets[s+1]]`;
//! * `node_of_slot` — the [`NodeId`] at each document-order slot;
//! * `slot_of_node` — the inverse map, indexed by `NodeId::index()`
//!   (rebuilt from `node_of_slot` on load, never persisted).

use crate::encode::EncodedPbn;
use crate::keys;
use crate::number::Pbn;
use std::ops::Range;
use vh_xml::NodeId;

/// Sentinel slot for node ids that were never assigned a number (padding
/// entries of sparse id spaces). `key_of` returns the empty key for them.
const NO_SLOT: u32 = u32::MAX;

/// All of a document's encoded PBN keys in one document-order buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PbnArena {
    bytes: Vec<u8>,
    offsets: Vec<u32>,
    node_of_slot: Vec<NodeId>,
    slot_of_node: Vec<u32>,
}

/// Error raised when reassembling an arena from untrusted parts (disk
/// pages) fails structural validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaFormatError(pub String);

impl std::fmt::Display for ArenaFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed PBN arena column: {}", self.0)
    }
}

impl std::error::Error for ArenaFormatError {}

impl PbnArena {
    /// Flattens `(number, node)` pairs — already sorted in document order —
    /// into the columnar form. `id_space` is the size of the document's
    /// node-id space (ids not present keep the empty key).
    pub fn build(sorted: &[(Pbn, NodeId)], id_space: usize) -> Self {
        let mut bytes = Vec::with_capacity(sorted.len() * 3);
        let mut offsets = Vec::with_capacity(sorted.len() + 1);
        let mut node_of_slot = Vec::with_capacity(sorted.len());
        let mut slot_of_node = vec![NO_SLOT; id_space];
        offsets.push(0);
        for (slot, (pbn, id)) in sorted.iter().enumerate() {
            bytes.extend_from_slice(EncodedPbn::encode(pbn).as_bytes());
            offsets.push(bytes.len() as u32);
            node_of_slot.push(*id);
            slot_of_node[id.index()] = slot as u32;
        }
        PbnArena {
            bytes,
            offsets,
            node_of_slot,
            slot_of_node,
        }
    }

    /// Reassembles an arena from its persisted columns, validating the
    /// structural invariants (monotone offsets spanning `bytes`, in-range
    /// node ids, keys in strictly increasing document order).
    pub fn from_parts(
        bytes: Vec<u8>,
        offsets: Vec<u32>,
        node_of_slot: Vec<NodeId>,
        id_space: usize,
    ) -> Result<Self, ArenaFormatError> {
        if offsets.len() != node_of_slot.len() + 1 {
            return Err(ArenaFormatError(format!(
                "offset table has {} entries for {} slots",
                offsets.len(),
                node_of_slot.len()
            )));
        }
        if offsets.first() != Some(&0) || *offsets.last().unwrap_or(&0) as usize != bytes.len() {
            return Err(ArenaFormatError(
                "offset table does not span the key buffer".into(),
            ));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(ArenaFormatError("offset table is not monotone".into()));
        }
        let mut slot_of_node = vec![NO_SLOT; id_space];
        for (slot, id) in node_of_slot.iter().enumerate() {
            let Some(cell) = slot_of_node.get_mut(id.index()) else {
                return Err(ArenaFormatError(format!(
                    "slot {slot} names node {} outside the id space of {id_space}",
                    id.index()
                )));
            };
            if *cell != NO_SLOT {
                return Err(ArenaFormatError(format!(
                    "node {} appears in two slots",
                    id.index()
                )));
            }
            *cell = slot as u32;
        }
        let arena = PbnArena {
            bytes,
            offsets,
            node_of_slot,
            slot_of_node,
        };
        for s in 1..arena.len() {
            if arena.key_at_slot(s - 1) >= arena.key_at_slot(s) {
                return Err(ArenaFormatError(format!(
                    "keys out of document order at slot {s}"
                )));
            }
        }
        Ok(arena)
    }

    /// Number of keyed slots (assigned nodes).
    #[inline]
    pub fn len(&self) -> usize {
        self.node_of_slot.len()
    }

    /// True for an empty document.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.node_of_slot.is_empty()
    }

    /// The encoded key at a document-order slot.
    ///
    /// # Panics
    /// Panics if `slot >= self.len()`.
    #[inline]
    pub fn key_at_slot(&self, slot: usize) -> &[u8] {
        // vet: allow(hot-path) — offsets has len() + 1 entries and the panic on slot ≥ len() is this fn's documented contract
        &self.bytes[self.offsets[slot] as usize..self.offsets[slot + 1] as usize]
    }

    /// The node at a document-order slot.
    ///
    /// # Panics
    /// Panics if `slot >= self.len()`.
    #[inline]
    pub fn node_at_slot(&self, slot: usize) -> NodeId {
        self.node_of_slot[slot]
    }

    /// The encoded key of a node — the empty key for ids outside the
    /// assignment (matching the `Pbn::empty()` those ids hold).
    #[inline]
    pub fn key_of(&self, id: NodeId) -> &[u8] {
        match self.slot_of_node.get(id.index()) {
            Some(&s) if s != NO_SLOT => self.key_at_slot(s as usize),
            _ => &[],
        }
    }

    /// The document-order slot of a node, if it was assigned a number.
    #[inline]
    pub fn slot_of(&self, id: NodeId) -> Option<usize> {
        match self.slot_of_node.get(id.index()) {
            Some(&s) if s != NO_SLOT => Some(s as usize),
            _ => None,
        }
    }

    /// First slot whose key is `>= key` (document-order lower bound).
    #[inline]
    pub fn lower_bound(&self, key: &[u8]) -> usize {
        self.partition(|k| k < key)
    }

    /// The half-open slot interval of the subtree rooted at the node with
    /// encoded key `p`: all slots whose key carries `p` as a byte prefix.
    /// Two binary searches; no allocation (the upper bound uses the
    /// `before_subtree_end` characterization instead of materializing
    /// `prefix_succ`).
    pub fn subtree_slots(&self, p: &[u8]) -> Range<usize> {
        let lo = self.partition(|k| k < p);
        let hi = self.partition(|k| keys::before_subtree_end(p, k));
        lo..hi
    }

    /// The slot bracket of [`Self::subtree_slots`] as `u64` endpoints —
    /// the form query tracing reports ("arena range selection" in
    /// EXPLAIN output), so observability sinks don't re-derive the two
    /// binary-search bounds.
    #[inline]
    pub fn slot_window(&self, p: &[u8]) -> (u64, u64) {
        let r = self.subtree_slots(p);
        (r.start as u64, r.end as u64)
    }

    /// The nodes of the subtree rooted at encoded key `p`, in document
    /// order — the arena form of `PbnAssignment::range` over
    /// `subtree_range(p)`.
    #[inline]
    pub fn subtree_nodes(&self, p: &[u8]) -> &[NodeId] {
        &self.node_of_slot[self.subtree_slots(p)]
    }

    /// `partition_point` over slots ordered by key.
    #[inline]
    fn partition(&self, pred: impl Fn(&[u8]) -> bool) -> usize {
        self.partition_branchless(pred)
    }

    /// Branch-free `partition_point`: the halving loop advances `base` by
    /// `usize::from(pred) * half`, so the predicate result feeds a multiply
    /// instead of a compare-and-jump the predictor must guess on random
    /// probe keys.
    ///
    /// oracle: partition_scalar
    // vet: hot
    #[inline]
    fn partition_branchless(&self, pred: impl Fn(&[u8]) -> bool) -> usize {
        let mut base = 0usize;
        let mut len = self.len();
        while len > 1 {
            let half = len / 2;
            base += usize::from(pred(self.key_at_slot(base + half - 1))) * half;
            len -= half;
        }
        base + usize::from(len == 1 && pred(self.key_at_slot(base)))
    }

    /// Scalar twin of [`Self::partition_branchless`]: the textbook branchy
    /// bisection the property suite compares against slot-for-slot.
    #[cfg(test)]
    fn partition_scalar(&self, pred: impl Fn(&[u8]) -> bool) -> usize {
        let mut lo = 0;
        let mut hi = self.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if pred(self.key_at_slot(mid)) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The raw key buffer (persisted verbatim by `vh-storage`).
    #[inline]
    pub fn key_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The raw offset table, `len() + 1` entries (persisted verbatim).
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The document-order node column (persisted verbatim).
    #[inline]
    pub fn nodes_in_order(&self) -> &[NodeId] {
        &self.node_of_slot
    }

    /// Total bytes of encoded key data (the paper's space metric).
    #[inline]
    pub fn total_key_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Size of the node-id space the arena was built over (persisted so a
    /// loaded arena can rebuild its inverse map at the original width).
    #[inline]
    pub fn id_space(&self) -> usize {
        self.slot_of_node.len()
    }

    /// Heap footprint of all columns, for cache and space accounting.
    pub fn heap_bytes(&self) -> usize {
        self.bytes.len()
            + self.offsets.len() * 4
            + self.node_of_slot.len() * 4
            + self.slot_of_node.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::PbnAssignment;
    use crate::pbn;
    use vh_xml::builder::paper_figure2;

    fn arena() -> (vh_xml::Document, PbnAssignment) {
        let doc = paper_figure2();
        let a = PbnAssignment::assign(&doc);
        (doc, a)
    }

    #[test]
    fn keys_match_per_node_encodings() {
        let (doc, a) = arena();
        for id in doc.preorder() {
            assert_eq!(
                a.arena().key_of(id),
                EncodedPbn::encode(a.pbn_of(id)).as_bytes(),
                "node {id:?}"
            );
        }
    }

    #[test]
    fn slots_are_document_order() {
        let (doc, a) = arena();
        let by_slot: Vec<NodeId> = (0..a.arena().len())
            .map(|s| a.arena().node_at_slot(s))
            .collect();
        let preorder: Vec<NodeId> = doc.preorder().collect();
        assert_eq!(by_slot, preorder);
        for (s, id) in preorder.iter().enumerate() {
            assert_eq!(a.arena().slot_of(*id), Some(s));
        }
    }

    #[test]
    fn subtree_slots_equal_the_pbn_range() {
        let (_, a) = arena();
        let p = pbn![1, 1];
        let key = EncodedPbn::encode(&p);
        let slots = a.arena().subtree_slots(key.as_bytes());
        let via_range: Vec<NodeId> = {
            let (lo, hi) = crate::order::subtree_range(&p);
            a.range(&lo, &hi).iter().map(|(_, id)| *id).collect()
        };
        let via_arena: Vec<NodeId> = a.arena().subtree_nodes(key.as_bytes()).to_vec();
        assert_eq!(via_arena, via_range);
        assert_eq!(slots.len(), 9, "book1 subtree has 9 nodes");
    }

    #[test]
    fn branchless_partition_matches_the_scalar_bisection() {
        // Probe with every slot key, every component-boundary cut of it,
        // and its subtree-end bound — the three probe shapes the arena's
        // callers use — under both predicate forms.
        let (_, a) = arena();
        let arena = a.arena();
        let mut probes: Vec<Vec<u8>> = vec![Vec::new(), vec![0xFF; 9]];
        for s in 0..arena.len() {
            let k = arena.key_at_slot(s);
            probes.push(k.to_vec());
            probes.push(crate::keys::subtree_end(k));
            for m in 0..=crate::keys::component_count(k) {
                probes.push(k[..crate::keys::component_boundary(k, m)].to_vec());
            }
        }
        for p in &probes {
            assert_eq!(
                arena.partition_branchless(|k| k < p.as_slice()),
                arena.partition_scalar(|k| k < p.as_slice()),
                "lower bound at {p:02x?}"
            );
            assert_eq!(
                arena.partition_branchless(|k| crate::keys::before_subtree_end(p, k)),
                arena.partition_scalar(|k| crate::keys::before_subtree_end(p, k)),
                "upper bound at {p:02x?}"
            );
        }
    }

    #[test]
    fn round_trips_through_parts() {
        let (_, a) = arena();
        let src = a.arena();
        let re = PbnArena::from_parts(
            src.key_bytes().to_vec(),
            src.offsets().to_vec(),
            src.nodes_in_order().to_vec(),
            src.slot_of_node.len(),
        )
        .unwrap();
        assert_eq!(&re, src);
    }

    #[test]
    fn from_parts_rejects_malformed_columns() {
        let (_, a) = arena();
        let src = a.arena();
        let n = src.slot_of_node.len();
        // Truncated offset table.
        assert!(PbnArena::from_parts(
            src.key_bytes().to_vec(),
            src.offsets()[..src.offsets().len() - 1].to_vec(),
            src.nodes_in_order().to_vec(),
            n,
        )
        .is_err());
        // Offsets that do not span the buffer.
        let mut offs = src.offsets().to_vec();
        if let Some(last) = offs.last_mut() {
            *last += 1;
        }
        assert!(PbnArena::from_parts(
            src.key_bytes().to_vec(),
            offs,
            src.nodes_in_order().to_vec(),
            n
        )
        .is_err());
        // Duplicate node id.
        let mut nodes = src.nodes_in_order().to_vec();
        nodes[1] = nodes[0];
        assert!(
            PbnArena::from_parts(src.key_bytes().to_vec(), src.offsets().to_vec(), nodes, n)
                .is_err()
        );
        // Keys out of document order (swap two slots' bytes).
        let k0 = src.key_at_slot(0).to_vec();
        let k1 = src.key_at_slot(1).to_vec();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&k1);
        bytes.extend_from_slice(&k0);
        bytes.extend_from_slice(&src.key_bytes()[(k0.len() + k1.len())..]);
        let mut offs = src.offsets().to_vec();
        offs[1] = k1.len() as u32;
        assert!(PbnArena::from_parts(bytes, offs, src.nodes_in_order().to_vec(), n).is_err());
    }

    #[test]
    fn empty_document_yields_an_empty_arena() {
        let a = PbnAssignment::assign(&vh_xml::Document::new("u"));
        assert!(a.arena().is_empty());
        assert_eq!(a.arena().subtree_slots(&[0x00]), 0..0);
        assert_eq!(a.arena().key_of(NodeId::from_index(0)), &[] as &[u8]);
    }
}
