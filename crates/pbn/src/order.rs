//! Document-order utilities.
//!
//! [`Pbn`]'s derived `Ord` already *is* document order (component-wise
//! lexicographic, prefix-first). This module adds named helpers and range
//! construction used by index scans: the subtree of `x` is exactly the
//! half-open document-order interval `[x, x.subtree_bound())` — the tight
//! bound that, unlike `x.sibling_successor()`, excludes siblings minted
//! into `x`'s gap (see [`crate::mint`]).

use crate::number::Pbn;
use std::cmp::Ordering;

/// Compares two numbers in document order. An ancestor sorts before all of
/// its descendants; siblings sort by ordinal.
#[inline]
pub fn cmp_document_order(x: &Pbn, y: &Pbn) -> Ordering {
    x.cmp(y)
}

/// The half-open PBN interval covering the subtree rooted at `x`
/// (descendant-or-self). Every number `d` with `x.is_prefix_of(d)` satisfies
/// `range.0 <= d && d < range.1`, and no other number does.
pub fn subtree_range(x: &Pbn) -> (Pbn, Pbn) {
    (x.clone(), x.subtree_bound())
}

/// Binary-searches a **document-order sorted** slice for the sub-slice of
/// numbers falling inside `[lo, hi)`. Returns the index range.
pub fn range_in_sorted(sorted: &[Pbn], lo: &Pbn, hi: &Pbn) -> (usize, usize) {
    let start = sorted.partition_point(|p| p < lo);
    let end = sorted.partition_point(|p| p < hi);
    (start, end)
}

/// Sorts numbers into document order (convenience for tests and index
/// construction).
pub fn sort_document_order(numbers: &mut [Pbn]) {
    numbers.sort();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pbn;

    #[test]
    fn subtree_range_contains_exactly_the_subtree() {
        let x = pbn![1, 2];
        let (lo, hi) = subtree_range(&x);
        let inside = [pbn![1, 2], pbn![1, 2, 1], pbn![1, 2, 9, 9]];
        let outside = [pbn![1], pbn![1, 1, 9], pbn![1, 3], pbn![1, 10]];
        for p in &inside {
            assert!(lo <= *p && *p < hi, "{p} should be inside");
            assert!(x.is_prefix_of(p));
        }
        for p in &outside {
            assert!(!(lo <= *p && *p < hi), "{p} should be outside");
            assert!(!x.is_prefix_of(p));
        }
    }

    #[test]
    fn range_in_sorted_finds_subtrees() {
        let mut v = vec![
            pbn![1],
            pbn![1, 1],
            pbn![1, 1, 1],
            pbn![1, 2],
            pbn![1, 2, 1],
            pbn![1, 2, 2],
            pbn![1, 3],
        ];
        sort_document_order(&mut v);
        let (lo, hi) = subtree_range(&pbn![1, 2]);
        let (s, e) = range_in_sorted(&v, &lo, &hi);
        assert_eq!(&v[s..e], &[pbn![1, 2], pbn![1, 2, 1], pbn![1, 2, 2]]);
    }

    #[test]
    fn sort_is_preorder() {
        let mut v = vec![pbn![1, 10], pbn![1, 2, 5], pbn![1], pbn![1, 2]];
        sort_document_order(&mut v);
        assert_eq!(v, vec![pbn![1], pbn![1, 2], pbn![1, 2, 5], pbn![1, 10]]);
        assert_eq!(
            cmp_document_order(&pbn![1, 2], &pbn![1, 10]),
            std::cmp::Ordering::Less
        );
    }
}
