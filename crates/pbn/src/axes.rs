//! The ten location relationships of §4.2/§5, decided purely on numbers.
//!
//! Semantics follow XPath: `preceding`/`following` exclude ancestors and
//! descendants; the sibling axes require a shared parent. Each predicate
//! takes `(x, y)` and asks whether **x stands in the relationship to y**
//! (e.g. [`is_ancestor`]`(x, y)` ⇔ x is an ancestor of y), matching the
//! phrasing of the paper's virtual predicates.

use crate::number::Pbn;

/// A classification of how one node relates to another.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Relationship {
    /// Same node.
    SelfNode,
    /// x is the parent of y.
    Parent,
    /// x is a proper ancestor (but not the parent) of y.
    Ancestor,
    /// x is a child of y.
    Child,
    /// x is a proper descendant (but not a child) of y.
    Descendant,
    /// x is a preceding sibling of y.
    PrecedingSibling,
    /// x precedes y in document order (not an ancestor, not a sibling).
    Preceding,
    /// x is a following sibling of y.
    FollowingSibling,
    /// x follows y in document order (not a descendant, not a sibling).
    Following,
    /// The numbers share no root (different trees of a forest).
    Disjoint,
}

/// x is the same node as y.
#[inline]
pub fn is_self(x: &Pbn, y: &Pbn) -> bool {
    x == y
}

/// x is a proper ancestor of y.
#[inline]
pub fn is_ancestor(x: &Pbn, y: &Pbn) -> bool {
    x.is_strict_prefix_of(y)
}

/// x is the parent of y.
#[inline]
pub fn is_parent(x: &Pbn, y: &Pbn) -> bool {
    x.len() + 1 == y.len() && x.is_prefix_of(y)
}

/// x is a proper descendant of y.
#[inline]
pub fn is_descendant(x: &Pbn, y: &Pbn) -> bool {
    y.is_strict_prefix_of(x)
}

/// x is a child of y.
#[inline]
pub fn is_child(x: &Pbn, y: &Pbn) -> bool {
    is_parent(y, x)
}

/// x is y or a proper descendant of y.
#[inline]
pub fn is_descendant_or_self(x: &Pbn, y: &Pbn) -> bool {
    y.is_prefix_of(x)
}

/// x and y are distinct siblings (same parent).
#[inline]
pub fn is_sibling(x: &Pbn, y: &Pbn) -> bool {
    x != y
        && x.len() == y.len()
        && !x.is_empty()
        && x.components()[..x.len() - 1] == y.components()[..y.len() - 1]
}

/// x is a preceding sibling of y.
#[inline]
pub fn is_preceding_sibling(x: &Pbn, y: &Pbn) -> bool {
    is_sibling(x, y) && x.components()[x.len() - 1] < y.components()[y.len() - 1]
}

/// x is a following sibling of y.
#[inline]
pub fn is_following_sibling(x: &Pbn, y: &Pbn) -> bool {
    is_preceding_sibling(y, x)
}

/// x is on the `preceding` axis of y: x ends before y starts
/// (document order, excluding ancestors).
#[inline]
pub fn is_preceding(x: &Pbn, y: &Pbn) -> bool {
    x < y && !is_ancestor(x, y)
}

/// x is on the `following` axis of y: x starts after y ends
/// (document order, excluding descendants).
#[inline]
pub fn is_following(x: &Pbn, y: &Pbn) -> bool {
    is_preceding(y, x)
}

/// Classifies the relationship of x to y. See [`Relationship`].
pub fn relationship(x: &Pbn, y: &Pbn) -> Relationship {
    if x == y {
        return Relationship::SelfNode;
    }
    if !x.is_empty() && !y.is_empty() && x.components()[0] != y.components()[0] {
        return Relationship::Disjoint;
    }
    if is_parent(x, y) {
        Relationship::Parent
    } else if is_ancestor(x, y) {
        Relationship::Ancestor
    } else if is_child(x, y) {
        Relationship::Child
    } else if is_descendant(x, y) {
        Relationship::Descendant
    } else if is_preceding_sibling(x, y) {
        Relationship::PrecedingSibling
    } else if is_following_sibling(x, y) {
        Relationship::FollowingSibling
    } else if is_preceding(x, y) {
        Relationship::Preceding
    } else {
        Relationship::Following
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pbn;

    #[test]
    fn paper_walkthrough_section_4_2() {
        // "1.1.2 can be compared to 1.2. Since 1.1.2 is neither a prefix nor
        // a suffix of 1.2, it is not a child, parent, ancestor, or
        // descendant. 1.1.2 precedes 1.2 in document order, but is not a
        // preceding sibling since the parent of 1.1.2 (1.1) differs from
        // that of 1.2 (1)."
        let a = pbn![1, 1, 2];
        let b = pbn![1, 2];
        assert!(!is_child(&a, &b) && !is_parent(&a, &b));
        assert!(!is_ancestor(&a, &b) && !is_descendant(&a, &b));
        assert!(is_preceding(&a, &b));
        assert!(!is_preceding_sibling(&a, &b));
        assert_eq!(relationship(&a, &b), Relationship::Preceding);
    }

    #[test]
    fn parent_child_ancestor_descendant() {
        let p = pbn![1, 2];
        let c = pbn![1, 2, 2];
        let g = pbn![1, 2, 2, 1];
        assert!(is_parent(&p, &c) && is_child(&c, &p));
        assert!(is_ancestor(&p, &g) && !is_parent(&p, &g));
        assert!(is_descendant(&g, &p));
        assert!(is_descendant_or_self(&g, &g));
        assert!(!is_descendant(&g, &g), "descendant is proper");
        assert_eq!(relationship(&p, &g), Relationship::Ancestor);
        assert_eq!(relationship(&g, &p), Relationship::Descendant);
        assert_eq!(relationship(&p, &c), Relationship::Parent);
        assert_eq!(relationship(&c, &p), Relationship::Child);
    }

    #[test]
    fn sibling_axes() {
        let a = pbn![1, 2, 1];
        let b = pbn![1, 2, 3];
        assert!(is_sibling(&a, &b));
        assert!(is_preceding_sibling(&a, &b));
        assert!(is_following_sibling(&b, &a));
        assert!(!is_preceding_sibling(&b, &a));
        assert!(!is_sibling(&a, &a), "a node is not its own sibling");
        assert_eq!(relationship(&a, &b), Relationship::PrecedingSibling);
        assert_eq!(relationship(&b, &a), Relationship::FollowingSibling);
    }

    #[test]
    fn preceding_excludes_ancestors_following_excludes_descendants() {
        let anc = pbn![1, 1];
        let desc = pbn![1, 1, 5];
        // An ancestor starts before but does not *end* before: not preceding.
        assert!(!is_preceding(&anc, &desc));
        // A descendant starts after but does not start after y *ends*.
        assert!(!is_following(&desc, &anc));
        assert!(is_preceding(&pbn![1, 1, 9], &pbn![1, 2]));
        assert!(is_following(&pbn![1, 2], &pbn![1, 1, 9]));
    }

    #[test]
    fn self_and_disjoint() {
        let a = pbn![1, 1];
        assert!(is_self(&a, &a));
        assert_eq!(relationship(&a, &a), Relationship::SelfNode);
        assert_eq!(
            relationship(&pbn![1, 1], &pbn![2, 1]),
            Relationship::Disjoint
        );
    }

    #[test]
    fn relationship_classification_is_exhaustive_and_antisymmetric() {
        // Enumerate a small universe and cross-check pairwise properties.
        let universe: Vec<Pbn> = vec![
            pbn![1],
            pbn![1, 1],
            pbn![1, 1, 1],
            pbn![1, 1, 2],
            pbn![1, 2],
            pbn![1, 2, 1],
            pbn![1, 3],
        ];
        for x in &universe {
            for y in &universe {
                let r = relationship(x, y);
                let r_inv = relationship(y, x);
                use Relationship::*;
                let expected_inv = match r {
                    SelfNode => SelfNode,
                    Parent => Child,
                    Child => Parent,
                    Ancestor => Descendant,
                    Descendant => Ancestor,
                    PrecedingSibling => FollowingSibling,
                    FollowingSibling => PrecedingSibling,
                    Preceding => Following,
                    Following => Preceding,
                    Disjoint => Disjoint,
                };
                assert_eq!(r_inv, expected_inv, "x={x} y={y}");
            }
        }
    }
}
