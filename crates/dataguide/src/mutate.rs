//! In-place edits on a [`TypedDocument`] — the renumbering-free half of
//! the paper's §3 update story.
//!
//! Plain PBN pays for an insert by renumbering every following sibling's
//! subtree (`vh_pbn::update` measures exactly how much). The mutations
//! here never do that: new siblings get numbers minted *between* their
//! neighbours by [`KeyGen::between`], existing numbers are never touched,
//! and the byte arena absorbs the edits lazily (see
//! [`vh_pbn::PbnAssignment::compact`]).
//!
//! Every mutation also maintains the DataGuide incrementally: newly
//! observed paths intern new types ([`crate::DataGuide::intern_child`]) and the
//! node → type map is extended in place — an edited document is
//! indistinguishable from one analyzed from scratch, except for the
//! minted numbers (the whole point) and guide types left behind by
//! deletions (a strong DataGuide only ever grows).

use crate::build::TypedDocument;
use crate::delta::{Touch, TouchedNode};
use crate::types::TEXT_TYPE_NAME;
use std::fmt;
use vh_pbn::{KeyGen, Pbn};
use vh_xml::{Document, NodeId, NodeKind};

/// Why an edit could not be applied. The document is unchanged when any
/// of these is returned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditError {
    /// A dotted child-index path did not resolve to a node.
    BadPath {
        /// The path as written.
        path: String,
    },
    /// An insert/move position exceeds the target's child count.
    BadPosition {
        /// The requested 0-based position.
        pos: usize,
        /// The number of children actually present.
        len: usize,
    },
    /// The root cannot be deleted or moved.
    RootTarget,
    /// A subtree cannot be moved under itself.
    CyclicMove,
    /// The operation needs an element node (insert/move destination,
    /// `SetValue` target).
    NotElement,
    /// `SetValue` on an element with non-text children is ambiguous and
    /// refused.
    MixedContent,
    /// The inserted fragment is not well-formed XML.
    Fragment {
        /// Parser diagnostic.
        detail: String,
    },
}

impl EditError {
    /// Stable machine-readable code, following the repo's layer-code
    /// convention (`PBN_*`, `VDG_*`, `QRY_*`, …).
    pub fn code(&self) -> &'static str {
        match self {
            EditError::BadPath { .. } => "EDIT_PATH",
            EditError::BadPosition { .. } => "EDIT_POSITION",
            EditError::RootTarget => "EDIT_ROOT",
            EditError::CyclicMove => "EDIT_CYCLE",
            EditError::NotElement => "EDIT_NOT_ELEMENT",
            EditError::MixedContent => "EDIT_MIXED_CONTENT",
            EditError::Fragment { .. } => "EDIT_FRAGMENT",
        }
    }
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::BadPath { path } => write!(f, "path `{path}` does not resolve to a node"),
            EditError::BadPosition { pos, len } => {
                write!(f, "position {pos} out of bounds for {len} children")
            }
            EditError::RootTarget => write!(f, "the document root cannot be deleted or moved"),
            EditError::CyclicMove => write!(f, "cannot move a subtree under itself"),
            EditError::NotElement => write!(f, "target node is not an element"),
            EditError::MixedContent => {
                write!(f, "SetValue on an element with mixed content is ambiguous")
            }
            EditError::Fragment { detail } => write!(f, "fragment is not well-formed: {detail}"),
        }
    }
}

impl std::error::Error for EditError {}

/// Resolves a dotted 1-based child-index path against the *current* tree:
/// `"1"` is the root, `"1.2"` its second child, and so on. Paths address
/// positions, not numbers — they stay short and human-writable even after
/// minted (fractional) PBN numbers appear.
pub fn resolve_path(doc: &Document, path: &str) -> Result<NodeId, EditError> {
    let bad = || EditError::BadPath {
        path: path.to_string(),
    };
    let mut steps = path.split('.');
    let root = doc.root().ok_or_else(bad)?;
    if steps.next().and_then(|s| s.parse::<usize>().ok()) != Some(1) {
        return Err(bad());
    }
    let mut cur = root;
    for step in steps {
        let k: usize = step.parse().map_err(|_| bad())?;
        cur = *doc
            .children(cur)
            .get(k.checked_sub(1).ok_or_else(bad)?)
            .ok_or_else(bad)?;
    }
    Ok(cur)
}

impl TypedDocument {
    /// Parses `xml` as a single-rooted fragment and inserts it as the
    /// `pos`-th child of `parent` (0-based; `pos` = child count appends).
    /// Returns the id of the inserted root.
    ///
    /// The new subtree's root number is minted between its neighbours —
    /// no existing number changes — and its descendants are numbered
    /// densely below it, exactly as initial assignment would.
    pub fn insert_fragment(
        &mut self,
        parent: NodeId,
        pos: usize,
        xml: &str,
    ) -> Result<NodeId, EditError> {
        self.require_attached_element(parent)?;
        let len = self.doc.children(parent).len();
        if pos > len {
            return Err(EditError::BadPosition { pos, len });
        }
        let fragment =
            Document::parse(self.doc.uri().to_string(), xml).map_err(|e| EditError::Fragment {
                detail: e.to_string(),
            })?;
        let src = fragment.root().ok_or_else(|| EditError::Fragment {
            detail: "fragment has no root element".into(),
        })?;
        let new_root = self.doc.copy_subtree_at(parent, pos, &fragment, src);
        self.renumber_inserted(parent, pos, new_root);
        Ok(new_root)
    }

    /// Detaches the subtree rooted at `target` and retires its numbers.
    /// Returns the number of nodes removed. Arena ids stay valid (the
    /// arena never shrinks mid-session); the nodes just become
    /// unreachable and unnumbered until the next compaction drops their
    /// keys.
    pub fn delete_subtree(&mut self, target: NodeId) -> Result<usize, EditError> {
        self.require_node(target)?;
        if self.doc.parent(target).is_none() {
            return Err(EditError::RootTarget);
        }
        let subtree: Vec<NodeId> = self.doc.descendants_or_self(target).collect();
        self.doc.detach(target);
        for &id in &subtree {
            self.journal_removal(id);
            self.pbn.remove_node(id);
        }
        Ok(subtree.len())
    }

    /// Moves the subtree rooted at `target` to become the `pos`-th child
    /// of `parent` (0-based, counted *after* the subtree is detached).
    /// The moved subtree is re-minted under its new parent; nothing else
    /// is renumbered.
    pub fn move_subtree(
        &mut self,
        target: NodeId,
        parent: NodeId,
        pos: usize,
    ) -> Result<(), EditError> {
        self.require_node(target)?;
        self.require_attached_element(parent)?;
        if self.doc.parent(target).is_none() {
            return Err(EditError::RootTarget);
        }
        if parent == target || self.doc.is_ancestor(target, parent) {
            return Err(EditError::CyclicMove);
        }
        let len_after =
            self.doc.children(parent).len() - usize::from(self.doc.parent(target) == Some(parent));
        if pos > len_after {
            return Err(EditError::BadPosition {
                pos,
                len: len_after,
            });
        }
        // Retire the subtree's numbers first so the neighbour scan below
        // sees only the surviving siblings.
        let subtree: Vec<NodeId> = self.doc.descendants_or_self(target).collect();
        for &id in &subtree {
            self.journal_removal(id);
            self.pbn.remove_node(id);
        }
        self.doc.detach(target);
        self.doc.attach_at(parent, pos, target);
        self.renumber_inserted(parent, pos, target);
        Ok(())
    }

    /// Sets the textual content of `target`. A text node is rewritten in
    /// place; an element must have at most one child, a text node, which
    /// is replaced (or created when absent). Elements with other children
    /// are refused as [`EditError::MixedContent`].
    pub fn set_value(&mut self, target: NodeId, value: &str) -> Result<(), EditError> {
        self.require_node(target)?;
        match self.doc.kind(target) {
            NodeKind::Text(_) => {
                self.doc.set_text(target, value);
                Ok(())
            }
            NodeKind::Element { .. } => match *self.doc.children(target) {
                [] => {
                    let id = self.doc.append_text(target, value);
                    self.renumber_inserted(target, 0, id);
                    Ok(())
                }
                [only] if matches!(self.doc.kind(only), NodeKind::Text(_)) => {
                    self.doc.set_text(only, value);
                    Ok(())
                }
                _ => Err(EditError::MixedContent),
            },
            _ => Err(EditError::NotElement),
        }
    }

    /// Number of edits the byte arena has not yet absorbed — see
    /// [`vh_pbn::PbnAssignment::delta_len`].
    #[inline]
    pub fn delta_len(&self) -> usize {
        self.pbn.delta_len()
    }

    /// Compacts the delta segment into the byte arena; returns the number
    /// of edits merged.
    pub fn compact(&mut self) -> usize {
        self.pbn.compact()
    }

    /// `Ok` iff `id` is a live, reachable node of this document.
    fn require_node(&self, id: NodeId) -> Result<(), EditError> {
        let numbered = self.pbn.by_node_checked(id).is_some_and(|p| !p.is_empty());
        if id.index() < self.doc.len() && numbered {
            Ok(())
        } else {
            Err(EditError::BadPath {
                path: format!("node #{}", id.index()),
            })
        }
    }

    fn require_attached_element(&self, id: NodeId) -> Result<(), EditError> {
        self.require_node(id)?;
        match self.doc.kind(id) {
            NodeKind::Element { .. } => Ok(()),
            _ => Err(EditError::NotElement),
        }
    }

    /// Numbers and types the (already attached) subtree rooted at the
    /// `pos`-th child of `parent`: the root's number is minted between
    /// its current neighbours, descendants are numbered densely, and
    /// every node's type is interned along its new path.
    fn renumber_inserted(&mut self, parent: NodeId, pos: usize, root_id: NodeId) {
        let siblings = self.doc.children(parent);
        debug_assert_eq!(siblings.get(pos), Some(&root_id));
        let neighbour = |id: Option<&NodeId>| {
            id.and_then(|&n| self.pbn.by_node_checked(n))
                .filter(|p| !p.is_empty())
                .cloned()
        };
        let left = neighbour(pos.checked_sub(1).and_then(|i| siblings.get(i)));
        let right = neighbour(siblings.get(pos + 1));
        // Invariant: `require_attached_element(parent)` ensured the parent
        // is numbered.
        let parent_pbn = match self.pbn.by_node_checked(parent) {
            Some(p) if !p.is_empty() => p.clone(),
            _ => unreachable!("parent validated before renumbering"),
        };
        let root_pbn = KeyGen::between(&parent_pbn, left.as_ref(), right.as_ref());

        if self.type_of.len() < self.doc.len() {
            self.type_of
                .resize(self.doc.len(), crate::types::TypeId::from_index(0));
        }
        let parent_ty = self.type_of[parent.index()];
        let mut stack: Vec<(NodeId, Pbn, crate::types::TypeId)> =
            vec![(root_id, root_pbn, parent_ty)];
        while let Some((id, num, ptype)) = stack.pop() {
            let name = match self.doc.kind(id) {
                NodeKind::Element { name, .. } => name.as_str(),
                NodeKind::Text(_) => TEXT_TYPE_NAME,
                NodeKind::Comment(_) => "#comment",
                NodeKind::ProcessingInstruction { .. } => "#pi",
            };
            let ty = self.guide.intern_child(ptype, name);
            self.type_of[id.index()] = ty;
            let inserted = self.pbn.insert_node(id, num.clone());
            debug_assert!(inserted, "minted numbers are unique by construction");
            self.journal.record(TouchedNode {
                id,
                ty,
                pbn: num.clone(),
                touch: Touch::Added,
            });
            for (i, &c) in self.doc.children(id).iter().enumerate().rev() {
                stack.push((c, num.child(i as u32 + 1), ty));
            }
        }
    }

    /// Journals the retirement of a still-numbered node (delete, or the
    /// detach half of a move).
    fn journal_removal(&mut self, id: NodeId) {
        let Some(pbn) = self.pbn.by_node_checked(id).filter(|p| !p.is_empty()) else {
            return;
        };
        let pbn = pbn.clone();
        self.journal.record(TouchedNode {
            id,
            ty: self.type_of[id.index()],
            pbn,
            touch: Touch::Removed,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vh_pbn::pbn;
    use vh_xml::builder::paper_figure2;

    fn td() -> TypedDocument {
        TypedDocument::analyze(paper_figure2())
    }

    /// Rebuild-from-scratch oracle: the edited document must be
    /// indistinguishable from one parsed and analyzed from its own
    /// serialization — same bytes, same document order, same types.
    fn assert_matches_rebuild(td: &TypedDocument) {
        let opts = vh_xml::SerializeOptions::compact();
        let edited = vh_xml::serialize(td.doc(), opts);
        let rebuilt = TypedDocument::parse(td.doc().uri().to_string(), &edited).unwrap();
        assert_eq!(edited, vh_xml::serialize(rebuilt.doc(), opts));
        assert_eq!(td.pbn().len(), rebuilt.pbn().len());
        // Walking both in document order pairs up corresponding nodes:
        // kinds and guide paths must agree even though the numbers differ
        // (ours are minted, the rebuild's are dense).
        for (a, b) in td
            .pbn()
            .in_document_order()
            .iter()
            .zip(rebuilt.pbn().in_document_order())
        {
            assert_eq!(
                format!("{:?}", td.doc().kind(a.1)),
                format!("{:?}", rebuilt.doc().kind(b.1))
            );
            assert_eq!(
                td.guide().path_string(td.type_of(a.1)),
                rebuilt.guide().path_string(rebuilt.type_of(b.1))
            );
        }
    }

    #[test]
    fn path_resolution_walks_child_indices() {
        let t = td();
        let root = t.doc().root().unwrap();
        assert_eq!(resolve_path(t.doc(), "1"), Ok(root));
        let book2 = t.doc().children(root)[1];
        assert_eq!(resolve_path(t.doc(), "1.2"), Ok(book2));
        assert_eq!(
            resolve_path(t.doc(), "1.2.1"),
            Ok(t.doc().children(book2)[0])
        );
        assert!(resolve_path(t.doc(), "2").is_err());
        assert!(resolve_path(t.doc(), "1.99").is_err());
        assert!(resolve_path(t.doc(), "").is_err());
        assert!(resolve_path(t.doc(), "1.0").is_err());
    }

    #[test]
    fn insert_between_books_mints_without_renumbering() {
        let mut t = td();
        let root = t.doc().root().unwrap();
        let before: Vec<Pbn> = t
            .pbn()
            .in_document_order()
            .iter()
            .map(|(p, _)| p.clone())
            .collect();
        let id = t
            .insert_fragment(root, 1, "<book><title>New</title></book>")
            .unwrap();
        // Existing numbers are all untouched.
        let after: Vec<Pbn> = t
            .pbn()
            .in_document_order()
            .iter()
            .map(|(p, _)| p.clone())
            .collect();
        for p in &before {
            assert!(after.contains(p), "{p} was renumbered");
        }
        // The minted root sits between the books, its children below it.
        let minted = t.pbn().pbn_of(id).clone();
        assert!(pbn![1, 1] < minted && minted < pbn![1, 2]);
        assert_eq!(t.doc().children(root).len(), 3);
        let title = t.doc().children(id)[0];
        assert_eq!(t.pbn().pbn_of(title), &minted.child(1));
        // Types intern onto the existing book path.
        assert_eq!(t.guide().path_string(t.type_of(id)), "data.book");
        assert_eq!(t.guide().path_string(t.type_of(title)), "data.book.title");
        assert!(t.delta_len() > 0);
        t.compact();
        assert_eq!(t.delta_len(), 0);
        assert_matches_rebuild(&t);
    }

    #[test]
    fn insert_of_a_new_path_grows_the_guide() {
        let mut t = td();
        let n = t.guide().len();
        let root = t.doc().root().unwrap();
        t.insert_fragment(root, 2, "<journal><issue>1</issue></journal>")
            .unwrap();
        assert!(t.guide().len() > n, "new paths intern new types");
        assert!(t
            .guide()
            .lookup_path(&["data", "journal", "issue"])
            .is_some());
        assert_matches_rebuild(&t);
    }

    #[test]
    fn delete_retires_numbers_and_keeps_the_rest() {
        let mut t = td();
        let root = t.doc().root().unwrap();
        let book1 = t.doc().children(root)[0];
        let removed = t.delete_subtree(book1).unwrap();
        assert_eq!(removed, 9);
        assert_eq!(t.pbn().node_of(&pbn![1, 1]), None);
        assert!(t.pbn().node_of(&pbn![1, 2]).is_some());
        assert!(t.delete_subtree(book1).is_err(), "already detached");
        assert_eq!(t.delete_subtree(root), Err(EditError::RootTarget));
        assert_matches_rebuild(&t);
    }

    #[test]
    fn move_reminted_under_the_new_parent() {
        let mut t = td();
        let root = t.doc().root().unwrap();
        let book1 = t.doc().children(root)[0];
        let book2 = t.doc().children(root)[1];
        // Move book1's title under book2, at the front.
        let title1 = t.doc().children(book1)[0];
        t.move_subtree(title1, book2, 0).unwrap();
        assert_eq!(t.doc().children(book2)[0], title1);
        let p = t.pbn().pbn_of(title1).clone();
        assert!(pbn![1, 2].is_strict_prefix_of(&p));
        assert!(p < pbn![1, 2, 1], "front insert mints before child 1");
        // Its text child is numbered below the minted number.
        let text = t.doc().children(title1)[0];
        assert_eq!(t.pbn().pbn_of(text), &p.child(1));
        // Cycle and root guards.
        assert_eq!(t.move_subtree(root, book2, 0), Err(EditError::RootTarget));
        assert_eq!(t.move_subtree(book2, title1, 0), Err(EditError::CyclicMove));
        assert_matches_rebuild(&t);
    }

    #[test]
    fn set_value_rewrites_text() {
        let mut t = td();
        let root = t.doc().root().unwrap();
        let book1 = t.doc().children(root)[0];
        let title = t.doc().children(book1)[0];
        t.set_value(title, "Replaced").unwrap();
        assert_eq!(t.doc().string_value(title), "Replaced");
        // Element-level SetValue on a node with element children refuses.
        assert_eq!(t.set_value(book1, "x"), Err(EditError::MixedContent));
        // Creating a value under an empty element mints a text node.
        let id = t.insert_fragment(book1, 3, "<isbn></isbn>").unwrap();
        t.set_value(id, "12345").unwrap();
        assert_eq!(t.doc().string_value(id), "12345");
        let text = t.doc().children(id)[0];
        assert_eq!(t.pbn().pbn_of(text), &t.pbn().pbn_of(id).child(1));
        assert_matches_rebuild(&t);
    }
}
