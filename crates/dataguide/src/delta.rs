//! The per-document edit journal: a compact chronological record of the
//! node-level touches an edit batch performed, drained by delta-aware
//! consumers (the engine's `ExecCache`) so cached artifacts can be
//! *maintained* under edits instead of being thrown away.
//!
//! The journal is deliberately dumb: [`crate::TypedDocument`]'s mutations
//! append one [`TouchedNode`] per node they number or retire, and
//! [`crate::TypedDocument::take_delta`] hands the accumulated batch over
//! together with the range of guide types interned since the last drain
//! (a strong DataGuide only grows, so "new types" is always a contiguous
//! tail of the type table). A bounded buffer keeps pathological batches
//! from hoarding memory: past [`MAX_JOURNAL_OPS`] entries the journal
//! drops its record and reports an overflow, which consumers must treat
//! as "recompute everything for this document".

use crate::types::TypeId;
use vh_pbn::Pbn;
use vh_xml::NodeId;

/// Journal entries retained before the journal declares overflow and
/// stops recording. Deltas this large are cheaper to absorb by
/// recomputing the affected artifacts outright.
pub const MAX_JOURNAL_OPS: usize = 8192;

/// Whether a touch numbered a node into the document or retired it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Touch {
    /// The node was numbered (fresh insert, or re-mint after a move).
    Added,
    /// The node's number was retired (delete, or the detach half of a
    /// move).
    Removed,
}

/// One node-level touch: which node, the guide type and PBN number it had
/// *at touch time* (a removed node loses both afterwards), and the
/// direction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TouchedNode {
    /// The touched node.
    pub id: NodeId,
    /// Its guide type at touch time.
    pub ty: TypeId,
    /// Its PBN number at touch time (minted for adds, retiring for
    /// removes).
    pub pbn: Pbn,
    /// Add or remove.
    pub touch: Touch,
}

/// What a batch of edits changed, drained from a
/// [`crate::TypedDocument`] via [`crate::TypedDocument::take_delta`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DocDelta {
    /// Node touches in chronological order. A node may appear several
    /// times (e.g. the remove and add halves of a move).
    pub touched: Vec<TouchedNode>,
    /// Guide types interned since the last drain, in intern order.
    pub new_types: Vec<TypeId>,
    /// The journal overflowed: `touched` is incomplete and consumers
    /// must fall back to recomputation.
    pub overflowed: bool,
}

impl DocDelta {
    /// True when the batch changed nothing a structural consumer can see
    /// (pure in-place value rewrites leave no journal entries).
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty() && self.new_types.is_empty() && !self.overflowed
    }
}

/// The accumulating journal owned by a [`crate::TypedDocument`].
#[derive(Clone, Debug, Default)]
pub(crate) struct DeltaJournal {
    entries: Vec<TouchedNode>,
    /// Guide length at the last drain; types at or past this index are
    /// "new" for the next [`DocDelta`].
    guide_base: usize,
    overflowed: bool,
}

impl DeltaJournal {
    /// A fresh journal whose "no new types" baseline is `guide_base`.
    pub(crate) fn with_guide_base(guide_base: usize) -> Self {
        DeltaJournal {
            entries: Vec::new(),
            guide_base,
            overflowed: false,
        }
    }

    /// Appends one touch, tripping the overflow bound when full.
    pub(crate) fn record(&mut self, entry: TouchedNode) {
        if self.overflowed {
            return;
        }
        if self.entries.len() >= MAX_JOURNAL_OPS {
            self.overflowed = true;
            self.entries.clear();
            return;
        }
        self.entries.push(entry);
    }

    /// Pending touches (0 after a drain or an overflow).
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the journal gave up recording this batch.
    pub(crate) fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Drains the journal into a [`DocDelta`], re-baselining the new-type
    /// watermark at `guide_len`.
    pub(crate) fn drain(&mut self, guide_len: usize) -> DocDelta {
        let new_types = (self.guide_base..guide_len)
            .map(TypeId::from_index)
            .collect();
        self.guide_base = guide_len;
        let overflowed = std::mem::take(&mut self.overflowed);
        DocDelta {
            touched: std::mem::take(&mut self.entries),
            new_types,
            overflowed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vh_pbn::pbn;

    fn touch(i: usize, t: Touch) -> TouchedNode {
        TouchedNode {
            id: NodeId::from_index(i),
            ty: TypeId::from_index(0),
            pbn: pbn![1, 1],
            touch: t,
        }
    }

    #[test]
    fn drain_reports_touches_and_new_types_then_resets() {
        let mut j = DeltaJournal::with_guide_base(3);
        j.record(touch(1, Touch::Added));
        j.record(touch(2, Touch::Removed));
        let d = j.drain(5);
        assert_eq!(d.touched.len(), 2);
        assert_eq!(
            d.new_types,
            vec![TypeId::from_index(3), TypeId::from_index(4)]
        );
        assert!(!d.overflowed);
        assert!(!d.is_empty());
        // Drained: the next delta is empty and the type baseline moved.
        assert!(j.drain(5).is_empty());
    }

    #[test]
    fn overflow_drops_the_record_and_flags_the_delta() {
        let mut j = DeltaJournal::with_guide_base(0);
        for i in 0..=MAX_JOURNAL_OPS {
            j.record(touch(i, Touch::Added));
        }
        assert!(j.overflowed());
        assert_eq!(j.len(), 0, "overflow clears the buffer");
        let d = j.drain(0);
        assert!(d.overflowed);
        assert!(d.touched.is_empty());
        assert!(!d.is_empty(), "an overflowed delta is not a no-op");
        // The flag resets with the drain.
        assert!(!j.overflowed());
    }
}
