//! The [`DataGuide`] itself: the type forest and the paper's helper
//! functions (`roots`, `name`, `lcaTypeOf`, `length`, path lookups).

use crate::types::{Type, TypeId, TEXT_TYPE_NAME};
use std::collections::HashMap;
use vh_pbn::Pbn;

/// A structural summary: the forest of distinct root-to-node name paths of
/// a document (or set of documents sharing a URI).
///
/// Types are created through [`DataGuide::intern_root`] /
/// [`DataGuide::intern_child`], which de-duplicate by `(parent, name)` — the
/// defining property of a strong DataGuide.
#[derive(Clone, Debug, Default)]
pub struct DataGuide {
    uri: String,
    types: Vec<Type>,
    roots: Vec<TypeId>,
    /// `(parent, name) → type` interning map. Roots use `None`.
    interned: HashMap<(Option<TypeId>, String), TypeId>,
}

impl DataGuide {
    /// Creates an empty guide for the given document URI.
    pub fn new(uri: impl Into<String>) -> Self {
        DataGuide {
            uri: uri.into(),
            ..DataGuide::default()
        }
    }

    /// The document URI this guide describes. Per §4.1 the URI is part of
    /// every type, so guides with different URIs share no types.
    #[inline]
    pub fn uri(&self) -> &str {
        &self.uri
    }

    /// Number of types in the guide.
    #[inline]
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// True if the guide has no types.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// The root types (`roots(S)` in the paper).
    #[inline]
    pub fn roots(&self) -> &[TypeId] {
        &self.roots
    }

    /// Accesses a type record.
    #[inline]
    pub fn ty(&self, id: TypeId) -> &Type {
        &self.types[id.index()]
    }

    /// The local name of a type (`name(S, v)`).
    #[inline]
    pub fn name(&self, id: TypeId) -> &str {
        &self.types[id.index()].name
    }

    /// Path length of a type (`length(S, v)`).
    #[inline]
    pub fn length(&self, id: TypeId) -> usize {
        self.types[id.index()].length
    }

    /// Iterator over all type ids.
    pub fn type_ids(&self) -> impl Iterator<Item = TypeId> + '_ {
        (0..self.types.len()).map(TypeId::from_index)
    }

    /// Interns (or retrieves) a root type with the given name.
    pub fn intern_root(&mut self, name: &str) -> TypeId {
        if let Some(&id) = self.interned.get(&(None, name.to_owned())) {
            return id;
        }
        let ordinal = self.roots.len() as u32 + 1;
        let id = TypeId::from_index(self.types.len());
        self.types.push(Type {
            name: name.to_owned(),
            parent: None,
            children: Vec::new(),
            length: 1,
            pbn: Pbn::new(vec![ordinal]),
        });
        self.roots.push(id);
        self.interned.insert((None, name.to_owned()), id);
        id
    }

    /// Interns (or retrieves) the child type `name` under `parent`.
    pub fn intern_child(&mut self, parent: TypeId, name: &str) -> TypeId {
        if let Some(&id) = self.interned.get(&(Some(parent), name.to_owned())) {
            return id;
        }
        let id = TypeId::from_index(self.types.len());
        let (length, pbn) = {
            let p = &self.types[parent.index()];
            (p.length + 1, p.pbn.child(p.children.len() as u32 + 1))
        };
        self.types.push(Type {
            name: name.to_owned(),
            parent: Some(parent),
            children: Vec::new(),
            length,
            pbn,
        });
        self.types[parent.index()].children.push(id);
        self.interned.insert((Some(parent), name.to_owned()), id);
        id
    }

    /// Looks up the child type `name` under `parent` without interning.
    pub fn child_named(&self, parent: TypeId, name: &str) -> Option<TypeId> {
        self.ty(parent)
            .children
            .iter()
            .copied()
            .find(|&c| self.name(c) == name)
    }

    /// Looks up a root type by name without interning.
    pub fn root_named(&self, name: &str) -> Option<TypeId> {
        self.roots.iter().copied().find(|&r| self.name(r) == name)
    }

    /// The full name path of a type, root first (`typeOf` in path form).
    pub fn path(&self, id: TypeId) -> Vec<&str> {
        let mut names = Vec::with_capacity(self.length(id));
        let mut cur = Some(id);
        while let Some(t) = cur {
            names.push(self.name(t));
            cur = self.ty(t).parent;
        }
        names.reverse();
        names
    }

    /// Dotted path string, e.g. `data.book.author`.
    pub fn path_string(&self, id: TypeId) -> String {
        self.path(id).join(".")
    }

    /// Resolves an exact path of names, root first.
    pub fn lookup_path(&self, names: &[&str]) -> Option<TypeId> {
        let mut cur = self.root_named(names.first()?)?;
        for name in &names[1..] {
            cur = self.child_named(cur, name)?;
        }
        Some(cur)
    }

    /// All types whose path *ends with* the given (dot-separated) label.
    ///
    /// §4.1: a vDataGuide label "can be fully qualified to disambiguate and
    /// uniquely name a type, e.g., `x.y` specifies a different type than
    /// `x.z.y`". A bare name matches every type with that local name; a
    /// dotted label matches by path suffix.
    pub fn resolve_label(&self, label: &str) -> Vec<TypeId> {
        let parts: Vec<&str> = label.split('.').collect();
        self.type_ids()
            .filter(|&t| self.path_ends_with(t, &parts))
            .collect()
    }

    fn path_ends_with(&self, t: TypeId, suffix: &[&str]) -> bool {
        let mut cur = Some(t);
        for name in suffix.iter().rev() {
            match cur {
                Some(ty) if self.name(ty) == *name => cur = self.ty(ty).parent,
                _ => return false,
            }
        }
        true
    }

    /// The lowest common ancestor type (`lcaTypeOf(S, v, w)`), or `None`
    /// when the types live in different trees of the forest.
    ///
    /// Implemented by comparing the guide-internal PBN numbers: the lca is
    /// the type at the shared prefix (§5.2: "the least common ancestor type
    /// can be computed by finding the shared prefix in a pair of PBN
    /// numbers"), giving O(c) time.
    pub fn lca(&self, a: TypeId, b: TypeId) -> Option<TypeId> {
        let (pa, pb) = (self.ty(a).pbn(), self.ty(b).pbn());
        let shared = pa.common_prefix_len(pb);
        if shared == 0 {
            return None;
        }
        // Walk up from the shallower side to the shared depth.
        let mut cur = if self.length(a) <= self.length(b) {
            a
        } else {
            b
        };
        while self.ty(cur).pbn().len() > shared {
            // Invariant: `shared >= 1`, so the walk stops at or before the
            // root — every type visited here is below the root and has a
            // parent.
            cur = match self.ty(cur).parent {
                Some(p) => p,
                None => unreachable!("non-root has a parent"),
            };
        }
        Some(cur)
    }

    /// True if `anc` is a proper ancestor of `t` in the guide.
    pub fn is_ancestor(&self, anc: TypeId, t: TypeId) -> bool {
        self.ty(anc).pbn().is_strict_prefix_of(self.ty(t).pbn())
    }

    /// The text pseudo-type under `parent`, if the data has one.
    pub fn text_child(&self, parent: TypeId) -> Option<TypeId> {
        self.child_named(parent, TEXT_TYPE_NAME)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the Figure 7(a) guide by hand:
    /// data { book { title {◦} author { name {◦} } publisher { location {◦} } } }
    fn figure7a() -> (DataGuide, HashMap<String, TypeId>) {
        let mut g = DataGuide::new("book.xml");
        let mut m = HashMap::new();
        let data = g.intern_root("data");
        let book = g.intern_child(data, "book");
        let title = g.intern_child(book, "title");
        let title_t = g.intern_child(title, TEXT_TYPE_NAME);
        let author = g.intern_child(book, "author");
        let name = g.intern_child(author, "name");
        let name_t = g.intern_child(name, TEXT_TYPE_NAME);
        let publisher = g.intern_child(book, "publisher");
        let location = g.intern_child(publisher, "location");
        let loc_t = g.intern_child(location, TEXT_TYPE_NAME);
        for (k, v) in [
            ("data", data),
            ("book", book),
            ("title", title),
            ("title#", title_t),
            ("author", author),
            ("name", name),
            ("name#", name_t),
            ("publisher", publisher),
            ("location", location),
            ("location#", loc_t),
        ] {
            m.insert(k.to_owned(), v);
        }
        (g, m)
    }

    #[test]
    fn interning_dedups_by_parent_and_name() {
        let mut g = DataGuide::new("u");
        let r = g.intern_root("data");
        let b1 = g.intern_child(r, "book");
        let b2 = g.intern_child(r, "book");
        assert_eq!(b1, b2);
        assert_eq!(g.len(), 2);
        assert_eq!(g.intern_root("data"), r);
    }

    #[test]
    fn paths_and_lengths_match_the_paper() {
        let (g, m) = figure7a();
        // §4.1: "the typeOf author ... originalTypeOf is data.book.author";
        // length of title.author in the virtual guide is 2, of
        // data.book.author here is 3.
        assert_eq!(g.path_string(m["author"]), "data.book.author");
        assert_eq!(g.length(m["author"]), 3);
        assert_eq!(g.path_string(m["name"]), "data.book.author.name");
        assert_eq!(g.length(m["name"]), 4);
    }

    #[test]
    fn lca_matches_worked_examples() {
        let (g, m) = figure7a();
        // §5.2 case 3 example: lca of title and author is book.
        assert_eq!(g.lca(m["title"], m["author"]), Some(m["book"]));
        // §5.2 case 2 example: lca of name and title is book.
        assert_eq!(g.lca(m["name"], m["title"]), Some(m["book"]));
        // lca with an ancestor is the ancestor itself.
        assert_eq!(g.lca(m["name"], m["author"]), Some(m["author"]));
        assert_eq!(g.lca(m["book"], m["book"]), Some(m["book"]));
    }

    #[test]
    fn lca_across_forest_roots_is_none() {
        let mut g = DataGuide::new("u");
        let a = g.intern_root("a");
        let b = g.intern_root("b");
        let a1 = g.intern_child(a, "x");
        assert_eq!(g.lca(a1, b), None);
    }

    #[test]
    fn label_resolution_by_suffix() {
        let (g, m) = figure7a();
        assert_eq!(g.resolve_label("author"), vec![m["author"]]);
        assert_eq!(g.resolve_label("book.author"), vec![m["author"]]);
        assert_eq!(g.resolve_label("data.book.author"), vec![m["author"]]);
        assert!(g.resolve_label("nosuch").is_empty());
        assert!(g.resolve_label("title.author").is_empty());
    }

    #[test]
    fn label_resolution_disambiguates_homonyms() {
        // x.y vs x.z.y — the paper's own qualification example.
        let mut g = DataGuide::new("u");
        let x = g.intern_root("x");
        let y1 = g.intern_child(x, "y");
        let z = g.intern_child(x, "z");
        let y2 = g.intern_child(z, "y");
        let both = g.resolve_label("y");
        assert_eq!(both.len(), 2);
        assert_eq!(g.resolve_label("x.y"), vec![y1]);
        assert_eq!(g.resolve_label("z.y"), vec![y2]);
    }

    #[test]
    fn guide_pbn_numbers_are_assigned_in_child_order() {
        let (g, m) = figure7a();
        use vh_pbn::pbn;
        assert_eq!(g.ty(m["data"]).pbn(), &pbn![1]);
        assert_eq!(g.ty(m["book"]).pbn(), &pbn![1, 1]);
        assert_eq!(g.ty(m["title"]).pbn(), &pbn![1, 1, 1]);
        assert_eq!(g.ty(m["author"]).pbn(), &pbn![1, 1, 2]);
        assert_eq!(g.ty(m["publisher"]).pbn(), &pbn![1, 1, 3]);
        assert!(g.is_ancestor(m["book"], m["name"]));
        assert!(!g.is_ancestor(m["name"], m["book"]));
    }

    #[test]
    fn text_child_lookup() {
        let (g, m) = figure7a();
        assert_eq!(g.text_child(m["title"]), Some(m["title#"]));
        assert_eq!(g.text_child(m["book"]), None);
    }
}
