//! Building a DataGuide from a document instance, and the combined
//! [`TypedDocument`] (document + guide + node→type map + PBN assignment)
//! that the rest of the system works with.

use crate::delta::{DeltaJournal, DocDelta};
use crate::guide::DataGuide;
use crate::types::{TypeId, TEXT_TYPE_NAME};
use vh_pbn::PbnAssignment;
use vh_xml::{Document, NodeId, NodeKind};

impl DataGuide {
    /// Builds the strong DataGuide of `doc` together with the node → type
    /// assignment (`typeOf`).
    ///
    /// Comments and processing instructions are typed like text nodes would
    /// be, under a `#comment` / `#pi` pseudo-name, so every node has a type.
    pub fn from_document(doc: &Document) -> (DataGuide, Vec<TypeId>) {
        let mut guide = DataGuide::new(doc.uri());
        let mut by_node = vec![TypeId::from_index(0); doc.len()];
        if let Some(root) = doc.root() {
            // Invariant: the arena only ever creates element roots
            // (`create_root`), so the root always has a name.
            let root_name = match doc.name(root) {
                Some(n) => n,
                None => unreachable!("document root is an element"),
            };
            let root_ty = guide.intern_root(root_name);
            let mut stack: Vec<(NodeId, TypeId)> = vec![(root, root_ty)];
            while let Some((id, ty)) = stack.pop() {
                by_node[id.index()] = ty;
                for &c in doc.children(id) {
                    let child_name = match doc.kind(c) {
                        NodeKind::Element { name, .. } => name.as_str(),
                        NodeKind::Text(_) => TEXT_TYPE_NAME,
                        NodeKind::Comment(_) => "#comment",
                        NodeKind::ProcessingInstruction { .. } => "#pi",
                    };
                    let child_ty = guide.intern_child(ty, child_name);
                    stack.push((c, child_ty));
                }
            }
        }
        (guide, by_node)
    }
}

/// A document prepared for PBN-based query processing: the instance, its
/// PBN assignment, its DataGuide, and the node → type map.
///
/// This is the "original data" half of the paper's machinery; `vh-core`
/// layers the virtual hierarchy on top of it.
#[derive(Clone, Debug)]
pub struct TypedDocument {
    pub(crate) doc: Document,
    pub(crate) pbn: PbnAssignment,
    pub(crate) guide: DataGuide,
    pub(crate) type_of: Vec<TypeId>,
    /// Chronological record of node touches since the last
    /// [`TypedDocument::take_delta`], for delta-aware cache maintenance.
    pub(crate) journal: DeltaJournal,
}

impl TypedDocument {
    /// Analyzes `doc`: assigns PBN numbers and builds the DataGuide.
    pub fn analyze(doc: Document) -> Self {
        let pbn = PbnAssignment::assign(&doc);
        let (guide, type_of) = DataGuide::from_document(&doc);
        let journal = DeltaJournal::with_guide_base(guide.len());
        TypedDocument {
            doc,
            pbn,
            guide,
            type_of,
            journal,
        }
    }

    /// Parses and analyzes an XML string.
    pub fn parse(uri: impl Into<String>, input: &str) -> Result<Self, vh_xml::ParseError> {
        Ok(Self::analyze(Document::parse(uri, input)?))
    }

    /// The underlying document.
    #[inline]
    pub fn doc(&self) -> &Document {
        &self.doc
    }

    /// The PBN assignment.
    #[inline]
    pub fn pbn(&self) -> &PbnAssignment {
        &self.pbn
    }

    /// The DataGuide.
    #[inline]
    pub fn guide(&self) -> &DataGuide {
        &self.guide
    }

    /// The type of a node (`typeOf(S, v)`).
    #[inline]
    pub fn type_of(&self, id: NodeId) -> TypeId {
        self.type_of[id.index()]
    }

    /// Drains the edit journal: everything the mutations touched since the
    /// last drain, plus the guide types they interned. Value-only rewrites
    /// leave no trace (no cached structure depends on node values).
    pub fn take_delta(&mut self) -> DocDelta {
        self.journal.drain(self.guide.len())
    }

    /// Pending journal entries (0 right after [`TypedDocument::take_delta`],
    /// and 0 while the journal is in its overflowed state).
    pub fn pending_delta_ops(&self) -> usize {
        self.journal.len()
    }

    /// True when the journal overflowed and the next
    /// [`TypedDocument::take_delta`] will demand full recomputation.
    pub fn delta_overflowed(&self) -> bool {
        self.journal.overflowed()
    }

    /// All nodes of the given type, in document order.
    pub fn nodes_of_type(&self, ty: TypeId) -> Vec<NodeId> {
        self.pbn
            .in_document_order()
            .iter()
            .map(|(_, id)| *id)
            .filter(|&id| self.type_of(id) == ty)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vh_xml::builder::paper_figure2;

    #[test]
    fn figure7a_guide_from_figure2_instance() {
        let (g, _) = DataGuide::from_document(&paper_figure2());
        // Figure 7(a): data, book, title, ◦, author, name, ◦, publisher,
        // location, ◦ — ten types.
        assert_eq!(g.len(), 10);
        assert_eq!(g.roots().len(), 1);
        let author = g.lookup_path(&["data", "book", "author"]).unwrap();
        assert_eq!(g.path_string(author), "data.book.author");
        // Both books collapse onto the same types (strong DataGuide).
        let title = g.lookup_path(&["data", "book", "title"]).unwrap();
        assert_eq!(g.length(title), 3);
    }

    #[test]
    fn typed_document_maps_every_node() {
        let td = TypedDocument::analyze(paper_figure2());
        let root = td.doc().root().unwrap();
        assert_eq!(td.guide().path_string(td.type_of(root)), "data");
        for id in td.doc().preorder() {
            // Each node's type length equals its depth.
            assert_eq!(td.guide().length(td.type_of(id)), td.doc().depth(id));
        }
    }

    #[test]
    fn nodes_of_type_in_document_order() {
        let td = TypedDocument::analyze(paper_figure2());
        let author_ty = td.guide().lookup_path(&["data", "book", "author"]).unwrap();
        let authors = td.nodes_of_type(author_ty);
        assert_eq!(authors.len(), 2);
        use vh_pbn::pbn;
        assert_eq!(td.pbn().pbn_of(authors[0]), &pbn![1, 1, 2]);
        assert_eq!(td.pbn().pbn_of(authors[1]), &pbn![1, 2, 2]);
    }

    #[test]
    fn recursive_data_gets_one_type_per_level() {
        let td = TypedDocument::parse("u", "<a><a><a>deep</a></a></a>").unwrap();
        // a, a.a, a.a.a, a.a.a.#text — four types.
        assert_eq!(td.guide().len(), 4);
        let leaf = td.guide().lookup_path(&["a", "a", "a"]).unwrap();
        assert_eq!(td.guide().length(leaf), 3);
    }

    #[test]
    fn comments_and_pis_are_typed() {
        let td = TypedDocument::parse("u", "<a><!--c--><?p d?></a>").unwrap();
        let g = td.guide();
        assert!(g.lookup_path(&["a", "#comment"]).is_some());
        assert!(g.lookup_path(&["a", "#pi"]).is_some());
    }
}
