#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # vh-dataguide — structural summaries (DataGuides)
//!
//! §4.1 of the paper: a DataGuide `S = (T, E)` is a forest of *types*; the
//! type of a node is the concatenation of element names on the path from the
//! root to the node (so each level of a recursive schema is a distinct
//! type), and the type includes the document URI. Text nodes are typed with
//! the pseudo-name `#text` (the paper writes `◦`).
//!
//! This crate provides:
//! * [`DataGuide`] — the type forest, built from a document
//!   ([`DataGuide::from_document`]) with every helper the paper assumes
//!   (`roots`, `name`, `typeOf`, `lcaTypeOf`, `length`).
//! * [`TypedDocument`] — a document together with its guide and the
//!   node → type map.
//! * [`axes`] — location relationships *between types* in the guide,
//!   evaluated by PBN-numbering the guide itself (§5: "We assume that PBN is
//!   used to number the types in a DataGuide and quickly determine
//!   relationships in the DataGuide").

pub mod axes;
pub mod build;
pub mod delta;
pub mod guide;
pub mod mutate;
pub mod types;

pub use build::TypedDocument;
pub use delta::{DocDelta, Touch, TouchedNode, MAX_JOURNAL_OPS};
pub use guide::DataGuide;
pub use mutate::{resolve_path, EditError};
pub use types::{Type, TypeId, TEXT_TYPE_NAME};
