//! Type identifiers and per-type records of a DataGuide.

use std::fmt;
use vh_pbn::Pbn;

/// The pseudo element name used for text-node types (the paper writes `◦`).
pub const TEXT_TYPE_NAME: &str = "#text";

/// Identifier of a type within a [`crate::DataGuide`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeId(pub(crate) u32);

impl TypeId {
    /// Raw index into the guide's type table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `TypeId` from a raw index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        // Documented capacity limit: type ids are u32 by design, matching
        // node ids; a guide with >4 Gi types is unsupported.
        #[allow(clippy::expect_used)]
        // vet: allow(no-panic) — documented capacity limit: >4 Gi types is out of scope
        TypeId(u32::try_from(index).expect("type index exceeds u32 range"))
    }
}

impl fmt::Debug for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TypeId({})", self.0)
    }
}

/// One type in the guide: a distinct root-to-node name path.
#[derive(Clone, Debug)]
pub struct Type {
    /// The last name on the path (element name, or [`TEXT_TYPE_NAME`]).
    pub(crate) name: String,
    /// Parent type, or `None` for a root type.
    pub(crate) parent: Option<TypeId>,
    /// Child types in first-encounter order.
    pub(crate) children: Vec<TypeId>,
    /// Length of the path (the paper's `length`); roots have length 1.
    pub(crate) length: usize,
    /// PBN number of this type *within the guide* (used for O(c) lca and
    /// type-level axis checks, per §5).
    pub(crate) pbn: Pbn,
}

impl Type {
    /// The local name of this type (last path component).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parent type.
    #[inline]
    pub fn parent(&self) -> Option<TypeId> {
        self.parent
    }

    /// Child types in first-encounter order.
    #[inline]
    pub fn children(&self) -> &[TypeId] {
        &self.children
    }

    /// Path length (`length(S, v)` in the paper). Roots have length 1.
    #[inline]
    pub fn length(&self) -> usize {
        self.length
    }

    /// PBN number of the type within the guide.
    #[inline]
    pub fn pbn(&self) -> &Pbn {
        &self.pbn
    }

    /// True if this is the text pseudo-type.
    #[inline]
    pub fn is_text(&self) -> bool {
        self.name == TEXT_TYPE_NAME
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_id_round_trips() {
        let t = TypeId::from_index(7);
        assert_eq!(t.index(), 7);
        assert_eq!(format!("{t:?}"), "TypeId(7)");
    }
}
