//! Location relationships **between types** in a DataGuide.
//!
//! Every virtual predicate of §5 carries a type-level side condition — e.g.
//! `vAncestor(x, y)` additionally requires
//! `ancestor(typeOf(V,x), typeOf(V,y))` in the vDataGuide. Since the guide's
//! types are themselves PBN-numbered, these checks reuse `vh_pbn::axes`
//! directly, which is exactly the implementation strategy §5 prescribes.

use crate::guide::DataGuide;
use crate::types::TypeId;
use vh_pbn::axes as pbn_axes;

/// x is the same type as y.
#[inline]
pub fn self_type(_g: &DataGuide, x: TypeId, y: TypeId) -> bool {
    x == y
}

/// x is a proper ancestor type of y.
#[inline]
pub fn ancestor(g: &DataGuide, x: TypeId, y: TypeId) -> bool {
    pbn_axes::is_ancestor(g.ty(x).pbn(), g.ty(y).pbn())
}

/// x is the parent type of y.
#[inline]
pub fn parent(g: &DataGuide, x: TypeId, y: TypeId) -> bool {
    g.ty(y).parent() == Some(x)
}

/// x is a proper descendant type of y.
#[inline]
pub fn descendant(g: &DataGuide, x: TypeId, y: TypeId) -> bool {
    ancestor(g, y, x)
}

/// x is a child type of y.
#[inline]
pub fn child(g: &DataGuide, x: TypeId, y: TypeId) -> bool {
    parent(g, y, x)
}

/// x is y or a descendant type of y.
#[inline]
pub fn descendant_or_self(g: &DataGuide, x: TypeId, y: TypeId) -> bool {
    x == y || descendant(g, x, y)
}

/// x and y are sibling types (same parent type) — used by the virtual
/// sibling predicates. Two root types of the forest also count as siblings.
#[inline]
pub fn sibling(g: &DataGuide, x: TypeId, y: TypeId) -> bool {
    x != y && g.ty(x).parent() == g.ty(y).parent()
}

/// x precedes y in the guide's document order (and is not an ancestor).
#[inline]
pub fn preceding(g: &DataGuide, x: TypeId, y: TypeId) -> bool {
    pbn_axes::is_preceding(g.ty(x).pbn(), g.ty(y).pbn())
}

/// x follows y in the guide's document order (and is not a descendant).
#[inline]
pub fn following(g: &DataGuide, x: TypeId, y: TypeId) -> bool {
    pbn_axes::is_following(g.ty(x).pbn(), g.ty(y).pbn())
}

/// x is a preceding sibling type of y.
#[inline]
pub fn preceding_sibling(g: &DataGuide, x: TypeId, y: TypeId) -> bool {
    sibling(g, x, y) && preceding(g, x, y)
}

/// x is a following sibling type of y.
#[inline]
pub fn following_sibling(g: &DataGuide, x: TypeId, y: TypeId) -> bool {
    sibling(g, x, y) && following(g, x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vh_xml::builder::paper_figure2;

    fn guide() -> (DataGuide, TypeId, TypeId, TypeId, TypeId) {
        let (g, _) = DataGuide::from_document(&paper_figure2());
        let book = g.lookup_path(&["data", "book"]).unwrap();
        let title = g.lookup_path(&["data", "book", "title"]).unwrap();
        let author = g.lookup_path(&["data", "book", "author"]).unwrap();
        let name = g.lookup_path(&["data", "book", "author", "name"]).unwrap();
        (g, book, title, author, name)
    }

    #[test]
    fn vertical_axes() {
        let (g, book, title, author, name) = guide();
        assert!(ancestor(&g, book, name));
        assert!(parent(&g, author, name));
        assert!(!parent(&g, book, name));
        assert!(child(&g, name, author));
        assert!(descendant(&g, name, book));
        assert!(descendant_or_self(&g, title, title));
        assert!(!descendant(&g, title, title));
        assert!(!ancestor(&g, title, author));
    }

    #[test]
    fn horizontal_axes() {
        let (g, _book, title, author, name) = guide();
        assert!(sibling(&g, title, author));
        assert!(preceding_sibling(&g, title, author));
        assert!(following_sibling(&g, author, title));
        assert!(!sibling(&g, title, name));
        assert!(preceding(&g, title, name), "title precedes author.name");
        assert!(following(&g, name, title));
    }

    #[test]
    fn self_is_reflexive_only() {
        let (g, book, title, ..) = guide();
        assert!(self_type(&g, book, book));
        assert!(!self_type(&g, book, title));
    }
}
