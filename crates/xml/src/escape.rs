//! Escaping and unescaping of XML character data and attribute values.
//!
//! The `*_into` functions are on the serialisation hot path (every text
//! node and attribute value of every emitted document flows through
//! them), so they scan bytes rather than chars: runs of ordinary bytes
//! are copied in bulk and only the escapable ASCII characters break the
//! run. The two `unsafe` blocks below are the crate's only ones; each
//! appends a slice of a `&str` that starts and ends at positions where an
//! ASCII byte was found, which are always UTF-8 boundaries.

/// Appends `text` to `out`, escaping the characters that are unsafe in
/// element content (`&`, `<`, `>`).
pub fn escape_text_into(out: &mut String, text: &str) {
    let bytes = text.as_bytes();
    let mut run = 0;
    let mut flush = |out: &mut String, hi: usize, next: usize| {
        if run < hi {
            // SAFETY: `bytes` views the valid `&str` `text`; `run` and `hi`
            // sit at the string's ends or adjacent to a matched one-byte
            // ASCII character (`&<>`), so both are UTF-8 boundaries and the
            // appended slice is valid UTF-8, preserving the `String` invariant.
            unsafe { out.as_mut_vec().extend_from_slice(&bytes[run..hi]) };
        }
        run = next;
    };
    for (i, &b) in bytes.iter().enumerate() {
        let rep = match b {
            b'&' => "&amp;",
            b'<' => "&lt;",
            b'>' => "&gt;",
            _ => continue,
        };
        flush(out, i, i + 1);
        out.push_str(rep);
    }
    flush(out, bytes.len(), bytes.len());
}

/// Appends `value` to `out`, escaping the characters that are unsafe in a
/// double-quoted attribute value.
pub fn escape_attr_into(out: &mut String, value: &str) {
    let bytes = value.as_bytes();
    let mut run = 0;
    let mut flush = |out: &mut String, hi: usize, next: usize| {
        if run < hi {
            // SAFETY: `bytes` views the valid `&str` `value`; `run` and `hi`
            // sit at the string's ends or adjacent to a matched one-byte
            // ASCII character (`&<>"'`), so both are UTF-8 boundaries and the
            // appended slice is valid UTF-8, preserving the `String` invariant.
            unsafe { out.as_mut_vec().extend_from_slice(&bytes[run..hi]) };
        }
        run = next;
    };
    for (i, &b) in bytes.iter().enumerate() {
        let rep = match b {
            b'&' => "&amp;",
            b'<' => "&lt;",
            b'>' => "&gt;",
            b'"' => "&quot;",
            b'\'' => "&apos;",
            _ => continue,
        };
        flush(out, i, i + 1);
        out.push_str(rep);
    }
    flush(out, bytes.len(), bytes.len());
}

/// Escapes element content, returning a new string.
pub fn escape_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    escape_text_into(&mut out, text);
    out
}

/// Resolves a single entity reference body (the part between `&` and `;`).
///
/// Supports the five predefined entities plus decimal (`#NNN`) and
/// hexadecimal (`#xNNN`) character references. Returns `None` for anything
/// unknown or malformed.
pub fn resolve_entity(body: &str) -> Option<char> {
    match body {
        "amp" => Some('&'),
        "lt" => Some('<'),
        "gt" => Some('>'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        _ => {
            let rest = body.strip_prefix('#')?;
            let code = if let Some(hex) = rest.strip_prefix('x').or_else(|| rest.strip_prefix('X'))
            {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                rest.parse::<u32>().ok()?
            };
            char::from_u32(code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escaping_covers_markup_characters() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
        assert_eq!(escape_text("plain"), "plain");
    }

    #[test]
    fn attr_escaping_covers_quotes() {
        let mut out = String::new();
        escape_attr_into(&mut out, r#"say "hi" & 'bye'"#);
        assert_eq!(out, "say &quot;hi&quot; &amp; &apos;bye&apos;");
    }

    #[test]
    fn multibyte_runs_survive_bulk_copies() {
        assert_eq!(escape_text("π<δ"), "π&lt;δ");
        assert_eq!(escape_text("héllo & wörld"), "héllo &amp; wörld");
        assert_eq!(escape_text("\u{1F600}>\u{1F600}"), "\u{1F600}&gt;\u{1F600}");
        let mut out = String::new();
        escape_attr_into(&mut out, "\"π'");
        assert_eq!(out, "&quot;π&apos;");
    }

    #[test]
    fn edge_runs_flush_correctly() {
        assert_eq!(escape_text(""), "");
        assert_eq!(escape_text("&"), "&amp;");
        assert_eq!(escape_text("&&"), "&amp;&amp;");
        assert_eq!(escape_text("a&"), "a&amp;");
        assert_eq!(escape_text("&a"), "&amp;a");
    }

    #[test]
    fn byte_scan_matches_the_char_reference() {
        fn reference(text: &str) -> String {
            let mut out = String::new();
            for c in text.chars() {
                match c {
                    '&' => out.push_str("&amp;"),
                    '<' => out.push_str("&lt;"),
                    '>' => out.push_str("&gt;"),
                    _ => out.push(c),
                }
            }
            out
        }
        for s in ["", "x", "a<b&c>d", "π<δ>&", "no escapes at all", "<<<>>>"] {
            assert_eq!(escape_text(s), reference(s), "input {s:?}");
        }
    }

    #[test]
    fn predefined_entities_resolve() {
        assert_eq!(resolve_entity("amp"), Some('&'));
        assert_eq!(resolve_entity("lt"), Some('<'));
        assert_eq!(resolve_entity("gt"), Some('>'));
        assert_eq!(resolve_entity("quot"), Some('"'));
        assert_eq!(resolve_entity("apos"), Some('\''));
    }

    #[test]
    fn numeric_references_resolve() {
        assert_eq!(resolve_entity("#65"), Some('A'));
        assert_eq!(resolve_entity("#x41"), Some('A'));
        assert_eq!(resolve_entity("#X41"), Some('A'));
        assert_eq!(resolve_entity("#x1F600"), Some('\u{1F600}'));
    }

    #[test]
    fn bad_references_are_rejected() {
        assert_eq!(resolve_entity("nbsp"), None);
        assert_eq!(resolve_entity("#"), None);
        assert_eq!(resolve_entity("#xZZ"), None);
        assert_eq!(resolve_entity("#xD800"), None, "surrogate is not a char");
        assert_eq!(resolve_entity(""), None);
    }
}
