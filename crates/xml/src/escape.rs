//! Escaping and unescaping of XML character data and attribute values.

/// Appends `text` to `out`, escaping the characters that are unsafe in
/// element content (`&`, `<`, `>`).
pub fn escape_text_into(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
}

/// Appends `value` to `out`, escaping the characters that are unsafe in a
/// double-quoted attribute value.
pub fn escape_attr_into(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
}

/// Escapes element content, returning a new string.
pub fn escape_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    escape_text_into(&mut out, text);
    out
}

/// Resolves a single entity reference body (the part between `&` and `;`).
///
/// Supports the five predefined entities plus decimal (`#NNN`) and
/// hexadecimal (`#xNNN`) character references. Returns `None` for anything
/// unknown or malformed.
pub fn resolve_entity(body: &str) -> Option<char> {
    match body {
        "amp" => Some('&'),
        "lt" => Some('<'),
        "gt" => Some('>'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        _ => {
            let rest = body.strip_prefix('#')?;
            let code = if let Some(hex) = rest.strip_prefix('x').or_else(|| rest.strip_prefix('X'))
            {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                rest.parse::<u32>().ok()?
            };
            char::from_u32(code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escaping_covers_markup_characters() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
        assert_eq!(escape_text("plain"), "plain");
    }

    #[test]
    fn attr_escaping_covers_quotes() {
        let mut out = String::new();
        escape_attr_into(&mut out, r#"say "hi" & 'bye'"#);
        assert_eq!(out, "say &quot;hi&quot; &amp; &apos;bye&apos;");
    }

    #[test]
    fn predefined_entities_resolve() {
        assert_eq!(resolve_entity("amp"), Some('&'));
        assert_eq!(resolve_entity("lt"), Some('<'));
        assert_eq!(resolve_entity("gt"), Some('>'));
        assert_eq!(resolve_entity("quot"), Some('"'));
        assert_eq!(resolve_entity("apos"), Some('\''));
    }

    #[test]
    fn numeric_references_resolve() {
        assert_eq!(resolve_entity("#65"), Some('A'));
        assert_eq!(resolve_entity("#x41"), Some('A'));
        assert_eq!(resolve_entity("#X41"), Some('A'));
        assert_eq!(resolve_entity("#x1F600"), Some('\u{1F600}'));
    }

    #[test]
    fn bad_references_are_rejected() {
        assert_eq!(resolve_entity("nbsp"), None);
        assert_eq!(resolve_entity("#"), None);
        assert_eq!(resolve_entity("#xZZ"), None);
        assert_eq!(resolve_entity("#xD800"), None, "surrogate is not a char");
        assert_eq!(resolve_entity(""), None);
    }
}
