//! Ergonomic programmatic document construction.
//!
//! Workload generators and tests build trees with a small fluent API:
//!
//! ```
//! use vh_xml::ElementBuilder;
//!
//! let doc = ElementBuilder::new("data")
//!     .child(
//!         ElementBuilder::new("book")
//!             .attr("id", "1")
//!             .child(ElementBuilder::new("title").text("X")),
//!     )
//!     .into_document("book.xml");
//! let root = doc.root().ok_or("empty document")?;
//! assert_eq!(doc.string_value(root), "X");
//! # Ok::<(), &'static str>(())
//! ```

use crate::arena::Document;
use crate::model::NodeId;

/// A detached element description that can be materialized into a
/// [`Document`].
#[derive(Clone, Debug)]
pub struct ElementBuilder {
    name: String,
    attributes: Vec<(String, String)>,
    children: Vec<Content>,
}

#[derive(Clone, Debug)]
enum Content {
    Element(ElementBuilder),
    Text(String),
    Comment(String),
}

impl ElementBuilder {
    /// Starts an element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        ElementBuilder {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds an attribute.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((name.into(), value.into()));
        self
    }

    /// Appends an element child.
    pub fn child(mut self, child: ElementBuilder) -> Self {
        self.children.push(Content::Element(child));
        self
    }

    /// Appends several element children.
    pub fn children(mut self, children: impl IntoIterator<Item = ElementBuilder>) -> Self {
        self.children
            .extend(children.into_iter().map(Content::Element));
        self
    }

    /// Appends a text child.
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Content::Text(text.into()));
        self
    }

    /// Appends a comment child.
    pub fn comment(mut self, text: impl Into<String>) -> Self {
        self.children.push(Content::Comment(text.into()));
        self
    }

    /// Materializes this builder as the root of a new document.
    pub fn into_document(self, uri: impl Into<String>) -> Document {
        let mut doc = Document::new(uri);
        let root = doc.create_root(self.name.clone());
        self.fill(&mut doc, root);
        doc
    }

    /// Materializes this builder under an existing parent node.
    pub fn attach_to(self, doc: &mut Document, parent: NodeId) -> NodeId {
        let id = doc.append_element(parent, self.name.clone());
        self.fill(doc, id);
        id
    }

    fn fill(self, doc: &mut Document, id: NodeId) {
        for (name, value) in self.attributes {
            doc.set_attribute(id, name, value);
        }
        for c in self.children {
            match c {
                Content::Element(e) => {
                    e.attach_to(doc, id);
                }
                Content::Text(t) => {
                    doc.append_text(id, t);
                }
                Content::Comment(t) => {
                    doc.append_comment(id, t);
                }
            }
        }
    }
}

/// Builds the paper's running-example instance (Figure 2): two books with
/// title, author/name, and publisher/location children. Shared by tests in
/// several crates.
pub fn paper_figure2() -> Document {
    ElementBuilder::new("data")
        .child(
            ElementBuilder::new("book")
                .child(ElementBuilder::new("title").text("X"))
                .child(ElementBuilder::new("author").child(ElementBuilder::new("name").text("C")))
                .child(
                    ElementBuilder::new("publisher")
                        .child(ElementBuilder::new("location").text("W")),
                ),
        )
        .child(
            ElementBuilder::new("book")
                .child(ElementBuilder::new("title").text("Y"))
                .child(ElementBuilder::new("author").child(ElementBuilder::new("name").text("D")))
                .child(
                    ElementBuilder::new("publisher")
                        .child(ElementBuilder::new("location").text("M")),
                ),
        )
        .into_document("book.xml")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::{serialize, SerializeOptions};
    use crate::testutil::Must;

    #[test]
    fn builder_matches_hand_built_tree() {
        let doc = ElementBuilder::new("a")
            .attr("k", "v")
            .child(ElementBuilder::new("b").text("x"))
            .comment("note")
            .into_document("u");
        assert_eq!(
            serialize(&doc, SerializeOptions::compact()),
            "<a k=\"v\"><b>x</b><!--note--></a>"
        );
    }

    #[test]
    fn figure2_shape() {
        let d = paper_figure2();
        let root = d.root().must();
        assert_eq!(d.name(root), Some("data"));
        assert_eq!(d.children(root).len(), 2);
        for &book in d.children(root) {
            assert_eq!(d.children(book).len(), 3);
        }
        assert_eq!(d.string_value(root), "XCWYDM");
        // 1 data + 2*(book + title + text + author + name + text
        //            + publisher + location + text) = 1 + 2*9 = 19 nodes.
        assert_eq!(d.len(), 19);
    }

    #[test]
    fn children_bulk_helper() {
        let doc = ElementBuilder::new("r")
            .children((0..3).map(|i| ElementBuilder::new(format!("c{i}"))))
            .into_document("u");
        assert_eq!(doc.children(doc.root().must()).len(), 3);
    }
}
