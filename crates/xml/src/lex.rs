//! A byte-oriented cursor over the parser input.
//!
//! The XML parser is a single-pass scanner; this module factors out the
//! low-level input handling (peeking, consuming, position tracking for
//! error messages) so [`crate::parse`] can stay close to the grammar.

/// Cursor over the input with line/column tracking for diagnostics.
pub(crate) struct Cursor<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(input: &'a str) -> Self {
        Cursor {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    /// Current byte offset.
    #[inline]
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    /// True when the whole input has been consumed.
    #[inline]
    pub(crate) fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    /// Peeks the current byte without consuming it.
    #[inline]
    pub(crate) fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Consumes one byte.
    #[inline]
    pub(crate) fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    /// Consumes `s` if the input starts with it.
    pub(crate) fn eat(&mut self, s: &str) -> bool {
        if self.input[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    /// True if the remaining input starts with `s`.
    pub(crate) fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    /// Skips ASCII whitespace.
    pub(crate) fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Consumes input until `pat` is found, returning the consumed slice.
    /// The pattern itself is also consumed. Returns `None` (consuming
    /// nothing) if the pattern never occurs.
    pub(crate) fn take_until(&mut self, pat: &str) -> Option<&'a str> {
        let idx = self.input[self.pos..].find(pat)?;
        let start = self.pos;
        self.pos += idx + pat.len();
        Some(&self.input[start..start + idx])
    }

    /// Consumes an XML name (simplified: a run of name characters).
    pub(crate) fn take_name(&mut self) -> Option<&'a str> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok =
                b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80;
            if ok {
                self.pos += 1;
            } else {
                break;
            }
        }
        // A name must not start with a digit, '-' or '.'.
        let name = &self.input[start..self.pos];
        let valid_start = name
            .as_bytes()
            .first()
            .map(|&b| b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80)
            .unwrap_or(false);
        if valid_start {
            Some(name)
        } else {
            self.pos = start;
            None
        }
    }

    /// Line and column (both 1-based) of the given byte offset.
    pub(crate) fn line_col(&self, offset: usize) -> (usize, usize) {
        let upto = &self.input[..offset.min(self.input.len())];
        let line = upto.bytes().filter(|&b| b == b'\n').count() + 1;
        let col = upto.len() - upto.rfind('\n').map(|i| i + 1).unwrap_or(0) + 1;
        (line, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_cursor_movement() {
        let mut c = Cursor::new("<a>");
        assert_eq!(c.peek(), Some(b'<'));
        assert_eq!(c.bump(), Some(b'<'));
        assert!(c.eat("a"));
        assert!(!c.eat("x"));
        assert_eq!(c.bump(), Some(b'>'));
        assert!(c.at_end());
        assert_eq!(c.bump(), None);
    }

    #[test]
    fn take_until_consumes_pattern() {
        let mut c = Cursor::new("hello-->rest");
        assert_eq!(c.take_until("-->"), Some("hello"));
        assert!(c.starts_with("rest"));
    }

    #[test]
    fn take_until_missing_pattern() {
        let mut c = Cursor::new("hello");
        assert_eq!(c.take_until("-->"), None);
        assert_eq!(c.pos(), 0);
    }

    #[test]
    fn names_follow_xml_rules() {
        let mut c = Cursor::new("book-1.x rest");
        assert_eq!(c.take_name(), Some("book-1.x"));
        c.skip_ws();
        assert_eq!(c.take_name(), Some("rest"));

        let mut c2 = Cursor::new("1bad");
        assert_eq!(c2.take_name(), None);
        assert_eq!(c2.pos(), 0);
    }

    #[test]
    fn line_col_tracks_newlines() {
        let c = Cursor::new("ab\ncde\nf");
        assert_eq!(c.line_col(0), (1, 1));
        assert_eq!(c.line_col(1), (1, 2));
        assert_eq!(c.line_col(3), (2, 1));
        assert_eq!(c.line_col(7), (3, 1));
    }
}
