//! Node-level types of the XML data model.
//!
//! The tree itself lives in [`crate::arena::Document`]; this module defines
//! the per-node payloads. Nodes are identified by [`NodeId`], a dense index
//! into the document arena, which keeps the tree compact and traversals
//! cache-friendly (see the module docs of [`crate::arena`]).

use std::fmt;

/// Identifier of a node within a [`crate::Document`] arena.
///
/// `NodeId`s are dense indices assigned in creation order. For documents
/// built by the parser, creation order is document order, which downstream
/// crates exploit when assigning prefix-based numbers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the raw index of this id within its document arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `NodeId` from a raw index.
    ///
    /// Intended for serialization round-trips in downstream crates; using an
    /// index that does not belong to the document is a logic error and will
    /// panic on access.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        // Documented capacity limit: node ids are u32 by design (the paper's
        // level arrays assume 32-bit ordinals); >4 Gi nodes is unsupported.
        #[allow(clippy::expect_used)]
        // vet: allow(no-panic) — documented capacity limit: >4 Gi nodes is out of scope
        NodeId(u32::try_from(index).expect("node index exceeds u32 range"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

/// A named attribute on an element, in document order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name as written (no namespace processing).
    pub name: String,
    /// Unescaped attribute value.
    pub value: String,
}

/// The payload of a node: what kind of XML construct it is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// An element with a tag name and its attributes.
    Element {
        /// Tag name as written (no namespace processing).
        name: String,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
    },
    /// A text node. Adjacent text is merged by the parser.
    Text(String),
    /// A comment (`<!-- … -->`); content excludes the delimiters.
    Comment(String),
    /// A processing instruction (`<?target data?>`).
    ProcessingInstruction {
        /// The PI target.
        target: String,
        /// The PI data (may be empty).
        data: String,
    },
}

impl NodeKind {
    /// Returns the element name, or `None` for non-element nodes.
    #[inline]
    pub fn element_name(&self) -> Option<&str> {
        match self {
            NodeKind::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Returns `true` if this is an element node.
    #[inline]
    pub fn is_element(&self) -> bool {
        matches!(self, NodeKind::Element { .. })
    }

    /// Returns `true` if this is a text node.
    #[inline]
    pub fn is_text(&self) -> bool {
        matches!(self, NodeKind::Text(_))
    }

    /// Returns the text content for text nodes, or `None` otherwise.
    #[inline]
    pub fn text(&self) -> Option<&str> {
        match self {
            NodeKind::Text(t) => Some(t),
            _ => None,
        }
    }
}

/// A node in the document arena: payload plus tree links.
///
/// Children are stored as an ordered `Vec<NodeId>`; the fan-out of real XML
/// data is small enough that vectors beat sibling-linked lists for both
/// locality and simplicity, and the vPBN workloads never splice siblings.
#[derive(Clone, Debug)]
pub struct Node {
    pub(crate) kind: NodeKind,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Vec<NodeId>,
}

impl Node {
    /// The node's payload.
    #[inline]
    pub fn kind(&self) -> &NodeKind {
        &self.kind
    }

    /// The parent node, or `None` for the root.
    #[inline]
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// The node's children in document order.
    #[inline]
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// Element name, if this is an element.
    #[inline]
    pub fn name(&self) -> Option<&str> {
        self.kind.element_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_index() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id:?}"), "NodeId(42)");
    }

    #[test]
    fn node_kind_accessors() {
        let e = NodeKind::Element {
            name: "book".into(),
            attributes: vec![],
        };
        assert!(e.is_element());
        assert!(!e.is_text());
        assert_eq!(e.element_name(), Some("book"));
        assert_eq!(e.text(), None);

        let t = NodeKind::Text("hi".into());
        assert!(t.is_text());
        assert_eq!(t.text(), Some("hi"));
        assert_eq!(t.element_name(), None);
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32 range")]
    fn node_id_overflow_panics() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }
}
