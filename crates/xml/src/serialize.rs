//! Serialization of documents and subtrees back to XML text.
//!
//! Section 6 of the paper assumes the DBMS stores the source XML "as a long
//! string" and that the *value* of a node is a substring of it. The storage
//! crate therefore serializes with [`SerializeOptions::compact`] so byte
//! ranges recorded while writing are exactly the node values.

use crate::arena::Document;
use crate::escape::{escape_attr_into, escape_text_into};
use crate::model::{NodeId, NodeKind};

/// Formatting options for serialization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SerializeOptions {
    /// Indent nested elements by this many spaces per level; `None` emits a
    /// single line with no inter-element whitespace.
    pub indent: Option<usize>,
}

impl SerializeOptions {
    /// Single-line output: the exact "long string" form used by storage.
    pub fn compact() -> Self {
        SerializeOptions { indent: None }
    }

    /// Human-readable output indented by `n` spaces per level.
    pub fn pretty(n: usize) -> Self {
        SerializeOptions { indent: Some(n) }
    }
}

impl Default for SerializeOptions {
    fn default() -> Self {
        SerializeOptions::compact()
    }
}

/// Serializes a whole document.
pub fn serialize(doc: &Document, opts: SerializeOptions) -> String {
    match doc.root() {
        Some(root) => serialize_node(doc, root, opts),
        None => String::new(),
    }
}

/// Serializes the subtree rooted at `id` (its XML *value* in paper terms).
pub fn serialize_node(doc: &Document, id: NodeId, opts: SerializeOptions) -> String {
    let mut out = String::new();
    write_node(doc, id, opts, 0, &mut out);
    out
}

/// Appends the serialization of `id` to `out` (compact form only); used by
/// the storage writer, which records byte offsets as it goes.
pub fn write_compact_into(doc: &Document, id: NodeId, out: &mut String) {
    write_node(doc, id, SerializeOptions::compact(), 0, out);
}

/// Appends only the start tag of an element (with attributes) to `out`.
/// Returns true if the element has no children (so a self-contained
/// `<name …/>` was written instead).
pub fn write_start_tag(doc: &Document, id: NodeId, out: &mut String) -> bool {
    // Invariant: both callers (write_node and the storage writer) only pass
    // element ids; tags are undefined for text and comment nodes.
    let NodeKind::Element { name, attributes } = doc.kind(id) else {
        unreachable!("write_start_tag on non-element");
    };
    out.push('<');
    out.push_str(name);
    for a in attributes {
        out.push(' ');
        out.push_str(&a.name);
        out.push_str("=\"");
        escape_attr_into(out, &a.value);
        out.push('"');
    }
    if doc.children(id).is_empty() {
        out.push_str("/>");
        true
    } else {
        out.push('>');
        false
    }
}

/// Appends the end tag of an element to `out`.
pub fn write_end_tag(doc: &Document, id: NodeId, out: &mut String) {
    // Invariant: mirrors `write_start_tag` — callers only pass element ids.
    let name = match doc.name(id) {
        Some(n) => n,
        None => unreachable!("write_end_tag on non-element"),
    };
    out.push_str("</");
    out.push_str(name);
    out.push('>');
}

fn write_node(doc: &Document, id: NodeId, opts: SerializeOptions, level: usize, out: &mut String) {
    match doc.kind(id) {
        NodeKind::Element { .. } => {
            indent(opts, level, out);
            let self_closed = write_start_tag(doc, id, out);
            if self_closed {
                return;
            }
            let children = doc.children(id);
            let only_text = children.iter().all(|&c| doc.kind(c).is_text());
            if only_text || opts.indent.is_none() {
                for &c in children {
                    write_node(doc, c, SerializeOptions::compact(), 0, out);
                }
            } else {
                for &c in children {
                    write_node(doc, c, opts, level + 1, out);
                }
                indent(opts, level, out);
            }
            write_end_tag(doc, id, out);
        }
        NodeKind::Text(t) => {
            // No indent for text: it is always significant.
            escape_text_into(out, t);
        }
        NodeKind::Comment(c) => {
            indent(opts, level, out);
            out.push_str("<!--");
            out.push_str(c);
            out.push_str("-->");
        }
        NodeKind::ProcessingInstruction { target, data } => {
            indent(opts, level, out);
            out.push_str("<?");
            out.push_str(target);
            if !data.is_empty() {
                out.push(' ');
                out.push_str(data);
            }
            out.push_str("?>");
        }
    }
}

fn indent(opts: SerializeOptions, level: usize, out: &mut String) {
    if let Some(n) = opts.indent {
        if !out.is_empty() {
            out.push('\n');
        }
        out.extend(std::iter::repeat_n(' ', n * level));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::testutil::Must;

    #[test]
    fn compact_round_trip() {
        let src = "<data><book id=\"1\"><title>X &amp; Y</title><author/></book></data>";
        let d = parse("u", src).must();
        assert_eq!(serialize(&d, SerializeOptions::compact()), src);
    }

    #[test]
    fn subtree_value_is_the_node_serialization() {
        let d = parse("u", "<data><book><title>X</title></book></data>").must();
        let book = d.children(d.root().must())[0];
        assert_eq!(
            serialize_node(&d, book, SerializeOptions::compact()),
            "<book><title>X</title></book>"
        );
    }

    #[test]
    fn pretty_indents_structure_but_not_text() {
        let d = parse("u", "<a><b>x</b><c><d/></c></a>").must();
        let s = serialize(&d, SerializeOptions::pretty(2));
        assert_eq!(s, "<a>\n  <b>x</b>\n  <c>\n    <d/>\n  </c>\n</a>");
    }

    #[test]
    fn attribute_values_are_escaped() {
        let mut d = Document::new("u");
        let r = d.create_root("a");
        d.set_attribute(r, "q", "x\"y<z&");
        assert_eq!(
            serialize(&d, SerializeOptions::compact()),
            "<a q=\"x&quot;y&lt;z&amp;\"/>"
        );
    }

    #[test]
    fn comments_and_pis_serialize() {
        let src = "<a><!-- hi --><?go now?><b/></a>";
        let d = parse("u", src).must();
        assert_eq!(serialize(&d, SerializeOptions::compact()), src);
    }

    #[test]
    fn parse_serialize_parse_is_stable() {
        let src = "<r><a x=\"1&quot;2\">t&lt;u</a><b><c/>tail</b></r>";
        let d1 = parse("u", src).must();
        let s1 = serialize(&d1, SerializeOptions::compact());
        let d2 = parse("u", &s1).must();
        let s2 = serialize(&d2, SerializeOptions::compact());
        assert_eq!(s1, s2);
    }

    #[test]
    fn empty_document_serializes_to_empty_string() {
        let d = Document::new("u");
        assert_eq!(serialize(&d, SerializeOptions::compact()), "");
    }
}
