#![warn(missing_docs)]

//! # vh-xml — XML substrate for the vPBN reproduction
//!
//! A self-contained XML data model, non-validating parser, and serializer.
//! The paper ("Querying Virtual Hierarchies using Virtual Prefix-Based
//! Numbers", SIGMOD 2014) assumes an XML management system with a tree data
//! model; this crate is that model, built from scratch:
//!
//! * [`Document`] — an arena-allocated ordered tree of elements, text nodes,
//!   comments and processing instructions, with attributes on elements.
//! * [`parse`](fn@parse) / [`Document::parse`] — a small, fast, non-validating XML
//!   parser (elements, attributes, text, CDATA, comments, PIs, the five
//!   predefined entities and numeric character references).
//! * [`serialize`](fn@serialize) — a serializer that round-trips documents, with compact
//!   and indented modes.
//! * [`builder`] — an ergonomic programmatic construction API used by the
//!   workload generators and tests.
//!
//! The model deliberately mirrors what prefix-based numbering needs: ordered
//! children, stable parent links, and cheap preorder traversal.

pub mod arena;
pub mod builder;
pub mod escape;
mod lex;
pub mod model;
pub mod parse;
pub mod serialize;

pub use arena::{Ancestors, Children, Descendants, Document};
pub use builder::ElementBuilder;
pub use model::{Attribute, Node, NodeId, NodeKind};
pub use parse::{parse, ParseError};
pub use serialize::{serialize, serialize_node, SerializeOptions};

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for unit tests.

    /// Unwraps test fixtures that are valid by construction, printing the
    /// `Debug` payload when the assumption is violated.
    pub trait Must<T> {
        /// Returns the success value or fails the test.
        fn must(self) -> T;
    }

    impl<T, E: std::fmt::Debug> Must<T> for Result<T, E> {
        fn must(self) -> T {
            self.unwrap_or_else(|e| unreachable!("test fixture failed: {e:?}"))
        }
    }

    impl<T> Must<T> for Option<T> {
        fn must(self) -> T {
            self.unwrap_or_else(|| unreachable!("test fixture was None"))
        }
    }
}
