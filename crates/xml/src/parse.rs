//! A from-scratch, non-validating XML parser.
//!
//! Supports the subset of XML 1.0 the reproduction needs:
//! elements with attributes, character data, CDATA sections, comments,
//! processing instructions, an optional XML declaration and doctype (both
//! skipped), the five predefined entities and numeric character references.
//!
//! Not supported (reported as errors or ignored by design): DTD-defined
//! entities, namespaces-aware processing (prefixes are kept verbatim as part
//! of the name, which is what the paper's type system does too).

use crate::arena::Document;
use crate::escape::resolve_entity;
use crate::lex::Cursor;
use crate::model::NodeId;
use std::fmt;

/// An error produced while parsing, with 1-based line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// 1-based line of the error.
    pub line: usize,
    /// 1-based column of the error.
    pub column: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses `input` into a [`Document`] with the given `uri`.
pub fn parse(uri: impl Into<String>, input: &str) -> Result<Document, ParseError> {
    Parser {
        cur: Cursor::new(input),
        doc: Document::new(uri),
    }
    .run()
}

struct Parser<'a> {
    cur: Cursor<'a>,
    doc: Document,
}

impl<'a> Parser<'a> {
    /// Invariant: the open-element stack only ever holds ids pushed by
    /// `parse_start_tag`, which creates elements — so they always have a
    /// name.
    fn open_name(&self, id: NodeId) -> &str {
        match self.doc.name(id) {
            Some(n) => n,
            None => unreachable!("open node is an element"),
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let (line, column) = self.cur.line_col(self.cur.pos());
        ParseError {
            message: message.into(),
            line,
            column,
        }
    }

    fn run(mut self) -> Result<Document, ParseError> {
        self.skip_prolog()?;
        self.cur.skip_ws();
        if !self.cur.starts_with("<") {
            return Err(self.err("expected root element"));
        }
        let root = self.parse_element(None)?;
        debug_assert_eq!(self.doc.root(), Some(root));
        // Trailing misc: whitespace, comments, PIs.
        loop {
            self.cur.skip_ws();
            if self.cur.at_end() {
                break;
            }
            if self.cur.starts_with("<!--") {
                self.parse_comment(None)?;
            } else if self.cur.starts_with("<?") {
                self.parse_pi(None)?;
            } else {
                return Err(self.err("unexpected content after root element"));
            }
        }
        Ok(self.doc)
    }

    /// Skips the XML declaration, doctype, and leading misc items.
    fn skip_prolog(&mut self) -> Result<(), ParseError> {
        loop {
            self.cur.skip_ws();
            if self.cur.starts_with("<?xml") {
                if self.cur.take_until("?>").is_none() {
                    return Err(self.err("unterminated XML declaration"));
                }
            } else if self.cur.starts_with("<!DOCTYPE") {
                // Skip to the matching '>', honoring an internal subset.
                let mut depth = 0usize;
                loop {
                    match self.cur.bump() {
                        Some(b'[') => depth += 1,
                        Some(b']') => depth = depth.saturating_sub(1),
                        Some(b'>') if depth == 0 => break,
                        Some(_) => {}
                        None => return Err(self.err("unterminated DOCTYPE")),
                    }
                }
            } else if self.cur.starts_with("<!--") {
                self.cur.eat("<!--");
                if self.cur.take_until("-->").is_none() {
                    return Err(self.err("unterminated comment"));
                }
            } else if self.cur.starts_with("<?") {
                if self.cur.take_until("?>").is_none() {
                    return Err(self.err("unterminated processing instruction"));
                }
            } else {
                return Ok(());
            }
        }
    }

    /// Parses an element (and its whole subtree) iteratively, attaching it
    /// under `parent` (or as root). An explicit stack of open elements is
    /// used instead of recursion so arbitrarily deep documents parse without
    /// exhausting the call stack.
    fn parse_element(&mut self, parent: Option<NodeId>) -> Result<NodeId, ParseError> {
        let (root_id, self_closing) = self.parse_start_tag(parent)?;
        if self_closing {
            return Ok(root_id);
        }
        // Stack of open elements awaiting their end tag.
        let mut stack: Vec<NodeId> = vec![root_id];
        let mut text = String::new();
        while let Some(&top) = stack.last() {
            if self.cur.starts_with("</") {
                self.flush_text(top, &mut text);
                self.cur.eat("</");
                let end = self
                    .cur
                    .take_name()
                    .ok_or_else(|| self.err("expected name in end tag"))?;
                let open = self.open_name(top);
                if end != open {
                    return Err(self.err(format!(
                        "mismatched end tag: expected </{open}>, found </{end}>"
                    )));
                }
                self.cur.skip_ws();
                if !self.cur.eat(">") {
                    return Err(self.err("expected '>' in end tag"));
                }
                stack.pop();
            } else if self.cur.starts_with("<!--") {
                self.flush_text(top, &mut text);
                self.parse_comment(Some(top))?;
            } else if self.cur.starts_with("<![CDATA[") {
                self.cur.eat("<![CDATA[");
                let body = self
                    .cur
                    .take_until("]]>")
                    .ok_or_else(|| self.err("unterminated CDATA section"))?;
                text.push_str(body);
            } else if self.cur.starts_with("<?") {
                self.flush_text(top, &mut text);
                self.parse_pi(Some(top))?;
            } else if self.cur.starts_with("<") {
                self.flush_text(top, &mut text);
                let (id, closed) = self.parse_start_tag(Some(top))?;
                if !closed {
                    stack.push(id);
                }
            } else {
                match self.cur.bump() {
                    Some(b'&') => text.push(self.parse_entity()?),
                    Some(b) => self.push_byte(&mut text, b),
                    None => {
                        let open = self.open_name(top);
                        return Err(self.err(format!("unterminated element <{open}>")));
                    }
                }
            }
        }
        Ok(root_id)
    }

    /// Parses a start tag (attributes included), attaching the new element.
    /// Returns the element id and whether the tag was self-closing.
    fn parse_start_tag(&mut self, parent: Option<NodeId>) -> Result<(NodeId, bool), ParseError> {
        debug_assert!(self.cur.starts_with("<"));
        self.cur.eat("<");
        let name = self
            .cur
            .take_name()
            .ok_or_else(|| self.err("expected element name"))?
            .to_owned();
        let id = match parent {
            Some(p) => self.doc.append_element(p, &name),
            None => self.doc.create_root(&name),
        };
        loop {
            self.cur.skip_ws();
            match self.cur.peek() {
                Some(b'>') => {
                    self.cur.bump();
                    return Ok((id, false));
                }
                Some(b'/') => {
                    self.cur.bump();
                    if !self.cur.eat(">") {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    return Ok((id, true));
                }
                Some(_) => {
                    let (aname, avalue) = self.parse_attribute()?;
                    self.doc.set_attribute(id, aname, avalue);
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }
    }

    fn parse_attribute(&mut self) -> Result<(String, String), ParseError> {
        let name = self
            .cur
            .take_name()
            .ok_or_else(|| self.err("expected attribute name"))?
            .to_owned();
        self.cur.skip_ws();
        if !self.cur.eat("=") {
            return Err(self.err(format!("expected '=' after attribute '{name}'")));
        }
        self.cur.skip_ws();
        let quote = match self.cur.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        let mut value = String::new();
        loop {
            match self.cur.bump() {
                Some(b) if b == quote => break,
                Some(b'&') => value.push(self.parse_entity()?),
                Some(b'<') => return Err(self.err("'<' not allowed in attribute value")),
                Some(b) => self.push_byte(&mut value, b),
                None => return Err(self.err("unterminated attribute value")),
            }
        }
        Ok((name, value))
    }

    /// Pushes a raw input byte onto a string buffer, handling UTF-8
    /// continuation by copying bytes verbatim (input is valid UTF-8).
    fn push_byte(&mut self, buf: &mut String, b: u8) {
        if b < 0x80 {
            buf.push(b as char);
        } else {
            // Multi-byte sequence: collect continuation bytes.
            let mut bytes = vec![b];
            let extra = match b {
                0xC0..=0xDF => 1,
                0xE0..=0xEF => 2,
                _ => 3,
            };
            for _ in 0..extra {
                if let Some(nb) = self.cur.bump() {
                    bytes.push(nb);
                }
            }
            // Invariant: `bytes` was sliced from a `&str`, so every
            // multi-byte sequence we reassemble here is valid UTF-8.
            match std::str::from_utf8(&bytes) {
                Ok(s) => buf.push_str(s),
                Err(_) => unreachable!("input was valid UTF-8"),
            }
        }
    }

    fn parse_entity(&mut self) -> Result<char, ParseError> {
        let body = self
            .cur
            .take_until(";")
            .ok_or_else(|| self.err("unterminated entity reference"))?
            .to_owned();
        resolve_entity(&body).ok_or_else(|| self.err(format!("unknown entity '&{body};'")))
    }

    fn flush_text(&mut self, id: NodeId, text: &mut String) {
        if !text.is_empty() {
            // Whitespace-only runs between elements are not materialized;
            // the data model of the paper has no whitespace text nodes.
            if !text.chars().all(|c| c.is_ascii_whitespace()) {
                self.doc.append_text(id, std::mem::take(text));
            } else {
                text.clear();
            }
        }
    }

    fn parse_comment(&mut self, parent: Option<NodeId>) -> Result<(), ParseError> {
        self.cur.eat("<!--");
        let body = self
            .cur
            .take_until("-->")
            .ok_or_else(|| self.err("unterminated comment"))?
            .to_owned();
        if let Some(p) = parent {
            self.doc.append_comment(p, body);
        }
        Ok(())
    }

    fn parse_pi(&mut self, parent: Option<NodeId>) -> Result<(), ParseError> {
        self.cur.eat("<?");
        let body = self
            .cur
            .take_until("?>")
            .ok_or_else(|| self.err("unterminated processing instruction"))?
            .to_owned();
        if let Some(p) = parent {
            let (target, data) = match body.find(|c: char| c.is_ascii_whitespace()) {
                Some(i) => (body[..i].to_owned(), body[i + 1..].trim_start().to_owned()),
                None => (body, String::new()),
            };
            self.doc.append_pi(p, target, data);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NodeKind;
    use crate::testutil::Must;

    #[test]
    fn parses_paper_running_example() {
        let src = "<data><book><title>X</title><author><name>C</name></author>\
                   <publisher><location>W</location></publisher></book>\
                   <book><title>Y</title><author><name>D</name></author>\
                   <publisher><location>M</location></publisher></book></data>";
        let d = parse("book.xml", src).must();
        let root = d.root().must();
        assert_eq!(d.name(root), Some("data"));
        assert_eq!(d.children(root).len(), 2);
        let book1 = d.children(root)[0];
        assert_eq!(d.children(book1).len(), 3);
        assert_eq!(d.string_value(book1), "XCW");
        assert_eq!(d.uri(), "book.xml");
    }

    #[test]
    fn whitespace_between_elements_is_dropped() {
        let d = parse("u", "<a>\n  <b>x</b>\n  <c/>\n</a>").must();
        let root = d.root().must();
        assert_eq!(d.children(root).len(), 2);
    }

    #[test]
    fn mixed_content_keeps_significant_text() {
        let d = parse("u", "<p>one <b>two</b> three</p>").must();
        let root = d.root().must();
        assert_eq!(d.children(root).len(), 3);
        assert_eq!(d.string_value(root), "one two three");
    }

    #[test]
    fn attributes_parse_with_both_quote_kinds() {
        let d = parse("u", r#"<a x="1" y='two &amp; three'/>"#).must();
        let root = d.root().must();
        assert_eq!(d.attribute(root, "x"), Some("1"));
        assert_eq!(d.attribute(root, "y"), Some("two & three"));
    }

    #[test]
    fn entities_and_char_refs_resolve_in_text() {
        let d = parse("u", "<a>&lt;tag&gt; &amp; &#65;&#x42;</a>").must();
        let root = d.root().must();
        assert_eq!(d.string_value(root), "<tag> & AB");
    }

    #[test]
    fn cdata_is_literal() {
        let d = parse("u", "<a><![CDATA[<not-a-tag> & friends]]></a>").must();
        assert_eq!(d.string_value(d.root().must()), "<not-a-tag> & friends");
    }

    #[test]
    fn comments_and_pis_are_materialized_in_content() {
        let d = parse("u", "<a><!-- note --><?php echo ?><b/></a>").must();
        let root = d.root().must();
        let kids = d.children(root);
        assert_eq!(kids.len(), 3);
        assert!(matches!(d.kind(kids[0]), NodeKind::Comment(c) if c == " note "));
        assert!(matches!(
            d.kind(kids[1]),
            NodeKind::ProcessingInstruction { target, .. } if target == "php"
        ));
    }

    #[test]
    fn prolog_declaration_and_doctype_are_skipped() {
        let src = "<?xml version=\"1.0\"?>\n<!DOCTYPE data [ <!ELEMENT data ANY> ]>\n<data/>";
        let d = parse("u", src).must();
        assert_eq!(d.name(d.root().must()), Some("data"));
    }

    #[test]
    fn utf8_content_round_trips() {
        let d = parse("u", "<a>héllo wörld — ≤≥</a>").must();
        assert_eq!(d.string_value(d.root().must()), "héllo wörld — ≤≥");
    }

    #[test]
    fn mismatched_end_tag_is_an_error() {
        let e = parse("u", "<a><b></a></b>").unwrap_err();
        assert!(e.message.contains("mismatched end tag"), "{e}");
        assert_eq!(e.line, 1);
    }

    #[test]
    fn unterminated_element_is_an_error() {
        assert!(parse("u", "<a><b>").is_err());
        assert!(parse("u", "<a").is_err());
    }

    #[test]
    fn unknown_entity_is_an_error() {
        let e = parse("u", "<a>&nbsp;</a>").unwrap_err();
        assert!(e.message.contains("unknown entity"), "{e}");
    }

    #[test]
    fn garbage_after_root_is_an_error() {
        assert!(parse("u", "<a/><b/>").is_err());
        // Trailing comments/PIs/whitespace are fine.
        assert!(parse("u", "<a/>  <!-- bye --> <?pi?>\n").is_ok());
    }

    #[test]
    fn error_positions_are_line_accurate() {
        let e = parse("u", "<a>\n<b>\n</c>\n</a>").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn deep_nesting_parses_iteratively() {
        // The parser is iterative, so nesting depth is bounded only by memory.
        let depth = 100_000;
        let mut src = String::new();
        for _ in 0..depth {
            src.push_str("<d>");
        }
        src.push('x');
        for _ in 0..depth {
            src.push_str("</d>");
        }
        let d = parse("u", &src).must();
        assert_eq!(d.len(), depth + 1);
    }
}
