//! The arena-allocated document tree.
//!
//! A [`Document`] owns every node in a single `Vec`, addressed by
//! [`NodeId`]. This layout was chosen over `Rc`-linked nodes because the
//! reproduction repeatedly performs whole-document preorder scans (PBN
//! assignment, DataGuide construction, serialization) where a dense arena is
//! both simpler and markedly faster.

use crate::model::{Attribute, Node, NodeId, NodeKind};

/// An ordered XML tree with a single root element.
///
/// The document optionally records a URI; the paper's notion of a *type*
/// (Section 4.1) includes the document URI, so DataGuides built from
/// different URIs are distinct.
#[derive(Clone, Debug)]
pub struct Document {
    uri: String,
    nodes: Vec<Node>,
    root: Option<NodeId>,
}

impl Document {
    /// Creates an empty document with the given URI.
    pub fn new(uri: impl Into<String>) -> Self {
        Document {
            uri: uri.into(),
            nodes: Vec::new(),
            root: None,
        }
    }

    /// Parses `input` into a document with the given URI.
    ///
    /// Convenience wrapper over [`crate::parse::parse`].
    pub fn parse(uri: impl Into<String>, input: &str) -> Result<Self, crate::parse::ParseError> {
        crate::parse::parse(uri, input)
    }

    /// The document URI.
    #[inline]
    pub fn uri(&self) -> &str {
        &self.uri
    }

    /// The root element, or `None` for an empty document.
    #[inline]
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Number of nodes in the document (elements, text, comments, PIs).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the document contains no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Accesses a node by id.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this document.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The kind of a node.
    #[inline]
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.index()].kind
    }

    /// The parent of a node.
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// The ordered children of a node.
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// Element name of a node, if it is an element.
    #[inline]
    pub fn name(&self, id: NodeId) -> Option<&str> {
        self.nodes[id.index()].kind.element_name()
    }

    /// Attributes of a node (empty slice for non-elements).
    pub fn attributes(&self, id: NodeId) -> &[Attribute] {
        match &self.nodes[id.index()].kind {
            NodeKind::Element { attributes, .. } => attributes,
            _ => &[],
        }
    }

    /// Looks up an attribute value by name.
    pub fn attribute(&self, id: NodeId, name: &str) -> Option<&str> {
        self.attributes(id)
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// The 1-based ordinal of `id` among its parent's children, or 1 for the
    /// root. This is the sibling ordinal used as the final PBN component.
    pub fn sibling_ordinal(&self, id: NodeId) -> usize {
        match self.parent(id) {
            None => 1,
            Some(p) => {
                // Invariant: `parent` and `children` are kept symmetric by
                // `attach`/`detach`, so a node always appears in its
                // parent's child list.
                match self.children(p).iter().position(|&c| c == id) {
                    Some(pos) => pos + 1,
                    None => unreachable!("child not found under its parent"),
                }
            }
        }
    }

    /// Depth of a node: the root element is at depth 1.
    pub fn depth(&self, id: NodeId) -> usize {
        self.ancestors(id).count() + 1
    }

    /// Concatenated text content of the subtree rooted at `id`
    /// (the XPath string value of an element).
    pub fn string_value(&self, id: NodeId) -> String {
        let mut out = String::new();
        for d in self.descendants_or_self(id) {
            if let NodeKind::Text(t) = self.kind(d) {
                out.push_str(t);
            }
        }
        out
    }

    // ----- construction -----------------------------------------------

    /// Creates a detached node and returns its id.
    fn push_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node {
            kind,
            parent: None,
            children: Vec::new(),
        });
        id
    }

    /// Creates the root element. May only be called once per document.
    ///
    /// # Panics
    /// Panics if the document already has a root.
    pub fn create_root(&mut self, name: impl Into<String>) -> NodeId {
        assert!(self.root.is_none(), "document already has a root");
        let id = self.push_node(NodeKind::Element {
            name: name.into(),
            attributes: Vec::new(),
        });
        self.root = Some(id);
        id
    }

    /// Appends a new element child under `parent` and returns its id.
    pub fn append_element(&mut self, parent: NodeId, name: impl Into<String>) -> NodeId {
        let id = self.push_node(NodeKind::Element {
            name: name.into(),
            attributes: Vec::new(),
        });
        self.attach(parent, id);
        id
    }

    /// Appends a new text child under `parent` and returns its id.
    ///
    /// If the last child of `parent` is already a text node the content is
    /// merged into it (the data model never holds adjacent text siblings),
    /// and the existing node's id is returned.
    pub fn append_text(&mut self, parent: NodeId, text: impl Into<String>) -> NodeId {
        if let Some(&last) = self.children(parent).last() {
            if let NodeKind::Text(existing) = &mut self.nodes[last.index()].kind {
                existing.push_str(&text.into());
                return last;
            }
        }
        let id = self.push_node(NodeKind::Text(text.into()));
        self.attach(parent, id);
        id
    }

    /// Appends a comment child under `parent`.
    pub fn append_comment(&mut self, parent: NodeId, text: impl Into<String>) -> NodeId {
        let id = self.push_node(NodeKind::Comment(text.into()));
        self.attach(parent, id);
        id
    }

    /// Appends a processing-instruction child under `parent`.
    pub fn append_pi(
        &mut self,
        parent: NodeId,
        target: impl Into<String>,
        data: impl Into<String>,
    ) -> NodeId {
        let id = self.push_node(NodeKind::ProcessingInstruction {
            target: target.into(),
            data: data.into(),
        });
        self.attach(parent, id);
        id
    }

    /// Sets an attribute on an element, replacing any existing value.
    ///
    /// # Panics
    /// Panics if `id` is not an element.
    pub fn set_attribute(&mut self, id: NodeId, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        match &mut self.nodes[id.index()].kind {
            NodeKind::Element { attributes, .. } => {
                if let Some(a) = attributes.iter_mut().find(|a| a.name == name) {
                    a.value = value.into();
                } else {
                    attributes.push(Attribute {
                        name,
                        value: value.into(),
                    });
                }
            }
            // Documented panic: `set_attribute` is only meaningful on
            // elements; calling it on text/comment nodes is a caller bug.
            // vet: allow(no-panic) — documented panic: caller bug, not recoverable state
            other => panic!("set_attribute on non-element node: {other:?}"),
        }
    }

    /// Inserts a new element as the `pos`-th child of `parent` (0-based),
    /// shifting later siblings right. `pos` may equal the child count
    /// (append). Used by the update-cost experiments.
    ///
    /// # Panics
    /// Panics if `pos` exceeds the current child count.
    pub fn insert_element(
        &mut self,
        parent: NodeId,
        pos: usize,
        name: impl Into<String>,
    ) -> NodeId {
        let id = self.push_node(NodeKind::Element {
            name: name.into(),
            attributes: Vec::new(),
        });
        self.nodes[id.index()].parent = Some(parent);
        let children = &mut self.nodes[parent.index()].children;
        assert!(pos <= children.len(), "insert position out of bounds");
        children.insert(pos, id);
        id
    }

    /// Detaches the subtree rooted at `id` from its parent. The nodes stay
    /// in the arena (ids remain valid) but are no longer reachable from the
    /// root; traversals and renumbering skip them.
    ///
    /// # Panics
    /// Panics if `id` is the root or already detached.
    pub fn detach(&mut self, id: NodeId) {
        // Documented panic (see the doc comment above): detaching the root
        // or a detached node is a caller bug, not a recoverable state.
        #[allow(clippy::expect_used)]
        let parent = self.nodes[id.index()]
            .parent
            // vet: allow(no-panic) — documented panic: detaching the root is a caller bug
            .expect("cannot detach the root or an already-detached node");
        let children = &mut self.nodes[parent.index()].children;
        // Invariant: the parent/child links are symmetric (see
        // `sibling_ordinal`), so the child is always listed.
        let pos = match children.iter().position(|&c| c == id) {
            Some(p) => p,
            None => unreachable!("child listed under its parent"),
        };
        children.remove(pos);
        self.nodes[id.index()].parent = None;
    }

    fn attach(&mut self, parent: NodeId, child: NodeId) {
        debug_assert!(self.nodes[child.index()].parent.is_none());
        self.nodes[child.index()].parent = Some(parent);
        self.nodes[parent.index()].children.push(child);
    }

    /// Attaches a detached subtree as the `pos`-th child of `parent`
    /// (0-based, `pos` may equal the child count). The complement of
    /// [`Document::detach`]: together they move a subtree.
    ///
    /// # Panics
    /// Panics if `child` is attached or `pos` exceeds the child count.
    pub fn attach_at(&mut self, parent: NodeId, pos: usize, child: NodeId) {
        assert!(
            self.nodes[child.index()].parent.is_none(),
            "attach_at requires a detached subtree"
        );
        self.nodes[child.index()].parent = Some(parent);
        let children = &mut self.nodes[parent.index()].children;
        assert!(pos <= children.len(), "attach position out of bounds");
        children.insert(pos, child);
    }

    /// Replaces the content of a text node.
    ///
    /// # Panics
    /// Panics if `id` is not a text node.
    pub fn set_text(&mut self, id: NodeId, text: impl Into<String>) {
        match &mut self.nodes[id.index()].kind {
            NodeKind::Text(t) => *t = text.into(),
            // Documented panic: callers (the edit layer) validate the node
            // kind before dispatching here.
            // vet: allow(no-panic) — documented panic: caller bug, not recoverable state
            other => panic!("set_text on non-text node: {other:?}"),
        }
    }

    /// Deep-copies the subtree rooted at `src` in `from` to become the
    /// `pos`-th child of `parent` (0-based), returning the copied root.
    ///
    /// # Panics
    /// Panics if `pos` exceeds the current child count of `parent`.
    pub fn copy_subtree_at(
        &mut self,
        parent: NodeId,
        pos: usize,
        from: &Document,
        src: NodeId,
    ) -> NodeId {
        let id = self.copy_subtree(parent, from, src);
        // `copy_subtree` appended; rotate the new child into place.
        let children = &mut self.nodes[parent.index()].children;
        assert!(pos < children.len(), "insert position out of bounds");
        children[pos..].rotate_right(1);
        id
    }

    /// Deep-copies the subtree rooted at `src` in `from` under `parent` in
    /// this document, returning the id of the copied root.
    pub fn copy_subtree(&mut self, parent: NodeId, from: &Document, src: NodeId) -> NodeId {
        let id = self.push_node(from.kind(src).clone());
        self.attach(parent, id);
        // Iterative copy to stay robust on very deep documents.
        let mut stack: Vec<(NodeId, NodeId)> = vec![(src, id)];
        while let Some((s, d)) = stack.pop() {
            for &c in from.children(s) {
                let nd = self.push_node(from.kind(c).clone());
                self.attach(d, nd);
                stack.push((c, nd));
            }
        }
        id
    }

    // ----- traversal ---------------------------------------------------

    /// Iterator over the children of `id`.
    pub fn child_iter(&self, id: NodeId) -> Children<'_> {
        Children {
            doc: self,
            slice: self.children(id),
            pos: 0,
        }
    }

    /// Iterator over the proper ancestors of `id`, nearest first.
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors {
            doc: self,
            next: self.parent(id),
        }
    }

    /// Preorder iterator over the subtree rooted at `id`, including `id`.
    pub fn descendants_or_self(&self, id: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: vec![id],
        }
    }

    /// Preorder iterator over the whole document (empty if no root).
    pub fn preorder(&self) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: self.root.into_iter().collect(),
        }
    }

    /// Returns `true` if `anc` is a proper ancestor of `id`.
    pub fn is_ancestor(&self, anc: NodeId, id: NodeId) -> bool {
        self.ancestors(id).any(|a| a == anc)
    }
}

/// Iterator over a node's children. See [`Document::child_iter`].
pub struct Children<'a> {
    #[allow(dead_code)]
    doc: &'a Document,
    slice: &'a [NodeId],
    pos: usize,
}

impl<'a> Iterator for Children<'a> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let item = self.slice.get(self.pos).copied();
        self.pos += 1;
        item
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.slice.len().saturating_sub(self.pos);
        (rem, Some(rem))
    }
}

/// Iterator over proper ancestors, nearest first. See [`Document::ancestors`].
pub struct Ancestors<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl<'a> Iterator for Ancestors<'a> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.doc.parent(cur);
        Some(cur)
    }
}

/// Preorder (document-order) iterator. See [`Document::descendants_or_self`].
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl<'a> Iterator for Descendants<'a> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let cur = self.stack.pop()?;
        // Push children in reverse so the leftmost is popped first.
        let children = self.doc.children(cur);
        self.stack.extend(children.iter().rev().copied());
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId, NodeId) {
        // <data><book><title>X</title></book></data>
        let mut d = Document::new("sample.xml");
        let data = d.create_root("data");
        let book = d.append_element(data, "book");
        let title = d.append_element(book, "title");
        let text = d.append_text(title, "X");
        (d, data, book, title, text)
    }

    #[test]
    fn construction_links_parents_and_children() {
        let (d, data, book, title, text) = sample();
        assert_eq!(d.root(), Some(data));
        assert_eq!(d.parent(book), Some(data));
        assert_eq!(d.parent(data), None);
        assert_eq!(d.children(book), &[title]);
        assert_eq!(d.children(title), &[text]);
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn preorder_is_document_order() {
        let (d, data, book, title, text) = sample();
        let order: Vec<NodeId> = d.preorder().collect();
        assert_eq!(order, vec![data, book, title, text]);
    }

    #[test]
    fn preorder_visits_siblings_left_to_right() {
        let mut d = Document::new("u");
        let r = d.create_root("r");
        let a = d.append_element(r, "a");
        let b = d.append_element(r, "b");
        let a1 = d.append_element(a, "a1");
        let order: Vec<NodeId> = d.preorder().collect();
        assert_eq!(order, vec![r, a, a1, b]);
    }

    #[test]
    fn ancestors_nearest_first() {
        let (d, data, book, title, text) = sample();
        let anc: Vec<NodeId> = d.ancestors(text).collect();
        assert_eq!(anc, vec![title, book, data]);
        assert!(d.is_ancestor(data, text));
        assert!(!d.is_ancestor(text, data));
        assert!(
            !d.is_ancestor(title, title),
            "self is not a proper ancestor"
        );
    }

    #[test]
    fn sibling_ordinals_are_one_based() {
        let mut d = Document::new("u");
        let r = d.create_root("r");
        let a = d.append_element(r, "a");
        let b = d.append_element(r, "b");
        assert_eq!(d.sibling_ordinal(r), 1);
        assert_eq!(d.sibling_ordinal(a), 1);
        assert_eq!(d.sibling_ordinal(b), 2);
    }

    #[test]
    fn depth_counts_from_one() {
        let (d, data, _book, _title, text) = sample();
        assert_eq!(d.depth(data), 1);
        assert_eq!(d.depth(text), 4);
    }

    #[test]
    fn adjacent_text_is_merged() {
        let mut d = Document::new("u");
        let r = d.create_root("r");
        let t1 = d.append_text(r, "hello ");
        let t2 = d.append_text(r, "world");
        assert_eq!(t1, t2);
        assert_eq!(d.children(r).len(), 1);
        assert_eq!(d.kind(t1).text(), Some("hello world"));
    }

    #[test]
    fn string_value_concatenates_descendant_text() {
        let mut d = Document::new("u");
        let r = d.create_root("r");
        let a = d.append_element(r, "a");
        d.append_text(a, "foo");
        let b = d.append_element(r, "b");
        d.append_text(b, "bar");
        assert_eq!(d.string_value(r), "foobar");
        assert_eq!(d.string_value(b), "bar");
    }

    #[test]
    fn attributes_set_and_replace() {
        let mut d = Document::new("u");
        let r = d.create_root("r");
        d.set_attribute(r, "id", "1");
        d.set_attribute(r, "lang", "en");
        d.set_attribute(r, "id", "2");
        assert_eq!(d.attribute(r, "id"), Some("2"));
        assert_eq!(d.attribute(r, "lang"), Some("en"));
        assert_eq!(d.attribute(r, "missing"), None);
        assert_eq!(d.attributes(r).len(), 2);
    }

    #[test]
    fn copy_subtree_deep_copies() {
        let (src, _data, book, _title, _text) = sample();
        let mut dst = Document::new("copy");
        let root = dst.create_root("library");
        let copied = dst.copy_subtree(root, &src, book);
        assert_eq!(dst.name(copied), Some("book"));
        assert_eq!(dst.string_value(copied), "X");
        // The copy is independent of the source arena.
        assert_eq!(dst.len(), 1 + 3);
    }

    #[test]
    fn insert_element_shifts_siblings() {
        let mut d = Document::new("u");
        let r = d.create_root("r");
        let a = d.append_element(r, "a");
        let c = d.append_element(r, "c");
        let b = d.insert_element(r, 1, "b");
        assert_eq!(d.children(r), &[a, b, c]);
        assert_eq!(d.parent(b), Some(r));
        assert_eq!(d.sibling_ordinal(c), 3);
        let front = d.insert_element(r, 0, "front");
        assert_eq!(d.children(r)[0], front);
        let back = d.insert_element(r, 4, "back");
        assert_eq!(d.children(r)[4], back);
    }

    #[test]
    fn detach_removes_the_subtree_from_traversal() {
        let mut d = Document::new("u");
        let r = d.create_root("r");
        let a = d.append_element(r, "a");
        let a1 = d.append_element(a, "a1");
        let b = d.append_element(r, "b");
        d.detach(a);
        assert_eq!(d.children(r), &[b]);
        assert_eq!(d.parent(a), None);
        let visited: Vec<NodeId> = d.preorder().collect();
        assert!(!visited.contains(&a) && !visited.contains(&a1));
        // Arena ids remain valid for inspection.
        assert_eq!(d.name(a1), Some("a1"));
    }

    #[test]
    #[should_panic(expected = "insert position out of bounds")]
    fn insert_beyond_end_panics() {
        let mut d = Document::new("u");
        let r = d.create_root("r");
        d.insert_element(r, 1, "x");
    }

    #[test]
    #[should_panic(expected = "document already has a root")]
    fn second_root_panics() {
        let mut d = Document::new("u");
        d.create_root("a");
        d.create_root("b");
    }
}
