//! A minimal Prometheus text-format (version 0.0.4) writer for the
//! engine's cumulative counter snapshot (`Engine::metrics_text()`).

use std::fmt::Write as _;

/// Accumulates `# HELP`/`# TYPE` headers and samples into one exposition
/// string. Families must be opened (via [`PromWriter::counter`] /
/// [`PromWriter::gauge`]) before their samples are added.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty exposition.
    pub fn new() -> Self {
        PromWriter::default()
    }

    fn family(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Opens a counter family.
    pub fn counter(&mut self, name: &str, help: &str) {
        self.family(name, help, "counter");
    }

    /// Opens a gauge family.
    pub fn gauge(&mut self, name: &str, help: &str) {
        self.family(name, help, "gauge");
    }

    /// Opens a histogram family.
    pub fn histogram(&mut self, name: &str, help: &str) {
        self.family(name, help, "histogram");
    }

    /// Emits one full histogram series: cumulative `_bucket{le=…}`
    /// samples over `bounds` (plus the implicit `+Inf` bucket), then
    /// `_sum` and `_count`. `counts` holds per-bucket (non-cumulative)
    /// observation counts and must be one longer than `bounds` — the
    /// last slot is the overflow bucket.
    pub fn histogram_samples(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
        counts: &[u64],
        sum: u64,
    ) {
        debug_assert_eq!(counts.len(), bounds.len() + 1, "one overflow bucket");
        let mut cumulative = 0u64;
        let bucket = format!("{name}_bucket");
        for (i, &bound) in bounds.iter().enumerate() {
            cumulative += counts.get(i).copied().unwrap_or(0);
            let le = format!("{bound}");
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", &le));
            self.sample(&bucket, &with_le, cumulative);
        }
        cumulative += counts.last().copied().unwrap_or(0);
        let mut with_le: Vec<(&str, &str)> = labels.to_vec();
        with_le.push(("le", "+Inf"));
        self.sample(&bucket, &with_le, cumulative);
        self.sample(&format!("{name}_sum"), labels, sum);
        self.sample(&format!("{name}_count"), labels, cumulative);
    }

    /// Emits one sample, optionally labelled. Label values are escaped
    /// per the exposition format (backslash, quote, newline).
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"");
                for c in v.chars() {
                    match c {
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\n' => self.out.push_str("\\n"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {value}");
    }

    /// The finished exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_format() {
        let mut w = PromWriter::new();
        w.counter("vpbn_queries_total", "Queries attempted.");
        w.sample("vpbn_queries_total", &[], 7);
        w.counter("vpbn_cache_hits_total", "Compiled-view cache hits.");
        w.sample("vpbn_cache_hits_total", &[("artifact", "expansions")], 3);
        w.sample("vpbn_cache_hits_total", &[("artifact", "level\"s\n")], 1);
        let got = w.finish();
        let want = "# HELP vpbn_queries_total Queries attempted.\n\
                    # TYPE vpbn_queries_total counter\n\
                    vpbn_queries_total 7\n\
                    # HELP vpbn_cache_hits_total Compiled-view cache hits.\n\
                    # TYPE vpbn_cache_hits_total counter\n\
                    vpbn_cache_hits_total{artifact=\"expansions\"} 3\n\
                    vpbn_cache_hits_total{artifact=\"level\\\"s\\n\"} 1\n";
        assert_eq!(got, want);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut w = PromWriter::new();
        w.histogram("lat_ns", "Latency in nanoseconds.");
        w.histogram_samples(
            "lat_ns",
            &[("stage", "exec")],
            &[1000.0, 10000.0],
            &[3, 2, 1],
            12345,
        );
        let got = w.finish();
        let want = "# HELP lat_ns Latency in nanoseconds.\n\
                    # TYPE lat_ns histogram\n\
                    lat_ns_bucket{stage=\"exec\",le=\"1000\"} 3\n\
                    lat_ns_bucket{stage=\"exec\",le=\"10000\"} 5\n\
                    lat_ns_bucket{stage=\"exec\",le=\"+Inf\"} 6\n\
                    lat_ns_sum{stage=\"exec\"} 12345\n\
                    lat_ns_count{stage=\"exec\"} 6\n";
        assert_eq!(got, want);
    }
}
