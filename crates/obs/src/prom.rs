//! A minimal Prometheus text-format (version 0.0.4) writer for the
//! engine's cumulative counter snapshot (`Engine::metrics_text()`).

use std::fmt::Write as _;

/// Accumulates `# HELP`/`# TYPE` headers and samples into one exposition
/// string. Families must be opened (via [`PromWriter::counter`] /
/// [`PromWriter::gauge`]) before their samples are added.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty exposition.
    pub fn new() -> Self {
        PromWriter::default()
    }

    fn family(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Opens a counter family.
    pub fn counter(&mut self, name: &str, help: &str) {
        self.family(name, help, "counter");
    }

    /// Opens a gauge family.
    pub fn gauge(&mut self, name: &str, help: &str) {
        self.family(name, help, "gauge");
    }

    /// Emits one sample, optionally labelled. Label values are escaped
    /// per the exposition format (backslash, quote, newline).
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"");
                for c in v.chars() {
                    match c {
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\n' => self.out.push_str("\\n"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {value}");
    }

    /// The finished exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_format() {
        let mut w = PromWriter::new();
        w.counter("vpbn_queries_total", "Queries attempted.");
        w.sample("vpbn_queries_total", &[], 7);
        w.counter("vpbn_cache_hits_total", "Compiled-view cache hits.");
        w.sample("vpbn_cache_hits_total", &[("artifact", "expansions")], 3);
        w.sample("vpbn_cache_hits_total", &[("artifact", "level\"s\n")], 1);
        let got = w.finish();
        let want = "# HELP vpbn_queries_total Queries attempted.\n\
                    # TYPE vpbn_queries_total counter\n\
                    vpbn_queries_total 7\n\
                    # HELP vpbn_cache_hits_total Compiled-view cache hits.\n\
                    # TYPE vpbn_cache_hits_total counter\n\
                    vpbn_cache_hits_total{artifact=\"expansions\"} 3\n\
                    vpbn_cache_hits_total{artifact=\"level\\\"s\\n\"} 1\n";
        assert_eq!(got, want);
    }
}
