//! Human-readable tree rendering of a [`QueryTrace`] for the CLI's
//! `--trace` / `--explain` output.

use crate::span::{QueryTrace, Span};
use std::fmt::Write as _;

/// Formats nanoseconds with a human-friendly unit (`ns`, `µs`, `ms`, `s`).
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        10_000_000..=999_999_999 => format!("{:.2}ms", ns as f64 / 1e6),
        _ => format!("{:.3}s", ns as f64 / 1e9),
    }
}

fn line(out: &mut String, s: &Span) {
    let _ = write!(out, "{} ({})", s.name, fmt_ns(s.duration_ns));
    for (k, v) in &s.meta {
        let _ = write!(out, " {k}={v}");
    }
    for (k, v) in &s.counters {
        let _ = write!(out, " {k}={v}");
    }
    out.push('\n');
}

fn render(out: &mut String, s: &Span, prefix: &str) {
    let n = s.children.len();
    for (i, c) in s.children.iter().enumerate() {
        let last = i + 1 == n;
        out.push_str(prefix);
        out.push_str(if last { "└─ " } else { "├─ " });
        line(out, c);
        let deeper = format!("{prefix}{}", if last { "   " } else { "│  " });
        render(out, c, &deeper);
    }
}

impl QueryTrace {
    /// Renders the span tree as indented text, one span per line:
    /// name, duration, then `key=value` meta and counters.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        line(&mut out, &self.root);
        render(&mut out, &self.root, "");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_scale() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(150_000), "150.0µs");
        assert_eq!(fmt_ns(25_000_000), "25.00ms");
        assert_eq!(fmt_ns(3_200_000_000), "3.200s");
    }

    #[test]
    fn renders_nested_tree() {
        let mut root = Span::named("query");
        root.duration_ns = 100;
        root.meta = vec![("kind".into(), "flwr".into())];
        let mut plan = Span::named("plan");
        plan.children.push(Span::named("guide-expansion"));
        plan.children.push(Span::named("type-index"));
        let mut exec = Span::named("exec");
        exec.counters = vec![("sjoin.comparisons".into(), 4)];
        root.children = vec![Span::named("parse"), plan, exec];
        let got = QueryTrace { root }.render_text();
        let want = "query (100ns) kind=flwr\n\
                    ├─ parse (0ns)\n\
                    ├─ plan (0ns)\n\
                    │  ├─ guide-expansion (0ns)\n\
                    │  └─ type-index (0ns)\n\
                    └─ exec (0ns) sjoin.comparisons=4\n";
        assert_eq!(got, want);
    }
}
