//! Counter families for the instrumented hot paths, plus the per-query
//! [`QueryStats`] roll-up.
//!
//! The live counter types (`*Counters`, [`QueryCounterCells`]) use relaxed
//! atomics so the axis scans, twig seeks and structural joins can stay
//! `Sync` and count from worker threads without locks; each exposes a
//! `snapshot()` into a plain data struct for reporting. The hot paths
//! aggregate locally and publish with a *single* `fetch_add` per call, so
//! enabling counters never adds per-element atomic traffic.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// Cap on recorded [`RangeChoice`] detail rows per query: enough for any
/// EXPLAIN a human reads, and a bound on allocation for huge queries.
pub const MAX_RANGE_RECORDS: usize = 64;

/// How a compiled-view artifact was obtained for a query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the compiled-view cache shard.
    Hit,
    /// Served from the cache, where the entry last survived an edit via
    /// delta maintenance rather than a fresh compute.
    Maintained,
    /// Computed this query (and inserted, when caching is on).
    Computed,
    /// Cache disabled in the execution options; always computed fresh.
    #[default]
    Bypassed,
}

impl CacheOutcome {
    /// Stable lowercase label used by the exporters.
    pub fn label(&self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Maintained => "maintained",
            CacheOutcome::Computed => "computed",
            CacheOutcome::Bypassed => "bypassed",
        }
    }
}

/// Cache provenance of the four compiled-view artifacts of one
/// `virtualDoc` origin.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ViewProvenance {
    /// Document URI of the view.
    pub uri: String,
    /// vDataGuide specification text.
    pub spec: String,
    /// How the compiled vDataGuide expansion was obtained.
    pub expansion: CacheOutcome,
    /// How the Algorithm-1 level map was obtained.
    pub levels: CacheOutcome,
    /// How the scan-range prefix tables were obtained.
    pub tables: CacheOutcome,
    /// How the per-type node index was obtained.
    pub indexes: CacheOutcome,
}

/// One axis-range selection: the §5 byte-range chosen for a
/// `collect_related` scan, with both the type-index bracket and the
/// global arena slot bracket.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RangeChoice {
    /// Virtual path of the context node's type.
    pub context: String,
    /// Virtual path of the target type being collected.
    pub target: String,
    /// Number of pinned PBN components (the compatibility prefix length).
    pub pinned: u32,
    /// Whether the prefix subsumed every constraint (wholesale copy).
    pub exact: bool,
    /// Start of the half-open bracket in the target's type index.
    pub index_start: u64,
    /// End of the half-open bracket in the target's type index.
    pub index_end: u64,
    /// Start of the half-open slot bracket in the global PBN arena.
    pub arena_start: u64,
    /// End of the half-open slot bracket in the global PBN arena.
    pub arena_end: u64,
}

/// Plain snapshot of [`AxisCounters`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AxisStats {
    /// `collect_related` invocations (one per context node per step).
    pub range_scans: u64,
    /// Candidate slots inside all chosen brackets.
    pub slots_scanned: u64,
    /// Scans where the prefix subsumed the predicate (wholesale copy).
    pub exact_regions: u64,
    /// Per-candidate predicate evaluations on the non-exact path.
    pub filter_checks: u64,
    /// Up to [`MAX_RANGE_RECORDS`] recorded range selections.
    pub ranges: Vec<RangeChoice>,
}

/// Live counters for the virtual-axis byte-range scans.
#[derive(Debug, Default)]
pub struct AxisCounters {
    range_scans: AtomicU64,
    slots_scanned: AtomicU64,
    exact_regions: AtomicU64,
    filter_checks: AtomicU64,
    ranges: Mutex<Vec<RangeChoice>>,
}

impl AxisCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        AxisCounters::default()
    }

    /// Records one `collect_related` scan: `slots` candidates in the
    /// bracket, whether the region was `exact`, and how many
    /// per-candidate `filter` predicate evaluations ran.
    pub fn record_scan(&self, slots: u64, exact: bool, filters: u64) {
        self.range_scans.fetch_add(1, Relaxed);
        self.slots_scanned.fetch_add(slots, Relaxed);
        if exact {
            self.exact_regions.fetch_add(1, Relaxed);
        }
        if filters != 0 {
            self.filter_checks.fetch_add(filters, Relaxed);
        }
    }

    /// Whether a detail [`RangeChoice`] would still be kept — checked
    /// *before* building one, so the string-bearing record is only
    /// allocated while under the cap.
    pub fn wants_range(&self) -> bool {
        self.ranges
            .lock()
            .is_ok_and(|r| r.len() < MAX_RANGE_RECORDS)
    }

    /// Stores a range-selection detail record (dropped once the cap is
    /// reached).
    pub fn push_range(&self, r: RangeChoice) {
        if let Ok(mut ranges) = self.ranges.lock() {
            if ranges.len() < MAX_RANGE_RECORDS {
                ranges.push(r);
            }
        }
    }

    /// Plain snapshot of the current totals and recorded ranges.
    pub fn snapshot(&self) -> AxisStats {
        AxisStats {
            range_scans: self.range_scans.load(Relaxed),
            slots_scanned: self.slots_scanned.load(Relaxed),
            exact_regions: self.exact_regions.load(Relaxed),
            filter_checks: self.filter_checks.load(Relaxed),
            ranges: self.ranges.lock().map(|r| r.clone()).unwrap_or_default(),
        }
    }
}

/// Plain snapshot of [`TwigCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TwigStats {
    /// `seek` calls issued by the twig-join cursor advance.
    pub seeks: u64,
    /// Exponential-gallop doubling steps inside physical seeks.
    pub gallop_steps: u64,
    /// Seeks answered within the linear probe window (no gallop).
    pub probe_stops: u64,
    /// Stream head advances consumed by the join.
    pub advances: u64,
    /// Root-to-leaf path solutions emitted.
    pub path_solutions: u64,
    /// Merged twig matches returned.
    pub matches: u64,
}

/// Live counters for the twig-join operator and its seek sources.
#[derive(Debug, Default)]
pub struct TwigCounters {
    seeks: AtomicU64,
    gallop_steps: AtomicU64,
    probe_stops: AtomicU64,
    advances: AtomicU64,
    path_solutions: AtomicU64,
    matches: AtomicU64,
}

impl TwigCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        TwigCounters::default()
    }

    /// Adds one issued seek.
    pub fn add_seek(&self) {
        self.seeks.fetch_add(1, Relaxed);
    }

    /// Adds locally-aggregated gallop steps from one seek.
    pub fn add_gallop_steps(&self, n: u64) {
        if n != 0 {
            self.gallop_steps.fetch_add(n, Relaxed);
        }
    }

    /// Counts a seek resolved inside the linear probe window.
    pub fn add_probe_stop(&self) {
        self.probe_stops.fetch_add(1, Relaxed);
    }

    /// Adds stream head advances.
    pub fn add_advances(&self, n: u64) {
        if n != 0 {
            self.advances.fetch_add(n, Relaxed);
        }
    }

    /// Adds emitted path solutions.
    pub fn add_path_solutions(&self, n: u64) {
        if n != 0 {
            self.path_solutions.fetch_add(n, Relaxed);
        }
    }

    /// Adds merged twig matches.
    pub fn add_matches(&self, n: u64) {
        if n != 0 {
            self.matches.fetch_add(n, Relaxed);
        }
    }

    /// Plain snapshot of the current totals.
    pub fn snapshot(&self) -> TwigStats {
        TwigStats {
            seeks: self.seeks.load(Relaxed),
            gallop_steps: self.gallop_steps.load(Relaxed),
            probe_stops: self.probe_stops.load(Relaxed),
            advances: self.advances.load(Relaxed),
            path_solutions: self.path_solutions.load(Relaxed),
            matches: self.matches.load(Relaxed),
        }
    }
}

/// Plain snapshot of [`SjoinCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SjoinStats {
    /// Document-order comparisons evaluated by the join.
    pub comparisons: u64,
    /// Ancestor-containment tests evaluated by the join.
    pub containment_tests: u64,
    /// (ancestor, descendant) result pairs produced.
    pub pairs: u64,
}

/// Live counters for the structural-join operators.
#[derive(Debug, Default)]
pub struct SjoinCounters {
    comparisons: AtomicU64,
    containment_tests: AtomicU64,
    pairs: AtomicU64,
}

impl SjoinCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        SjoinCounters::default()
    }

    /// Adds locally-aggregated order comparisons.
    pub fn add_comparisons(&self, n: u64) {
        if n != 0 {
            self.comparisons.fetch_add(n, Relaxed);
        }
    }

    /// Adds locally-aggregated containment tests.
    pub fn add_containment_tests(&self, n: u64) {
        if n != 0 {
            self.containment_tests.fetch_add(n, Relaxed);
        }
    }

    /// Adds produced result pairs.
    pub fn add_pairs(&self, n: u64) {
        if n != 0 {
            self.pairs.fetch_add(n, Relaxed);
        }
    }

    /// Plain snapshot of the current totals.
    pub fn snapshot(&self) -> SjoinStats {
        SjoinStats {
            comparisons: self.comparisons.load(Relaxed),
            containment_tests: self.containment_tests.load(Relaxed),
            pairs: self.pairs.load(Relaxed),
        }
    }
}

/// Cumulative engine-lifetime counters (a plain snapshot of
/// [`QueryCounterCells`]), reported in `EngineSnapshot` and rendered by
/// `Engine::metrics_text()`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryCounters {
    /// Queries attempted (successful or not).
    pub queries: u64,
    /// Queries that returned an error.
    pub failures: u64,
    /// Queries that ran with tracing enabled.
    pub traced: u64,
    /// Total nanoseconds spent parsing.
    pub parse_ns: u64,
    /// Total nanoseconds spent planning (view resolution/compilation).
    pub plan_ns: u64,
    /// Total nanoseconds spent executing.
    pub exec_ns: u64,
    /// Total end-to-end nanoseconds across all queries.
    pub total_ns: u64,
    /// Result nodes produced across all queries.
    pub result_nodes: u64,
    /// Edits applied successfully (`Engine::apply` and WAL replay).
    pub edits: u64,
    /// Edits rejected with an error.
    pub edit_failures: u64,
    /// Edits re-applied from the write-ahead log by `Engine::recover`.
    pub replayed_edits: u64,
    /// Delta-segment compactions (automatic and explicit).
    pub compactions: u64,
}

/// Live cumulative engine counters; one cell set per engine, updated with
/// a few relaxed adds per query.
#[derive(Debug, Default)]
pub struct QueryCounterCells {
    queries: AtomicU64,
    failures: AtomicU64,
    traced: AtomicU64,
    parse_ns: AtomicU64,
    plan_ns: AtomicU64,
    exec_ns: AtomicU64,
    total_ns: AtomicU64,
    result_nodes: AtomicU64,
    edits: AtomicU64,
    edit_failures: AtomicU64,
    replayed_edits: AtomicU64,
    compactions: AtomicU64,
}

impl QueryCounterCells {
    /// Fresh zeroed cells.
    pub fn new() -> Self {
        QueryCounterCells::default()
    }

    /// Folds one finished query into the totals.
    pub fn record_query(&self, stats: &QueryStats, traced: bool) {
        self.queries.fetch_add(1, Relaxed);
        if traced {
            self.traced.fetch_add(1, Relaxed);
        }
        self.parse_ns.fetch_add(stats.parse_ns, Relaxed);
        self.plan_ns.fetch_add(stats.plan_ns, Relaxed);
        self.exec_ns.fetch_add(stats.exec_ns, Relaxed);
        self.total_ns.fetch_add(stats.total_ns, Relaxed);
        self.result_nodes.fetch_add(stats.result_nodes, Relaxed);
    }

    /// Counts one failed query.
    pub fn record_failure(&self) {
        self.queries.fetch_add(1, Relaxed);
        self.failures.fetch_add(1, Relaxed);
    }

    /// Counts one successfully applied edit; `replayed` marks edits
    /// re-applied from the write-ahead log during recovery.
    pub fn record_edit(&self, replayed: bool) {
        self.edits.fetch_add(1, Relaxed);
        if replayed {
            self.replayed_edits.fetch_add(1, Relaxed);
        }
    }

    /// Counts one rejected edit.
    pub fn record_edit_failure(&self) {
        self.edit_failures.fetch_add(1, Relaxed);
    }

    /// Counts one delta-segment compaction.
    pub fn record_compaction(&self) {
        self.compactions.fetch_add(1, Relaxed);
    }

    /// Plain snapshot of the current totals.
    pub fn snapshot(&self) -> QueryCounters {
        QueryCounters {
            queries: self.queries.load(Relaxed),
            failures: self.failures.load(Relaxed),
            traced: self.traced.load(Relaxed),
            parse_ns: self.parse_ns.load(Relaxed),
            plan_ns: self.plan_ns.load(Relaxed),
            exec_ns: self.exec_ns.load(Relaxed),
            total_ns: self.total_ns.load(Relaxed),
            result_nodes: self.result_nodes.load(Relaxed),
            edits: self.edits.load(Relaxed),
            edit_failures: self.edit_failures.load(Relaxed),
            replayed_edits: self.replayed_edits.load(Relaxed),
            compactions: self.compactions.load(Relaxed),
        }
    }
}

/// Per-query statistics, filled for every query (traced or not): stage
/// timings, result size, per-view cache provenance and operator counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// End-to-end query nanoseconds.
    pub total_ns: u64,
    /// Nanoseconds spent parsing the query text.
    pub parse_ns: u64,
    /// Nanoseconds spent resolving/compiling source views.
    pub plan_ns: u64,
    /// Nanoseconds spent in the evaluator.
    pub exec_ns: u64,
    /// Nodes in the result (elements copied into the result document, or
    /// nodes selected by a path query).
    pub result_nodes: u64,
    /// Cache provenance of every `virtualDoc` origin, in clause order.
    pub views: Vec<ViewProvenance>,
    /// Virtual-axis scan counters (traced queries only; zero otherwise).
    pub axis: AxisStats,
    /// Twig operator counters (when a twig join participated).
    pub twig: TwigStats,
    /// Structural-join counters (when a structural join participated).
    pub sjoin: SjoinStats,
}

impl QueryStats {
    /// Sum of the per-stage timings — never more than [`Self::total_ns`].
    pub fn stage_ns(&self) -> u64 {
        self.parse_ns + self.plan_ns + self.exec_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_counters_aggregate_and_cap() {
        let c = AxisCounters::new();
        c.record_scan(10, false, 10);
        c.record_scan(5, true, 0);
        for i in 0..(MAX_RANGE_RECORDS + 8) {
            if c.wants_range() {
                c.push_range(RangeChoice {
                    context: format!("c{i}"),
                    ..RangeChoice::default()
                });
            }
        }
        let s = c.snapshot();
        assert_eq!(s.range_scans, 2);
        assert_eq!(s.slots_scanned, 15);
        assert_eq!(s.exact_regions, 1);
        assert_eq!(s.filter_checks, 10);
        assert_eq!(s.ranges.len(), MAX_RANGE_RECORDS);
    }

    #[test]
    fn twig_and_sjoin_counters_roll_up() {
        let t = TwigCounters::new();
        t.add_seek();
        t.add_seek();
        t.add_gallop_steps(7);
        t.add_probe_stop();
        t.add_advances(3);
        t.add_path_solutions(2);
        t.add_matches(1);
        assert_eq!(
            t.snapshot(),
            TwigStats {
                seeks: 2,
                gallop_steps: 7,
                probe_stops: 1,
                advances: 3,
                path_solutions: 2,
                matches: 1,
            }
        );
        let j = SjoinCounters::new();
        j.add_comparisons(11);
        j.add_containment_tests(4);
        j.add_pairs(2);
        assert_eq!(
            j.snapshot(),
            SjoinStats {
                comparisons: 11,
                containment_tests: 4,
                pairs: 2,
            }
        );
    }

    #[test]
    fn query_cells_accumulate() {
        let cells = QueryCounterCells::new();
        let stats = QueryStats {
            total_ns: 100,
            parse_ns: 10,
            plan_ns: 20,
            exec_ns: 60,
            result_nodes: 4,
            ..QueryStats::default()
        };
        cells.record_query(&stats, true);
        cells.record_query(&stats, false);
        cells.record_failure();
        cells.record_edit(false);
        cells.record_edit(true);
        cells.record_edit_failure();
        cells.record_compaction();
        let s = cells.snapshot();
        assert_eq!(s.queries, 3);
        assert_eq!(s.failures, 1);
        assert_eq!(s.traced, 1);
        assert_eq!(s.total_ns, 200);
        assert_eq!(s.result_nodes, 8);
        assert_eq!(s.edits, 2);
        assert_eq!(s.edit_failures, 1);
        assert_eq!(s.replayed_edits, 1);
        assert_eq!(s.compactions, 1);
        assert!(stats.stage_ns() <= stats.total_ns);
    }

    #[test]
    fn cache_outcome_labels_are_stable() {
        assert_eq!(CacheOutcome::Hit.label(), "hit");
        assert_eq!(CacheOutcome::Maintained.label(), "maintained");
        assert_eq!(CacheOutcome::Computed.label(), "computed");
        assert_eq!(CacheOutcome::Bypassed.label(), "bypassed");
    }
}
