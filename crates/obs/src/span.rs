//! Nesting stage timers: [`Span`], [`QueryTrace`], [`TraceBuilder`].

/// One timed stage of a query, with nested child stages.
///
/// `meta` carries small labelled facts about the stage (cache provenance,
/// chosen brackets); `counters` carries operator counts. Both preserve
/// insertion order, which the exporters keep.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Span {
    /// Stage name (`parse`, `plan`, `exec`, `guide-expansion`, …).
    pub name: String,
    /// Offset of the stage start from the trace origin, in nanoseconds.
    pub start_ns: u64,
    /// Stage duration in nanoseconds (zero without the `timing` feature).
    pub duration_ns: u64,
    /// Labelled facts (`cache=hit`, `arena=[5,9)`), in insertion order.
    pub meta: Vec<(String, String)>,
    /// Operator counts (`axis.range_scans=3`), in insertion order.
    pub counters: Vec<(String, u64)>,
    /// Nested child stages, in start order.
    pub children: Vec<Span>,
}

impl Span {
    /// A fresh span with the given name and no timing information.
    pub fn named(name: impl Into<String>) -> Self {
        Span {
            name: name.into(),
            ..Span::default()
        }
    }

    /// Sum of the direct children's durations — by construction never
    /// more than this span's own duration (children nest inside it).
    pub fn child_duration_ns(&self) -> u64 {
        self.children.iter().map(|c| c.duration_ns).sum()
    }

    /// Looks up a counter by exact key.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
    }

    /// Looks up a meta value by exact key.
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Depth-first search for the first descendant (or self) named `name`.
    pub fn find(&self, name: &str) -> Option<&Span> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// The stable span vocabulary: every stage name the engine may emit.
///
/// Exporters, dashboards and the `vh-vet` `span-vocab` lint treat this
/// list as the contract between `vh-query` (which opens spans) and
/// `vh-obs` (which renders them). Renaming a stage or adding a new one
/// means extending this list in the same change — DESIGN.md §10 keys its
/// span-tree documentation off these names.
pub const STABLE_SPAN_NAMES: &[&str] = &[
    "query",
    "parse",
    "plan",
    "view",
    "document",
    "guide-expansion",
    "level-map",
    "prefix-tables",
    "type-index",
    "exec",
    "arena-range-selection",
    "apply",
    "recover",
    "compact",
];

/// Is `name` part of the stable span vocabulary?
pub fn is_stable_span_name(name: &str) -> bool {
    STABLE_SPAN_NAMES.contains(&name)
}

/// A completed per-query span tree.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryTrace {
    /// The query-level root span; stages hang off it.
    pub root: Span,
}

/// The monotonic clock behind span durations. With the `timing` feature
/// off it always reads zero, keeping traces deterministic.
#[derive(Clone, Copy, Debug)]
struct Clock {
    #[cfg(feature = "timing")]
    origin: std::time::Instant,
}

impl Clock {
    fn start() -> Self {
        Clock {
            #[cfg(feature = "timing")]
            origin: std::time::Instant::now(),
        }
    }

    fn now_ns(&self) -> u64 {
        #[cfg(feature = "timing")]
        {
            // Saturate instead of truncating: u64 nanoseconds cover ~584
            // years, far past any query, but the cast must not wrap.
            u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
        }
        #[cfg(not(feature = "timing"))]
        {
            0
        }
    }
}

/// Internal state of an *enabled* builder: the stack of open spans
/// (`stack[0]` is the query root) plus the clock origin.
#[derive(Debug)]
struct Live {
    clock: Clock,
    stack: Vec<Span>,
}

/// Builds a [`QueryTrace`] incrementally as the engine walks the stages.
///
/// Every method is a single branch on the enabled flag: a disabled
/// builder allocates nothing and never reads the clock, which is what
/// makes trace collection zero-cost for untraced queries.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    live: Option<Live>,
}

impl TraceBuilder {
    /// An enabled builder whose root span is open from this instant.
    pub fn enabled(root_name: &str) -> Self {
        let clock = Clock::start();
        let mut root = Span::named(root_name);
        root.start_ns = clock.now_ns();
        TraceBuilder {
            live: Some(Live {
                clock,
                stack: vec![root],
            }),
        }
    }

    /// A disabled builder: every method is a no-op, [`Self::finish`]
    /// returns `None`.
    pub fn disabled() -> Self {
        TraceBuilder { live: None }
    }

    /// Whether this builder records anything.
    pub fn is_enabled(&self) -> bool {
        self.live.is_some()
    }

    /// Opens a child stage of the currently open span.
    pub fn begin(&mut self, name: &str) {
        if let Some(live) = &mut self.live {
            let mut s = Span::named(name);
            s.start_ns = live.clock.now_ns();
            live.stack.push(s);
        }
    }

    /// Closes the innermost open stage, stamping its duration. The root
    /// span can only be closed by [`Self::finish`].
    pub fn end(&mut self) {
        if let Some(live) = &mut self.live {
            if live.stack.len() > 1 {
                // Invariant: len > 1, so pop and last_mut both succeed.
                if let (Some(mut done), now) = (live.stack.pop(), live.clock.now_ns()) {
                    done.duration_ns = now.saturating_sub(done.start_ns);
                    if let Some(parent) = live.stack.last_mut() {
                        parent.children.push(done);
                    }
                }
            }
        }
    }

    /// Attaches a labelled fact to the innermost open span.
    pub fn meta(&mut self, key: &str, value: impl Into<String>) {
        if let Some(live) = &mut self.live {
            if let Some(top) = live.stack.last_mut() {
                top.meta.push((key.to_owned(), value.into()));
            }
        }
    }

    /// Adds `n` to a counter on the innermost open span, creating it on
    /// first use.
    pub fn count(&mut self, key: &str, n: u64) {
        if let Some(live) = &mut self.live {
            if let Some(top) = live.stack.last_mut() {
                match top.counters.iter_mut().find(|(k, _)| k == key) {
                    Some((_, v)) => *v += n,
                    None => top.counters.push((key.to_owned(), n)),
                }
            }
        }
    }

    /// Attaches a fully-built child span to the innermost open span —
    /// used for synthetic (untimed) detail records like axis ranges.
    pub fn child(&mut self, span: Span) {
        if let Some(live) = &mut self.live {
            if let Some(top) = live.stack.last_mut() {
                top.children.push(span);
            }
        }
    }

    /// Closes every open stage (innermost first), stamps the root
    /// duration and returns the finished trace; `None` when disabled.
    pub fn finish(mut self) -> Option<QueryTrace> {
        let live = self.live.take()?;
        let now = live.clock.now_ns();
        let mut stack = live.stack;
        while stack.len() > 1 {
            // Invariant: len > 1 — mirror of `end`, closing dangling spans.
            if let Some(mut done) = stack.pop() {
                done.duration_ns = now.saturating_sub(done.start_ns);
                if let Some(parent) = stack.last_mut() {
                    parent.children.push(done);
                }
            }
        }
        let mut root = stack.pop()?;
        root.duration_ns = now.saturating_sub(root.start_ns);
        Some(QueryTrace { root })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_vocabulary_is_well_formed() {
        for (i, name) in STABLE_SPAN_NAMES.iter().enumerate() {
            assert!(!name.is_empty());
            assert!(
                name.bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-'),
                "span name `{name}` is not lowercase-kebab"
            );
            assert!(
                !STABLE_SPAN_NAMES[..i].contains(name),
                "duplicate span name `{name}`"
            );
            assert!(is_stable_span_name(name));
        }
        assert!(!is_stable_span_name("made-up-stage"));
    }

    #[test]
    fn disabled_builder_records_nothing() {
        let mut t = TraceBuilder::disabled();
        assert!(!t.is_enabled());
        t.begin("parse");
        t.meta("k", "v");
        t.count("n", 3);
        t.end();
        assert!(t.finish().is_none());
    }

    #[test]
    fn spans_nest_and_accumulate() {
        let mut t = TraceBuilder::enabled("query");
        assert!(t.is_enabled());
        t.meta("kind", "flwr");
        t.begin("parse");
        t.end();
        t.begin("exec");
        t.count("axis.range_scans", 2);
        t.count("axis.range_scans", 3);
        t.child(Span::named("arena-range-selection"));
        t.end();
        let trace = t.finish().unwrap();
        assert_eq!(trace.root.name, "query");
        assert_eq!(trace.root.meta_value("kind"), Some("flwr"));
        let names: Vec<&str> = trace
            .root
            .children
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(names, ["parse", "exec"]);
        let exec = trace.root.find("exec").unwrap();
        assert_eq!(exec.counter("axis.range_scans"), Some(5));
        assert_eq!(exec.children[0].name, "arena-range-selection");
    }

    #[test]
    fn dangling_spans_are_closed_by_finish() {
        let mut t = TraceBuilder::enabled("query");
        t.begin("plan");
        t.begin("guide-expansion");
        let trace = t.finish().unwrap();
        let plan = &trace.root.children[0];
        assert_eq!(plan.name, "plan");
        assert_eq!(plan.children[0].name, "guide-expansion");
    }

    #[test]
    fn child_durations_never_exceed_parent() {
        let mut t = TraceBuilder::enabled("query");
        for _ in 0..4 {
            t.begin("stage");
            t.end();
        }
        let trace = t.finish().unwrap();
        assert!(trace.root.child_duration_ns() <= trace.root.duration_ns);
    }

    #[test]
    fn end_on_root_is_a_guarded_noop() {
        let mut t = TraceBuilder::enabled("query");
        t.end(); // must not pop the root
        t.begin("parse");
        t.end();
        let trace = t.finish().unwrap();
        assert_eq!(trace.root.children.len(), 1);
    }
}
