//! Hand-rolled JSON codec for [`QueryTrace`] — no external dependencies.
//!
//! The schema is fixed: every span serializes as
//! `{"name": s, "start_ns": n, "duration_ns": n, "meta": {…},
//! "counters": {…}, "children": […]}` with all six keys always present,
//! which keeps the recursive-descent parser small and the output
//! deterministic for golden tests. `meta`/`counters` objects preserve
//! insertion order in both directions.

use crate::span::{QueryTrace, Span};
use std::fmt;

/// A JSON parse failure: what was expected and the byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the mismatch.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace JSON error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

// ----- writer -----------------------------------------------------------

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_span(out: &mut String, s: &Span) {
    out.push_str("{\"name\":");
    push_escaped(out, &s.name);
    out.push_str(&format!(
        ",\"start_ns\":{},\"duration_ns\":{},\"meta\":{{",
        s.start_ns, s.duration_ns
    ));
    for (i, (k, v)) in s.meta.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_escaped(out, k);
        out.push(':');
        push_escaped(out, v);
    }
    out.push_str("},\"counters\":{");
    for (i, (k, v)) in s.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_escaped(out, k);
        out.push_str(&format!(":{v}"));
    }
    out.push_str("},\"children\":[");
    for (i, c) in s.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_span(out, c);
    }
    out.push_str("]}");
}

// ----- parser -----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Traces never emit surrogate pairs (the writer
                            // only \u-escapes control characters), so a lone
                            // surrogate is simply rejected.
                            out.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar (input is a &str, so
                    // slicing on char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, JsonError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("number out of range"))
    }

    /// Parses `{"k": v, …}` with `v` produced by `value`.
    fn pairs<T>(
        &mut self,
        mut value: impl FnMut(&mut Self) -> Result<T, JsonError>,
    ) -> Result<Vec<(String, T)>, JsonError> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            let k = self.string()?;
            self.expect(b':')?;
            out.push((k, value(self)?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn key(&mut self, expected: &str) -> Result<(), JsonError> {
        let k = self.string()?;
        if k != expected {
            return Err(self.err(format!("expected key \"{expected}\", got \"{k}\"")));
        }
        self.expect(b':')
    }

    fn span(&mut self) -> Result<Span, JsonError> {
        self.expect(b'{')?;
        self.key("name")?;
        let name = self.string()?;
        self.expect(b',')?;
        self.key("start_ns")?;
        let start_ns = self.number()?;
        self.expect(b',')?;
        self.key("duration_ns")?;
        let duration_ns = self.number()?;
        self.expect(b',')?;
        self.key("meta")?;
        let meta = self.pairs(Self::string)?;
        self.expect(b',')?;
        self.key("counters")?;
        let counters = self.pairs(Self::number)?;
        self.expect(b',')?;
        self.key("children")?;
        self.expect(b'[')?;
        let mut children = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
        } else {
            loop {
                children.push(self.span()?);
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(self.err("expected ',' or ']'")),
                }
            }
        }
        self.expect(b'}')?;
        Ok(Span {
            name,
            start_ns,
            duration_ns,
            meta,
            counters,
            children,
        })
    }
}

impl QueryTrace {
    /// Serializes the trace as a single-line JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        write_span(&mut out, &self.root);
        out
    }

    /// Parses a trace produced by [`Self::to_json`].
    pub fn from_json(input: &str) -> Result<QueryTrace, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let root = p.span()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after trace"));
        }
        Ok(QueryTrace { root })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryTrace {
        let mut exec = Span::named("exec");
        exec.start_ns = 40;
        exec.duration_ns = 50;
        exec.counters = vec![("axis.range_scans".into(), 3), ("twig.seeks".into(), 0)];
        let mut range = Span::named("arena-range-selection");
        range.meta = vec![
            ("context".into(), "/title".into()),
            ("arena".into(), "[5,9)".into()),
        ];
        exec.children.push(range);
        let mut root = Span::named("query");
        root.duration_ns = 100;
        root.meta = vec![("kind".into(), "flwr".into())];
        root.children = vec![
            Span {
                name: "parse".into(),
                start_ns: 1,
                duration_ns: 9,
                ..Span::default()
            },
            exec,
        ];
        QueryTrace { root }
    }

    #[test]
    fn round_trips_exactly() {
        let t = sample();
        let json = t.to_json();
        let back = QueryTrace::from_json(&json).unwrap();
        assert_eq!(back, t);
        // And the serialization is a fixed point.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn golden_serialization() {
        // Deterministic golden: any schema change must be deliberate,
        // because external tooling parses this format.
        let got = sample().to_json();
        let want = concat!(
            "{\"name\":\"query\",\"start_ns\":0,\"duration_ns\":100,",
            "\"meta\":{\"kind\":\"flwr\"},\"counters\":{},\"children\":[",
            "{\"name\":\"parse\",\"start_ns\":1,\"duration_ns\":9,",
            "\"meta\":{},\"counters\":{},\"children\":[]},",
            "{\"name\":\"exec\",\"start_ns\":40,\"duration_ns\":50,",
            "\"meta\":{},\"counters\":{\"axis.range_scans\":3,\"twig.seeks\":0},",
            "\"children\":[{\"name\":\"arena-range-selection\",",
            "\"start_ns\":0,\"duration_ns\":0,",
            "\"meta\":{\"context\":\"/title\",\"arena\":\"[5,9)\"},",
            "\"counters\":{},\"children\":[]}]}]}"
        );
        assert_eq!(got, want);
    }

    #[test]
    fn escapes_round_trip() {
        let mut root = Span::named("q\"uo\\te\n\ttab");
        root.meta = vec![("k".into(), "line1\nline2 \u{1}".into())];
        let t = QueryTrace { root };
        assert_eq!(QueryTrace::from_json(&t.to_json()).unwrap(), t);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"name\":\"q\"}",
            "{\"nome\":\"q\",\"start_ns\":0,\"duration_ns\":0,\"meta\":{},\"counters\":{},\"children\":[]}",
            "{\"name\":\"q\",\"start_ns\":-1,\"duration_ns\":0,\"meta\":{},\"counters\":{},\"children\":[]}",
        ] {
            assert!(QueryTrace::from_json(bad).is_err(), "accepted {bad:?}");
        }
        let good = sample().to_json();
        assert!(QueryTrace::from_json(&format!("{good} x")).is_err());
    }
}
