#![forbid(unsafe_code)]

//! Observability for the virtual-hierarchy query stack.
//!
//! The paper's central claim is a *cost* claim — evaluating queries over
//! virtual hierarchies is "modest" versus materialize-then-renumber — and
//! this crate is how the serving path substantiates it per query instead
//! of only in offline benchmarks. It provides:
//!
//! - [`TraceBuilder`] / [`Span`] / [`QueryTrace`] — a nesting stage timer
//!   over the monotonic clock, assembled by the engine into a per-query
//!   span tree (parse → plan → exec, with per-view cache provenance and
//!   per-axis range selections as children);
//! - counter families ([`AxisCounters`], [`TwigCounters`],
//!   [`SjoinCounters`], [`QueryCounterCells`]) — relaxed atomics so the
//!   instrumented hot paths stay shareable across threads, snapshotted
//!   into plain structs for reporting;
//! - [`QueryStats`] — the per-query roll-up returned in every
//!   `QueryOutcome`, cheap enough to fill even with tracing off;
//! - exporters: a human-readable tree ([`QueryTrace::render_text`]), a
//!   hand-rolled JSON codec ([`QueryTrace::to_json`] /
//!   [`QueryTrace::from_json`] — no external deps), and a
//!   Prometheus-text writer ([`PromWriter`]) for cumulative engine
//!   counters.
//!
//! # Zero cost when disabled
//!
//! Every [`TraceBuilder`] method is a single branch on an enabled flag
//! decided once per query; with tracing off no span is allocated and no
//! clock is read beyond the handful of stage timestamps that feed
//! [`QueryStats`]. The `obs/` bench rows gate the disabled-mode overhead
//! at ≤ 2%.
//!
//! The `timing` feature (default on) selects the monotonic clock; without
//! it durations are all zero but span structure, counters and exporters
//! behave identically, so `--no-default-features` builds stay meaningful.

#![warn(missing_docs)]

pub mod counters;
pub mod json;
pub mod prom;
pub mod span;
pub mod text;

pub use counters::{
    AxisCounters, AxisStats, CacheOutcome, QueryCounterCells, QueryCounters, QueryStats,
    RangeChoice, SjoinCounters, SjoinStats, TwigCounters, TwigStats, ViewProvenance,
};
pub use json::JsonError;
pub use prom::PromWriter;
pub use span::{is_stable_span_name, QueryTrace, Span, TraceBuilder, STABLE_SPAN_NAMES};
