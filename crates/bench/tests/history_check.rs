//! End-to-end checks of the `bench_history` binary against the committed
//! fixture histories: a synthetic >10% drift on a gated row must fail the
//! check (exit 1), a flat trajectory across machine-speed swings must
//! pass, and `append` must extend a history from real `BENCH_*.json`
//! reports.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn bench_history(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bench_history"))
        .args(args)
        .output()
        .expect("spawn bench_history")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vh_bench_history_it_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn gated_drift_in_the_fixture_history_fails_the_check() {
    let dir = scratch("drift");
    let json_path = dir.join("trend.json");
    let md_path = dir.join("trend.md");
    let out = bench_history(&[
        "report",
        fixture("BENCH_history_drift.jsonl").to_str().unwrap(),
        "--json",
        json_path.to_str().unwrap(),
        "--markdown",
        md_path.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(1),
        "a >10% gated drift must exit 1; stdout:\n{stdout}"
    );
    assert!(stdout.contains("DRIFT (gated)"), "stdout:\n{stdout}");
    assert!(stdout.contains("1 gated drift(s)"), "stdout:\n{stdout}");
    // The ungated row also moved but only reports.
    assert!(stdout.contains("scaling/axes/t4"), "stdout:\n{stdout}");

    // Both report artifacts were written and carry the drifting row.
    let json = std::fs::read_to_string(&json_path).expect("trend.json written");
    assert!(json.contains("\"drifting\": true"));
    assert!(json.contains("\"noise_floor_ns\""));
    let md = std::fs::read_to_string(&md_path).expect("trend.md written");
    assert!(md.contains("| --- |"), "markdown table shape:\n{md}");
    assert!(md.contains("drift (gated)"), "markdown verdict:\n{md}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flat_history_passes_across_machine_speed_swings() {
    // The flat fixture's calibration swings 1000 -> 3000 -> 1000 ns while
    // normalized medians stay within 3%: machine speed, not a drift.
    let out = bench_history(&[
        "report",
        fixture("BENCH_history_flat.jsonl").to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(stdout.contains("0 gated drift(s)"), "stdout:\n{stdout}");
}

#[test]
fn drift_below_the_window_is_ignored() {
    // With --window 2 only the last two fixture records are compared
    // (0.108 -> 0.118, a 9.3% move): under the 10% threshold, passes.
    let out = bench_history(&[
        "report",
        fixture("BENCH_history_drift.jsonl").to_str().unwrap(),
        "--window",
        "2",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
}

#[test]
fn append_normalizes_reports_into_the_history() {
    let dir = scratch("append");
    let reports = dir.join("reports");
    std::fs::create_dir_all(&reports).unwrap();
    std::fs::write(
        reports.join("BENCH_axes.json"),
        r#"{
  "experiment": "axes",
  "config": {},
  "rows": [
    { "id": "meta/calibration", "median_ns_per_op": 2000, "ops_per_s": 500000 },
    { "id": "axes/axis/descendant-range/t1", "median_ns_per_op": 100, "ops_per_s": 10000000 }
  ]
}
"#,
    )
    .unwrap();
    let history = dir.join("BENCH_history.jsonl");
    for commit in ["c1", "c2"] {
        let out = bench_history(&[
            "append",
            reports.to_str().unwrap(),
            history.to_str().unwrap(),
            "--commit",
            commit,
            "--timestamp",
            "1723000000",
        ]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "append {commit}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let text = std::fs::read_to_string(&history).unwrap();
    assert_eq!(text.lines().count(), 2, "one JSONL record per append");
    assert!(text.contains("\"commit\":\"c1\""));
    assert!(text.contains("\"commit\":\"c2\""));
    // 100 ns over a 2000 ns calibration: normalized 0.05.
    assert!(text.contains("\"normalized\":0.05"), "history:\n{text}");

    // The appended history reports cleanly (flat by construction).
    let out = bench_history(&["report", history.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_calibration_report_is_a_hard_error() {
    let dir = scratch("nocal");
    let reports = dir.join("reports");
    std::fs::create_dir_all(&reports).unwrap();
    std::fs::write(
        reports.join("BENCH_axes.json"),
        r#"{ "experiment": "axes", "config": {}, "rows": [
  { "id": "axes/axis/x", "median_ns_per_op": 10, "ops_per_s": 100000000 } ] }
"#,
    )
    .unwrap();
    let out = bench_history(&[
        "append",
        reports.to_str().unwrap(),
        dir.join("h.jsonl").to_str().unwrap(),
        "--commit",
        "c1",
    ]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "unnormalizable run must not record"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("calibration"));
    std::fs::remove_dir_all(&dir).ok();
}
