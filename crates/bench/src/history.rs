//! Per-commit performance trajectory (`BENCH_history.jsonl`).
//!
//! The bench gate (`gate.rs`) compares one run against one committed
//! baseline — it sees a single PR at a time, so a slow leak of 3% per PR
//! passes every gate and still costs 30% over ten PRs. The history layer
//! closes that hole: every CI run appends one **record** per commit to a
//! JSONL artifact, each record carrying every `BENCH_*.json` row
//! **machine-normalized** by the run's `meta/calibration` spin-row (see
//! [`crate::json::CALIBRATION_ROW`]). Normalized medians are comparable
//! across runners of different speeds, so the trajectory is a property of
//! the code, not of runner roulette.
//!
//! Record shape (one line of JSONL):
//!
//! ```json
//! {"commit":"abc1234","timestamp":"1723000000","calibration_ns":1000.0,
//!  "rows":[{"id":"axes:axes/axis/self/pbn/t1","median_ns_per_op":4.1,
//!           "normalized":0.0041}]}
//! ```
//!
//! Row ids are namespaced `<experiment>:<row-id>` because the same row id
//! (the calibration row above all) appears in several reports. The trend
//! pass ([`analyze`]) walks the last `window` records per row and flags a
//! **drift**: normalized median moved more than `drift` (default 10%)
//! between the oldest and newest sample in the window **and** the move
//! denormalizes to more than [`NOISE_FLOOR_NS`] on the newest machine —
//! the same absolute floor the gate applies, so single-digit-ns jitter
//! doesn't page anyone. Only rows under the gate prefixes fail the check;
//! everything else is reported informationally.

use crate::gate::NOISE_FLOOR_NS;
use crate::json::{BenchReport, Json, CALIBRATION_ROW};
use crate::report::Table;
use std::path::Path;

/// Default trend window: drift is measured across the last N records.
pub const DEFAULT_WINDOW: usize = 10;

/// Default drift threshold (10%) across the window.
pub const DEFAULT_DRIFT: f64 = 0.10;

/// One normalized measurement inside a [`HistoryRecord`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRow {
    /// Namespaced id: `<experiment>:<row-id>`.
    pub id: String,
    /// Raw median ns/op as measured on the recording machine.
    pub median_ns_per_op: f64,
    /// `median_ns_per_op / calibration_ns` — the machine-free form the
    /// trend compares across commits.
    pub normalized: f64,
}

/// One commit's worth of normalized bench rows.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRecord {
    /// Git commit id (or any stable run label).
    pub commit: String,
    /// Opaque timestamp string (unix seconds in CI; never interpreted).
    pub timestamp: String,
    /// The run's `meta/calibration` median — the normalization divisor.
    pub calibration_ns: f64,
    /// Every report row of the run, namespaced and normalized.
    pub rows: Vec<HistoryRow>,
}

impl HistoryRecord {
    /// Builds one record from all reports of a run. Fails when no report
    /// carries a positive [`CALIBRATION_ROW`] — an unnormalized record
    /// would poison every later trend comparison.
    pub fn from_reports(
        commit: impl Into<String>,
        timestamp: impl Into<String>,
        reports: &[BenchReport],
    ) -> Result<HistoryRecord, String> {
        let calibration_ns = reports
            .iter()
            .find_map(|r| r.row(CALIBRATION_ROW))
            .map(|r| r.median_ns_per_op)
            .filter(|&ns| ns > 0.0)
            .ok_or("no report carries a positive meta/calibration row")?;
        let mut rows = Vec::new();
        for report in reports {
            for row in &report.rows {
                rows.push(HistoryRow {
                    id: format!("{}:{}", report.experiment, row.id),
                    median_ns_per_op: row.median_ns_per_op,
                    normalized: row.median_ns_per_op / calibration_ns,
                });
            }
        }
        Ok(HistoryRecord {
            commit: commit.into(),
            timestamp: timestamp.into(),
            calibration_ns,
            rows,
        })
    }

    /// Converts to the JSON object shape.
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("id".to_string(), Json::Str(r.id.clone())),
                    (
                        "median_ns_per_op".to_string(),
                        Json::Num(r.median_ns_per_op),
                    ),
                    ("normalized".to_string(), Json::Num(r.normalized)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("commit".to_string(), Json::Str(self.commit.clone())),
            ("timestamp".to_string(), Json::Str(self.timestamp.clone())),
            ("calibration_ns".to_string(), Json::Num(self.calibration_ns)),
            ("rows".to_string(), Json::Arr(rows)),
        ])
    }

    /// Reconstructs a record from parsed JSON.
    pub fn from_json(value: &Json) -> Result<HistoryRecord, String> {
        let commit = value
            .get("commit")
            .and_then(Json::as_str)
            .ok_or("record is missing 'commit'")?
            .to_string();
        let timestamp = value
            .get("timestamp")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let calibration_ns = value
            .get("calibration_ns")
            .and_then(Json::as_num)
            .ok_or("record is missing 'calibration_ns'")?;
        let mut rows = Vec::new();
        for row in value.get("rows").and_then(Json::as_arr).unwrap_or(&[]) {
            let id = row
                .get("id")
                .and_then(Json::as_str)
                .ok_or("history row is missing 'id'")?
                .to_string();
            let median = row
                .get("median_ns_per_op")
                .and_then(Json::as_num)
                .ok_or_else(|| format!("history row '{id}' is missing 'median_ns_per_op'"))?;
            let normalized = row
                .get("normalized")
                .and_then(Json::as_num)
                .ok_or_else(|| format!("history row '{id}' is missing 'normalized'"))?;
            rows.push(HistoryRow {
                id,
                median_ns_per_op: median,
                normalized,
            });
        }
        Ok(HistoryRecord {
            commit,
            timestamp,
            calibration_ns,
            rows,
        })
    }

    /// Appends this record as one JSONL line (file created if missing).
    pub fn append_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        if !text.is_empty() && !text.ends_with('\n') {
            text.push('\n');
        }
        text.push_str(&self.to_json().render_compact());
        text.push('\n');
        std::fs::write(path, text)
    }
}

/// Reads a full JSONL history file, oldest record first. Blank lines are
/// skipped; a malformed line is an error (a silently dropped record would
/// shift every later drift window).
pub fn read_history(path: &Path) -> Result<Vec<HistoryRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_history(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Parses JSONL text into records (see [`read_history`]).
pub fn parse_history(text: &str) -> Result<Vec<HistoryRecord>, String> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        records.push(HistoryRecord::from_json(&value).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(records)
}

/// One row's trajectory across the analysis window.
#[derive(Debug, Clone, PartialEq)]
pub struct Trend {
    /// Namespaced row id (`<experiment>:<row-id>`).
    pub id: String,
    /// Normalized median at the oldest record in the window carrying
    /// this row.
    pub first_normalized: f64,
    /// Normalized median at the newest record carrying this row.
    pub last_normalized: f64,
    /// `last / first` — the drift ratio across the window.
    pub ratio: f64,
    /// The drift denormalized to ns on the **newest** machine, so the
    /// absolute noise floor means the same thing it means in the gate.
    pub delta_ns: f64,
    /// Number of window records carrying this row.
    pub samples: usize,
    /// True when the row is under a gated prefix (only these fail).
    pub gated: bool,
    /// True when the drift exceeds the threshold and the noise floor.
    pub drifting: bool,
}

impl Trend {
    /// True when this trend fails the history check.
    pub fn fails(&self) -> bool {
        self.gated && self.drifting
    }
}

/// Walks the last `window` records and computes one [`Trend`] per row id,
/// in first-seen order. A row drifts when `last/first > 1 + drift` and
/// the denormalized move clears [`NOISE_FLOOR_NS`]. Rows need at least
/// two samples to trend; the calibration rows (`…:meta/calibration`) are
/// excluded — they *are* the normalization, their raw swing is machine
/// speed by definition.
pub fn analyze(
    history: &[HistoryRecord],
    window: usize,
    drift: f64,
    gate_prefixes: &[&str],
) -> Vec<Trend> {
    let tail = &history[history.len().saturating_sub(window.max(2))..];
    let mut order: Vec<String> = Vec::new();
    for rec in tail {
        for row in &rec.rows {
            if row.id.ends_with(&format!(":{CALIBRATION_ROW}")) {
                continue;
            }
            if !order.contains(&row.id) {
                order.push(row.id.clone());
            }
        }
    }
    let mut trends = Vec::new();
    for id in &order {
        let samples: Vec<(&HistoryRecord, &HistoryRow)> = tail
            .iter()
            .flat_map(|rec| {
                rec.rows
                    .iter()
                    .filter(|r| &r.id == id)
                    .map(move |r| (rec, r))
            })
            .collect();
        let (Some(&(_, first)), Some(&(last_rec, last))) = (samples.first(), samples.last()) else {
            continue;
        };
        let ratio = if first.normalized > 0.0 {
            last.normalized / first.normalized
        } else if last.normalized > 0.0 {
            f64::INFINITY
        } else {
            1.0
        };
        let delta_ns = (last.normalized - first.normalized) * last_rec.calibration_ns;
        // The row id carries its experiment namespace; gate prefixes are
        // written against the raw row id, so match after the colon.
        let raw_id = id.split_once(':').map_or(id.as_str(), |(_, r)| r);
        let gated = gate_prefixes.iter().any(|p| raw_id.starts_with(p));
        let drifting = samples.len() >= 2 && ratio > 1.0 + drift && delta_ns > NOISE_FLOOR_NS;
        trends.push(Trend {
            id: id.clone(),
            first_normalized: first.normalized,
            last_normalized: last.normalized,
            ratio,
            delta_ns,
            samples: samples.len(),
            gated,
            drifting,
        });
    }
    trends
}

/// Renders the trend report as an aligned text table (stdout form).
pub fn render_text(trends: &[Trend], window: usize, drift: f64) -> String {
    let mut t = Table::new(
        format!(
            "bench history trend (window {window}, drift >{:.0}%)",
            drift * 100.0
        ),
        &[
            "row",
            "norm first",
            "norm last",
            "ratio",
            "delta_ns",
            "n",
            "verdict",
        ],
    );
    for tr in trends {
        t.row(&[
            tr.id.clone(),
            format!("{:.6}", tr.first_normalized),
            format!("{:.6}", tr.last_normalized),
            format!("x{:.3}", tr.ratio),
            format!("{:+.1}", tr.delta_ns),
            tr.samples.to_string(),
            match (tr.drifting, tr.gated) {
                (false, _) => "ok".to_string(),
                (true, true) => "DRIFT (gated)".to_string(),
                (true, false) => "drift (ungated)".to_string(),
            },
        ]);
    }
    t.render()
}

/// Renders the trend report as a markdown table for `$GITHUB_STEP_SUMMARY`.
pub fn render_markdown(trends: &[Trend], window: usize, drift: f64) -> String {
    let mut t = Table::new(
        format!(
            "Bench history trend — window {window}, drift >{:.0}%",
            drift * 100.0
        ),
        &[
            "row",
            "norm first",
            "norm last",
            "ratio",
            "delta ns",
            "samples",
            "verdict",
        ],
    );
    for tr in trends {
        t.row(&[
            format!("`{}`", tr.id),
            format!("{:.6}", tr.first_normalized),
            format!("{:.6}", tr.last_normalized),
            format!("x{:.3}", tr.ratio),
            format!("{:+.1}", tr.delta_ns),
            tr.samples.to_string(),
            match (tr.drifting, tr.gated) {
                (false, _) => "ok".to_string(),
                (true, true) => "🔴 drift (gated)".to_string(),
                (true, false) => "🟡 drift (ungated)".to_string(),
            },
        ]);
    }
    t.render_markdown()
}

/// Renders the trend report as a JSON document (artifact form).
pub fn render_json(trends: &[Trend], window: usize, drift: f64) -> Json {
    let rows = trends
        .iter()
        .map(|tr| {
            Json::Obj(vec![
                ("id".to_string(), Json::Str(tr.id.clone())),
                (
                    "first_normalized".to_string(),
                    Json::Num(tr.first_normalized),
                ),
                ("last_normalized".to_string(), Json::Num(tr.last_normalized)),
                ("ratio".to_string(), Json::Num(tr.ratio)),
                ("delta_ns".to_string(), Json::Num(tr.delta_ns)),
                ("samples".to_string(), Json::Num(tr.samples as f64)),
                ("gated".to_string(), Json::Bool(tr.gated)),
                ("drifting".to_string(), Json::Bool(tr.drifting)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("window".to_string(), Json::Num(window as f64)),
        ("drift_threshold".to_string(), Json::Num(drift)),
        ("noise_floor_ns".to_string(), Json::Num(NOISE_FLOOR_NS)),
        ("trends".to_string(), Json::Arr(rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::BenchRow;

    fn report(exp: &str, rows: &[(&str, f64)]) -> BenchReport {
        let mut r = BenchReport::new(exp);
        for (id, ns) in rows {
            r.push(BenchRow::new(*id, *ns));
        }
        r
    }

    fn record(commit: &str, cal: f64, rows: &[(&str, f64)]) -> HistoryRecord {
        let mut all = vec![(CALIBRATION_ROW, cal)];
        all.extend_from_slice(rows);
        HistoryRecord::from_reports(commit, "0", &[report("axes", &all)]).unwrap()
    }

    #[test]
    fn records_normalize_by_the_calibration_row() {
        let rec = record("c1", 1000.0, &[("axes/axis/self/pbn/t1", 50.0)]);
        assert_eq!(rec.calibration_ns, 1000.0);
        let row = rec
            .rows
            .iter()
            .find(|r| r.id == "axes:axes/axis/self/pbn/t1")
            .unwrap();
        assert!((row.normalized - 0.05).abs() < 1e-12);
    }

    #[test]
    fn missing_calibration_is_an_error() {
        let err = HistoryRecord::from_reports("c", "0", &[report("axes", &[("axes/a", 1.0)])]);
        assert!(err.is_err());
    }

    #[test]
    fn records_round_trip_through_jsonl() {
        let a = record("c1", 1000.0, &[("axes/axis/self/pbn/t1", 50.0)]);
        let b = record("c2", 2000.0, &[("axes/axis/self/pbn/t1", 100.0)]);
        let text = format!(
            "{}\n{}\n",
            a.to_json().render_compact(),
            b.to_json().render_compact()
        );
        let back = parse_history(&text).unwrap();
        assert_eq!(back, vec![a, b]);
    }

    #[test]
    fn append_creates_and_extends_the_file() {
        let dir = std::env::temp_dir().join("vh_bench_history_test");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("BENCH_history.jsonl");
        let a = record("c1", 1000.0, &[("axes/axis/self/pbn/t1", 50.0)]);
        let b = record("c2", 1000.0, &[("axes/axis/self/pbn/t1", 51.0)]);
        a.append_to(&path).unwrap();
        b.append_to(&path).unwrap();
        let back = read_history(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].commit, "c1");
        assert_eq!(back[1].commit, "c2");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flat_history_has_no_drift() {
        let hist: Vec<HistoryRecord> = (0..5)
            .map(|i| record(&format!("c{i}"), 1000.0, &[("axes/axis/self/pbn/t1", 50.0)]))
            .collect();
        let trends = analyze(&hist, DEFAULT_WINDOW, DEFAULT_DRIFT, &["axes/axis/"]);
        assert_eq!(trends.len(), 1);
        assert!(!trends[0].drifting);
        assert!(!trends[0].fails());
    }

    #[test]
    fn machine_speed_swings_do_not_drift() {
        // The machine got 2x slower (calibration and row move together):
        // normalized medians are flat, no drift.
        let hist = vec![
            record("c1", 1000.0, &[("axes/axis/self/pbn/t1", 50.0)]),
            record("c2", 2000.0, &[("axes/axis/self/pbn/t1", 100.0)]),
        ];
        let trends = analyze(&hist, DEFAULT_WINDOW, DEFAULT_DRIFT, &["axes/axis/"]);
        assert!((trends[0].ratio - 1.0).abs() < 1e-9);
        assert!(!trends[0].drifting);
    }

    #[test]
    fn gated_drift_fails_ungated_drift_reports() {
        let hist = vec![
            record("c1", 1000.0, &[("axes/axis/x", 50.0), ("scaling/x", 50.0)]),
            record("c2", 1000.0, &[("axes/axis/x", 60.0), ("scaling/x", 60.0)]),
        ];
        let trends = analyze(&hist, DEFAULT_WINDOW, DEFAULT_DRIFT, &["axes/axis/"]);
        let gated = trends
            .iter()
            .find(|t| t.id.contains("axes/axis/x"))
            .unwrap();
        let ungated = trends.iter().find(|t| t.id.contains("scaling/x")).unwrap();
        assert!(gated.drifting && gated.fails());
        assert!(ungated.drifting && !ungated.fails());
    }

    #[test]
    fn sub_floor_drift_is_jitter_not_drift() {
        // 1.5 -> 2.5 ns is a 1.67x ratio but a 1 ns move: under the floor.
        let hist = vec![
            record("c1", 1000.0, &[("axes/axis/x", 1.5)]),
            record("c2", 1000.0, &[("axes/axis/x", 2.5)]),
        ];
        let trends = analyze(&hist, DEFAULT_WINDOW, DEFAULT_DRIFT, &["axes/axis/"]);
        assert!(!trends[0].drifting);
    }

    #[test]
    fn drift_is_measured_inside_the_window_only() {
        // Old regression outside the window, flat since: no drift.
        let mut hist = vec![record("old", 1000.0, &[("axes/axis/x", 50.0)])];
        for i in 0..DEFAULT_WINDOW {
            hist.push(record(&format!("c{i}"), 1000.0, &[("axes/axis/x", 70.0)]));
        }
        let trends = analyze(&hist, DEFAULT_WINDOW, DEFAULT_DRIFT, &["axes/axis/"]);
        assert!(!trends[0].drifting, "regression predates the window");
    }

    #[test]
    fn single_sample_rows_never_drift() {
        let hist = vec![record("c1", 1000.0, &[("axes/axis/x", 50.0)])];
        let trends = analyze(&hist, DEFAULT_WINDOW, DEFAULT_DRIFT, &["axes/axis/"]);
        assert_eq!(trends[0].samples, 1);
        assert!(!trends[0].drifting);
    }

    #[test]
    fn calibration_rows_are_excluded_from_trends() {
        let hist = vec![
            record("c1", 1000.0, &[("axes/axis/x", 50.0)]),
            record("c2", 4000.0, &[("axes/axis/x", 200.0)]),
        ];
        let trends = analyze(&hist, DEFAULT_WINDOW, DEFAULT_DRIFT, &["axes/axis/"]);
        assert!(trends.iter().all(|t| !t.id.contains("meta/calibration")));
    }

    #[test]
    fn reports_render_in_all_three_forms() {
        let hist = vec![
            record("c1", 1000.0, &[("axes/axis/x", 50.0)]),
            record("c2", 1000.0, &[("axes/axis/x", 60.0)]),
        ];
        let trends = analyze(&hist, DEFAULT_WINDOW, DEFAULT_DRIFT, &["axes/axis/"]);
        let text = render_text(&trends, DEFAULT_WINDOW, DEFAULT_DRIFT);
        assert!(text.contains("axes:axes/axis/x"));
        assert!(text.contains("DRIFT (gated)"));
        let md = render_markdown(&trends, DEFAULT_WINDOW, DEFAULT_DRIFT);
        assert!(md.contains("| --- |"));
        assert!(md.contains("drift (gated)"));
        let json = render_json(&trends, DEFAULT_WINDOW, DEFAULT_DRIFT);
        assert_eq!(
            json.get("noise_floor_ns").and_then(Json::as_num),
            Some(NOISE_FLOOR_NS)
        );
        let first = &json.get("trends").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(first.get("drifting"), Some(&Json::Bool(true)));
    }
}
