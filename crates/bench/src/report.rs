//! Plain-text table rendering for experiment output.
//!
//! Experiments print machine-grep-friendly aligned tables; EXPERIMENTS.md
//! embeds them verbatim.

/// A simple column-aligned table.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str("## ");
        out.push_str(&self.title);
        out.push('\n');
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>w$}", c, w = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Renders as a GitHub-flavored markdown table (pipe syntax) — the
    /// form `$GITHUB_STEP_SUMMARY` accepts, so the bench-history CI job
    /// can surface the trend without artifact downloads.
    pub fn render_markdown(&self) -> String {
        let escape = |c: &str| c.replace('|', "\\|");
        let mut out = String::new();
        out.push_str("### ");
        out.push_str(&self.title);
        out.push_str("\n\n| ");
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(" | "),
        );
        out.push_str(" |\n|");
        out.push_str(&" --- |".repeat(self.headers.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(
                &row.iter()
                    .map(|c| escape(c))
                    .collect::<Vec<_>>()
                    .join(" | "),
            );
            out.push_str(" |\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["n", "time_us"]);
        t.row(&["10".into(), "1.5".into()]);
        t.row(&["10000".into(), "1500.25".into()]);
        let s = t.render();
        assert!(s.starts_with("## demo\n"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // All data lines have equal width.
        assert_eq!(lines[3].len(), lines[4].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn renders_markdown_with_escaped_pipes() {
        let mut t = Table::new("trend", &["row", "drift"]);
        t.row(&["axes/axis|odd".into(), "x1.12".into()]);
        let md = t.render_markdown();
        assert!(md.starts_with("### trend\n"));
        assert!(md.contains("| row | drift |"));
        assert!(md.contains("| --- | --- |"));
        assert!(md.contains("axes/axis\\|odd"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_enforced() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
