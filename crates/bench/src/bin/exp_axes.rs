//! **F2 — axis-predicate latency: PBN vs vPBN.** The core claim of §5:
//! every location relationship is decided by comparing numbers, and the
//! level array adds only a bounded constant factor.
//!
//! Method: (x, y) node pairs of two types from the books corpus are
//! checked with (a) the physical predicates on raw PBN numbers and (b) the
//! virtual predicates on vPBN numbers under Sam's transformation. vPBN
//! references (number + per-type level array + virtual type) are resolved
//! once outside the timed loop, exactly as a query processor would hold
//! them in its operators. The cross product is capped at [`PAIR_CAP`]
//! pairs via a deterministic stride so large corpora stay in memory.
//! Reported time is nanoseconds per check.
//!
//! The check loop runs through `vh_core::exec::par_count`, the same
//! partition/merge primitive the query operators use, so `--threads N`
//! measures the real parallel axis-filter path (`--scaling 1,2,4,8`
//! sweeps additional thread counts as ungated rows). `--json <dir>`
//! writes `BENCH_axes.json` for the CI bench gate; `axes/axis/…` rows are
//! gated, `scaling/…` and `cache/…` rows are informational.

use std::time::Instant;
use vh_bench::json::{BenchReport, BenchRow, CALIBRATION_ROW};
use vh_bench::opts::BenchOpts;
use vh_bench::report::Table;
use vh_bench::timing::{calibration_ns, median_ns_per_call};
use vh_core::exec::{self, ExecOptions};
use vh_core::vpbn::VPbnRef;
use vh_core::{axes as vax, VirtualDocument};
use vh_dataguide::TypedDocument;
use vh_pbn::{axes as pax, Pbn};
use vh_query::Engine;
use vh_workload::{generate_books, BooksConfig};

/// Upper bound on materialized (x, y) pairs; beyond it a deterministic
/// stride subsamples the cross product (same pairs on every run).
const PAIR_CAP: usize = 1_000_000;

/// Timing repetitions per measurement; the median is reported. Each
/// repetition is calibrated to last at least [`MIN_REP`] (see
/// `vh_bench::timing::median_ns_per_call`) so the sub-5ns checks are
/// not swamped by scheduler noise on shared cores.
const REPS: usize = 9;

/// Minimum wall time of one timed repetition.
const MIN_REP: std::time::Duration = std::time::Duration::from_millis(2);

const SPEC: &str = "title { author { name } }";

fn main() {
    let opts = BenchOpts::from_env();
    let books = opts.books(40, 150, 400);
    let cfg = BooksConfig {
        books,
        max_authors: 3,
        ..BooksConfig::default()
    };
    let td = TypedDocument::analyze(generate_books("books.xml", &cfg));
    let vd = VirtualDocument::open(&td, SPEC).unwrap();

    let title_vt = vd.vdg().guide().lookup_path(&["title"]).unwrap();
    let name_vt = vd
        .vdg()
        .guide()
        .lookup_path(&["title", "author", "name"])
        .unwrap();
    let titles = vd.nodes_of_vtype(title_vt).to_vec();
    let names = vd.nodes_of_vtype(name_vt).to_vec();

    // Deterministic stride over the flattened cross product: pair k is
    // (titles[k / names], names[k % names]), so every run of a given
    // corpus measures exactly the same pairs.
    let total = titles.len() * names.len();
    let stride = total.div_ceil(PAIR_CAP).max(1);
    let pbn = td.pbn();
    let vdr = &vd;
    let phys_pairs: Vec<(&Pbn, &Pbn)> = (0..total)
        .step_by(stride)
        .map(|k| {
            (
                pbn.pbn_of(titles[k / names.len()]),
                pbn.pbn_of(names[k % names.len()]),
            )
        })
        .collect();
    let virt_pairs: Vec<(VPbnRef<'_>, VPbnRef<'_>)> = (0..total)
        .step_by(stride)
        .map(|k| {
            (
                vdr.vpbn_of(titles[k / names.len()]).unwrap(),
                vdr.vpbn_of(names[k % names.len()]).unwrap(),
            )
        })
        .collect();
    println!(
        "corpus: {} books, {} titles x {} names = {} pairs (stride {}, {} measured)\n",
        books,
        titles.len(),
        names.len(),
        total,
        stride,
        phys_pairs.len()
    );

    let mut report = BenchReport::new("axes");
    report.config("books", books);
    report.config("pairs", phys_pairs.len());
    report.config("profile", opts.profile.name());
    report.config("threads", opts.threads);

    let mut t = Table::new(
        "F2: per-check latency (ns), physical PBN vs virtual vPBN",
        &[
            "axis",
            "threads",
            "pbn_ns",
            "vpbn_ns",
            "overhead_x",
            "pbn_hits",
            "vpbn_hits",
        ],
    );

    let vdg = vd.vdg();
    for threads in opts.thread_set() {
        let ex = ExecOptions::with_threads(threads);
        let gated = threads == opts.threads;
        macro_rules! measure {
            ($name:expr, $phys:expr, $virt:expr) => {{
                let name = $name;
                let (p_ns, p_hits) = time_count(&ex, &phys_pairs, |(a, b)| $phys(a, b));
                let (v_ns, v_hits) = time_count(&ex, &virt_pairs, |(a, b)| $virt(a, b));
                t.row(&[
                    name.to_string(),
                    threads.to_string(),
                    format!("{p_ns:.1}"),
                    format!("{v_ns:.1}"),
                    format!("{:.2}", v_ns / p_ns.max(0.001)),
                    p_hits.to_string(),
                    v_hits.to_string(),
                ]);
                // Gated rows keep the stable `axes/axis/…` prefix; scaling
                // sweeps are informational and must never fail the gate.
                let prefix = if gated {
                    format!("axes/axis/{name}")
                } else {
                    format!("scaling/axes/{name}")
                };
                report.push(
                    BenchRow::new(format!("{prefix}/pbn/t{threads}"), p_ns)
                        .with("threads", threads as f64)
                        .with("hits", p_hits as f64),
                );
                report.push(
                    BenchRow::new(format!("{prefix}/vpbn/t{threads}"), v_ns)
                        .with("threads", threads as f64)
                        .with("hits", v_hits as f64),
                );
            }};
        }

        measure!("self", pax::is_self, |a, b| vax::v_self(vdg, a, b));
        measure!("ancestor", pax::is_ancestor, |a, b| vax::v_ancestor(
            vdg, a, b
        ));
        measure!("parent", pax::is_parent, |a, b| vax::v_parent(vdg, a, b));
        measure!("descendant", |a, b| pax::is_descendant(b, a), |a, b| {
            vax::v_descendant(vdg, b, a)
        });
        measure!("child", |a, b| pax::is_child(b, a), |a, b| vax::v_child(
            vdg, b, a
        ));
        measure!(
            "descendant-or-self",
            |a, b| pax::is_descendant_or_self(b, a),
            |a, b| vax::v_descendant_or_self(vdg, b, a)
        );
        measure!("preceding", pax::is_preceding, |a, b| vax::v_preceding(
            vdg, a, b
        ));
        measure!("following", pax::is_following, |a, b| vax::v_following(
            vdg, a, b
        ));
        measure!("preceding-sibling", pax::is_preceding_sibling, |a, b| {
            vax::v_preceding_sibling(vdg, a, b)
        });
        measure!("following-sibling", pax::is_following_sibling, |a, b| {
            vax::v_following_sibling(vdg, a, b)
        });
    }
    t.print();
    println!(
        "note: the physical and virtual predicates answer different questions\n\
         (original vs transformed hierarchy) — hit counts differ by design;\n\
         the claim under test is the per-check cost ratio.\n"
    );

    axis_scan_demo(&opts, &td, &mut report);

    cache_demo(&opts, &cfg, &mut report);

    // Machine-speed reference: lets the gate cancel host-contention
    // swings between this run and the committed baseline.
    report.push(BenchRow::new(CALIBRATION_ROW, calibration_ns()));

    if let Some(dir) = &opts.json_dir {
        match report.write_to(dir) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: writing report: {e}");
                std::process::exit(3);
            }
        }
    }
}

/// Times `par_count` over `pairs` with calibrated repetitions, returning
/// the median nanoseconds per check and the (repetition-stable) hit
/// count.
fn time_count<T: Sync>(
    ex: &ExecOptions,
    pairs: &[T],
    pred: impl Fn(&T) -> bool + Sync,
) -> (f64, usize) {
    let (hits, ns_per_scan) = median_ns_per_call(REPS, MIN_REP, || {
        exec::par_count(ex, pairs, |p| std::hint::black_box(pred(p)))
    });
    (ns_per_scan / pairs.len().max(1) as f64, hits)
}

/// Arena range-scan axis *evaluation* vs the O(N) predicate oracle:
/// `descendants_of_type` resolves the context's related prefix once and
/// binary-searches the byte-range of the type index, while the `_filter`
/// oracle runs the §5 predicate over every node of the target type. Rows
/// `axes/axis/descendant-range/…` are gated at the configured thread
/// count; `oracle/…` and `scaling/…` rows are informational.
fn axis_scan_demo(opts: &BenchOpts, td: &TypedDocument, report: &mut BenchReport) {
    let mut t = Table::new(
        "F2b: descendant axis evaluation (ns/context) — arena range scan vs predicate scan",
        &["threads", "contexts", "range_ns", "filter_ns", "speedup_x"],
    );
    for threads in opts.thread_set() {
        let mut vd = VirtualDocument::open(td, SPEC).unwrap();
        vd.set_exec(ExecOptions::with_threads(threads));
        vd.build_prefix_tables();
        let title_vt = vd.vdg().guide().lookup_path(&["title"]).unwrap();
        let name_vt = vd
            .vdg()
            .guide()
            .lookup_path(&["title", "author", "name"])
            .unwrap();
        let contexts = vd.nodes_of_vtype(title_vt).to_vec();
        let per_ctx = |ns: f64| ns / contexts.len().max(1) as f64;
        let (range_hits, range_ns) = median_ns_per_call(REPS, MIN_REP, || {
            contexts
                .iter()
                .map(|&x| vd.descendants_of_type(x, name_vt).len())
                .sum::<usize>()
        });
        let (filter_hits, filter_ns) = median_ns_per_call(REPS, MIN_REP, || {
            contexts
                .iter()
                .map(|&x| vd.descendants_of_type_filter(x, name_vt).len())
                .sum::<usize>()
        });
        assert_eq!(range_hits, filter_hits, "range scan matches the oracle");
        t.row(&[
            threads.to_string(),
            contexts.len().to_string(),
            format!("{:.0}", per_ctx(range_ns)),
            format!("{:.0}", per_ctx(filter_ns)),
            format!("{:.1}", filter_ns / range_ns.max(0.001)),
        ]);
        let prefix = if threads == opts.threads {
            "axes/axis/descendant-range".to_string()
        } else {
            "scaling/axes/descendant-range".to_string()
        };
        report.push(
            BenchRow::new(format!("{prefix}/t{threads}"), per_ctx(range_ns))
                .with("threads", threads as f64)
                .with("hits", range_hits as f64),
        );
        report.push(
            BenchRow::new(
                format!("oracle/axes/descendant-filter/t{threads}"),
                per_ctx(filter_ns),
            )
            .with("threads", threads as f64)
            .with("hits", filter_hits as f64),
        );
    }
    t.print();
}

/// Cold vs warm compiled-view open through the engine cache: the warm
/// open reuses the cached vDataGuide expansion, level-array map and
/// prefix tables. Rows are `cache/…` — informational, never gated.
fn cache_demo(opts: &BenchOpts, cfg: &BooksConfig, report: &mut BenchReport) {
    let mut engine = Engine::new();
    engine.set_exec_options(opts.exec());
    engine.register(generate_books("books.xml", cfg));

    let open_ns = || {
        let start = Instant::now();
        let vd = engine.virtual_doc("books.xml", SPEC).unwrap();
        std::hint::black_box(vd.visible_nodes());
        start.elapsed().as_secs_f64() * 1e9
    };
    let cold = open_ns();
    let warm = open_ns();
    let stats = engine.snapshot().cache;

    let mut t = Table::new(
        "cache: compiled-view open, cold vs warm",
        &["open", "ns", "hits", "misses"],
    );
    t.row(&[
        "cold".into(),
        format!("{cold:.0}"),
        "0".into(),
        stats.total_misses().to_string(),
    ]);
    t.row(&[
        "warm".into(),
        format!("{warm:.0}"),
        stats.total_hits().to_string(),
        stats.total_misses().to_string(),
    ]);
    t.print();
    if opts.cache {
        println!(
            "speedup: warm open is {:.1}x faster than cold (cache on)",
            cold / warm.max(1.0)
        );
    } else {
        println!("cache off: both opens recompile the view");
    }
    report.push(BenchRow::new("cache/open/cold", cold).with("misses", stats.total_misses() as f64));
    report.push(BenchRow::new("cache/open/warm", warm).with("hits", stats.total_hits() as f64));
}
