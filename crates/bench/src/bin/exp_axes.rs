//! **F2 — axis-predicate latency: PBN vs vPBN.** The core claim of §5:
//! every location relationship is decided by comparing numbers, and the
//! level array adds only a bounded constant factor.
//!
//! Method: all (x, y) node pairs of two types from the books corpus are
//! checked with (a) the physical predicates on raw PBN numbers and (b) the
//! virtual predicates on vPBN numbers under Sam's transformation. vPBN
//! references (number + per-type level array + virtual type) are resolved
//! once outside the timed loop, exactly as a query processor would hold
//! them in its operators. Reported time is nanoseconds per check.

use std::time::Instant;
use vh_bench::report::Table;
use vh_core::vpbn::VPbnRef;
use vh_core::{axes as vax, VirtualDocument};
use vh_dataguide::TypedDocument;
use vh_pbn::{axes as pax, Pbn};
use vh_workload::{generate_books, BooksConfig};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let books = if full { 400 } else { 150 };
    let td = TypedDocument::analyze(generate_books(
        "books.xml",
        &BooksConfig {
            books,
            max_authors: 3,
            ..BooksConfig::default()
        },
    ));
    let vd = VirtualDocument::open(&td, "title { author { name } }").unwrap();

    let title_vt = vd.vdg().guide().lookup_path(&["title"]).unwrap();
    let name_vt = vd
        .vdg()
        .guide()
        .lookup_path(&["title", "author", "name"])
        .unwrap();
    let titles = vd.nodes_of_vtype(title_vt).to_vec();
    let names = vd.nodes_of_vtype(name_vt).to_vec();

    // Precomputed physical numbers and vPBN references for every pair.
    let pbn = td.pbn();
    let vdr = &vd;
    let phys_pairs: Vec<(&Pbn, &Pbn)> = titles
        .iter()
        .flat_map(|&t| names.iter().map(move |&n| (pbn.pbn_of(t), pbn.pbn_of(n))))
        .collect();
    let virt_pairs: Vec<(VPbnRef<'_>, VPbnRef<'_>)> = titles
        .iter()
        .flat_map(|&t| {
            names
                .iter()
                .map(move |&n| (vdr.vpbn_of(t).unwrap(), vdr.vpbn_of(n).unwrap()))
        })
        .collect();
    println!(
        "corpus: {} books, {} titles x {} names = {} pairs\n",
        books,
        titles.len(),
        names.len(),
        phys_pairs.len()
    );

    let mut t = Table::new(
        "F2: per-check latency (ns), physical PBN vs virtual vPBN",
        &[
            "axis",
            "pbn_ns",
            "vpbn_ns",
            "overhead_x",
            "pbn_hits",
            "vpbn_hits",
        ],
    );

    let vdg = vd.vdg();
    macro_rules! measure {
        ($name:expr, $phys:expr, $virt:expr) => {{
            let (p_ns, p_hits) = time_phys(&phys_pairs, $phys);
            let (v_ns, v_hits) = time_virt(&virt_pairs, $virt);
            t.row(&[
                $name.to_string(),
                format!("{p_ns:.1}"),
                format!("{v_ns:.1}"),
                format!("{:.2}", v_ns / p_ns.max(0.001)),
                p_hits.to_string(),
                v_hits.to_string(),
            ]);
        }};
    }

    measure!("self", pax::is_self, |a, b| vax::v_self(vdg, a, b));
    measure!("ancestor", pax::is_ancestor, |a, b| vax::v_ancestor(
        vdg, a, b
    ));
    measure!("parent", pax::is_parent, |a, b| vax::v_parent(vdg, a, b));
    measure!("descendant", |a, b| pax::is_descendant(b, a), |a, b| {
        vax::v_descendant(vdg, b, a)
    });
    measure!("child", |a, b| pax::is_child(b, a), |a, b| vax::v_child(
        vdg, b, a
    ));
    measure!(
        "descendant-or-self",
        |a, b| pax::is_descendant_or_self(b, a),
        |a, b| vax::v_descendant_or_self(vdg, b, a)
    );
    measure!("preceding", pax::is_preceding, |a, b| vax::v_preceding(
        vdg, a, b
    ));
    measure!("following", pax::is_following, |a, b| vax::v_following(
        vdg, a, b
    ));
    measure!("preceding-sibling", pax::is_preceding_sibling, |a, b| {
        vax::v_preceding_sibling(vdg, a, b)
    });
    measure!("following-sibling", pax::is_following_sibling, |a, b| {
        vax::v_following_sibling(vdg, a, b)
    });
    t.print();
    println!(
        "note: the physical and virtual predicates answer different questions\n\
         (original vs transformed hierarchy) — hit counts differ by design;\n\
         the claim under test is the per-check cost ratio."
    );
}

const REPS: usize = 5;

fn time_phys(pairs: &[(&Pbn, &Pbn)], f: impl Fn(&Pbn, &Pbn) -> bool) -> (f64, usize) {
    let mut hits = 0usize;
    let start = Instant::now();
    for _ in 0..REPS {
        hits = 0;
        for (a, b) in pairs {
            if std::hint::black_box(f(a, b)) {
                hits += 1;
            }
        }
    }
    let ns = start.elapsed().as_secs_f64() * 1e9 / (REPS * pairs.len()) as f64;
    (ns, hits)
}

fn time_virt(
    pairs: &[(VPbnRef<'_>, VPbnRef<'_>)],
    f: impl Fn(&VPbnRef<'_>, &VPbnRef<'_>) -> bool,
) -> (f64, usize) {
    let mut hits = 0usize;
    let start = Instant::now();
    for _ in 0..REPS {
        hits = 0;
        for (a, b) in pairs {
            if std::hint::black_box(f(a, b)) {
                hits += 1;
            }
        }
    }
    let ns = start.elapsed().as_secs_f64() * 1e9 / (REPS * pairs.len()) as f64;
    (ns, hits)
}
