//! **OBS — observability overhead.** The tentpole claim of the tracing
//! layer: collection is zero-cost when *disabled* — every hook is one
//! branch on an `Option` that untraced queries leave `None`.
//!
//! Method: one realistic FLWR query over the virtual books view runs
//! three ways:
//!
//! * **bare** — the same pipeline `Engine::run` executes (parse →
//!   warm-cache view open → FLWR evaluation) called directly, with no
//!   observability plumbing at all: the honest no-obs baseline.
//! * **untraced** — `Engine::run` with tracing off: the default every
//!   `eval*` wrapper takes. The *disabled-mode overhead* is
//!   untraced/bare, and the binary enforces the ≤2% budget
//!   ([`OVERHEAD_BUDGET`]) itself: up to [`ATTEMPTS`] measurement
//!   rounds keep the minimum observed ratio, so a noisy shared runner
//!   gets retries while a structural regression (new work on the
//!   untraced path) keeps failing and exits nonzero.
//! * **traced** — `Engine::run` with the full span tree, axis counters
//!   and cache provenance. Reported so the cost of *enabling* tracing
//!   stays visible (it buys a complete EXPLAIN and is priced in ×,
//!   not gated at 2%).
//!
//! Medians land in `BENCH_obs.json`; the `obs/run/…` rows are gated
//! against the committed baseline like every other hot path.

use vh_bench::json::{BenchReport, BenchRow, CALIBRATION_ROW};
use vh_bench::opts::BenchOpts;
use vh_bench::report::Table;
use vh_bench::timing::{calibration_ns, median_ns_per_call};
use vh_query::api::{Engine, Limits, QueryDoc, QueryRequest, VirtualDoc};
use vh_query::flwr::eval::{eval_flwr_multi_limited, DocSet};
use vh_query::flwr::parse::parse_flwr;
use vh_workload::{generate_books, BooksConfig};

/// Timing repetitions per measurement; the median is reported.
const REPS: usize = 9;

/// Minimum wall time of one timed repetition.
const MIN_REP: std::time::Duration = std::time::Duration::from_millis(2);

/// Hard ceiling on the untraced/bare median ratio (≤2% overhead).
const OVERHEAD_BUDGET: f64 = 1.02;

/// Measurement rounds before a ratio above budget becomes a failure.
const ATTEMPTS: usize = 3;

const SPEC: &str = "title { author { name } }";

const QUERY: &str = r#"for $t in virtualDoc("books.xml", "title { author { name } }")//title
   return <r>{count($t/author)}</r>"#;

fn main() {
    let opts = BenchOpts::from_env();
    let books = opts.books(60, 250, 600);
    let cfg = BooksConfig {
        books,
        max_authors: 3,
        ..BooksConfig::default()
    };
    let mut engine = Engine::new();
    engine.set_exec_options(opts.exec());
    engine.register(generate_books("books.xml", &cfg));

    let untraced = QueryRequest::flwr(QUERY);
    let traced = QueryRequest::flwr(QUERY).with_trace(true);

    // Warm the compiled-view cache so every mode measures steady state.
    let warm = engine.run(&traced).unwrap();
    let nodes = warm.stats.result_nodes;
    println!(
        "corpus: {books} books; query returns {nodes} nodes, touches {} view(s)\n",
        warm.stats.views.len()
    );

    // The no-obs baseline: identical stages, zero plumbing. The parsed
    // query is NOT reused across calls — `Engine::run` parses per call,
    // so the bare pipeline must too.
    let bare = || {
        let q = parse_flwr(QUERY).unwrap();
        let vd = engine.virtual_doc("books.xml", SPEC).unwrap();
        let vdoc = VirtualDoc::new(&vd);
        let entries: Vec<(String, Option<String>, &dyn QueryDoc)> = vec![(
            "books.xml".to_owned(),
            Some(SPEC.to_owned()),
            &vdoc as &dyn QueryDoc,
        )];
        let out = eval_flwr_multi_limited(&q, &DocSet::new(entries), Limits::default()).unwrap();
        out.root().map_or(0, |r| out.children(r).len())
    };

    let mut report = BenchReport::new("obs");
    report.config("books", books);
    report.config("profile", opts.profile.name());
    report.config("threads", opts.threads);

    let mut t = Table::new(
        "OBS: ns/query — bare pipeline vs Engine::run (trace off / on)",
        &[
            "attempt",
            "bare_ns",
            "untraced_ns",
            "disabled_x",
            "traced_ns",
            "traced_x",
        ],
    );
    let mut best = f64::INFINITY;
    let (mut best_bare, mut best_untraced, mut best_traced, mut best_traced_x) =
        (0.0, 0.0, 0.0, 0.0);
    for attempt in 1..=ATTEMPTS {
        let (bare_nodes, bare_ns) = median_ns_per_call(REPS, MIN_REP, bare);
        let (u_nodes, untraced_ns) = median_ns_per_call(REPS, MIN_REP, || {
            engine.run(&untraced).unwrap().stats.result_nodes
        });
        let (t_nodes, traced_ns) = median_ns_per_call(REPS, MIN_REP, || {
            engine.run(&traced).unwrap().stats.result_nodes
        });
        assert_eq!(
            bare_nodes as u64, u_nodes,
            "plumbing must not change results"
        );
        assert_eq!(u_nodes, t_nodes, "tracing must not change results");
        let disabled_x = untraced_ns / bare_ns.max(1.0);
        let traced_x = traced_ns / untraced_ns.max(1.0);
        t.row(&[
            attempt.to_string(),
            format!("{bare_ns:.0}"),
            format!("{untraced_ns:.0}"),
            format!("{disabled_x:.4}"),
            format!("{traced_ns:.0}"),
            format!("{traced_x:.2}"),
        ]);
        if disabled_x < best {
            best = disabled_x;
            best_bare = bare_ns;
            best_untraced = untraced_ns;
            best_traced = traced_ns;
            best_traced_x = traced_x;
        }
        if best <= OVERHEAD_BUDGET {
            break;
        }
    }
    t.print();

    report.push(BenchRow::new("obs/run/bare", best_bare).with("result_nodes", nodes as f64));
    report.push(
        BenchRow::new("obs/run/untraced", best_untraced)
            .with("result_nodes", nodes as f64)
            .with("disabled_overhead_x", best),
    );
    report.push(
        BenchRow::new("obs/run/traced", best_traced)
            .with("result_nodes", nodes as f64)
            .with("traced_overhead_x", best_traced_x),
    );
    report.push(BenchRow::new(CALIBRATION_ROW, calibration_ns()));

    if let Some(dir) = &opts.json_dir {
        match report.write_to(dir) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: writing report: {e}");
                std::process::exit(3);
            }
        }
    }

    if best > OVERHEAD_BUDGET {
        eprintln!(
            "error: disabled-mode overhead {best:.4}x exceeds the {OVERHEAD_BUDGET}x budget \
             after {ATTEMPTS} attempts"
        );
        std::process::exit(1);
    }
    println!(
        "overhead: untraced Engine::run is {best:.4}x the bare pipeline \
         (budget {OVERHEAD_BUDGET}x); tracing on costs {best_traced_x:.2}x untraced"
    );
}
