//! **F5 — virtual value computation.** §6: the transformed value of a node
//! is assembled by stitching stored byte ranges for identity regions and
//! constructing tags only where the hierarchy was reshaped. The baseline
//! is element-by-element construction — what a rewritten view query
//! (Figure 5) effectively performs.

use std::time::Instant;
use vh_bench::report::Table;
use vh_core::value::{virtual_value, virtual_value_constructed};
use vh_core::VirtualDocument;
use vh_dataguide::TypedDocument;
use vh_storage::StoredDocument;
use vh_workload::{generate_books, BooksConfig};

const SPEC: &str = "title { author { name } }";

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let fanouts: &[usize] = if full {
        &[1, 5, 20, 50, 200]
    } else {
        &[1, 5, 20, 50]
    };

    let mut t = Table::new(
        "F5: virtual value assembly — stitching vs element-wise construction",
        &[
            "authors_per_book",
            "value_bytes",
            "raw_copies",
            "constructed",
            "stitch_us",
            "construct_us",
            "speedup_x",
        ],
    );
    for &f in fanouts {
        let cfg = BooksConfig {
            books: 100,
            max_authors: f,
            rare_fraction: 0.0,
            seed: 11,
        };
        let stored =
            StoredDocument::build(TypedDocument::analyze(generate_books("books.xml", &cfg)));
        let td = stored.typed();
        let vd = VirtualDocument::open(td, SPEC).unwrap();
        let roots = vd.roots();

        // One measured pass over every virtual root, both ways.
        let reps = 20;
        let start = Instant::now();
        let mut bytes = 0usize;
        let mut copies = 0usize;
        let mut constructed = 0usize;
        for _ in 0..reps {
            bytes = 0;
            copies = 0;
            constructed = 0;
            for &r in &roots {
                let (v, st) = virtual_value(&vd, &stored, r).expect("fault-free store");
                bytes += v.len();
                copies += st.raw_copies;
                constructed += st.constructed_elements;
            }
        }
        let stitch = start.elapsed().as_secs_f64() * 1e6 / reps as f64;

        let start = Instant::now();
        let mut bytes2 = 0usize;
        for _ in 0..reps {
            bytes2 = 0;
            for &r in &roots {
                bytes2 += virtual_value_constructed(&vd, &stored, r)
                    .expect("fault-free store")
                    .len();
            }
        }
        let construct = start.elapsed().as_secs_f64() * 1e6 / reps as f64;
        assert_eq!(bytes, bytes2, "both assemblies must produce equal output");

        t.row(&[
            f.to_string(),
            bytes.to_string(),
            copies.to_string(),
            constructed.to_string(),
            format!("{stitch:.1}"),
            format!("{construct:.1}"),
            format!("{:.2}", construct / stitch.max(0.001)),
        ]);
    }
    t.print();
    println!(
        "shape check: as the identity share of a value grows (more authors\n\
         per book => larger stitched name regions), speedup_x rises toward\n\
         the memcpy-vs-tree-walk gap."
    );
}
