//! **SRV — serve throughput and tail latency.** An in-process VHRPC
//! server on a loopback socket, hammered by 8 client threads replaying
//! seeded mixed point/twig/edit streams ([`vh_workload::serve`]).
//!
//! Two claims are enforced, not just measured:
//!
//! * **Zero loss under the default quota.** Every op in every stream
//!   must be *answered* — no dropped connections, no sheds. A shed
//!   under the default (effectively unlimited) quota, or any dropped
//!   connection, exits nonzero.
//! * **Shedding is deliberate.** A second phase points one client at a
//!   tenant with a four-token never-refilling bucket and requires the
//!   overflow to come back as the distinct `shed` wire status — not as
//!   a dropped connection, not as a generic error.
//!
//! The gated rows are `serve/qps` (median ns per answered op across
//! attempts; the sustained QPS rides along as a metric) and
//! `serve/p99` (p99 single-op wire latency). Up to [`ATTEMPTS`]
//! measurement rounds keep the best throughput, so a contended runner
//! gets retries while a real server regression keeps failing the gate.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use vh_bench::json::{BenchReport, BenchRow, CALIBRATION_ROW};
use vh_bench::opts::BenchOpts;
use vh_bench::report::Table;
use vh_bench::timing::calibration_ns;
use vh_serve::wire::WireStatus;
use vh_serve::{Client, ClientError, Registry, Server, ServerConfig, ServerHandle, TenantQuota};
use vh_workload::serve::{serve_engine, serve_ops, ServeMixConfig, ServeOp, SERVE_SPEC, SERVE_URI};

/// Client threads in the measured phase (the acceptance workload).
const CLIENTS: usize = 8;

/// Measurement rounds; the best-throughput round is reported.
const ATTEMPTS: usize = 3;

/// The tenant the measured phase drives.
const TENANT: &str = "acme";

/// One attempt's aggregate.
struct Attempt {
    qps: f64,
    ns_per_op: f64,
    p50_ns: f64,
    p99_ns: f64,
    ops: u64,
}

fn start_server(books: usize, quota: TenantQuota, workers: usize) -> ServerHandle {
    let mut registry = Registry::new();
    registry
        .add_tenant(TENANT, serve_engine(books, 42), quota)
        .unwrap_or_else(|e| panic!("tenant registers: {e:?}"));
    let config = ServerConfig {
        workers,
        poll_interval: Duration::from_millis(1),
        ..ServerConfig::default()
    };
    match Server::bind("127.0.0.1:0", registry, config).and_then(Server::start) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: server did not start: {e}");
            std::process::exit(3);
        }
    }
}

/// Replays one client's stream; returns per-op wire latencies (ns).
fn replay(
    addr: std::net::SocketAddr,
    ops: &[ServeOp],
) -> Result<Vec<u64>, (&'static str, ClientError)> {
    let mut client =
        Client::connect(addr, TENANT).map_err(|e| ("connect", ClientError::from(e)))?;
    let mut latencies = Vec::with_capacity(ops.len());
    for op in ops {
        let t0 = Instant::now();
        match op {
            ServeOp::Point { path } => {
                client.point(SERVE_URI, path).map_err(|e| ("point", e))?;
            }
            ServeOp::Twig { path } => {
                client
                    .twig(SERVE_URI, SERVE_SPEC, path)
                    .map_err(|e| ("twig", e))?;
            }
            ServeOp::Edit { edit } => {
                client.edit(edit).map_err(|e| ("edit", e))?;
            }
        }
        latencies.push(t0.elapsed().as_nanos() as u64);
    }
    Ok(latencies)
}

/// One measured round: fresh server, fresh corpus, 8 streams.
fn run_attempt(books: usize, ops_per_client: usize) -> Attempt {
    let handle = start_server(books, TenantQuota::default(), CLIENTS + 2);
    let addr = handle.local_addr();

    let t0 = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(CLIENTS * ops_per_client);
    std::thread::scope(|s| {
        let threads: Vec<_> = (0..CLIENTS)
            .map(|c| {
                s.spawn(move || {
                    let stream = serve_ops(&ServeMixConfig {
                        ops: ops_per_client,
                        seed: 1000 + c as u64,
                        ..ServeMixConfig::default()
                    });
                    replay(addr, &stream)
                })
            })
            .collect();
        for t in threads {
            match t.join().unwrap_or_else(|_| panic!("client panicked")) {
                Ok(ls) => latencies.extend(ls),
                Err((verb, e)) => {
                    eprintln!("error: {verb} failed under default quota: {e}");
                    std::process::exit(1);
                }
            }
        }
    });
    let wall = t0.elapsed();

    // The zero-loss claim: every op answered, nothing shed or dropped.
    let m = handle.metrics();
    let shed = m.shed_total();
    let dropped = m.dropped_connections_total.load(Ordering::Relaxed);
    let answered = latencies.len() as u64;
    handle.shutdown();
    if shed != 0 || dropped != 0 || answered != (CLIENTS * ops_per_client) as u64 {
        eprintln!(
            "error: lossy run under default quota: {answered}/{} answered, \
             {shed} shed, {dropped} dropped connections",
            CLIENTS * ops_per_client
        );
        std::process::exit(1);
    }

    latencies.sort_unstable();
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize] as f64;
    Attempt {
        qps: answered as f64 / wall.as_secs_f64(),
        ns_per_op: wall.as_nanos() as f64 / answered as f64,
        p50_ns: pct(0.50),
        p99_ns: pct(0.99),
        ops: answered,
    }
}

/// The deliberate-shedding phase: a four-token bucket that never
/// refills must shed the overflow with the `shed` status and keep the
/// connection alive.
fn verify_shedding(books: usize) {
    let handle = start_server(
        books,
        TenantQuota {
            burst: 4.0,
            per_sec: 0.0,
            max_concurrent: 64,
            edit_cost: 4.0,
        },
        2,
    );
    let mut client = match Client::connect(handle.local_addr(), TENANT) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: shed-phase connect: {e}");
            std::process::exit(1);
        }
    };
    let (mut ok, mut shed) = (0u64, 0u64);
    for _ in 0..20 {
        match client.point(SERVE_URI, "//title") {
            Ok(_) => ok += 1,
            Err(e) if e.status() == Some(WireStatus::Shed) => shed += 1,
            Err(e) => {
                eprintln!("error: overload answered {e}, want the shed status");
                std::process::exit(1);
            }
        }
    }
    let dropped = handle
        .metrics()
        .dropped_connections_total
        .load(Ordering::Relaxed);
    handle.shutdown();
    if ok != 4 || shed != 16 || dropped != 0 {
        eprintln!(
            "error: four-token bucket admitted {ok} and shed {shed} of 20 \
             ({dropped} dropped); want exactly 4/16/0"
        );
        std::process::exit(1);
    }
    println!("overload: 4-token bucket admitted {ok}, shed {shed} with the shed status, 0 dropped");
}

fn main() {
    let opts = BenchOpts::from_env();
    let books = opts.books(24, 64, 160);
    let ops_per_client = match opts.profile.name() {
        "quick" => 100,
        "full" => 500,
        _ => 250,
    };

    let mut report = BenchReport::new("serve");
    report.config("books", books);
    report.config("profile", opts.profile.name());
    report.config("clients", CLIENTS);
    report.config("ops_per_client", ops_per_client);

    let mut t = Table::new(
        "SRV: 8-client mixed point/twig/edit over loopback VHRPC",
        &["attempt", "ops", "qps", "ns_per_op", "p50_ns", "p99_ns"],
    );
    let mut best: Option<Attempt> = None;
    let mut best_p99 = f64::INFINITY;
    let mut best_p50 = f64::INFINITY;
    for attempt in 1..=ATTEMPTS {
        let a = run_attempt(books, ops_per_client);
        t.row(&[
            attempt.to_string(),
            a.ops.to_string(),
            format!("{:.0}", a.qps),
            format!("{:.0}", a.ns_per_op),
            format!("{:.0}", a.p50_ns),
            format!("{:.0}", a.p99_ns),
        ]);
        // Throughput and tail are kept best *independently*: the
        // highest-qps attempt is not always the one with the quietest
        // tail on a contended runner, and both rows are gated.
        best_p99 = best_p99.min(a.p99_ns);
        best_p50 = best_p50.min(a.p50_ns);
        if best.as_ref().is_none_or(|b| a.qps > b.qps) {
            best = Some(a);
        }
    }
    t.print();
    let best = best.unwrap_or_else(|| unreachable!("ATTEMPTS >= 1"));

    verify_shedding(books);

    report.push(
        BenchRow::new("serve/qps", best.ns_per_op)
            .with("qps", best.qps)
            .with("clients", CLIENTS as f64)
            .with("ops", best.ops as f64),
    );
    report.push(BenchRow::new("serve/p99", best_p99).with("p50_ns", best_p50));
    report.push(BenchRow::new(CALIBRATION_ROW, calibration_ns()));

    if let Some(dir) = &opts.json_dir {
        match report.write_to(dir) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: writing report: {e}");
                std::process::exit(3);
            }
        }
    }
    println!(
        "sustained: {:.0} qps across {CLIENTS} clients; p50 {:.0} ns, p99 {:.0} ns per op",
        best.qps, best_p50, best_p99
    );
}
