//! `bench_diff` — the CI benchmark-regression gate.
//!
//! Compares every `BENCH_*.json` in a baseline directory against the
//! matching report in a current-run directory:
//!
//! ```text
//! bench_diff <baseline-dir> <current-dir> [--threshold 0.15]
//!            [--gate-prefix axes/axis/]...
//! ```
//!
//! Rows are matched by id. A gated row (id starts with a `--gate-prefix`;
//! default `axes/axis/` and `twig/`) whose median ns/op regresses by more
//! than the threshold — or which disappears from the current run — fails
//! the gate (exit 1). Everything else is logged but passes. A baseline
//! file with no counterpart in the current directory fails iff it
//! contains gated rows. When both reports carry the `meta/calibration`
//! reference row, ratios are first normalized by the machine-speed
//! factor (see `vh_bench::gate::machine_factor`) so uniform
//! host-contention swings on shared runners don't fail every row at
//! once.
//!
//! Exit codes: 0 = pass, 1 = regression, 2 = usage, 3 = I/O or malformed
//! report.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use vh_bench::gate::{compare_reports, machine_factor, DEFAULT_GATE_PREFIXES, DEFAULT_THRESHOLD};
use vh_bench::json::BenchReport;

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err((msg, code)) => {
            eprintln!("bench_diff: {msg}");
            if code == 2 {
                eprintln!("{USAGE}");
            }
            ExitCode::from(code)
        }
    }
}

const USAGE: &str = "usage:
  bench_diff <baseline-dir> <current-dir> [--threshold 0.15]
             [--gate-prefix <id-prefix>]...

Compares BENCH_*.json reports; exits 1 when a gated row (default
prefixes: axes/axis/, twig/) regresses beyond the threshold or is
missing from the current run.";

fn run() -> Result<bool, (String, u8)> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut prefixes: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                let v = it
                    .next()
                    .ok_or(("--threshold: missing value".to_string(), 2))?;
                threshold = v
                    .parse()
                    .map_err(|_| (format!("--threshold: bad fraction '{v}'"), 2))?;
                if !(0.0..10.0).contains(&threshold) {
                    return Err((format!("--threshold: '{v}' out of range [0, 10)"), 2));
                }
            }
            "--gate-prefix" => {
                let v = it
                    .next()
                    .ok_or(("--gate-prefix: missing value".to_string(), 2))?;
                prefixes.push(v.clone());
            }
            other if other.starts_with("--") => {
                return Err((format!("unknown flag '{other}'"), 2));
            }
            dir => dirs.push(PathBuf::from(dir)),
        }
    }
    let [baseline_dir, current_dir] = dirs.as_slice() else {
        return Err((
            "expected exactly <baseline-dir> <current-dir>".to_string(),
            2,
        ));
    };
    let prefixes: Vec<&str> = if prefixes.is_empty() {
        DEFAULT_GATE_PREFIXES.to_vec()
    } else {
        prefixes.iter().map(String::as_str).collect()
    };

    let baseline_files = report_files(baseline_dir)?;
    if baseline_files.is_empty() {
        return Err((format!("no BENCH_*.json in {}", baseline_dir.display()), 3));
    }

    let mut failures = 0usize;
    let mut compared = 0usize;
    for path in &baseline_files {
        let baseline = BenchReport::read_from(path).map_err(|e| (e, 3))?;
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let current_path = current_dir.join(&name);
        // A missing current report gates exactly like a report whose rows
        // all vanished: only its gated rows count as failures.
        let current = if current_path.exists() {
            BenchReport::read_from(&current_path).map_err(|e| (e, 3))?
        } else {
            println!("{name}: missing from current run");
            BenchReport::new(baseline.experiment.clone())
        };
        let findings = compare_reports(&baseline, &current, threshold, &prefixes);
        println!(
            "== {name} ({} baseline rows, threshold {:.0}%)",
            baseline.rows.len(),
            threshold * 100.0
        );
        match machine_factor(&baseline, &current) {
            Some(f) => println!("  machine-speed factor x{f:.3} (ratios normalized by it)"),
            None => println!("  no calibration row on both sides: raw ratios"),
        }
        for f in &findings {
            println!("  {}", f.render());
        }
        failures += findings.iter().filter(|f| f.fails()).count();
        compared += findings.len();
    }
    println!(
        "bench gate: {compared} rows compared, {failures} gated failure(s), gated prefixes {prefixes:?}"
    );
    Ok(failures == 0)
}

/// All `BENCH_*.json` files in `dir`, sorted by name for stable output.
fn report_files(dir: &Path) -> Result<Vec<PathBuf>, (String, u8)> {
    let entries = std::fs::read_dir(dir).map_err(|e| (format!("{}: {e}", dir.display()), 3))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    Ok(files)
}
