//! `bench_diff` — the CI benchmark-regression gate.
//!
//! Compares every `BENCH_*.json` in a baseline directory against the
//! matching report in a current-run directory:
//!
//! ```text
//! bench_diff <baseline-dir> <current-dir> [--threshold 0.15]
//!            [--gate-prefix axes/axis/]... [--json <path>]
//! ```
//!
//! Rows are matched by id. A gated row (id starts with a `--gate-prefix`;
//! defaults in [`DEFAULT_GATE_PREFIXES`] — the axis/twig hot paths, the
//! observability overhead, and the edit subsystem's apply and
//! cache-maintenance rows) whose median ns/op regresses by more
//! than the threshold — or which disappears from the current run — fails
//! the gate (exit 1). Everything else is logged but passes. A baseline
//! file with no counterpart in the current directory fails iff it
//! contains gated rows. When both reports carry the `meta/calibration`
//! reference row, ratios are first normalized by the machine-speed
//! factor (see `vh_bench::gate::machine_factor`) so uniform
//! host-contention swings on shared runners don't fail every row at
//! once.
//!
//! `--json <path>` additionally writes every finding as a JSON document,
//! including the absolute noise floor and each row's **pre-floor**
//! normalized delta — so downstream consumers (the bench-history trend)
//! can tell a row the floor absorbed from one that genuinely sat still.
//!
//! Exit codes: 0 = pass, 1 = regression, 2 = usage, 3 = I/O or malformed
//! report.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use vh_bench::gate::{
    compare_reports, machine_factor, Finding, DEFAULT_GATE_PREFIXES, DEFAULT_THRESHOLD,
    NOISE_FLOOR_NS,
};
use vh_bench::json::{BenchReport, Json};

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err((msg, code)) => {
            eprintln!("bench_diff: {msg}");
            if code == 2 {
                eprintln!("{USAGE}");
            }
            ExitCode::from(code)
        }
    }
}

const USAGE: &str = "usage:
  bench_diff <baseline-dir> <current-dir> [--threshold 0.15]
             [--gate-prefix <id-prefix>]... [--json <path>]

Compares BENCH_*.json reports; exits 1 when a gated row (default
prefixes: axes/axis/, twig/, obs/run/, update/apply, update/cache_)
regresses beyond the threshold or is missing from the current run.
--json writes the findings (including the noise floor and pre-floor
deltas) as a JSON document.";

fn run() -> Result<bool, (String, u8)> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut prefixes: Vec<String> = Vec::new();
    let mut json_out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                let v = it
                    .next()
                    .ok_or(("--threshold: missing value".to_string(), 2))?;
                threshold = v
                    .parse()
                    .map_err(|_| (format!("--threshold: bad fraction '{v}'"), 2))?;
                if !(0.0..10.0).contains(&threshold) {
                    return Err((format!("--threshold: '{v}' out of range [0, 10)"), 2));
                }
            }
            "--gate-prefix" => {
                let v = it
                    .next()
                    .ok_or(("--gate-prefix: missing value".to_string(), 2))?;
                prefixes.push(v.clone());
            }
            "--json" => {
                json_out = Some(PathBuf::from(
                    it.next().ok_or(("--json: missing value".to_string(), 2))?,
                ));
            }
            other if other.starts_with("--") => {
                return Err((format!("unknown flag '{other}'"), 2));
            }
            dir => dirs.push(PathBuf::from(dir)),
        }
    }
    let [baseline_dir, current_dir] = dirs.as_slice() else {
        return Err((
            "expected exactly <baseline-dir> <current-dir>".to_string(),
            2,
        ));
    };
    let prefixes: Vec<&str> = if prefixes.is_empty() {
        DEFAULT_GATE_PREFIXES.to_vec()
    } else {
        prefixes.iter().map(String::as_str).collect()
    };

    let baseline_files = report_files(baseline_dir)?;
    if baseline_files.is_empty() {
        return Err((format!("no BENCH_*.json in {}", baseline_dir.display()), 3));
    }

    let mut failures = 0usize;
    let mut compared = 0usize;
    let mut per_report: Vec<(String, Option<f64>, Vec<Finding>)> = Vec::new();
    for path in &baseline_files {
        let baseline = BenchReport::read_from(path).map_err(|e| (e, 3))?;
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let current_path = current_dir.join(&name);
        // A missing current report gates exactly like a report whose rows
        // all vanished: only its gated rows count as failures.
        let current = if current_path.exists() {
            BenchReport::read_from(&current_path).map_err(|e| (e, 3))?
        } else {
            println!("{name}: missing from current run");
            BenchReport::new(baseline.experiment.clone())
        };
        let findings = compare_reports(&baseline, &current, threshold, &prefixes);
        println!(
            "== {name} ({} baseline rows, threshold {:.0}%)",
            baseline.rows.len(),
            threshold * 100.0
        );
        match machine_factor(&baseline, &current) {
            Some(f) => println!("  machine-speed factor x{f:.3} (ratios normalized by it)"),
            None => println!("  no calibration row on both sides: raw ratios"),
        }
        for f in &findings {
            println!("  {}", f.render());
        }
        failures += findings.iter().filter(|f| f.fails()).count();
        compared += findings.len();
        per_report.push((name, machine_factor(&baseline, &current), findings));
    }
    println!(
        "bench gate: {compared} rows compared, {failures} gated failure(s), gated prefixes {prefixes:?}"
    );
    if let Some(path) = &json_out {
        let doc = findings_json(&per_report, threshold, &prefixes);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| (format!("{}: {e}", dir.display()), 3))?;
        }
        std::fs::write(path, doc.render()).map_err(|e| (format!("{}: {e}", path.display()), 3))?;
    }
    Ok(failures == 0)
}

/// The `--json` document: gate parameters (threshold, prefixes, and the
/// absolute noise floor) plus every finding with its pre-floor delta and
/// whether the floor kept it `Ok`.
fn findings_json(
    per_report: &[(String, Option<f64>, Vec<Finding>)],
    threshold: f64,
    prefixes: &[&str],
) -> Json {
    let opt_num = |v: Option<f64>| v.map_or(Json::Null, Json::Num);
    let reports = per_report
        .iter()
        .map(|(name, factor, findings)| {
            let rows = findings
                .iter()
                .map(|f| {
                    Json::Obj(vec![
                        ("id".to_string(), Json::Str(f.id.clone())),
                        ("baseline_ns".to_string(), opt_num(f.baseline_ns)),
                        ("current_ns".to_string(), opt_num(f.current_ns)),
                        ("ratio".to_string(), opt_num(f.ratio)),
                        ("delta_ns".to_string(), opt_num(f.delta_ns)),
                        ("floored".to_string(), Json::Bool(f.floored)),
                        ("verdict".to_string(), Json::Str(format!("{:?}", f.verdict))),
                        ("fails".to_string(), Json::Bool(f.fails())),
                    ])
                })
                .collect();
            Json::Obj(vec![
                ("report".to_string(), Json::Str(name.clone())),
                ("machine_factor".to_string(), opt_num(*factor)),
                ("findings".to_string(), Json::Arr(rows)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("threshold".to_string(), Json::Num(threshold)),
        ("noise_floor_ns".to_string(), Json::Num(NOISE_FLOOR_NS)),
        (
            "gate_prefixes".to_string(),
            Json::Arr(prefixes.iter().map(|p| Json::Str(p.to_string())).collect()),
        ),
        ("reports".to_string(), Json::Arr(reports)),
    ])
}

/// All `BENCH_*.json` files in `dir`, sorted by name for stable output.
fn report_files(dir: &Path) -> Result<Vec<PathBuf>, (String, u8)> {
    let entries = std::fs::read_dir(dir).map_err(|e| (format!("{}: {e}", dir.display()), 3))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    Ok(files)
}
