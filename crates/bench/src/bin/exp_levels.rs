//! **F1 — level-array construction cost.** Validates the O(cN) complexity
//! claim of Algorithm 1 (§5.2): build time grows linearly in the number of
//! vDataGuide types N, with slope proportional to the maximum depth c.
//!
//! Comb documents give exact control: width W branches of depth c yield
//! N = W·c (+W text types +1 root). The identity vDataGuide covers them all.

use vh_bench::report::Table;
use vh_bench::timing::{median_time, us};
use vh_core::levels::LevelMap;
use vh_core::VDataGuide;
use vh_dataguide::TypedDocument;
use vh_workload::generate_comb;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let depths: &[usize] = &[4, 8, 16, 32];
    let widths: &[usize] = if full {
        &[4, 16, 64, 256, 1024]
    } else {
        &[4, 16, 64, 256]
    };

    let mut t = Table::new(
        "F1: level-array construction (Algorithm 1)",
        &["depth_c", "types_N", "build_us", "us_per_cN(x1e3)"],
    );
    for &c in depths {
        for &w in widths {
            let td = TypedDocument::analyze(generate_comb("comb.xml", w, c));
            let vdg = VDataGuide::compile("root { ** }", td.guide()).expect("identity compiles");
            let n = vdg.len();
            let (map, d) = median_time(9, || LevelMap::build(&vdg, td.guide()));
            assert_eq!(map.len(), n);
            let per_cn = d.as_secs_f64() * 1e6 / (c as f64 * n as f64) * 1e3;
            t.row(&[c.to_string(), n.to_string(), us(d), format!("{per_cn:.3}")]);
        }
    }
    t.print();
    println!(
        "shape check: build_us should grow ~linearly with N at fixed c,\n\
         and us_per_cN should stay roughly constant across the sweep."
    );
}
