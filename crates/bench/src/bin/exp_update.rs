//! **F9 + UPD — the cost of mutation.**
//!
//! The first half keeps the paper contrast. §3: "Update renumbering
//! physically changes the PBN number for every node in an edit. In
//! contrast, vPBN does not change any physical node numbers …" — one
//! insertion at the front / middle / back of the corpus, the numbers it
//! invalidates, and the zero numbers a whole-hierarchy virtual
//! transformation rewrites.
//!
//! The second half prices the edit subsystem that builds on that
//! property, over one skewed random script (60% inserts, mostly at
//! position 0 — the gap-minting worst case):
//!
//! * **throughput** — ns/edit through `Engine::apply` (eager per-edit
//!   compaction) and `Engine::apply_all` at compaction thresholds 1024
//!   and 1. The gap between the two thresholds is the compaction cost.
//! * **post-edit query slowdown** — the same query suite on the edited
//!   engine vs an engine rebuilt from scratch on the final document.
//!   The binary enforces the ≤[`SLOWDOWN_BUDGET`]x acceptance bound
//!   itself (compaction allowed — the edited engine is drained), with
//!   up to [`ATTEMPTS`] rounds keeping the minimum ratio so a noisy
//!   runner retries while a real regression keeps failing.
//! * **space** — the edited key arena vs the rebuilt one, enforced
//!   against the paper's ≤[`SPACE_BUDGET`]x key-growth bound, plus the
//!   write-ahead log's bytes/edit (the WAL is linear in edits by
//!   design; it is reported, not bounded by the arena ratio).
//!
//! * **delta maintenance** — a vocabulary-preserving skewed stream (the
//!   same front-gap skew, but book-shaped inserts that never mint guide
//!   types) in writer-sized batches through an engine whose virtual
//!   views are warm. Every batch routes one merged delta through the
//!   `ExecCache` instead of evicting, so the suite prices (a) the
//!   per-edit cost of routing with live views (`update/cache_maintain`)
//!   and (b) the warm-query latency the maintained views preserve
//!   (`update/cache_warm_query`),
//!   self-enforced against the ≤[`CACHE_WARM_BUDGET`]x bound: queries
//!   on views that lived through the stream may cost at most that
//!   multiple of warm queries on a never-edited engine holding the
//!   same final document.
//!
//! Medians land in `BENCH_update.json`; the `update/apply/…` and
//! `update/cache_…` rows are gated against the committed baseline like
//! every other hot path.

use vh_bench::json::{BenchReport, BenchRow, CALIBRATION_ROW};
use vh_bench::opts::{BenchOpts, Profile};
use vh_bench::report::Table;
use vh_bench::timing::{calibration_ns, median_ns_per_call, ms, time};
use vh_core::VirtualDocument;
use vh_dataguide::TypedDocument;
use vh_pbn::update::{incremental_renumber, minimal_renumber_cost};
use vh_pbn::PbnAssignment;
use vh_query::api::{Edit, Engine, QueryRequest};
use vh_workload::{generate_books, BooksConfig};
use vh_xml::{serialize, Document, NodeId, SerializeOptions};

/// Timing repetitions per query measurement; the median is reported.
const REPS: usize = 9;

/// Minimum wall time of one timed query repetition.
const MIN_REP: std::time::Duration = std::time::Duration::from_millis(2);

/// Acceptance bound: gated queries on the edited engine may cost at
/// most this multiple of the same queries on a fresh rebuild.
const SLOWDOWN_BUDGET: f64 = 1.25;

/// Acceptance bound: the edited key arena may occupy at most this
/// multiple of the rebuilt arena (the paper's key-growth bound).
const SPACE_BUDGET: f64 = 2.0;

/// Acceptance bound: warm virtual-view queries on an engine whose
/// cached views were *maintained* through the edit stream may cost at
/// most this multiple of warm queries on a never-edited engine holding
/// the same final document.
const CACHE_WARM_BUDGET: f64 = 1.10;

/// Edits per writer batch in the maintenance leg: large enough that
/// routing amortizes, small enough that the delta journal never
/// overflows into the eviction fallback.
const MAINTAIN_BATCH: usize = 64;

/// Length of the maintenance stream — the "1k-edit skewed stream" of
/// the acceptance bound, fixed across profiles so the bound always
/// prices the same workload.
const MAINTAIN_EDITS: usize = 1_000;

/// Corpus size for the maintenance leg, fixed across profiles. Large
/// enough that (a) the 1k-edit stream is a realistic fraction of the
/// document rather than a wholesale rewrite, and (b) index rebuilds
/// cost more than splices, so the cost model keeps the maintenance
/// path — the crossover EXPERIMENTS.md documents.
const MAINTAIN_BOOKS: usize = 2_000;

/// Measurement rounds for the warm-query bound. The contrast sits much
/// closer to its budget than the post-edit slowdown does (the minted
/// front-gap keys are a real, bounded cost), so it gets more retries
/// before a ratio above budget becomes a failure.
const CACHE_ATTEMPTS: usize = 6;

/// Measurement rounds before a ratio above budget becomes a failure.
const ATTEMPTS: usize = 3;

const URI: &str = "books.xml";

/// The query suite priced before/after the edit script.
const PATHS: &[&str] = &["//book", "//name", "//book/title"];

/// Sam's transformation — the virtual view the maintenance leg keeps
/// warm across the edit stream.
const SPEC: &str = "title { author { name } }";

/// The virtual-view query suite priced in the maintenance leg.
const VPATHS: &[&str] = &["//title", "//name", "//title/author"];

/// Splitmix-style generator so scripts are reproducible across runs.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Dotted 1-based child-index path of `n` — the `Edit` addressing scheme.
fn dotted_path(doc: &Document, n: NodeId) -> String {
    let mut steps = Vec::new();
    let mut cur = n;
    while let Some(p) = doc.parent(cur) {
        let idx = doc.children(p).iter().position(|&c| c == cur).unwrap() + 1;
        steps.push(idx);
        cur = p;
    }
    steps.push(1);
    steps.reverse();
    steps
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(".")
}

/// One skewed edit against the current document: 60% inserts (mostly at
/// position 0, the front-gap minting worst case), 20% value rewrites,
/// 10% deletes, 10% moves. `None` when the roll found no legal target.
fn skewed_edit(doc: &Document, rng: &mut Lcg) -> Option<Edit> {
    let elements: Vec<NodeId> = doc
        .preorder()
        .filter(|&n| doc.kind(n).is_element())
        .collect();
    let (op, a, b) = (rng.next(), rng.next() as usize, rng.next() as usize);
    let pick = |pool: &[NodeId], salt: usize| pool.get(salt % pool.len().max(1)).copied();
    let uri = URI.to_string();
    match op % 10 {
        0..=5 => {
            let parent = pick(&elements, a)?;
            let pos = if b % 4 != 0 {
                0
            } else {
                b % (doc.children(parent).len() + 1)
            };
            Some(Edit::InsertSubtree {
                uri,
                parent: dotted_path(doc, parent),
                pos,
                xml: format!("<note>n{b}</note>"),
            })
        }
        6 | 7 => {
            let target = pick(&elements, a.wrapping_add(b))?;
            Some(Edit::SetValue {
                uri,
                target: dotted_path(doc, target),
                value: format!("v{b}"),
            })
        }
        8 => {
            let target = pick(&elements[1.min(elements.len())..], a)?;
            Some(Edit::DeleteSubtree {
                uri,
                target: dotted_path(doc, target),
            })
        }
        _ => {
            let target = pick(&elements[1.min(elements.len())..], a)?;
            let dest = elements
                .iter()
                .copied()
                .cycle()
                .skip(b % elements.len().max(1))
                .take(elements.len())
                .find(|&p| p != target && !doc.is_ancestor(target, p))?;
            Some(Edit::MoveSubtree {
                uri,
                target: dotted_path(doc, target),
                parent: dotted_path(doc, dest),
                pos: 0,
            })
        }
    }
}

/// One vocabulary-preserving edit for the maintenance leg, with the
/// same front-gap skew as [`skewed_edit`]: 60% book inserts (mostly at
/// position 0 of the root — the minting worst case), 20% title value
/// rewrites, 20% book deletes. Every tag already exists in the corpus,
/// so the stream never mints guide types and the cache's maintenance
/// path — not the recompute fallback — absorbs it.
fn maintain_edit(doc: &Document, rng: &mut Lcg) -> Option<Edit> {
    let root = doc.root()?;
    let (op, a, b) = (rng.next(), rng.next() as usize, rng.next() as usize);
    let uri = URI.to_string();
    match op % 10 {
        0..=5 => {
            let pos = if b % 4 != 0 {
                0
            } else {
                b % (doc.children(root).len() + 1)
            };
            Some(Edit::InsertSubtree {
                uri,
                parent: "1".to_string(),
                pos,
                xml: format!(
                    "<book><title>Maint {b}</title><author><name>W{a}</name></author>\
                     <publisher><location>L</location></publisher></book>"
                ),
            })
        }
        6 | 7 => {
            let titles: Vec<NodeId> = doc
                .preorder()
                .filter(|&n| doc.name(n) == Some("title"))
                .collect();
            let t = titles.get(a % titles.len().max(1)).copied()?;
            Some(Edit::SetValue {
                uri,
                target: dotted_path(doc, t),
                value: format!("v{b}"),
            })
        }
        _ => {
            let books = doc.children(root);
            if books.len() <= 2 {
                return None;
            }
            let t = books[1 + a % (books.len() - 1)];
            Some(Edit::DeleteSubtree {
                uri,
                target: dotted_path(doc, t),
            })
        }
    }
}

/// Generates a script of `n` edits that all apply cleanly in sequence
/// from the base document (each edit is concretized against the state
/// its predecessors produced).
fn build_script(
    base_xml: &str,
    n: usize,
    seed: u64,
    gen: fn(&Document, &mut Lcg) -> Option<Edit>,
) -> Vec<Edit> {
    let mut engine = Engine::new();
    engine.register_xml(URI, base_xml).expect("base registers");
    let mut rng = Lcg(seed);
    let mut script = Vec::with_capacity(n);
    while script.len() < n {
        let Some(edit) = gen(engine.document(URI).unwrap().doc(), &mut rng) else {
            continue;
        };
        if engine.apply(edit.clone()).is_ok() {
            script.push(edit);
        }
    }
    script
}

/// Key-arena footprint: encoded key bytes plus the `u32` offset column.
fn arena_bytes(td: &TypedDocument) -> usize {
    let arena = td.pbn().arena();
    arena.total_key_bytes() + arena.offsets().len() * 4
}

/// Median ns/query over the whole path suite on one engine.
fn suite_ns(engine: &Engine) -> f64 {
    let (_, ns) = median_ns_per_call(REPS, MIN_REP, || {
        let mut total = 0usize;
        for p in PATHS {
            let res = engine.run(&QueryRequest::path(URI, *p)).unwrap();
            total += res.nodes.map_or(0, |n| n.len());
        }
        total
    });
    ns
}

/// Median ns over the virtual-view suite — the queries the maintained
/// cache serves.
fn virt_suite_ns(engine: &Engine) -> f64 {
    let (_, ns) = median_ns_per_call(REPS, MIN_REP, || {
        let mut total = 0usize;
        for p in VPATHS {
            let res = engine
                .run(&QueryRequest::virtual_path(URI, SPEC, *p))
                .unwrap();
            total += res.nodes.map_or(0, |n| n.len());
        }
        total
    });
    ns
}

fn main() {
    let opts = BenchOpts::from_env();

    // ------------------------------------------------- F9: the contrast ---
    let sizes: &[usize] = match opts.profile {
        Profile::Quick => &[1_000],
        Profile::Default => &[1_000, 10_000],
        Profile::Full => &[1_000, 10_000, 100_000],
    };
    let mut t = Table::new(
        "F9: numbers invalidated by one edit vs by a virtual transformation",
        &[
            "books",
            "nodes",
            "insert_at",
            "numbers_changed",
            "renumber_ms",
            "vpbn_numbers_changed",
            "vpbn_level_entries",
        ],
    );
    for &n in sizes {
        for at in ["front", "middle", "back"] {
            let mut doc = generate_books(URI, &BooksConfig::sized(n));
            let root = doc.root().unwrap();
            let before = PbnAssignment::assign(&doc);
            let pos = match at {
                "front" => 0,
                "middle" => doc.children(root).len() / 2,
                _ => doc.children(root).len(),
            };
            doc.insert_element(root, pos, "book");
            let expected = minimal_renumber_cost(&doc, root, pos);
            let (report, d) = time(|| incremental_renumber(&doc, &before, root));
            assert_eq!(report.changed, expected);

            // The vPBN column: opening Sam's view rewrites NO physical
            // numbers; its only new state is the per-type level-array map.
            let td = TypedDocument::analyze(doc.clone());
            let vd = VirtualDocument::open(&td, "title { author { name } }").unwrap();
            let level_entries: usize = vd.levels().heap_bytes() / 4;

            t.row(&[
                n.to_string(),
                td.doc().len().to_string(),
                at.to_string(),
                report.changed.to_string(),
                ms(d),
                "0".to_string(),
                level_entries.to_string(),
            ]);
        }
    }
    t.print();

    // ------------------------------------------- UPD: the edit subsystem ---
    let books = opts.books(60, 250, 600);
    let edits = match opts.profile {
        Profile::Quick => 1_500,
        Profile::Default | Profile::Full => 10_000,
    };
    let base_xml = serialize(
        &generate_books(URI, &BooksConfig::sized(books)),
        SerializeOptions::compact(),
    );
    let script = build_script(&base_xml, edits, 0x5eed, skewed_edit);

    let mut report = BenchReport::new("update");
    report.config("books", books);
    report.config("edits", edits);
    report.config("profile", opts.profile.name());
    report.config("threads", opts.threads);

    let fresh = || {
        let mut e = Engine::new();
        e.set_exec_options(opts.exec());
        e.register_xml(URI, &base_xml).expect("base registers");
        e
    };

    // Throughput: eager singles, then batches at two thresholds. The
    // threshold-1 batch compacts after every edit; its gap over the
    // threshold-1024 batch is the pure compaction cost.
    let mut singles = fresh();
    let (applied, d_single) = time(|| {
        script
            .iter()
            .filter(|e| singles.apply((*e).clone()).is_ok())
            .count()
    });
    assert_eq!(applied, script.len(), "generated scripts re-apply cleanly");
    let single_ns = d_single.as_nanos() as f64 / applied as f64;

    let mut batch = fresh();
    let (receipts, d_batch) = time(|| batch.apply_all(script.clone()).expect("batch applies"));
    let batch_compacted: usize = receipts.iter().map(|r| r.compacted).sum();
    let batch_ns = d_batch.as_nanos() as f64 / receipts.len() as f64;

    let mut churn = fresh();
    churn.set_compact_threshold(1);
    let (_, d_churn) = time(|| churn.apply_all(script.clone()).expect("batch applies"));
    let churn_ns = d_churn.as_nanos() as f64 / script.len() as f64;

    let mut t = Table::new(
        "UPD-a: ns/edit — apply (eager) vs apply_all (threshold 1024 / 1)",
        &[
            "edits",
            "apply_ns",
            "batch_ns",
            "churn_ns",
            "compaction_ns",
            "mid_batch_compactions",
        ],
    );
    t.row(&[
        applied.to_string(),
        format!("{single_ns:.0}"),
        format!("{batch_ns:.0}"),
        format!("{churn_ns:.0}"),
        format!("{:.0}", churn_ns - batch_ns),
        batch_compacted.to_string(),
    ]);
    t.print();

    report.push(
        BenchRow::new("update/apply/edit_ns", single_ns)
            .with("edits", applied as f64)
            .with("edits_per_s", 1e9 / single_ns),
    );
    report.push(
        BenchRow::new("update/apply_all/edit_ns", batch_ns)
            .with("edits_per_s", 1e9 / batch_ns)
            .with("mid_batch_compactions", batch_compacted as f64),
    );
    report.push(
        BenchRow::new("update/compact/edit_ns", churn_ns)
            .with("compaction_ns_per_edit", churn_ns - batch_ns),
    );

    // Post-edit slowdown: the suite on the lived-in engine vs a rebuild.
    let final_xml = serialize(
        singles.document(URI).expect("registered").doc(),
        SerializeOptions::compact(),
    );
    let mut rebuilt = fresh();
    rebuilt
        .register_xml(URI, &final_xml)
        .expect("rebuild registers");
    let mut t = Table::new(
        "UPD-b: ns/query-suite — edited engine vs fresh rebuild",
        &["attempt", "edited_ns", "rebuilt_ns", "slowdown_x"],
    );
    let mut best = f64::INFINITY;
    let (mut best_edited, mut best_rebuilt) = (0.0, 0.0);
    for attempt in 1..=ATTEMPTS {
        let edited_ns = suite_ns(&singles);
        let rebuilt_ns = suite_ns(&rebuilt);
        let x = edited_ns / rebuilt_ns.max(1.0);
        t.row(&[
            attempt.to_string(),
            format!("{edited_ns:.0}"),
            format!("{rebuilt_ns:.0}"),
            format!("{x:.3}"),
        ]);
        if x < best {
            best = x;
            best_edited = edited_ns;
            best_rebuilt = rebuilt_ns;
        }
        if best <= SLOWDOWN_BUDGET {
            break;
        }
    }
    t.print();
    report
        .push(BenchRow::new("update/query/edited", best_edited).with("post_edit_slowdown_x", best));
    report.push(BenchRow::new("update/query/rebuilt", best_rebuilt));

    // Space: the minted arena vs the rebuilt one, and the log itself.
    let edited_arena = arena_bytes(singles.document(URI).expect("registered"));
    let rebuilt_arena = arena_bytes(rebuilt.document(URI).expect("registered"));
    let arena_x = edited_arena as f64 / rebuilt_arena.max(1) as f64;
    let wal_bytes = singles.wal_bytes().len();
    let wal_per_edit = wal_bytes as f64 / applied as f64;
    let mut t = Table::new(
        "UPD-c: space — edited arena vs rebuilt, and the write-ahead log",
        &[
            "edited_arena_B",
            "rebuilt_arena_B",
            "arena_x",
            "wal_B",
            "wal_B_per_edit",
        ],
    );
    t.row(&[
        edited_arena.to_string(),
        rebuilt_arena.to_string(),
        format!("{arena_x:.3}"),
        wal_bytes.to_string(),
        format!("{wal_per_edit:.1}"),
    ]);
    t.print();
    report.push(
        BenchRow::new("update/space/arena_bytes", edited_arena as f64)
            .with("arena_growth_x", arena_x)
            .with("rebuilt_arena_bytes", rebuilt_arena as f64),
    );
    report.push(
        BenchRow::new("update/space/wal_bytes", wal_bytes as f64)
            .with("wal_bytes_per_edit", wal_per_edit),
    );

    // ---------------------------------------- UPD-d: delta maintenance ---
    // A vocabulary-preserving skewed stream against warm virtual views:
    // every `apply_all` batch routes one merged delta through the cache,
    // splicing the live views in place, and an interleaved reader (one
    // suite pass per batch, untimed) keeps them hot the way the
    // concurrent readwrite workload does. Only the routing is timed.
    // The leg runs on its own profile-independent corpus (see
    // [`MAINTAIN_BOOKS`]).
    let m_base_xml = serialize(
        &generate_books(URI, &BooksConfig::sized(MAINTAIN_BOOKS)),
        SerializeOptions::compact(),
    );
    let m_script = build_script(&m_base_xml, MAINTAIN_EDITS, 0xcac4e, maintain_edit);
    let mut maintained = Engine::new();
    maintained.set_exec_options(opts.exec());
    maintained
        .register_xml(URI, &m_base_xml)
        .expect("maintenance base registers");
    for p in VPATHS {
        maintained
            .run(&QueryRequest::virtual_path(URI, SPEC, *p))
            .expect("warm query runs");
    }
    let mut route_ns_total = 0u128;
    for chunk in m_script.chunks(MAINTAIN_BATCH) {
        let (_, d) = time(|| maintained.apply_all(chunk.to_vec()).expect("batch applies"));
        route_ns_total += d.as_nanos();
        for p in VPATHS {
            maintained
                .run(&QueryRequest::virtual_path(URI, SPEC, *p))
                .expect("reader query runs");
        }
    }
    let maintain_ns = route_ns_total as f64 / m_script.len() as f64;
    let snap = maintained.snapshot().cache;

    // Warm-query contrast: the engine whose views lived through the
    // stream vs a never-edited engine registered with the same final
    // document. Both are warm; the minimum ratio over the attempts is
    // kept so runner noise retries while a real regression keeps
    // failing.
    let m_final_xml = serialize(
        maintained.document(URI).expect("registered").doc(),
        SerializeOptions::compact(),
    );
    let mut pristine = Engine::new();
    pristine.set_exec_options(opts.exec());
    pristine
        .register_xml(URI, &m_final_xml)
        .expect("rebuild registers");
    // Pre-warm both engines (views, allocator, branch predictors)
    // before anything is timed.
    for _ in 0..2 {
        let _ = virt_suite_ns(&maintained);
        let _ = virt_suite_ns(&pristine);
    }
    let mut t = Table::new(
        "UPD-d: delta maintenance — ns/edit with warm views, and the warm suite after",
        &["attempt", "maintained_ns", "pristine_ns", "warm_x"],
    );
    let mut warm_best = f64::INFINITY;
    let (mut warm_edited, mut warm_pristine) = (0.0, 0.0);
    for attempt in 1..=CACHE_ATTEMPTS {
        let edited_ns = virt_suite_ns(&maintained);
        let pristine_ns = virt_suite_ns(&pristine);
        let x = edited_ns / pristine_ns.max(1.0);
        t.row(&[
            attempt.to_string(),
            format!("{edited_ns:.0}"),
            format!("{pristine_ns:.0}"),
            format!("{x:.3}"),
        ]);
        if x < warm_best {
            warm_best = x;
            warm_edited = edited_ns;
            warm_pristine = pristine_ns;
        }
        if warm_best <= CACHE_WARM_BUDGET {
            break;
        }
    }
    t.print();
    let mut t = Table::new(
        "UPD-d: cache routing counters over the stream",
        &[
            "edits",
            "route_ns_per_edit",
            "maintained",
            "recomputed",
            "fallback_evictions",
        ],
    );
    t.row(&[
        m_script.len().to_string(),
        format!("{maintain_ns:.0}"),
        snap.maintained.to_string(),
        snap.recomputed.to_string(),
        snap.fallback_evictions.to_string(),
    ]);
    t.print();

    report.push(
        BenchRow::new("update/cache_maintain/edit_ns", maintain_ns)
            .with("edits_per_s", 1e9 / maintain_ns)
            .with("views_maintained", snap.maintained as f64)
            .with("views_recomputed", snap.recomputed as f64)
            .with("fallback_evictions", snap.fallback_evictions as f64),
    );
    report.push(
        BenchRow::new("update/cache_warm_query/edited", warm_edited)
            .with("warm_slowdown_x", warm_best),
    );
    report.push(BenchRow::new(
        "update/cache_warm_query/rebuilt",
        warm_pristine,
    ));

    report.push(BenchRow::new(CALIBRATION_ROW, calibration_ns()));

    if let Some(dir) = &opts.json_dir {
        match report.write_to(dir) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: writing report: {e}");
                std::process::exit(3);
            }
        }
    }

    let mut failed = false;
    if best > SLOWDOWN_BUDGET {
        eprintln!(
            "error: post-edit query slowdown {best:.3}x exceeds the {SLOWDOWN_BUDGET}x \
             acceptance bound after {ATTEMPTS} attempts"
        );
        failed = true;
    }
    if arena_x > SPACE_BUDGET {
        eprintln!(
            "error: edited arena is {arena_x:.3}x the rebuilt arena, over the \
             {SPACE_BUDGET}x key-growth bound"
        );
        failed = true;
    }
    if warm_best > CACHE_WARM_BUDGET {
        eprintln!(
            "error: warm queries on maintained views run at {warm_best:.3}x the never-edited \
             warm baseline, over the {CACHE_WARM_BUDGET}x acceptance bound after \
             {CACHE_ATTEMPTS} attempts"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "acceptance: after {applied} skewed edits queries run at {best:.3}x a fresh rebuild \
         (bound {SLOWDOWN_BUDGET}x), the arena sits at {arena_x:.3}x (bound {SPACE_BUDGET}x), \
         warm maintained views at {warm_best:.3}x (bound {CACHE_WARM_BUDGET}x, \
         {} views spliced in place); the log costs {wal_per_edit:.1} B/edit",
        snap.maintained
    );
}
