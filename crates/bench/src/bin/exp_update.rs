//! **F9 (extension) — the §3 contrast: update renumbering vs virtual
//! renumbering.** §3: "Update renumbering physically changes the PBN number
//! for every node in an edit. In contrast, vPBN does not change any
//! physical node numbers … Adapting update renumbering to support virtual
//! hierarchies would be very expensive since all of the nodes in a data
//! collection would have to be individually, physically renumbered at
//! query time."
//!
//! Measured: numbers invalidated by a single insertion at the front /
//! middle / back of the corpus, the wall time of the renumbering pass, and
//! — for the virtual-hierarchy column — the count of physical numbers vPBN
//! rewrites for an arbitrarily large transformation: zero, by construction
//! (the level-array map is per-type and schema-sized).

use vh_bench::report::Table;
use vh_bench::timing::{ms, time};
use vh_core::VirtualDocument;
use vh_dataguide::TypedDocument;
use vh_pbn::update::{incremental_renumber, minimal_renumber_cost};
use vh_pbn::PbnAssignment;
use vh_workload::{generate_books, BooksConfig};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sizes: &[usize] = if full {
        &[1_000, 10_000, 100_000]
    } else {
        &[1_000, 10_000]
    };

    let mut t = Table::new(
        "F9: numbers invalidated by one edit vs by a virtual transformation",
        &[
            "books",
            "nodes",
            "insert_at",
            "numbers_changed",
            "renumber_ms",
            "vpbn_numbers_changed",
            "vpbn_level_entries",
        ],
    );
    for &n in sizes {
        for at in ["front", "middle", "back"] {
            let mut doc = generate_books("books.xml", &BooksConfig::sized(n));
            let root = doc.root().unwrap();
            let before = PbnAssignment::assign(&doc);
            let pos = match at {
                "front" => 0,
                "middle" => doc.children(root).len() / 2,
                _ => doc.children(root).len(),
            };
            doc.insert_element(root, pos, "book");
            let expected = minimal_renumber_cost(&doc, root, pos);
            let (report, d) = time(|| incremental_renumber(&doc, &before, root));
            assert_eq!(report.changed, expected);

            // The vPBN column: opening Sam's view rewrites NO physical
            // numbers; its only new state is the per-type level-array map.
            let td = TypedDocument::analyze(doc.clone());
            let vd = VirtualDocument::open(&td, "title { author { name } }").unwrap();
            let level_entries: usize = vd.levels().heap_bytes() / 4;

            t.row(&[
                n.to_string(),
                td.doc().len().to_string(),
                at.to_string(),
                report.changed.to_string(),
                ms(d),
                "0".to_string(),
                level_entries.to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "shape check: a single front insertion invalidates ~all numbers\n\
         (growing with the corpus), while the virtual transformation — which\n\
         relocates every node in the hierarchy — rewrites none and stores a\n\
         schema-sized level map. This is §3's argument, quantified."
    );
}
