//! **F6 — structural joins, physical vs virtual.** The Stack-Tree join is
//! the workhorse of PBN query processors; vPBN's claim is that the same
//! one-pass algorithm runs on virtual hierarchies by swapping the
//! comparator and the containment predicate. The nested-loop join bounds
//! what a system without order/containment reasoning would pay.

use std::time::Instant;
use vh_bench::report::Table;
use vh_core::VirtualDocument;
use vh_dataguide::TypedDocument;
use vh_query::sjoin::{nested_loop_join, physical_structural_join, virtual_structural_join};
use vh_workload::{generate_books, BooksConfig};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sizes: &[usize] = if full {
        &[100, 1_000, 10_000, 50_000]
    } else {
        &[100, 1_000, 10_000]
    };

    let mut t = Table::new(
        "F6: structural join — books x names (physical), titles x names (virtual)",
        &[
            "books",
            "anc",
            "desc",
            "pairs",
            "phys_stack_us",
            "virt_stack_us",
            "virt_nested_us",
            "stack_vs_nested_x",
        ],
    );
    for &n in sizes {
        let td = TypedDocument::analyze(generate_books("books.xml", &BooksConfig::sized(n)));
        let vd = VirtualDocument::open(&td, "title { author { name } }").unwrap();

        // Physical: book ancestors, name descendants.
        let book_t = td.guide().lookup_path(&["data", "book"]).unwrap();
        let name_t = td
            .guide()
            .lookup_path(&["data", "book", "author", "name"])
            .unwrap();
        let books: Vec<_> = td.nodes_of_type(book_t);
        let names: Vec<_> = td.nodes_of_type(name_t);

        // Virtual: title ancestors, name descendants (same cardinalities).
        let title_vt = vd.vdg().guide().lookup_path(&["title"]).unwrap();
        let name_vt = vd
            .vdg()
            .guide()
            .lookup_path(&["title", "author", "name"])
            .unwrap();
        let vtitles = vd.nodes_of_vtype(title_vt).to_vec();
        let vnames = vd.nodes_of_vtype(name_vt).to_vec();

        let (p_us, p_pairs) = time_us(|| physical_structural_join(&td, &books, &names).len());
        let (v_us, v_pairs) = time_us(|| virtual_structural_join(&vd, &vtitles, &vnames).len());
        assert_eq!(p_pairs, v_pairs, "both joins pair every name once");
        // Nested-loop baseline only at sizes where it finishes promptly.
        let (nl_us, nl_pairs) = if n <= 10_000 {
            let vdg = vd.vdg();
            time_us(|| {
                nested_loop_join(&vtitles, &vnames, &|a, d| {
                    vh_core::axes::v_ancestor(vdg, &vd.vpbn_of(a).unwrap(), &vd.vpbn_of(d).unwrap())
                })
                .len()
            })
        } else {
            (f64::NAN, v_pairs)
        };
        if !nl_us.is_nan() {
            assert_eq!(nl_pairs, v_pairs);
        }
        t.row(&[
            n.to_string(),
            books.len().to_string(),
            names.len().to_string(),
            v_pairs.to_string(),
            format!("{p_us:.1}"),
            format!("{v_us:.1}"),
            if nl_us.is_nan() {
                "-".into()
            } else {
                format!("{nl_us:.1}")
            },
            if nl_us.is_nan() {
                "-".into()
            } else {
                format!("{:.1}", nl_us / v_us.max(0.001))
            },
        ]);
    }
    t.print();
    println!(
        "shape check: both stack joins scale ~linearly in input+output and\n\
         stay within a small factor of each other; the nested loop blows up\n\
         quadratically (stack_vs_nested_x grows with size)."
    );
}

/// Times a closure (median-ish: best of 3), returning (us, value).
fn time_us(mut f: impl FnMut() -> usize) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut val = 0;
    for _ in 0..3 {
        let start = Instant::now();
        val = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e6);
    }
    (best, val)
}
