//! **F6 — structural joins, physical vs virtual.** The Stack-Tree join is
//! the workhorse of PBN query processors; vPBN's claim is that the same
//! one-pass algorithm runs on virtual hierarchies by swapping the
//! comparator and the containment predicate. The nested-loop join bounds
//! what a system without order/containment reasoning would pay.
//!
//! `--threads N` runs both stack joins through the chunked parallel
//! Stack-Tree (`physical_structural_join_opts` / the view's
//! [`ExecOptions`]); outputs are byte-identical at every thread count.
//! `--json <dir>` writes `BENCH_sjoin.json`; `sjoin/…` rows are
//! informational by default (the CI gate fails only on the `axes/axis/…`
//! and `twig/…` hot paths).

use vh_bench::json::{BenchReport, BenchRow, CALIBRATION_ROW};
use vh_bench::opts::{BenchOpts, Profile};
use vh_bench::report::Table;
use vh_core::{ExecOptions, VirtualDocument};
use vh_dataguide::TypedDocument;
use vh_query::sjoin::{nested_loop_join, physical_structural_join_opts, virtual_structural_join};
use vh_workload::{generate_books, BooksConfig};

fn main() {
    let opts = BenchOpts::from_env();
    let sizes: Vec<usize> = match (opts.books, opts.profile) {
        (Some(n), _) => vec![n],
        (None, Profile::Quick) => vec![100, 1_000],
        (None, Profile::Default) => vec![100, 1_000, 10_000],
        (None, Profile::Full) => vec![100, 1_000, 10_000, 50_000],
    };

    let mut report = BenchReport::new("sjoin");
    report.config("sizes", format!("{sizes:?}"));
    report.config("profile", opts.profile.name());
    report.config("threads", opts.threads);

    let mut t = Table::new(
        "F6: structural join — books x names (physical), titles x names (virtual)",
        &[
            "books",
            "threads",
            "anc",
            "desc",
            "pairs",
            "phys_stack_us",
            "virt_stack_us",
            "virt_nested_us",
            "stack_vs_nested_x",
        ],
    );
    for &n in &sizes {
        let td = TypedDocument::analyze(generate_books("books.xml", &BooksConfig::sized(n)));
        let mut vd = VirtualDocument::open(&td, "title { author { name } }").unwrap();

        // Physical: book ancestors, name descendants.
        let book_t = td.guide().lookup_path(&["data", "book"]).unwrap();
        let name_t = td
            .guide()
            .lookup_path(&["data", "book", "author", "name"])
            .unwrap();
        let books: Vec<_> = td.nodes_of_type(book_t);
        let names: Vec<_> = td.nodes_of_type(name_t);

        // Virtual: title ancestors, name descendants (same cardinalities).
        let title_vt = vd.vdg().guide().lookup_path(&["title"]).unwrap();
        let name_vt = vd
            .vdg()
            .guide()
            .lookup_path(&["title", "author", "name"])
            .unwrap();
        let vtitles = vd.nodes_of_vtype(title_vt).to_vec();
        let vnames = vd.nodes_of_vtype(name_vt).to_vec();

        // Nested-loop baseline only at sizes where it finishes promptly
        // (measured once per size; it has no parallel path).
        let (nl_us, nl_pairs) = if n <= 10_000 {
            let vdg = vd.vdg();
            let vdr = &vd;
            time_us(2, || {
                nested_loop_join(&vtitles, &vnames, &|a, d| {
                    vh_core::axes::v_ancestor(
                        vdg,
                        &vdr.vpbn_of(a).unwrap(),
                        &vdr.vpbn_of(d).unwrap(),
                    )
                })
                .len()
            })
        } else {
            (f64::NAN, 0)
        };

        for threads in opts.thread_set() {
            let ex = ExecOptions::with_threads(threads);
            vd.set_exec(ex);
            let (p_us, p_pairs) = time_us(5, || {
                physical_structural_join_opts(&td, &books, &names, &ex).len()
            });
            let (v_us, v_pairs) =
                time_us(5, || virtual_structural_join(&vd, &vtitles, &vnames).len());
            assert_eq!(p_pairs, v_pairs, "both joins pair every name once");
            if !nl_us.is_nan() {
                assert_eq!(nl_pairs, v_pairs);
            }
            t.row(&[
                n.to_string(),
                threads.to_string(),
                books.len().to_string(),
                names.len().to_string(),
                v_pairs.to_string(),
                format!("{p_us:.1}"),
                format!("{v_us:.1}"),
                if nl_us.is_nan() {
                    "-".into()
                } else {
                    format!("{nl_us:.1}")
                },
                if nl_us.is_nan() {
                    "-".into()
                } else {
                    format!("{:.1}", nl_us / v_us.max(0.001))
                },
            ]);
            let prefix = if threads == opts.threads {
                "sjoin"
            } else {
                "scaling/sjoin"
            };
            report.push(
                BenchRow::new(format!("{prefix}/books={n}/phys/t{threads}"), p_us * 1e3)
                    .with("books", n as f64)
                    .with("threads", threads as f64)
                    .with("pairs", p_pairs as f64),
            );
            report.push(
                BenchRow::new(format!("{prefix}/books={n}/virt/t{threads}"), v_us * 1e3)
                    .with("books", n as f64)
                    .with("threads", threads as f64)
                    .with("pairs", v_pairs as f64),
            );
        }
    }
    t.print();
    println!(
        "shape check: both stack joins scale ~linearly in input+output and\n\
         stay within a small factor of each other; the nested loop blows up\n\
         quadratically (stack_vs_nested_x grows with size)."
    );

    // Machine-speed reference: lets the gate cancel host-contention
    // swings between this run and the committed baseline.
    report.push(BenchRow::new(
        CALIBRATION_ROW,
        vh_bench::timing::calibration_ns(),
    ));

    if let Some(dir) = &opts.json_dir {
        match report.write_to(dir) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: writing report: {e}");
                std::process::exit(3);
            }
        }
    }
}

/// Times a closure (calibrated median, see
/// `vh_bench::timing::median_ns_per_call`), returning (us, value). The
/// quadratic nested-loop baseline passes a small `reps` — one call is
/// already seconds-scale at 10 000 books.
fn time_us(reps: usize, f: impl FnMut() -> usize) -> (f64, usize) {
    let (val, ns) =
        vh_bench::timing::median_ns_per_call(reps, std::time::Duration::from_millis(2), f);
    (ns / 1e3, val)
}
