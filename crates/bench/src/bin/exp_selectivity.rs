//! **F4 — query time vs selectivity.** §4.3: "our approach is to virtually
//! transform only the data needed by the query". As the query touches a
//! growing fraction of the view, the advantage over materialization
//! narrows; if the materialized view is *reused* across many queries its
//! amortized cost can eventually win — the crossover this experiment maps.

use vh_bench::baseline::{run_materialized, run_virtual};
use vh_bench::report::Table;
use vh_bench::timing::ms;
use vh_dataguide::TypedDocument;
use vh_workload::{generate_books, BooksConfig};

const SPEC: &str = "title { author { name } }";

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let books = if full { 20_000 } else { 5_000 };
    let fractions: &[f64] = &[0.001, 0.01, 0.1, 0.5, 1.0];

    let mut t = Table::new(
        "F4: selectivity sweep (fixed corpus, query touches a varying share)",
        &[
            "rare_frac",
            "results",
            "virt_total_ms",
            "mat_total_ms",
            "mat_query_only_ms",
            "speedup_x",
            "breakeven_reuses",
        ],
    );
    for &f in fractions {
        let cfg = BooksConfig {
            books,
            rare_fraction: f,
            ..BooksConfig::default()
        };
        let td = TypedDocument::analyze(generate_books("books.xml", &cfg));
        let query = "//title[contains(text(), 'RARE')]/author/name";
        let (vn, vt) = run_virtual(&td, SPEC, query);
        let (mn, mt) = run_materialized(&td, SPEC, query);
        assert_eq!(vn, mn);
        let speedup = mt.total().as_secs_f64() / vt.total().as_secs_f64().max(1e-12);
        // How many queries must reuse the materialized view before its
        // amortized cost beats re-running the virtual query each time?
        let setup = (mt.transform + mt.renumber + mt.reindex).as_secs_f64();
        let per_query_gap = vt.total().as_secs_f64() - mt.query.as_secs_f64();
        let breakeven = if per_query_gap > 0.0 {
            format!("{:.0}", (setup / per_query_gap).ceil())
        } else {
            "never".to_owned()
        };
        t.row(&[
            format!("{f}"),
            vn.to_string(),
            ms(vt.total()),
            ms(mt.total()),
            ms(mt.query),
            format!("{speedup:.1}"),
            breakeven,
        ]);
    }
    t.print();
    println!(
        "shape check: speedup_x shrinks as rare_frac -> 1.0 (the query uses\n\
         the whole view), and breakeven_reuses falls correspondingly."
    );
}
