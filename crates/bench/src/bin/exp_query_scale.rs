//! **F3 — query time vs document size.** The headline comparison: Rhonda's
//! selective query over Sam's transformation, answered (a) virtually with
//! vPBN and (b) by materialize + renumber + re-index + query (§4.3).
//!
//! Expected shape: the materializing pipeline grows with document size
//! regardless of how little the query touches, while the vPBN pipeline
//! pays a small per-view cost (level arrays + type lists) plus work
//! proportional to the data actually used.

use vh_bench::baseline::{run_materialized, run_virtual};
use vh_bench::report::Table;
use vh_bench::timing::ms;
use vh_dataguide::TypedDocument;
use vh_workload::{generate_books, BooksConfig};

const SPEC: &str = "title { author { name } }";
const QUERY: &str = "//title[contains(text(), 'RARE')]/author/name";

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sizes: &[usize] = if full {
        &[100, 1_000, 5_000, 20_000, 50_000]
    } else {
        &[100, 1_000, 5_000, 20_000]
    };

    let mut t = Table::new(
        "F3: vPBN vs materialize-and-renumber (Sam's view, selective query)",
        &[
            "books",
            "results",
            "virt_open_ms",
            "virt_query_ms",
            "virt_total_ms",
            "mat_transform_ms",
            "mat_renumber_ms",
            "mat_reindex_ms",
            "mat_query_ms",
            "mat_total_ms",
            "speedup_x",
        ],
    );
    for &n in sizes {
        let cfg = BooksConfig {
            books: n,
            rare_fraction: 0.01,
            ..BooksConfig::default()
        };
        let td = TypedDocument::analyze(generate_books("books.xml", &cfg));
        let (vn, vt) = run_virtual(&td, SPEC, QUERY);
        let (mn, mt) = run_materialized(&td, SPEC, QUERY);
        assert_eq!(vn, mn, "pipelines disagree at n={n}");
        let speedup = mt.total().as_secs_f64() / vt.total().as_secs_f64().max(1e-12);
        t.row(&[
            n.to_string(),
            vn.to_string(),
            ms(vt.open),
            ms(vt.query),
            ms(vt.total()),
            ms(mt.transform),
            ms(mt.renumber),
            ms(mt.reindex),
            ms(mt.query),
            ms(mt.total()),
            format!("{speedup:.1}"),
        ]);
    }
    t.print();
    println!(
        "shape check: mat_total grows ~linearly with document size;\n\
         virt_total stays near-flat (level arrays are per-type), so the\n\
         speedup column should widen as the corpus grows."
    );
}
