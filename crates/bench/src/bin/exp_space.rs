//! **T2 — space overhead of vPBN.** §5: "vPBN slightly increases the space
//! cost, at worst doubling the size of a number compared to PBN, though …
//! the level arrays do not have to be stored with the numbers since the
//! level array can be stored with each type".
//!
//! Reported: encoded PBN bytes, per-*type* level-array bytes (what the
//! system stores), the hypothetical per-*node* cost (what naïve storage
//! would pay — the A2 ablation), and the resulting ratios.

use vh_bench::report::Table;
use vh_core::VirtualDocument;
use vh_dataguide::TypedDocument;
use vh_pbn::EncodedPbn;
use vh_workload::{book_scenarios, generate_books, BooksConfig};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sizes: &[usize] = if full {
        &[1_000, 10_000, 100_000]
    } else {
        &[1_000, 10_000]
    };

    let mut t = Table::new(
        "T2: space — PBN numbers vs level arrays (per-type vs per-node)",
        &[
            "books",
            "scenario",
            "nodes",
            "pbn_bytes",
            "lvl_per_type_B",
            "lvl_per_node_B",
            "per_type_ratio",
            "per_node_ratio",
        ],
    );
    for &n in sizes {
        let td = TypedDocument::analyze(generate_books("books.xml", &BooksConfig::sized(n)));
        // Encoded size of every physical PBN number.
        let pbn_bytes: usize = td
            .pbn()
            .in_document_order()
            .iter()
            .map(|(p, _)| EncodedPbn::encode(p).size())
            .sum();
        for s in book_scenarios() {
            let vd = VirtualDocument::open(&td, s.spec).expect("scenario compiles");
            let per_type = vd.levels().heap_bytes();
            // Hypothetical per-node storage: each visible node carries its
            // type's level array (one byte per entry would suffice for
            // depth < 256; we count 1 B/entry to be fair to the strawman).
            let per_node: usize = (0..vd.vdg().len())
                .map(|i| {
                    let vt = vh_core::vdg::VTypeId::from_index(i);
                    vd.nodes_of_vtype(vt).len() * vd.array(vt).len()
                })
                .sum();
            t.row(&[
                n.to_string(),
                s.name.to_string(),
                td.doc().len().to_string(),
                pbn_bytes.to_string(),
                per_type.to_string(),
                per_node.to_string(),
                format!("{:.4}", per_type as f64 / pbn_bytes as f64),
                format!("{:.2}", per_node as f64 / pbn_bytes as f64),
            ]);
        }
    }
    t.print();
    println!(
        "shape check: per_type_ratio -> 0 as documents grow (the map depends\n\
         only on the schema); per_node_ratio stays <= ~2 (the paper's 'at\n\
         worst doubling' bound, with 1 B/level vs compact 1 B/component)."
    );
}
