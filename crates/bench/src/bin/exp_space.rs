//! **T2 — space overhead of vPBN and the columnar key arena.** §5: "vPBN
//! slightly increases the space cost, at worst doubling the size of a
//! number compared to PBN, though … the level arrays do not have to be
//! stored with the numbers since the level array can be stored with each
//! type".
//!
//! Reported, per corpus size:
//!
//! * bytes per node of the `Vec<u32>` component form (4 B per component)
//!   vs the encoded key arena (variable-length keys plus the `u32` offset
//!   table) — including the worst single-key blow-up, checked against the
//!   paper's "at worst doubling" bound;
//! * per-*type* level-array bytes (what the system stores) vs the
//!   hypothetical per-*node* cost (the A2 ablation strawman), per
//!   scenario.
//!
//! `--json <dir>` writes `BENCH_space.json`; all `space/…` rows are
//! informational (sizes, not timings — the values are bytes or ratios,
//! carried in the `median_ns_per_op` field).

use vh_bench::json::{BenchReport, BenchRow};
use vh_bench::opts::{BenchOpts, Profile};
use vh_bench::report::Table;
use vh_core::VirtualDocument;
use vh_dataguide::TypedDocument;
use vh_workload::{book_scenarios, generate_books, BooksConfig};

fn main() {
    let opts = BenchOpts::from_env();
    let sizes: Vec<usize> = match (opts.books, opts.profile) {
        (Some(n), _) => vec![n],
        (None, Profile::Quick | Profile::Default) => vec![1_000, 10_000],
        (None, Profile::Full) => vec![1_000, 10_000, 100_000],
    };

    let mut report = BenchReport::new("space");
    report.config("sizes", format!("{sizes:?}"));
    report.config("profile", opts.profile.name());
    report.config("units", "bytes or ratios, not nanoseconds");

    let mut numbers = Table::new(
        "T2a: number storage — Vec<u32> components vs encoded key arena",
        &[
            "books",
            "nodes",
            "u32_B",
            "key_B",
            "offsets_B",
            "u32_B/node",
            "key_B/node",
            "arena_B/node",
            "key_vs_u32",
            "max_key_x",
        ],
    );
    let mut levels = Table::new(
        "T2b: level arrays — per-type (stored) vs per-node (strawman)",
        &[
            "books",
            "scenario",
            "lvl_per_type_B",
            "lvl_per_node_B",
            "per_type_vs_keys",
            "per_node_vs_keys",
        ],
    );

    for &n in &sizes {
        let td = TypedDocument::analyze(generate_books("books.xml", &BooksConfig::sized(n)));
        let arena = td.pbn().arena();
        let nodes = arena.len();

        // The flat component form every number-at-a-time code path pays:
        // 4 bytes per u32 component (Vec headers not counted — this is
        // the strawman's best case).
        let u32_bytes: usize = td
            .pbn()
            .in_document_order()
            .iter()
            .map(|(p, _)| p.components().len() * 4)
            .sum();
        let key_bytes = arena.total_key_bytes();
        let offsets_bytes = arena.offsets().len() * 4;
        let arena_bytes = key_bytes + offsets_bytes;

        // The paper's bound is per number: no encoded key may exceed
        // twice its 4-bytes-per-component form.
        let max_key_ratio = td
            .pbn()
            .in_document_order()
            .iter()
            .filter(|(p, _)| !p.components().is_empty())
            .map(|(p, id)| arena.key_of(*id).len() as f64 / (p.components().len() * 4) as f64)
            .fold(0.0_f64, f64::max);
        assert!(
            max_key_ratio <= 2.0,
            "a key blew past the paper's doubling bound: x{max_key_ratio:.2}"
        );

        let per_node = |b: usize| b as f64 / nodes.max(1) as f64;
        let key_vs_u32 = key_bytes as f64 / u32_bytes.max(1) as f64;
        numbers.row(&[
            n.to_string(),
            nodes.to_string(),
            u32_bytes.to_string(),
            key_bytes.to_string(),
            offsets_bytes.to_string(),
            format!("{:.2}", per_node(u32_bytes)),
            format!("{:.2}", per_node(key_bytes)),
            format!("{:.2}", per_node(arena_bytes)),
            format!("{key_vs_u32:.3}"),
            format!("{max_key_ratio:.2}"),
        ]);
        report.push(
            BenchRow::new(
                format!("space/books={n}/u32_bytes_per_node"),
                per_node(u32_bytes),
            )
            .with("nodes", nodes as f64),
        );
        report.push(
            BenchRow::new(
                format!("space/books={n}/key_bytes_per_node"),
                per_node(key_bytes),
            )
            .with("nodes", nodes as f64),
        );
        report.push(BenchRow::new(
            format!("space/books={n}/arena_bytes_per_node"),
            per_node(arena_bytes),
        ));
        report.push(BenchRow::new(
            format!("space/books={n}/key_vs_u32_ratio"),
            key_vs_u32,
        ));
        report.push(BenchRow::new(
            format!("space/books={n}/max_key_ratio"),
            max_key_ratio,
        ));

        for s in book_scenarios() {
            let vd = VirtualDocument::open(&td, s.spec).expect("scenario compiles");
            let per_type = vd.levels().heap_bytes();
            // Hypothetical per-node storage: each visible node carries its
            // type's level array (one byte per entry would suffice for
            // depth < 256; we count 1 B/entry to be fair to the strawman).
            let per_node_lvls: usize = (0..vd.vdg().len())
                .map(|i| {
                    let vt = vh_core::vdg::VTypeId::from_index(i);
                    vd.nodes_of_vtype(vt).len() * vd.array(vt).len()
                })
                .sum();
            levels.row(&[
                n.to_string(),
                s.name.to_string(),
                per_type.to_string(),
                per_node_lvls.to_string(),
                format!("{:.4}", per_type as f64 / key_bytes.max(1) as f64),
                format!("{:.2}", per_node_lvls as f64 / key_bytes.max(1) as f64),
            ]);
            report.push(BenchRow::new(
                format!("space/books={n}/levels/{}/per_type_bytes", s.name),
                per_type as f64,
            ));
            report.push(BenchRow::new(
                format!("space/books={n}/levels/{}/per_node_bytes", s.name),
                per_node_lvls as f64,
            ));
        }
    }
    numbers.print();
    levels.print();
    println!(
        "shape check: key_vs_u32 < 1 in practice (small ordinals encode in\n\
         one byte) and max_key_x <= 2.0 always (the paper's 'at worst\n\
         doubling' bound — asserted above); per-type level bytes depend\n\
         only on the schema, so their share of the arena -> 0 as documents\n\
         grow."
    );

    if let Some(dir) = &opts.json_dir {
        match report.write_to(dir) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: writing report: {e}");
                std::process::exit(3);
            }
        }
    }
}
