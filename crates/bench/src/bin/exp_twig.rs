//! **F7 (extension) — holistic twig joins over virtual hierarchies.** The
//! TwigStack algorithm is driven only by document order and containment;
//! under vPBN both are virtual-space comparisons, so the same operator
//! matches twig patterns against a transformed hierarchy without
//! materializing it. Baseline: materialize + renumber + physical TwigStack.

use std::time::Instant;
use vh_bench::report::Table;
use vh_core::transform::materialize;
use vh_core::{VDataGuide, VirtualDocument};
use vh_dataguide::TypedDocument;
use vh_query::twig::{twig_join, PhysicalTwigSource, TwigPattern, VirtualTwigSource};
use vh_workload::{generate_books, BooksConfig};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sizes: &[usize] = if full {
        &[100, 1_000, 10_000, 30_000]
    } else {
        &[100, 1_000, 10_000]
    };
    const SPEC: &str = "title { author { name } }";
    const PATTERN: &str = "title(author(name))";

    let mut t = Table::new(
        "F7: twig pattern over Sam's view — virtual TwigStack vs materialize+TwigStack",
        &[
            "books",
            "matches",
            "virt_us",
            "mat_transform_us",
            "mat_twig_us",
            "mat_total_us",
            "speedup_x",
        ],
    );
    for &n in sizes {
        let td = TypedDocument::analyze(generate_books("books.xml", &BooksConfig::sized(n)));
        let pattern = TwigPattern::parse(PATTERN).expect("pattern parses");

        // Virtual: open the view, run TwigStack on vPBN streams.
        let start = Instant::now();
        let vd = VirtualDocument::open(&td, SPEC).unwrap();
        let vsrc = VirtualTwigSource::new(&vd);
        let vmatches = twig_join(&vsrc, &pattern).len();
        let virt_us = start.elapsed().as_secs_f64() * 1e6;

        // Baseline: materialize + renumber, then physical TwigStack.
        let start = Instant::now();
        let vdg = VDataGuide::compile(SPEC, td.guide()).unwrap();
        let mat = materialize(&td, &vdg);
        let mat_td = TypedDocument::analyze(mat.doc);
        let transform_us = start.elapsed().as_secs_f64() * 1e6;
        let start = Instant::now();
        let psrc = PhysicalTwigSource::new(&mat_td);
        let pmatches = twig_join(&psrc, &pattern).len();
        let twig_us = start.elapsed().as_secs_f64() * 1e6;

        assert_eq!(vmatches, pmatches, "both engines find the same matches");
        t.row(&[
            n.to_string(),
            vmatches.to_string(),
            format!("{virt_us:.0}"),
            format!("{transform_us:.0}"),
            format!("{twig_us:.0}"),
            format!("{:.0}", transform_us + twig_us),
            format!("{:.1}", (transform_us + twig_us) / virt_us.max(0.001)),
        ]);
    }
    t.print();
    println!(
        "shape check: match counts agree exactly; the virtual operator skips\n\
         the transform entirely, so its advantage tracks the materialization\n\
         cost share."
    );
}
