//! **F7 (extension) — holistic twig joins over virtual hierarchies.** The
//! TwigStack algorithm is driven only by document order and containment;
//! under vPBN both are virtual-space comparisons, so the same operator
//! matches twig patterns against a transformed hierarchy without
//! materializing it. Baseline: materialize + renumber + physical TwigStack.
//!
//! `--threads N` runs the virtual twig join through the parallel stream
//! builder (`twig_join_opts`); `--scaling 1,2,4,8` sweeps extra thread
//! counts as ungated rows. `--json <dir>` writes `BENCH_twig.json`:
//! `twig/…` rows (virtual join at the gated thread count) fail the CI
//! bench gate on regression, `baseline/…` and `scaling/…` rows are
//! informational.

use vh_bench::json::{BenchReport, BenchRow, CALIBRATION_ROW};
use vh_bench::opts::{BenchOpts, Profile};
use vh_bench::report::Table;
use vh_bench::timing::{calibration_ns, median_ns_per_call, median_time};
use vh_core::transform::materialize;
use vh_core::{ExecOptions, VDataGuide, VirtualDocument};
use vh_dataguide::TypedDocument;
use vh_query::twig::{
    twig_join_opts, PhysicalTwigSource, TwigPattern, TwigSource, VirtualTwigSource,
};
use vh_workload::{generate_books, BooksConfig};
use vh_xml::NodeId;

/// The physical source driven by the trait's documented linear skip loop
/// (no `seek` override) — quantifies the galloped binary search on
/// identical streams.
struct LinearSeekSource<'a>(PhysicalTwigSource<'a>);

impl TwigSource for LinearSeekSource<'_> {
    fn stream(&self, test: &str) -> Vec<NodeId> {
        self.0.stream(test)
    }
    fn cmp(&self, a: NodeId, b: NodeId) -> std::cmp::Ordering {
        self.0.cmp(a, b)
    }
    fn contains(&self, a: NodeId, b: NodeId) -> bool {
        self.0.contains(a, b)
    }
}

/// Timing repetitions per measurement; the median is reported. Joins are
/// batch-calibrated ([`MIN_REP`]) so small-corpus runs are not swamped
/// by scheduler noise; the expensive materialize baseline uses plain
/// [`median_time`] (it is minutes-scale at `--full` sizes).
const REPS: usize = 9;

/// Minimum wall time of one timed join repetition.
const MIN_REP: std::time::Duration = std::time::Duration::from_millis(2);

fn main() {
    let opts = BenchOpts::from_env();
    let sizes: Vec<usize> = match (opts.books, opts.profile) {
        (Some(n), _) => vec![n],
        (None, Profile::Quick) => vec![100, 1_000],
        (None, Profile::Default) => vec![100, 1_000, 10_000],
        (None, Profile::Full) => vec![100, 1_000, 10_000, 30_000],
    };
    const SPEC: &str = "title { author { name } }";
    const PATTERN: &str = "title(author(name))";

    let mut report = BenchReport::new("twig");
    report.config("sizes", format!("{sizes:?}"));
    report.config("profile", opts.profile.name());
    report.config("threads", opts.threads);
    report.config("pattern", PATTERN);

    let mut t = Table::new(
        "F7: twig pattern over Sam's view — virtual TwigStack vs materialize+TwigStack",
        &[
            "books",
            "threads",
            "matches",
            "virt_us",
            "mat_transform_us",
            "mat_twig_us",
            "mat_total_us",
            "speedup_x",
        ],
    );
    for &n in &sizes {
        let td = TypedDocument::analyze(generate_books("books.xml", &BooksConfig::sized(n)));
        let pattern = TwigPattern::parse(PATTERN).expect("pattern parses");
        let vd = VirtualDocument::open(&td, SPEC).unwrap();
        let vsrc = VirtualTwigSource::new(&vd);

        // Baseline: materialize + renumber, then physical TwigStack
        // (measured once per size — it is thread-independent here).
        let (mat_td, transform) = median_time(REPS, || {
            let vdg = VDataGuide::compile(SPEC, td.guide()).unwrap();
            TypedDocument::analyze(materialize(&td, &vdg).doc)
        });
        let transform_us = transform.as_secs_f64() * 1e6;
        let (pmatches, twig_ns) = median_ns_per_call(REPS, MIN_REP, || {
            let psrc = PhysicalTwigSource::new(&mat_td);
            twig_join_opts(&psrc, &pattern, &ExecOptions::sequential()).len()
        });
        let twig_us = twig_ns / 1e3;
        report.push(
            BenchRow::new(
                format!("baseline/twig/books={n}/materialize"),
                transform_us * 1e3,
            )
            .with("books", n as f64),
        );
        report.push(
            BenchRow::new(format!("baseline/twig/books={n}/twigstack"), twig_us * 1e3)
                .with("books", n as f64)
                .with("matches", pmatches as f64),
        );

        // Seek ablation: identical streams and comparators, but the
        // documented linear skip loop instead of the galloped binary
        // search over arena slots (informational).
        let (lmatches, linear_ns) = median_ns_per_call(REPS, MIN_REP, || {
            let lsrc = LinearSeekSource(PhysicalTwigSource::new(&mat_td));
            twig_join_opts(&lsrc, &pattern, &ExecOptions::sequential()).len()
        });
        assert_eq!(lmatches, pmatches, "seek strategy cannot change matches");
        println!(
            "seek ablation: books={n} linear {:.0}us vs galloped {:.0}us ({:.1}x)",
            linear_ns / 1e3,
            twig_us,
            linear_ns / (twig_us * 1e3).max(0.001)
        );
        report.push(
            BenchRow::new(
                format!("baseline/twig/books={n}/twigstack-linear"),
                linear_ns,
            )
            .with("books", n as f64)
            .with("matches", lmatches as f64),
        );

        for threads in opts.thread_set() {
            let ex = ExecOptions::with_threads(threads);
            let (vmatches, virt_ns) =
                median_ns_per_call(REPS, MIN_REP, || twig_join_opts(&vsrc, &pattern, &ex).len());
            let virt_us = virt_ns / 1e3;
            assert_eq!(vmatches, pmatches, "both engines find the same matches");
            t.row(&[
                n.to_string(),
                threads.to_string(),
                vmatches.to_string(),
                format!("{virt_us:.0}"),
                format!("{transform_us:.0}"),
                format!("{twig_us:.0}"),
                format!("{:.0}", transform_us + twig_us),
                format!("{:.1}", (transform_us + twig_us) / virt_us.max(0.001)),
            ]);
            let id = if threads == opts.threads {
                format!("twig/books={n}/virt/t{threads}")
            } else {
                format!("scaling/twig/books={n}/virt/t{threads}")
            };
            report.push(
                BenchRow::new(id, virt_us * 1e3)
                    .with("books", n as f64)
                    .with("threads", threads as f64)
                    .with("matches", vmatches as f64),
            );
        }
    }
    t.print();
    println!(
        "shape check: match counts agree exactly; the virtual operator skips\n\
         the transform entirely, so its advantage tracks the materialization\n\
         cost share."
    );

    // Machine-speed reference: lets the gate cancel host-contention
    // swings between this run and the committed baseline.
    report.push(BenchRow::new(CALIBRATION_ROW, calibration_ns()));

    if let Some(dir) = &opts.json_dir {
        match report.write_to(dir) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: writing report: {e}");
                std::process::exit(3);
            }
        }
    }
}
