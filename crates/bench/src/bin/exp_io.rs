//! **F8 (extension) — simulated page I/O.** §4.3 argues that materializing
//! a view "increas\[es\] disk I/O": the whole transformed instance is
//! written and its indexes rebuilt, while vPBN reads only the byte ranges
//! a query's answers actually need. This experiment counts pages through
//! the simulated store for the task "return the serialized value of every
//! query answer".

use vh_bench::report::Table;
use vh_core::transform::materialize;
use vh_core::value::virtual_value;
use vh_core::{VDataGuide, VirtualDocument};
use vh_dataguide::TypedDocument;
use vh_query::doc::{PhysicalDoc, VirtualDoc};
use vh_query::xpath::{eval_xpath, parse_xpath};
use vh_storage::StoredDocument;
use vh_workload::{generate_books, BooksConfig};

const SPEC: &str = "title { author { name } }";
const QUERY: &str = "//title[contains(text(), 'RARE')]";

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sizes: &[usize] = if full {
        &[1_000, 10_000, 50_000]
    } else {
        &[1_000, 10_000]
    };

    let mut t = Table::new(
        "F8: pages touched to fetch the values of all query answers",
        &[
            "books",
            "answers",
            "virt_pages_read",
            "virt_bytes_read",
            "mat_pages_written",
            "mat_pages_read",
            "io_ratio_x",
        ],
    );
    for &n in sizes {
        // Fixed *absolute* answer count (~10) so the corpus grows while the
        // query's data need stays constant — the regime §4.3 targets.
        let cfg = BooksConfig {
            books: n,
            rare_fraction: 10.0 / n as f64,
            ..BooksConfig::default()
        };
        let stored =
            StoredDocument::build(TypedDocument::analyze(generate_books("books.xml", &cfg)));
        let td = stored.typed();
        let path = parse_xpath(QUERY).expect("query parses");

        // Virtual side: answer the query, stitch each answer's value from
        // the ORIGINAL store; count pages read.
        let vd = VirtualDocument::open(td, SPEC).unwrap();
        let answers = eval_xpath(&VirtualDoc::new(&vd), &path).unwrap();
        stored.reset_counters();
        let mut out = String::new();
        for &a in &answers {
            let (v, _) = virtual_value(&vd, &stored, a).expect("fault-free store");
            out.push_str(&v);
        }
        let vstats = stored.stats();

        // Materialized side: build the transformed store (every page of it
        // is written), then read the answers' values from it.
        let vdg = VDataGuide::compile(SPEC, td.guide()).unwrap();
        let mat = materialize(td, &vdg);
        let mat_stored = StoredDocument::build(TypedDocument::analyze(mat.doc));
        let pages_written = mat_stored.stats().document_pages as u64;
        let mat_answers = eval_xpath(&PhysicalDoc::with_store(&mat_stored), &path).unwrap();
        assert_eq!(mat_answers.len(), answers.len());
        mat_stored.reset_counters();
        let mut mat_out = String::new();
        for &a in &mat_answers {
            mat_out.push_str(&mat_stored.value_of(a).expect("fault-free store"));
        }
        let mstats = mat_stored.stats();
        assert_eq!(out, mat_out, "both sides deliver identical values");

        let total_mat_io = pages_written + mstats.pages_read;
        t.row(&[
            n.to_string(),
            answers.len().to_string(),
            vstats.pages_read.to_string(),
            vstats.bytes_read.to_string(),
            pages_written.to_string(),
            mstats.pages_read.to_string(),
            format!(
                "{:.1}",
                total_mat_io as f64 / (vstats.pages_read.max(1)) as f64
            ),
        ]);
    }
    t.print();
    println!(
        "shape check: virtual pages scale with the answer set; materialized\n\
         I/O is dominated by writing the whole transformed instance, so the\n\
         ratio grows with corpus size at fixed selectivity."
    );
}
