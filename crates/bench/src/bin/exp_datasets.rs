//! **T1 — dataset statistics.** Sizes, depths and type counts of the
//! evaluation corpora, plus their stored footprint (§6's storage model).
//!
//! Run with `--full` for the larger sweep used in EXPERIMENTS.md.

use vh_bench::report::Table;
use vh_dataguide::TypedDocument;
use vh_storage::StoredDocument;
use vh_workload::{generate_books, generate_xmark, BooksConfig, XmarkConfig};
use vh_xml::Document;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let book_sizes: &[usize] = if full {
        &[100, 1_000, 10_000, 100_000]
    } else {
        &[100, 1_000, 10_000]
    };
    let xmark_scales: &[f64] = if full {
        &[0.01, 0.05, 0.1, 0.5]
    } else {
        &[0.01, 0.05, 0.1]
    };

    let mut t = Table::new(
        "T1: dataset statistics",
        &[
            "corpus",
            "param",
            "nodes",
            "elements",
            "types",
            "max_depth",
            "doc_bytes",
            "index_bytes",
        ],
    );
    for &n in book_sizes {
        let doc = generate_books("books.xml", &BooksConfig::sized(n));
        add_row(&mut t, "books", &format!("n={n}"), doc);
    }
    for &sf in xmark_scales {
        let doc = generate_xmark("xmark.xml", &XmarkConfig { scale: sf, seed: 7 });
        add_row(&mut t, "xmark", &format!("sf={sf}"), doc);
    }
    t.print();
}

fn add_row(t: &mut Table, corpus: &str, param: &str, doc: Document) {
    let elements = doc.preorder().filter(|&n| doc.kind(n).is_element()).count();
    let max_depth = doc.preorder().map(|n| doc.depth(n)).max().unwrap_or(0);
    let td = TypedDocument::analyze(doc);
    let types = td.guide().len();
    let nodes = td.doc().len();
    let stored = StoredDocument::build(td);
    let st = stored.stats();
    t.row(&[
        corpus.into(),
        param.into(),
        nodes.to_string(),
        elements.to_string(),
        types.to_string(),
        max_depth.to_string(),
        st.document_bytes.to_string(),
        (st.total_bytes() - st.document_bytes).to_string(),
    ]);
}
