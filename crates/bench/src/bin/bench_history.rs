//! `bench_history` — the per-commit perf-trajectory recorder and check.
//!
//! Two subcommands:
//!
//! ```text
//! bench_history append <reports-dir> <history.jsonl> --commit <sha>
//!               [--timestamp <opaque>]
//! bench_history report <history.jsonl> [--window 10] [--drift 0.10]
//!               [--gate-prefix <id-prefix>]... [--json <path>]
//!               [--markdown <path>]
//! ```
//!
//! `append` normalizes every row of every `BENCH_*.json` in the reports
//! directory by the run's `meta/calibration` spin-row and appends one
//! JSONL record to the history file (created if missing). `report` walks
//! the last `--window` records and prints the trend table; any **gated**
//! row whose normalized median drifted more than `--drift` across the
//! window (and more than the 3 ns noise floor) fails the check. The CI
//! job keeps the history file alive across runs by downloading the
//! previous run's artifact before appending (see `.github/workflows/
//! ci.yml`, `bench-history` job).
//!
//! Exit codes: 0 = pass, 1 = gated drift, 2 = usage, 3 = I/O or
//! malformed input.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use vh_bench::gate::DEFAULT_GATE_PREFIXES;
use vh_bench::history::{
    analyze, read_history, render_json, render_markdown, render_text, HistoryRecord, DEFAULT_DRIFT,
    DEFAULT_WINDOW,
};
use vh_bench::json::BenchReport;

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err((msg, code)) => {
            eprintln!("bench_history: {msg}");
            if code == 2 {
                eprintln!("{USAGE}");
            }
            ExitCode::from(code)
        }
    }
}

const USAGE: &str = "usage:
  bench_history append <reports-dir> <history.jsonl> --commit <sha>
                [--timestamp <opaque>]
  bench_history report <history.jsonl> [--window 10] [--drift 0.10]
                [--gate-prefix <id-prefix>]... [--json <path>]
                [--markdown <path>]

append: normalize every BENCH_*.json row by the run's meta/calibration
row and append one JSONL record. report: flag any gated row whose
normalized median drifted beyond the threshold across the window
(exit 1).";

fn run() -> Result<bool, (String, u8)> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("append") => run_append(&args[1..]).map(|()| true),
        Some("report") => run_report(&args[1..]),
        Some(other) => Err((format!("unknown subcommand '{other}'"), 2)),
        None => Err(("missing subcommand".to_string(), 2)),
    }
}

fn run_append(args: &[String]) -> Result<(), (String, u8)> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut commit: Option<String> = None;
    let mut timestamp: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--commit" => {
                commit = Some(
                    it.next()
                        .ok_or(("--commit: missing value".to_string(), 2))?
                        .clone(),
                );
            }
            "--timestamp" => {
                timestamp = Some(
                    it.next()
                        .ok_or(("--timestamp: missing value".to_string(), 2))?
                        .clone(),
                );
            }
            other if other.starts_with("--") => {
                return Err((format!("unknown flag '{other}'"), 2));
            }
            p => paths.push(PathBuf::from(p)),
        }
    }
    let [reports_dir, history_path] = paths.as_slice() else {
        return Err((
            "append: expected <reports-dir> <history.jsonl>".to_string(),
            2,
        ));
    };
    let commit = commit.ok_or(("append: --commit is required".to_string(), 2))?;
    let timestamp = timestamp.unwrap_or_else(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs().to_string())
            .unwrap_or_default()
    });

    let files = report_files(reports_dir)?;
    if files.is_empty() {
        return Err((format!("no BENCH_*.json in {}", reports_dir.display()), 3));
    }
    let mut reports = Vec::new();
    for path in &files {
        reports.push(BenchReport::read_from(path).map_err(|e| (e, 3))?);
    }
    let record = HistoryRecord::from_reports(commit, timestamp, &reports).map_err(|e| (e, 3))?;
    record
        .append_to(history_path)
        .map_err(|e| (format!("{}: {e}", history_path.display()), 3))?;
    println!(
        "bench history: appended commit {} ({} rows, calibration {:.1} ns) to {}",
        record.commit,
        record.rows.len(),
        record.calibration_ns,
        history_path.display()
    );
    Ok(())
}

fn run_report(args: &[String]) -> Result<bool, (String, u8)> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut window = DEFAULT_WINDOW;
    let mut drift = DEFAULT_DRIFT;
    let mut prefixes: Vec<String> = Vec::new();
    let mut json_out: Option<PathBuf> = None;
    let mut md_out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--window" => {
                let v = it
                    .next()
                    .ok_or(("--window: missing value".to_string(), 2))?;
                window = v
                    .parse()
                    .map_err(|_| (format!("--window: bad count '{v}'"), 2))?;
                if window < 2 {
                    return Err((format!("--window: '{v}' must be >= 2"), 2));
                }
            }
            "--drift" => {
                let v = it.next().ok_or(("--drift: missing value".to_string(), 2))?;
                drift = v
                    .parse()
                    .map_err(|_| (format!("--drift: bad fraction '{v}'"), 2))?;
                if !(0.0..10.0).contains(&drift) {
                    return Err((format!("--drift: '{v}' out of range [0, 10)"), 2));
                }
            }
            "--gate-prefix" => {
                prefixes.push(
                    it.next()
                        .ok_or(("--gate-prefix: missing value".to_string(), 2))?
                        .clone(),
                );
            }
            "--json" => {
                json_out = Some(PathBuf::from(
                    it.next().ok_or(("--json: missing value".to_string(), 2))?,
                ));
            }
            "--markdown" => {
                md_out = Some(PathBuf::from(
                    it.next()
                        .ok_or(("--markdown: missing value".to_string(), 2))?,
                ));
            }
            other if other.starts_with("--") => {
                return Err((format!("unknown flag '{other}'"), 2));
            }
            p => paths.push(PathBuf::from(p)),
        }
    }
    let [history_path] = paths.as_slice() else {
        return Err(("report: expected <history.jsonl>".to_string(), 2));
    };
    let prefixes: Vec<&str> = if prefixes.is_empty() {
        DEFAULT_GATE_PREFIXES.to_vec()
    } else {
        prefixes.iter().map(String::as_str).collect()
    };

    let history = read_history(history_path).map_err(|e| (e, 3))?;
    if history.is_empty() {
        return Err((format!("{}: empty history", history_path.display()), 3));
    }
    let trends = analyze(&history, window, drift, &prefixes);
    print!("{}", render_text(&trends, window, drift));
    if let Some(path) = &json_out {
        write_out(path, render_json(&trends, window, drift).render())?;
    }
    if let Some(path) = &md_out {
        write_out(path, render_markdown(&trends, window, drift))?;
    }
    let failures = trends.iter().filter(|t| t.fails()).count();
    println!(
        "bench history: {} records, {} rows trended, {} gated drift(s), gated prefixes {:?}",
        history.len(),
        trends.len(),
        failures,
        prefixes
    );
    Ok(failures == 0)
}

fn write_out(path: &Path, text: String) -> Result<(), (String, u8)> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| (format!("{}: {e}", dir.display()), 3))?;
    }
    std::fs::write(path, text).map_err(|e| (format!("{}: {e}", path.display()), 3))
}

/// All `BENCH_*.json` files in `dir`, sorted by name for stable records.
fn report_files(dir: &Path) -> Result<Vec<PathBuf>, (String, u8)> {
    let entries = std::fs::read_dir(dir).map_err(|e| (format!("{}: {e}", dir.display()), 3))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    Ok(files)
}
