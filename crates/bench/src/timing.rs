//! Minimal wall-clock timing helpers for the experiment binaries.
//! (Criterion handles the statistical micro-benchmarks; these binaries
//! print the tables/series of the paper-style reports.)

use std::time::{Duration, Instant};

/// Runs `f` once, returning its result and elapsed wall time.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Runs `f` `runs` times and returns the median elapsed time (the last
/// run's value is returned alongside so results can be sanity-checked).
pub fn median_time<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(runs >= 1);
    let mut times = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let (v, d) = time(&mut f);
        times.push(d);
        last = Some(v);
    }
    times.sort();
    (last.expect("runs >= 1"), times[times.len() / 2])
}

/// Median nanoseconds per call of `f`, calibrated so each timed
/// repetition lasts at least `min_rep` by batching calls (a sub-5ns
/// check is meaningless against a ~µs scheduler tick on a shared core).
/// Returns the last call's value alongside for sanity checks. This is
/// the estimator behind the `BENCH_*.json` medians the CI gate compares.
pub fn median_ns_per_call<T>(reps: usize, min_rep: Duration, mut f: impl FnMut() -> T) -> (T, f64) {
    assert!(reps >= 1);
    // Calibration: one warmup call sizes the batch.
    let (mut last, once) = time(&mut f);
    let iters = (min_rep.as_nanos() / once.as_nanos().max(1)).clamp(1, 100_000) as usize;
    let mut per_call: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            last = f();
        }
        per_call.push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
    }
    per_call.sort_by(|a, b| a.total_cmp(b));
    (last, per_call[per_call.len() / 2])
}

/// Median ns per call of a fixed, deterministic integer workload (a
/// xorshift chain the optimizer cannot fold away). Every experiment
/// stores this as the [`meta/calibration`](crate::json::CALIBRATION_ROW)
/// row of its report; the gate divides per-row ratios by the calibration
/// ratio, cancelling uniform machine-speed shifts — shared CI runners
/// routinely swing 1.5x between runs from host contention, which would
/// otherwise fail every gated row at once. The workload lives in this
/// crate and never changes with engine code, so a genuine engine
/// regression cannot hide behind it.
pub fn calibration_ns() -> f64 {
    let (_, ns) = median_ns_per_call(9, Duration::from_millis(2), || {
        let mut x = 0x9e37_79b9_7f4a_7c15_u64;
        let mut acc = 0u64;
        for _ in 0..4096 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc = acc.wrapping_add(x);
        }
        std::hint::black_box(acc)
    });
    ns
}

/// Formats a duration as microseconds with three decimals (stable column
/// widths in reports).
pub fn us(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e6)
}

/// Formats a duration as milliseconds with three decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures_and_returns() {
        let (v, d) = time(|| 6 * 7);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn median_over_runs() {
        let mut calls = 0;
        let (v, d) = median_time(5, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 5);
        assert_eq!(v, 5);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn calibrated_median_batches_short_calls() {
        let mut calls = 0u64;
        let (v, ns) = median_ns_per_call(3, Duration::from_micros(50), || {
            calls += 1;
            calls
        });
        assert_eq!(v, calls);
        assert!(calls > 3, "sub-µs calls are batched ({calls} calls)");
        assert!(ns >= 0.0);
    }

    #[test]
    fn calibration_is_positive_and_finite() {
        let ns = calibration_ns();
        assert!(ns.is_finite() && ns > 0.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(us(Duration::from_micros(1500)), "1500.000");
        assert_eq!(ms(Duration::from_millis(2)), "2.000");
    }
}
