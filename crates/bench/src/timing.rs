//! Minimal wall-clock timing helpers for the experiment binaries.
//! (Criterion handles the statistical micro-benchmarks; these binaries
//! print the tables/series of the paper-style reports.)

use std::time::{Duration, Instant};

/// Runs `f` once, returning its result and elapsed wall time.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Runs `f` `runs` times and returns the median elapsed time (the last
/// run's value is returned alongside so results can be sanity-checked).
pub fn median_time<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(runs >= 1);
    let mut times = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let (v, d) = time(&mut f);
        times.push(d);
        last = Some(v);
    }
    times.sort();
    (last.expect("runs >= 1"), times[times.len() / 2])
}

/// Formats a duration as microseconds with three decimals (stable column
/// widths in reports).
pub fn us(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e6)
}

/// Formats a duration as milliseconds with three decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures_and_returns() {
        let (v, d) = time(|| 6 * 7);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn median_over_runs() {
        let mut calls = 0;
        let (v, d) = median_time(5, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 5);
        assert_eq!(v, 5);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn formatting() {
        assert_eq!(us(Duration::from_micros(1500)), "1500.000");
        assert_eq!(ms(Duration::from_millis(2)), "2.000");
    }
}
