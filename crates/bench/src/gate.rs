//! Benchmark-regression gate: compares a current `BENCH_*.json` run
//! against a committed baseline and reports findings.
//!
//! Policy (mirrors `.github/workflows/ci.yml`'s `bench-gate` job):
//!
//! * Only rows whose id starts with a **gated prefix** can fail the gate
//!   (default: `axes/axis/` and `twig/` — the paper's hot paths — plus
//!   `obs/run/`, the observability layer's end-to-end query cost, and
//!   `update/apply`, the edit subsystem's throughput). Everything else —
//!   thread-scaling sweeps, cache demos, informational totals — is
//!   compared for the log but never fails CI.
//! * A gated row regresses when its median ns/op exceeds the baseline by
//!   more than the threshold (default 15%) **and** by more than the
//!   absolute noise floor ([`NOISE_FLOOR_NS`]). The single-digit-ns axis
//!   predicates swing ±40% run-to-run from host contention alone; a
//!   relative threshold cannot tell that jitter from a regression, an
//!   absolute floor can. Under-floor slowdowns still render with their
//!   ratio in the log.
//! * A gated baseline row that is *missing* from the current run is also
//!   a failure: silently dropping a measurement must not pass the gate.
//! * New rows (present now, absent from the baseline) are reported as
//!   informational — they appear when experiments grow and are adopted
//!   into the baseline on the next rebase.
//! * When both reports carry the `meta/calibration` reference row, all
//!   ratios are divided by the machine-speed factor
//!   (current calibration / baseline calibration, clamped to [0.25, 4])
//!   before thresholding. Shared runners swing 1.5x between runs from
//!   host contention; the fixed reference workload moves with the host,
//!   engine regressions do not.

use crate::json::{BenchReport, CALIBRATION_ROW};

/// Gated row-id prefixes when the caller supplies none.
pub const DEFAULT_GATE_PREFIXES: &[&str] = &[
    "axes/axis/",
    "twig/",
    "obs/run/",
    "serve/",
    "update/apply",
    "update/cache_",
];

/// Median-ns regression threshold when the caller supplies none (15%).
pub const DEFAULT_THRESHOLD: f64 = 0.15;

/// Absolute-delta noise floor: a gated row whose normalized slowdown is
/// this many nanoseconds or less never fails the gate, whatever its
/// ratio. Sized to the observed run-to-run jitter of the 1–6 ns axis
/// predicates on a contended host; rows doing real work (tens of ns and
/// up) clear it with any regression the relative threshold would catch.
pub const NOISE_FLOOR_NS: f64 = 3.0;

/// How one row moved between baseline and current run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Within threshold (or faster).
    Ok,
    /// Slower than threshold but the row is not gated.
    SlowerUngated,
    /// Slower than threshold on a gated row — fails the gate.
    Regressed,
    /// Gated baseline row missing from the current run — fails the gate.
    MissingGated,
    /// Ungated baseline row missing from the current run.
    MissingUngated,
    /// Row only exists in the current run.
    New,
}

/// One compared row.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Row id (shared between baseline and current when both exist).
    pub id: String,
    /// Baseline median ns/op, if the row existed in the baseline.
    pub baseline_ns: Option<f64>,
    /// Current median ns/op, if the row exists now.
    pub current_ns: Option<f64>,
    /// `current / baseline` when both sides exist.
    pub ratio: Option<f64>,
    /// Machine-normalized `current - baseline` in ns — the **pre-floor**
    /// delta, recorded even when the noise floor absorbs it so history
    /// consumers can tell a floored row from a genuinely flat one.
    pub delta_ns: Option<f64>,
    /// True when the row exceeded the relative threshold but was kept
    /// `Ok` solely by the [`NOISE_FLOOR_NS`] absolute floor.
    pub floored: bool,
    /// The gate's classification of this row.
    pub verdict: Verdict,
}

impl Finding {
    /// True when this finding fails the gate.
    pub fn fails(&self) -> bool {
        matches!(self.verdict, Verdict::Regressed | Verdict::MissingGated)
    }

    /// One log line: `id  base_ns -> cur_ns  (x1.03)  verdict`.
    pub fn render(&self) -> String {
        let fmt = |v: Option<f64>| match v {
            Some(n) => format!("{n:.1}"),
            None => "-".to_string(),
        };
        let ratio = match self.ratio {
            Some(r) => format!("x{r:.3}"),
            None => "-".to_string(),
        };
        let floored = if self.floored { "  [floored]" } else { "" };
        format!(
            "{:<44} {:>12} -> {:>12} ns  {:>8}  {:?}{}",
            self.id,
            fmt(self.baseline_ns),
            fmt(self.current_ns),
            ratio,
            self.verdict,
            floored
        )
    }
}

fn is_gated(id: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| id.starts_with(p))
}

/// Bounds on the machine-speed factor: normalization cancels plausible
/// host-contention swings, never order-of-magnitude shifts (a baseline
/// from a very different machine should be rebased, not normalized away).
const FACTOR_CLAMP: (f64, f64) = (0.25, 4.0);

/// The machine-speed factor between two runs: the ratio of their
/// [`CALIBRATION_ROW`] medians (current / baseline), clamped to
/// `FACTOR_CLAMP` ([0.25, 4]). `None` when either side lacks a positive
/// calibration row — the gate then compares raw ratios.
pub fn machine_factor(baseline: &BenchReport, current: &BenchReport) -> Option<f64> {
    let base = baseline.row(CALIBRATION_ROW)?.median_ns_per_op;
    let cur = current.row(CALIBRATION_ROW)?.median_ns_per_op;
    if base > 0.0 && cur > 0.0 {
        Some((cur / base).clamp(FACTOR_CLAMP.0, FACTOR_CLAMP.1))
    } else {
        None
    }
}

/// Compares one baseline report against the matching current report.
///
/// Findings come back in baseline-row order with current-only rows
/// appended, so the gate log reads like the baseline file. When both
/// reports carry a [`CALIBRATION_ROW`], every other row's ratio is
/// divided by the [`machine_factor`] before thresholding — the
/// calibration row itself keeps its raw ratio so the log shows the
/// machine swing.
pub fn compare_reports(
    baseline: &BenchReport,
    current: &BenchReport,
    threshold: f64,
    gate_prefixes: &[&str],
) -> Vec<Finding> {
    let factor = machine_factor(baseline, current).unwrap_or(1.0);
    let mut findings = Vec::new();
    for base in &baseline.rows {
        let gated = is_gated(&base.id, gate_prefixes);
        match current.row(&base.id) {
            None => findings.push(Finding {
                id: base.id.clone(),
                baseline_ns: Some(base.median_ns_per_op),
                current_ns: None,
                ratio: None,
                delta_ns: None,
                floored: false,
                verdict: if gated {
                    Verdict::MissingGated
                } else {
                    Verdict::MissingUngated
                },
            }),
            Some(cur) => {
                // Guard the division: a zero-median baseline row can only
                // regress by appearing slower than *any* positive time, so
                // treat ratio as 1.0 when both are zero.
                let norm = if base.id == CALIBRATION_ROW {
                    1.0
                } else {
                    factor
                };
                let ratio = if base.median_ns_per_op > 0.0 {
                    cur.median_ns_per_op / base.median_ns_per_op / norm
                } else if cur.median_ns_per_op > 0.0 {
                    f64::INFINITY
                } else {
                    1.0
                };
                // Both tests must agree before a row counts as slower:
                // the relative threshold (scale-free, catches real work
                // getting slower) and the absolute floor (screens out
                // scheduler jitter on the single-digit-ns rows).
                let delta_ns = cur.median_ns_per_op / norm - base.median_ns_per_op;
                let over_threshold = ratio > 1.0 + threshold;
                let slower = over_threshold && delta_ns > NOISE_FLOOR_NS;
                findings.push(Finding {
                    id: base.id.clone(),
                    baseline_ns: Some(base.median_ns_per_op),
                    current_ns: Some(cur.median_ns_per_op),
                    ratio: Some(ratio),
                    delta_ns: Some(delta_ns),
                    floored: over_threshold && !slower,
                    verdict: match (slower, gated) {
                        (false, _) => Verdict::Ok,
                        (true, true) => Verdict::Regressed,
                        (true, false) => Verdict::SlowerUngated,
                    },
                });
            }
        }
    }
    for cur in &current.rows {
        if baseline.row(&cur.id).is_none() {
            findings.push(Finding {
                id: cur.id.clone(),
                baseline_ns: None,
                current_ns: Some(cur.median_ns_per_op),
                ratio: None,
                delta_ns: None,
                floored: false,
                verdict: Verdict::New,
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::BenchRow;

    fn report(rows: &[(&str, f64)]) -> BenchReport {
        let mut r = BenchReport::new("axes");
        for (id, ns) in rows {
            r.push(BenchRow::new(*id, *ns));
        }
        r
    }

    #[test]
    fn within_threshold_passes() {
        let base = report(&[("axes/axis/self/pbn/t1", 100.0)]);
        let cur = report(&[("axes/axis/self/pbn/t1", 114.0)]);
        let f = compare_reports(&base, &cur, 0.15, DEFAULT_GATE_PREFIXES);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].verdict, Verdict::Ok);
        assert!(!f[0].fails());
        assert!((f[0].ratio.unwrap() - 1.14).abs() < 1e-9);
    }

    #[test]
    fn gated_regression_fails() {
        let base = report(&[("twig/books=100/virt/t1", 100.0)]);
        let cur = report(&[("twig/books=100/virt/t1", 120.0)]);
        let f = compare_reports(&base, &cur, 0.15, DEFAULT_GATE_PREFIXES);
        assert_eq!(f[0].verdict, Verdict::Regressed);
        assert!(f[0].fails());
    }

    #[test]
    fn ungated_slowdown_is_reported_but_passes() {
        let base = report(&[("scaling/axes/t4", 100.0), ("cache/open/warm", 10.0)]);
        let cur = report(&[("scaling/axes/t4", 500.0), ("cache/open/warm", 50.0)]);
        let f = compare_reports(&base, &cur, 0.15, DEFAULT_GATE_PREFIXES);
        assert!(f.iter().all(|x| x.verdict == Verdict::SlowerUngated));
        assert!(f.iter().all(|x| !x.fails()));
    }

    #[test]
    fn missing_gated_row_fails_missing_ungated_does_not() {
        let base = report(&[("axes/axis/child/vpbn/t1", 50.0), ("cache/open/cold", 9.0)]);
        let cur = report(&[]);
        let f = compare_reports(&base, &cur, 0.15, DEFAULT_GATE_PREFIXES);
        assert_eq!(f[0].verdict, Verdict::MissingGated);
        assert!(f[0].fails());
        assert_eq!(f[1].verdict, Verdict::MissingUngated);
        assert!(!f[1].fails());
    }

    #[test]
    fn new_rows_are_informational() {
        let base = report(&[]);
        let cur = report(&[("axes/axis/self/pbn/t1", 10.0)]);
        let f = compare_reports(&base, &cur, 0.15, DEFAULT_GATE_PREFIXES);
        assert_eq!(f[0].verdict, Verdict::New);
        assert!(!f[0].fails());
    }

    #[test]
    fn zero_baseline_is_handled() {
        let base = report(&[("axes/axis/self/pbn/t1", 0.0)]);
        let cur = report(&[("axes/axis/self/pbn/t1", 10.0)]);
        let f = compare_reports(&base, &cur, 0.15, DEFAULT_GATE_PREFIXES);
        assert_eq!(f[0].verdict, Verdict::Regressed);
        let same = compare_reports(
            &base,
            &report(&[("axes/axis/self/pbn/t1", 0.0)]),
            0.15,
            DEFAULT_GATE_PREFIXES,
        );
        assert_eq!(same[0].verdict, Verdict::Ok);
    }

    #[test]
    fn uniform_machine_slowdown_is_normalized_away() {
        // Host ran 1.5x slower: calibration and every row moved together.
        let base = report(&[(CALIBRATION_ROW, 1000.0), ("twig/books=100/virt/t1", 100.0)]);
        let cur = report(&[(CALIBRATION_ROW, 1500.0), ("twig/books=100/virt/t1", 150.0)]);
        assert_eq!(machine_factor(&base, &cur), Some(1.5));
        let f = compare_reports(&base, &cur, 0.15, DEFAULT_GATE_PREFIXES);
        let twig = f.iter().find(|x| x.id.starts_with("twig/")).unwrap();
        assert_eq!(twig.verdict, Verdict::Ok);
        assert!((twig.ratio.unwrap() - 1.0).abs() < 1e-9);
        // The calibration row keeps its raw ratio so the swing is visible.
        let cal = f.iter().find(|x| x.id == CALIBRATION_ROW).unwrap();
        assert!((cal.ratio.unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn per_row_regression_still_fails_under_normalization() {
        // Host 1.2x slower, but the twig row got 2x slower: x2.0/1.2 > 1.15.
        let base = report(&[(CALIBRATION_ROW, 1000.0), ("twig/books=100/virt/t1", 100.0)]);
        let cur = report(&[(CALIBRATION_ROW, 1200.0), ("twig/books=100/virt/t1", 200.0)]);
        let f = compare_reports(&base, &cur, 0.15, DEFAULT_GATE_PREFIXES);
        let twig = f.iter().find(|x| x.id.starts_with("twig/")).unwrap();
        assert_eq!(twig.verdict, Verdict::Regressed);
    }

    #[test]
    fn machine_factor_is_clamped_and_optional() {
        let base = report(&[(CALIBRATION_ROW, 100.0), ("twig/a", 10.0)]);
        let cur = report(&[(CALIBRATION_ROW, 10_000.0), ("twig/a", 10.0)]);
        // A 100x calibration swing is not believable contention: clamp to 4.
        assert_eq!(machine_factor(&base, &cur), Some(4.0));
        // Without a calibration row on both sides, raw ratios are used.
        let plain = report(&[("twig/a", 10.0)]);
        assert_eq!(machine_factor(&plain, &cur), None);
        let f = compare_reports(&plain, &report(&[("twig/a", 20.0)]), 0.15, &["twig/"]);
        assert_eq!(f[0].verdict, Verdict::Regressed);
    }

    #[test]
    fn sub_floor_jitter_on_tiny_rows_passes() {
        // 4.2 -> 6.8 ns is a 1.6x ratio but only a 2.6 ns delta — host
        // jitter on a row this small, not a regression.
        let base = report(&[("axes/axis/following-sibling/vpbn/t1", 4.2)]);
        let cur = report(&[("axes/axis/following-sibling/vpbn/t1", 6.8)]);
        let f = compare_reports(&base, &cur, 0.15, DEFAULT_GATE_PREFIXES);
        assert_eq!(f[0].verdict, Verdict::Ok);
        // The floor's intervention is recorded, with the pre-floor delta,
        // so downstream history consumers see the row moved.
        assert!(f[0].floored);
        assert!((f[0].delta_ns.unwrap() - 2.6).abs() < 1e-9);
        assert!(f[0].render().contains("[floored]"));
        // The same ratio on a row doing real work clears the floor.
        let base = report(&[("axes/axis/descendant-range/t1", 100.0)]);
        let cur = report(&[("axes/axis/descendant-range/t1", 160.0)]);
        let f = compare_reports(&base, &cur, 0.15, DEFAULT_GATE_PREFIXES);
        assert_eq!(f[0].verdict, Verdict::Regressed);
    }

    #[test]
    fn noise_floor_delta_is_normalized() {
        // Host 2x slower: the raw 4 ns delta on the tiny row is entirely
        // machine swing; normalized delta is 0 and the row passes.
        let base = report(&[(CALIBRATION_ROW, 1000.0), ("axes/axis/self/vpbn/t1", 4.0)]);
        let cur = report(&[(CALIBRATION_ROW, 2000.0), ("axes/axis/self/vpbn/t1", 8.0)]);
        let f = compare_reports(&base, &cur, 0.15, DEFAULT_GATE_PREFIXES);
        let row = f.iter().find(|x| x.id.starts_with("axes/")).unwrap();
        assert_eq!(row.verdict, Verdict::Ok);
    }

    #[test]
    fn findings_render_as_log_lines() {
        let base = report(&[("axes/axis/self/pbn/t1", 100.0)]);
        let cur = report(&[("axes/axis/self/pbn/t1", 90.0)]);
        let f = compare_reports(&base, &cur, 0.15, DEFAULT_GATE_PREFIXES);
        let line = f[0].render();
        assert!(line.contains("axes/axis/self/pbn/t1"));
        assert!(line.contains("x0.900"));
        assert!(line.contains("Ok"));
    }
}
