//! Machine-readable benchmark reports (`BENCH_<exp>.json`).
//!
//! The experiment binaries print human tables *and* — when `--json <dir>`
//! is given — write one JSON report per experiment so the CI bench gate
//! (`bench_diff`) can compare runs numerically. The format is hand-rolled
//! (the workspace deliberately carries no serde): a tiny recursive-descent
//! parser plus a pretty renderer, both total over the JSON value space we
//! emit.
//!
//! Report shape:
//!
//! ```json
//! {
//!   "experiment": "axes",
//!   "config": { "books": "150", "profile": "quick" },
//!   "rows": [
//!     { "id": "axes/axis/ancestor/vpbn/t1",
//!       "median_ns_per_op": 41.5,
//!       "ops_per_s": 24096385.5,
//!       "extra": { "threads": 1.0, "hits": 300.0 } }
//!   ]
//! }
//! ```
//!
//! Row `id`s are stable slash-separated paths; the gate selects rows by
//! id prefix (e.g. `axes/axis/`), so informational rows (cache demos,
//! scaling sweeps at >1 threads) use prefixes the gate ignores.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A JSON value — just enough for benchmark reports.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (we only emit finite f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline (stable
    /// diffs for committed baselines).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on a single line with no trailing newline — the JSONL form
    /// used by the bench-history trajectory file, one record per line.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.render_compact_into(&mut out);
        out
    }

    fn render_compact_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_num(out, *n),
            Json::Str(s) => render_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_compact_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(out, k);
                    out.push(':');
                    v.render_compact_into(out);
                }
                out.push('}');
            }
        }
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_num(out, *n),
            Json::Str(s) => render_str(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.render_into(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    push_indent(out, indent + 1);
                    render_str(out, k);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (must consume all non-whitespace input).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; absent beats invalid.
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_str(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        Some(c) => Err(format!("unexpected byte '{}' at {pos}", *c as char)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected '{lit}' at byte {pos}"))
    }
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => {
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".to_string())
            }
            b'\\' => {
                let esc = bytes.get(*pos).copied().ok_or("dangling escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        *pos += 4;
                        let c = char::from_u32(code).ok_or("\\u escape is not a scalar value")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("unknown escape '\\{}'", other as char)),
                }
            }
            b => out.push(b),
        }
    }
    Err("unterminated string".into())
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

/// Row id under which every experiment stores the machine-speed
/// reference measurement (`vh_bench::timing::calibration_ns`). The gate
/// divides per-row ratios by this row's ratio, cancelling uniform
/// host-speed shifts between runs on shared CI machines.
pub const CALIBRATION_ROW: &str = "meta/calibration";

/// One measured series in a report, addressed by a stable slash path.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Stable identifier, e.g. `axes/axis/ancestor/vpbn/t1`. The bench
    /// gate matches rows across runs by this id and selects gated rows
    /// by its prefix.
    pub id: String,
    /// Median wall-clock nanoseconds per operation.
    pub median_ns_per_op: f64,
    /// Operations per second implied by the median (`1e9 / median_ns`).
    pub ops_per_s: f64,
    /// Free-form numeric annotations (thread count, hit counts, sizes).
    pub extra: Vec<(String, f64)>,
}

impl BenchRow {
    /// Builds a row from a median ns/op measurement.
    pub fn new(id: impl Into<String>, median_ns_per_op: f64) -> Self {
        BenchRow {
            id: id.into(),
            median_ns_per_op,
            ops_per_s: if median_ns_per_op > 0.0 {
                1e9 / median_ns_per_op
            } else {
                0.0
            },
            extra: Vec::new(),
        }
    }

    /// Attaches one numeric annotation (builder style).
    pub fn with(mut self, key: impl Into<String>, value: f64) -> Self {
        self.extra.push((key.into(), value));
        self
    }
}

/// A full experiment report: configuration echo plus measured rows.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Experiment name (`axes`, `twig`, `sjoin`, …) — also the filename
    /// stem: `BENCH_<experiment>.json`.
    pub experiment: String,
    /// Configuration echo (corpus size, profile, scaling set) as strings.
    pub config: Vec<(String, String)>,
    /// Measured rows in emission order.
    pub rows: Vec<BenchRow>,
}

impl BenchReport {
    /// Starts an empty report for `experiment`.
    pub fn new(experiment: impl Into<String>) -> Self {
        BenchReport {
            experiment: experiment.into(),
            config: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Records one configuration key/value.
    pub fn config(&mut self, key: impl Into<String>, value: impl ToString) {
        self.config.push((key.into(), value.to_string()));
    }

    /// Appends a measured row.
    pub fn push(&mut self, row: BenchRow) {
        self.rows.push(row);
    }

    /// Finds a row by exact id.
    pub fn row(&self, id: &str) -> Option<&BenchRow> {
        self.rows.iter().find(|r| r.id == id)
    }

    /// The report filename for this experiment (`BENCH_<exp>.json`).
    pub fn filename(&self) -> String {
        format!("BENCH_{}.json", self.experiment)
    }

    /// Converts to the JSON document shape.
    pub fn to_json(&self) -> Json {
        let config = self
            .config
            .iter()
            .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
            .collect();
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let mut fields = vec![
                    ("id".to_string(), Json::Str(r.id.clone())),
                    (
                        "median_ns_per_op".to_string(),
                        Json::Num(r.median_ns_per_op),
                    ),
                    ("ops_per_s".to_string(), Json::Num(r.ops_per_s)),
                ];
                if !r.extra.is_empty() {
                    fields.push((
                        "extra".to_string(),
                        Json::Obj(
                            r.extra
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                                .collect(),
                        ),
                    ));
                }
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            ("experiment".to_string(), Json::Str(self.experiment.clone())),
            ("config".to_string(), Json::Obj(config)),
            ("rows".to_string(), Json::Arr(rows)),
        ])
    }

    /// Reconstructs a report from parsed JSON.
    pub fn from_json(value: &Json) -> Result<BenchReport, String> {
        let experiment = value
            .get("experiment")
            .and_then(Json::as_str)
            .ok_or("report is missing 'experiment'")?
            .to_string();
        let mut report = BenchReport::new(experiment);
        if let Some(Json::Obj(fields)) = value.get("config") {
            for (k, v) in fields {
                report
                    .config
                    .push((k.clone(), v.as_str().unwrap_or_default().to_string()));
            }
        }
        for row in value.get("rows").and_then(Json::as_arr).unwrap_or(&[]) {
            let id = row
                .get("id")
                .and_then(Json::as_str)
                .ok_or("row is missing 'id'")?
                .to_string();
            let median = row
                .get("median_ns_per_op")
                .and_then(Json::as_num)
                .ok_or_else(|| format!("row '{id}' is missing 'median_ns_per_op'"))?;
            let mut bench_row = BenchRow::new(id, median);
            if let Some(ops) = row.get("ops_per_s").and_then(Json::as_num) {
                bench_row.ops_per_s = ops;
            }
            if let Some(Json::Obj(extra)) = row.get("extra") {
                for (k, v) in extra {
                    bench_row.extra.push((k.clone(), v.as_num().unwrap_or(0.0)));
                }
            }
            report.rows.push(bench_row);
        }
        Ok(report)
    }

    /// Writes `BENCH_<exp>.json` into `dir` (created if missing); returns
    /// the path written.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.filename());
        std::fs::write(&path, self.to_json().render())?;
        Ok(path)
    }

    /// Reads a report back from a `BENCH_*.json` file.
    pub fn read_from(path: &Path) -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let value = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        BenchReport::from_json(&value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_render_and_parse() {
        let v = Json::Obj(vec![
            ("s".into(), Json::Str("a \"quoted\"\nline\t\u{1}".into())),
            (
                "nums".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5), Json::Num(1e15)]),
            ),
            ("flag".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn compact_render_is_one_line_and_round_trips() {
        let v = Json::Obj(vec![
            ("s".into(), Json::Str("a\nb".into())),
            (
                "nums".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let line = v.render_compact();
        assert!(!line.contains('\n'), "JSONL records must be one line");
        assert_eq!(Json::parse(&line).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = Json::parse(r#""éA""#).unwrap();
        assert_eq!(v, Json::Str("éA".into()));
    }

    #[test]
    fn report_round_trips() {
        let mut r = BenchReport::new("axes");
        r.config("books", 150);
        r.config("profile", "quick");
        r.push(BenchRow::new("axes/axis/ancestor/vpbn/t1", 41.5).with("threads", 1.0));
        r.push(BenchRow::new("cache/open/warm", 1200.0));
        let back = BenchReport::from_json(&Json::parse(&r.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.filename(), "BENCH_axes.json");
        assert!(back.row("cache/open/warm").is_some());
        assert!(back.row("missing").is_none());
    }

    #[test]
    fn ops_per_s_is_derived_from_median() {
        let row = BenchRow::new("x", 100.0);
        assert!((row.ops_per_s - 1e7).abs() < 1e-6);
        assert_eq!(BenchRow::new("x", 0.0).ops_per_s, 0.0);
    }

    #[test]
    fn write_and_read_files() {
        let dir = std::env::temp_dir().join("vh_bench_json_test");
        let mut r = BenchReport::new("unit");
        r.push(BenchRow::new("unit/row", 5.0));
        let path = r.write_to(&dir).unwrap();
        assert!(path.ends_with("BENCH_unit.json"));
        let back = BenchReport::read_from(&path).unwrap();
        assert_eq!(back, r);
        std::fs::remove_dir_all(&dir).ok();
    }
}
