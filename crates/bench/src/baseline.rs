//! The materialize-and-renumber baseline (§4.3).
//!
//! What a system without vPBN must do before it can answer Rhonda's query:
//! 1. physically build the transformed instance,
//! 2. re-parse / renumber it (fresh PBN assignment + DataGuide),
//! 3. rebuild the storage structures (document string, value index, type
//!    index, name index, headers),
//! 4. only then evaluate the query with plain PBN.
//!
//! [`run_materialized`] measures each stage; [`run_virtual`] is the vPBN
//! side: compile the vDataGuide, build level arrays and the per-type node
//! lists, evaluate the same query virtually.

use std::time::Duration;
use vh_core::transform::materialize;
use vh_core::{VDataGuide, VirtualDocument};
use vh_dataguide::TypedDocument;
use vh_query::doc::{PhysicalDoc, VirtualDoc};
use vh_query::xpath::{eval_xpath, parse_xpath};
use vh_storage::StoredDocument;
use vh_xml::NodeId;

use crate::timing::time;

/// Stage timings of the materializing pipeline.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaterializeTimings {
    /// Building the transformed instance.
    pub transform: Duration,
    /// Renumbering + re-deriving the DataGuide.
    pub renumber: Duration,
    /// Rebuilding string storage and all indexes.
    pub reindex: Duration,
    /// Evaluating the query on the transformed store.
    pub query: Duration,
}

impl MaterializeTimings {
    /// End-to-end latency.
    pub fn total(&self) -> Duration {
        self.transform + self.renumber + self.reindex + self.query
    }
}

/// Runs the full materializing pipeline; returns the result count and the
/// per-stage timings. The query is an XPath evaluated over the transformed
/// document (whose forest is wrapped in a synthetic `vroot`).
pub fn run_materialized(
    td: &TypedDocument,
    spec: &str,
    query: &str,
) -> (usize, MaterializeTimings) {
    let vdg = VDataGuide::compile(spec, td.guide()).expect("scenario spec compiles");
    let mut t = MaterializeTimings::default();

    let (mat, d) = time(|| materialize(td, &vdg));
    t.transform = d;

    let (typed, d) = time(|| TypedDocument::analyze(mat.doc));
    t.renumber = d;

    let (stored, d) = time(|| StoredDocument::build(typed));
    t.reindex = d;

    let path = parse_xpath(query).expect("query parses");
    let (nodes, d) =
        time(|| eval_xpath(&PhysicalDoc::with_store(&stored), &path).expect("query evaluates"));
    t.query = d;

    (nodes.len(), t)
}

/// Stage timings of the virtual (vPBN) pipeline.
#[derive(Clone, Copy, Debug, Default)]
pub struct VirtualTimings {
    /// Compiling the vDataGuide + Algorithm 1 + per-type node lists.
    pub open: Duration,
    /// Evaluating the query over the virtual hierarchy.
    pub query: Duration,
}

impl VirtualTimings {
    /// End-to-end latency.
    pub fn total(&self) -> Duration {
        self.open + self.query
    }
}

/// Runs the virtual pipeline; returns the result count and timings.
pub fn run_virtual(td: &TypedDocument, spec: &str, query: &str) -> (usize, VirtualTimings) {
    let mut t = VirtualTimings::default();
    let (vd, d) = time(|| VirtualDocument::open(td, spec).expect("scenario spec compiles"));
    t.open = d;
    let path = parse_xpath(query).expect("query parses");
    let (nodes, d) = time(|| eval_xpath(&VirtualDoc::new(&vd), &path).expect("query evaluates"));
    t.query = d;
    (nodes.len(), t)
}

/// Evaluates a query virtually and returns the node ids (for result
/// cross-checks between the pipelines).
pub fn virtual_result(td: &TypedDocument, spec: &str, query: &str) -> Vec<NodeId> {
    let vd = VirtualDocument::open(td, spec).expect("scenario spec compiles");
    let path = parse_xpath(query).expect("query parses");
    eval_xpath(&VirtualDoc::new(&vd), &path).expect("query evaluates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vh_workload::{generate_books, BooksConfig};

    #[test]
    fn pipelines_agree_on_result_counts() {
        let td = TypedDocument::analyze(generate_books("b", &BooksConfig::sized(30)));
        for (spec, query) in [
            ("title { author { name } }", "//title/author"),
            ("title { author { name } }", "//title"),
            ("book { publisher }", "//book/publisher/location"),
        ] {
            let (n_mat, _) = run_materialized(&td, spec, query);
            let (n_virt, _) = run_virtual(&td, spec, query);
            assert_eq!(n_mat, n_virt, "spec={spec} query={query}");
        }
    }

    #[test]
    fn timings_are_populated() {
        let td = TypedDocument::analyze(generate_books("b", &BooksConfig::sized(10)));
        let (_, t) = run_materialized(&td, "title { author { name } }", "//title");
        assert!(t.total() >= t.query);
        let (_, v) = run_virtual(&td, "title { author { name } }", "//title");
        assert!(v.total() >= v.query);
    }
}
