//! Shared command-line options for the experiment binaries.
//!
//! Every `exp_*` binary that participates in the bench gate accepts the
//! same flags so `ci.sh --bench` and the GitHub `bench-gate` job can
//! drive them uniformly:
//!
//! ```text
//! --quick            smallest corpus profile (CI gate; overrides --full)
//! --full             large corpus profile (paper-scale numbers)
//! --books <n>        explicit corpus size, overrides the profile
//! --threads <n>      worker threads for the gated measurement rows
//!                    (default 1; 0 = all hardware threads)
//! --scaling <list>   comma-separated thread counts for the scaling
//!                    sweep, e.g. `1,2,4,8` (emitted as ungated rows)
//! --json <dir>       write BENCH_<exp>.json into <dir>
//! --cache <on|off>   compiled-view cache for cache-demo rows (default on)
//! ```

use std::path::PathBuf;
use vh_core::ExecOptions;

/// The corpus-size profile an experiment should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Smallest sizes — fast enough for a CI gate run.
    Quick,
    /// The default interactive sizes.
    Default,
    /// Paper-scale sizes (`--full`).
    Full,
}

impl Profile {
    /// Lower-case name for config echoes (`quick` / `default` / `full`).
    pub fn name(self) -> &'static str {
        match self {
            Profile::Quick => "quick",
            Profile::Default => "default",
            Profile::Full => "full",
        }
    }
}

/// Parsed experiment options.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Which corpus-size profile to use (when `--books` is absent).
    pub profile: Profile,
    /// Explicit corpus size override.
    pub books: Option<usize>,
    /// Thread count for the gated measurement rows.
    pub threads: usize,
    /// Extra thread counts to sweep for scaling rows (never gated).
    pub scaling: Vec<usize>,
    /// Directory for `BENCH_<exp>.json`, when JSON output is requested.
    pub json_dir: Option<PathBuf>,
    /// Whether cache-demo measurements run with the cache enabled.
    pub cache: bool,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            profile: Profile::Default,
            books: None,
            threads: 1,
            scaling: Vec::new(),
            json_dir: None,
            cache: true,
        }
    }
}

impl BenchOpts {
    /// Parses `std::env::args()` (exits with code 2 and a message on bad
    /// flags — these are leaf binaries, not a library surface).
    pub fn from_env() -> BenchOpts {
        match Self::parse(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// Parses an argument iterator; separated from `from_env` for tests.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<BenchOpts, String> {
        fn value(args: &mut dyn Iterator<Item = String>, flag: &str) -> Result<String, String> {
            args.next().ok_or_else(|| format!("{flag}: missing value"))
        }
        let mut opts = BenchOpts::default();
        let mut args = args;
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => opts.profile = Profile::Quick,
                "--full" => {
                    if opts.profile != Profile::Quick {
                        opts.profile = Profile::Full;
                    }
                }
                "--books" => {
                    let v = value(&mut args, "--books")?;
                    opts.books = Some(v.parse().map_err(|_| format!("--books: bad count '{v}'"))?);
                }
                "--threads" => {
                    let v = value(&mut args, "--threads")?;
                    opts.threads = v
                        .parse()
                        .map_err(|_| format!("--threads: bad count '{v}'"))?;
                }
                "--scaling" => {
                    let v = value(&mut args, "--scaling")?;
                    opts.scaling = v
                        .split(',')
                        .map(|s| {
                            s.trim()
                                .parse::<usize>()
                                .map_err(|_| format!("--scaling: bad count '{s}'"))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "--json" => opts.json_dir = Some(PathBuf::from(value(&mut args, "--json")?)),
                "--cache" => {
                    opts.cache = match value(&mut args, "--cache")?.as_str() {
                        "on" => true,
                        "off" => false,
                        other => return Err(format!("--cache: expected on|off, got '{other}'")),
                    };
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        Ok(opts)
    }

    /// Picks a corpus size: explicit `--books`, else the per-profile size.
    pub fn books(&self, quick: usize, default: usize, full: usize) -> usize {
        self.books.unwrap_or(match self.profile {
            Profile::Quick => quick,
            Profile::Default => default,
            Profile::Full => full,
        })
    }

    /// Execution options for the gated measurement rows.
    pub fn exec(&self) -> ExecOptions {
        let mut e = ExecOptions::with_threads(self.threads);
        e.cache = self.cache;
        e
    }

    /// All thread counts to measure: the gated `--threads` value first,
    /// then each distinct `--scaling` entry.
    pub fn thread_set(&self) -> Vec<usize> {
        let mut set = vec![self.threads];
        for &t in &self.scaling {
            if !set.contains(&t) {
                set.push(t);
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<BenchOpts, String> {
        BenchOpts::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.profile, Profile::Default);
        assert_eq!(o.threads, 1);
        assert!(o.scaling.is_empty());
        assert!(o.json_dir.is_none());
        assert!(o.cache);
        assert_eq!(o.books(10, 20, 30), 20);
        assert_eq!(o.thread_set(), vec![1]);
    }

    #[test]
    fn full_and_quick_profiles() {
        assert_eq!(parse(&["--full"]).unwrap().books(10, 20, 30), 30);
        assert_eq!(parse(&["--quick"]).unwrap().books(10, 20, 30), 10);
        // --quick wins regardless of order: CI appends it last-resort.
        assert_eq!(
            parse(&["--quick", "--full"]).unwrap().profile,
            Profile::Quick
        );
        assert_eq!(
            parse(&["--full", "--quick"]).unwrap().profile,
            Profile::Quick
        );
    }

    #[test]
    fn explicit_books_overrides_profile() {
        let o = parse(&["--full", "--books", "7"]).unwrap();
        assert_eq!(o.books(10, 20, 30), 7);
    }

    #[test]
    fn threads_scaling_json_cache() {
        let o = parse(&[
            "--threads",
            "4",
            "--scaling",
            "1,2,4,8",
            "--json",
            "out",
            "--cache",
            "off",
        ])
        .unwrap();
        assert_eq!(o.threads, 4);
        assert_eq!(o.scaling, vec![1, 2, 4, 8]);
        assert_eq!(o.json_dir.as_deref(), Some(std::path::Path::new("out")));
        assert!(!o.cache);
        // thread_set dedups the gated count out of the sweep.
        assert_eq!(o.thread_set(), vec![4, 1, 2, 8]);
        assert_eq!(o.exec().threads, 4);
        assert!(!o.exec().cache);
    }

    #[test]
    fn bad_flags_error() {
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--threads", "x"]).is_err());
        assert!(parse(&["--scaling", "1,x"]).is_err());
        assert!(parse(&["--cache", "maybe"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
    }
}
