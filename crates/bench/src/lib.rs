#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # vh-bench — the experiment harness
//!
//! One binary per table/figure of the (reconstructed) evaluation — see
//! `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md` for
//! recorded results. Criterion micro-benchmarks live under `benches/`.
//!
//! * `exp_datasets` — **T1** dataset statistics.
//! * `exp_levels` — **F1** level-array construction cost (O(cN)).
//! * `exp_axes` — **F2** axis-predicate latency, PBN vs vPBN.
//! * `exp_query_scale` — **F3** query time vs document size:
//!   vPBN vs materialize-and-renumber.
//! * `exp_selectivity` — **F4** query time vs selectivity (crossover).
//! * `exp_space` — **T2** space overhead (per-type vs per-node arrays).
//! * `exp_values` — **F5** virtual value stitching vs construction.
//! * `exp_sjoin` — **F6** structural joins, physical vs virtual.
//! * `exp_twig` — **F7** holistic twig joins over virtual hierarchies.
//! * `exp_io` — **F8** simulated page I/O, virtual vs materialized.
//! * `exp_update` — **F9** update renumbering vs virtual renumbering (§3).
//!
//! The library half hosts the shared pieces: the [`baseline`]
//! materialize-and-renumber pipeline (§4.3's strawman), [`timing`]
//! utilities, [`report`] table formatting, [`json`] machine-readable
//! `BENCH_<exp>.json` reports, [`gate`] baseline comparison for the CI
//! bench gate, [`history`] the per-commit machine-normalized perf
//! trajectory (`BENCH_history.jsonl` + trend report), and [`opts`] shared
//! experiment flags (`--threads`/`--scaling`/`--json`/…).

pub mod baseline;
pub mod gate;
pub mod history;
pub mod json;
pub mod opts;
pub mod report;
pub mod timing;
