//! Criterion benchmark behind **F3/F4**: the two end-to-end pipelines —
//! vPBN virtual evaluation vs materialize-and-renumber — on a mid-size
//! books corpus, plus the FLWR formulations through the engine.

use criterion::{criterion_group, criterion_main, Criterion};
use vh_bench::baseline::{run_materialized, run_virtual};
use vh_dataguide::TypedDocument;
use vh_query::{Engine, QueryRequest};
use vh_workload::queries::{rhonda_flwr, sam_flwr};
use vh_workload::{generate_books, BooksConfig};

const SPEC: &str = "title { author { name } }";
const QUERY: &str = "//title[contains(text(), 'RARE')]/author/name";

fn bench_pipelines(c: &mut Criterion) {
    let cfg = BooksConfig {
        books: 2_000,
        rare_fraction: 0.01,
        ..BooksConfig::default()
    };
    let td = TypedDocument::analyze(generate_books("books.xml", &cfg));

    let mut g = c.benchmark_group("pipelines");
    g.sample_size(20);
    g.bench_function("virtual_vpbn", |b| b.iter(|| run_virtual(&td, SPEC, QUERY)));
    g.bench_function("materialize_renumber", |b| {
        b.iter(|| run_materialized(&td, SPEC, QUERY))
    });
    g.finish();

    // FLWR formulations through the engine (Figures 4 vs 6).
    let mut e = Engine::new();
    e.register(generate_books("books.xml", &BooksConfig::sized(500)));
    let virtual_q = rhonda_flwr("books.xml", SPEC);
    let sam_q = sam_flwr("books.xml");
    let mut g = c.benchmark_group("flwr");
    g.sample_size(20);
    g.bench_function("rhonda_virtualdoc", |b| {
        b.iter(|| e.run(&QueryRequest::flwr(&*virtual_q)).unwrap().document)
    });
    g.bench_function("nested_sam_then_rhonda", |b| {
        b.iter(|| {
            // Materializing pipeline: run Sam, register, run Rhonda.
            let mut inner = Engine::new();
            inner.register(generate_books("books.xml", &BooksConfig::sized(500)));
            let sam_out = inner.run(&QueryRequest::flwr(&*sam_q)).unwrap().document;
            inner.register(sam_out);
            inner
                .run(&QueryRequest::flwr(
                    r#"for $t in doc("results")//title
                       return <result><title>{$t/text()}</title>
                                      <count>{count($t/author)}</count></result>"#,
                ))
                .unwrap()
                .document
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
