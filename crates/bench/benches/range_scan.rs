//! Criterion benchmark behind **A1**: deriving PBN scan ranges from level
//! arrays (`vh_core::range`) versus filtering every instance of the target
//! type — the ablation for the index-narrowing design choice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vh_core::VirtualDocument;
use vh_dataguide::TypedDocument;
use vh_workload::{generate_books, BooksConfig};

fn bench_range_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("range_scan");
    for &n in &[1_000usize, 10_000] {
        let td = TypedDocument::analyze(generate_books("b", &BooksConfig::sized(n)));
        let vd = VirtualDocument::open(&td, "title { author { name } }").unwrap();
        let title_vt = vd.vdg().guide().lookup_path(&["title"]).unwrap();
        let name_vt = vd
            .vdg()
            .guide()
            .lookup_path(&["title", "author", "name"])
            .unwrap();
        // A mid-corpus title: its virtual descendants of type name.
        let title = vd.nodes_of_vtype(title_vt)[n / 2];

        g.bench_with_input(BenchmarkId::new("derived_range", n), &n, |b, _| {
            b.iter(|| vd.descendants_of_type(title, name_vt).len())
        });
        g.bench_with_input(BenchmarkId::new("full_filter", n), &n, |b, _| {
            b.iter(|| vd.descendants_of_type_filter(title, name_vt).len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_range_scan);
criterion_main!(benches);
