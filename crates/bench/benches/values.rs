//! Criterion benchmark behind **F5**: §6 virtual value assembly — stored
//! range stitching vs element-wise construction vs plain physical value
//! lookup (the untransformed lower bound).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vh_core::value::{virtual_value, virtual_value_constructed};
use vh_core::VirtualDocument;
use vh_dataguide::TypedDocument;
use vh_storage::StoredDocument;
use vh_workload::{generate_books, BooksConfig};

fn bench_values(c: &mut Criterion) {
    let mut g = c.benchmark_group("values");
    for &fanout in &[2usize, 20] {
        let cfg = BooksConfig {
            books: 50,
            max_authors: fanout,
            rare_fraction: 0.0,
            seed: 3,
        };
        let stored = StoredDocument::build(TypedDocument::analyze(generate_books("b", &cfg)));
        let td = stored.typed();
        let vd = VirtualDocument::open(td, "title { author { name } }").unwrap();
        let root = vd.roots()[0];
        let book = td.doc().children(td.doc().root().unwrap())[0];

        g.bench_with_input(
            BenchmarkId::new("stitched", fanout),
            &(&vd, &stored, root),
            |b, (vd, stored, root)| b.iter(|| virtual_value(vd, *stored, *root)),
        );
        g.bench_with_input(
            BenchmarkId::new("constructed", fanout),
            &(&vd, &stored, root),
            |b, (vd, stored, root)| b.iter(|| virtual_value_constructed(vd, *stored, *root)),
        );
        g.bench_with_input(
            BenchmarkId::new("physical_lookup", fanout),
            &(&stored, book),
            |b, (stored, book)| b.iter(|| stored.value_of(*book).map(|v| v.len())),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_values);
criterion_main!(benches);
