//! Criterion benchmark behind **F6**: stack-tree structural joins over
//! physical (PBN) and virtual (vPBN) sorted streams.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vh_core::VirtualDocument;
use vh_dataguide::TypedDocument;
use vh_query::sjoin::{physical_structural_join, virtual_structural_join};
use vh_workload::{generate_books, BooksConfig};

fn bench_sjoin(c: &mut Criterion) {
    let mut g = c.benchmark_group("sjoin");
    for &n in &[500usize, 5_000] {
        let td = TypedDocument::analyze(generate_books("b", &BooksConfig::sized(n)));
        let vd = VirtualDocument::open(&td, "title { author { name } }").unwrap();
        let books = td.nodes_of_type(td.guide().lookup_path(&["data", "book"]).unwrap());
        let names = td.nodes_of_type(
            td.guide()
                .lookup_path(&["data", "book", "author", "name"])
                .unwrap(),
        );
        let title_vt = vd.vdg().guide().lookup_path(&["title"]).unwrap();
        let name_vt = vd
            .vdg()
            .guide()
            .lookup_path(&["title", "author", "name"])
            .unwrap();
        let vtitles = vd.nodes_of_vtype(title_vt).to_vec();
        let vnames = vd.nodes_of_vtype(name_vt).to_vec();

        g.bench_with_input(BenchmarkId::new("physical", n), &n, |b, _| {
            b.iter(|| physical_structural_join(&td, &books, &names).len())
        });
        g.bench_with_input(BenchmarkId::new("virtual", n), &n, |b, _| {
            b.iter(|| virtual_structural_join(&vd, &vtitles, &vnames).len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sjoin);
criterion_main!(benches);
