//! Criterion micro-benchmark behind **F1**: Algorithm 1 (level-array
//! construction) across vDataGuide sizes and depths, plus vDataGuide
//! compilation itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vh_core::levels::LevelMap;
use vh_core::VDataGuide;
use vh_dataguide::TypedDocument;
use vh_workload::generate_comb;

fn bench_level_arrays(c: &mut Criterion) {
    let mut g = c.benchmark_group("level_arrays/build");
    for &(width, depth) in &[(16usize, 4usize), (64, 4), (64, 16), (256, 16)] {
        let td = TypedDocument::analyze(generate_comb("comb.xml", width, depth));
        let vdg = VDataGuide::compile("root { ** }", td.guide()).unwrap();
        let n = vdg.len();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("N{n}_c{depth}")),
            &(&vdg, td.guide()),
            |b, (vdg, guide)| b.iter(|| LevelMap::build(vdg, guide)),
        );
    }
    g.finish();

    let mut g = c.benchmark_group("level_arrays/compile_vdg");
    for &(width, depth) in &[(64usize, 4usize), (64, 16)] {
        let td = TypedDocument::analyze(generate_comb("comb.xml", width, depth));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("w{width}_c{depth}")),
            &td,
            |b, td| b.iter(|| VDataGuide::compile("root { ** }", td.guide()).unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_level_arrays);
criterion_main!(benches);
