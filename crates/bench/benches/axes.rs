//! Criterion micro-benchmark behind **F2**: single axis checks, PBN vs
//! vPBN, over realistic node pairs from the books corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use vh_core::{axes as vax, VirtualDocument};
use vh_dataguide::TypedDocument;
use vh_pbn::axes as pax;
use vh_workload::{generate_books, BooksConfig};

fn bench_axes(c: &mut Criterion) {
    let td = TypedDocument::analyze(generate_books("b", &BooksConfig::sized(200)));
    let vd = VirtualDocument::open(&td, "title { author { name } }").unwrap();
    let title_vt = vd.vdg().guide().lookup_path(&["title"]).unwrap();
    let name_vt = vd
        .vdg()
        .guide()
        .lookup_path(&["title", "author", "name"])
        .unwrap();
    let titles = vd.nodes_of_vtype(title_vt);
    let names = vd.nodes_of_vtype(name_vt);
    // A containing pair and a non-containing pair, physical and virtual.
    let t0 = titles[0];
    let n0 = names[0];
    let n_far = *names.last().unwrap();
    let (pt0, pn0, pnf) = (
        td.pbn().pbn_of(t0),
        td.pbn().pbn_of(n0),
        td.pbn().pbn_of(n_far),
    );
    let (vt0, vn0, vnf) = (
        vd.vpbn_of(t0).unwrap(),
        vd.vpbn_of(n0).unwrap(),
        vd.vpbn_of(n_far).unwrap(),
    );
    let vdg = vd.vdg();

    let mut g = c.benchmark_group("axes");
    g.bench_function("pbn/ancestor_hit", |b| {
        b.iter(|| pax::is_ancestor(std::hint::black_box(pt0), std::hint::black_box(pn0)))
    });
    g.bench_function("pbn/ancestor_miss", |b| {
        b.iter(|| pax::is_ancestor(std::hint::black_box(pt0), std::hint::black_box(pnf)))
    });
    g.bench_function("vpbn/ancestor_hit", |b| {
        b.iter(|| vax::v_ancestor(vdg, std::hint::black_box(&vt0), std::hint::black_box(&vn0)))
    });
    g.bench_function("vpbn/ancestor_miss", |b| {
        b.iter(|| vax::v_ancestor(vdg, std::hint::black_box(&vt0), std::hint::black_box(&vnf)))
    });
    g.bench_function("pbn/preceding", |b| {
        b.iter(|| pax::is_preceding(std::hint::black_box(pn0), std::hint::black_box(pnf)))
    });
    g.bench_function("vpbn/preceding", |b| {
        b.iter(|| vax::v_preceding(vdg, std::hint::black_box(&vn0), std::hint::black_box(&vnf)))
    });
    g.bench_function("vpbn/sibling", |b| {
        b.iter(|| {
            vax::v_following_sibling(vdg, std::hint::black_box(&vnf), std::hint::black_box(&vn0))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_axes);
criterion_main!(benches);
