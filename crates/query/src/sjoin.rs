//! Stack-based structural joins over sorted node streams.
//!
//! PBN's killer application in XML query processing is the *structural
//! join*: given the document-ordered instance lists of two types, find
//! every (ancestor, descendant) pair with a single merge pass and a stack
//! of nested ancestors (the Stack-Tree algorithm family). vPBN's claim is
//! that location predicates remain pure number comparisons, so the same
//! algorithm runs unchanged on virtual hierarchies — only the comparator
//! and the containment predicate swap. Experiment F6 measures exactly this.

use std::cmp::Ordering;
use vh_core::axes::v_ancestor;
use vh_core::exec::{self, ExecOptions};
use vh_core::order::v_cmp;
use vh_core::VirtualDocument;
use vh_dataguide::TypedDocument;
use vh_obs::SjoinCounters;
use vh_pbn::keys;
use vh_xml::NodeId;

/// Generic Stack-Tree structural join (sequential).
///
/// Inputs must be sorted by `cmp` (a document order in which an ancestor
/// precedes its descendants). `contains(a, d)` must be true iff `a` is an
/// ancestor of `d`; nesting on the stack is guaranteed by the order.
/// Returns all (ancestor, descendant) pairs, grouped by descendant.
pub fn stack_tree_join(
    ancestors: &[NodeId],
    descendants: &[NodeId],
    cmp: &(dyn Fn(NodeId, NodeId) -> Ordering + Sync),
    contains: &(dyn Fn(NodeId, NodeId) -> bool + Sync),
) -> Vec<(NodeId, NodeId)> {
    stack_tree_join_opts(
        ancestors,
        descendants,
        cmp,
        contains,
        &ExecOptions::default(),
    )
}

/// [`stack_tree_join`] with an execution knob: the descendant stream is
/// partitioned into contiguous chunks, each chunk replays the compatible
/// ancestor prefix to rebuild its starting stack, and per-chunk outputs
/// are concatenated in chunk order.
///
/// This is byte-identical to the sequential join: the stack visible to a
/// descendant `d` is a pure function of the ancestors preceding `d` — the
/// push-time cleaning depends only on the ancestor sequence, and entries
/// popped early for an earlier descendant `d'` cannot contain `d` (their
/// subtree ended before `d'` ≤ `d`), so they fall to `d`'s own pop loop in
/// the replayed stack instead. The replay costs O(|ancestors|) per chunk,
/// amortized by chunks being as large as the thread count allows.
pub fn stack_tree_join_opts(
    ancestors: &[NodeId],
    descendants: &[NodeId],
    cmp: &(dyn Fn(NodeId, NodeId) -> Ordering + Sync),
    contains: &(dyn Fn(NodeId, NodeId) -> bool + Sync),
    opts: &ExecOptions,
) -> Vec<(NodeId, NodeId)> {
    let chunks = exec::par_chunk_map(opts, descendants, |chunk| {
        stack_tree_chunk(ancestors, chunk, cmp, contains)
    });
    exec::concat(chunks)
}

/// Runs the Stack-Tree merge for one contiguous descendant chunk,
/// replaying the ancestor prefix `< chunk[0]` to seed the stack.
fn stack_tree_chunk(
    ancestors: &[NodeId],
    chunk: &[NodeId],
    cmp: &(dyn Fn(NodeId, NodeId) -> Ordering + Sync),
    contains: &(dyn Fn(NodeId, NodeId) -> bool + Sync),
) -> Vec<(NodeId, NodeId)> {
    let mut out = Vec::new();
    let Some(&first) = chunk.first() else {
        return out;
    };
    let mut stack: Vec<NodeId> = Vec::new();
    // Replay: push-clean every ancestor that starts before the chunk's
    // first descendant. For the first chunk this is a no-op prefix (the
    // main loop below would do the same pushes for `first`).
    let mut i = ancestors.partition_point(|&a| cmp(a, first) == Ordering::Less);
    for &a in &ancestors[..i] {
        while let Some(&top) = stack.last() {
            if contains(top, a) {
                break;
            }
            stack.pop();
        }
        stack.push(a);
    }
    for &d in chunk {
        // Push every ancestor candidate that starts before d.
        while i < ancestors.len() && cmp(ancestors[i], d) == Ordering::Less {
            let a = ancestors[i];
            while let Some(&top) = stack.last() {
                if contains(top, a) {
                    break;
                }
                stack.pop();
            }
            stack.push(a);
            i += 1;
        }
        // Pop candidates whose subtree ended before d.
        while let Some(&top) = stack.last() {
            if contains(top, d) {
                break;
            }
            stack.pop();
        }
        // Every remaining stack entry contains d (they are nested).
        for &a in &stack {
            debug_assert!(contains(a, d));
            out.push((a, d));
        }
    }
    out
}

/// [`stack_tree_join_opts`] with operator counters: every document-order
/// comparison and containment test the merge evaluates is recorded, plus
/// the produced pair count. Only traced queries take this path, so the
/// per-predicate relaxed adds never burden plain joins; results are
/// identical to the uncounted join.
pub fn stack_tree_join_counted(
    ancestors: &[NodeId],
    descendants: &[NodeId],
    cmp: &(dyn Fn(NodeId, NodeId) -> Ordering + Sync),
    contains: &(dyn Fn(NodeId, NodeId) -> bool + Sync),
    opts: &ExecOptions,
    counters: &SjoinCounters,
) -> Vec<(NodeId, NodeId)> {
    let counted_cmp = |a, b| {
        counters.add_comparisons(1);
        cmp(a, b)
    };
    let counted_contains = |a, d| {
        counters.add_containment_tests(1);
        contains(a, d)
    };
    let out = stack_tree_join_opts(
        ancestors,
        descendants,
        &counted_cmp,
        &counted_contains,
        opts,
    );
    counters.add_pairs(out.len() as u64);
    out
}

/// [`virtual_structural_join`] with operator counters (see
/// [`stack_tree_join_counted`]).
pub fn virtual_structural_join_counted(
    vd: &VirtualDocument<'_>,
    ancestors: &[NodeId],
    descendants: &[NodeId],
    counters: &SjoinCounters,
) -> Vec<(NodeId, NodeId)> {
    // Invariant: as in `virtual_structural_join`, join inputs are node
    // lists of virtual types, so every node has a vPBN.
    let vpbn = |n: NodeId| match vd.vpbn_of(n) {
        Some(v) => v,
        None => unreachable!("join input is visible"),
    };
    stack_tree_join_counted(
        ancestors,
        descendants,
        &|a, b| v_cmp(vd.vdg(), &vpbn(a), &vpbn(b)),
        &|a, d| v_ancestor(vd.vdg(), &vpbn(a), &vpbn(d)),
        &vd.exec(),
        counters,
    )
}

/// Physical structural join: inputs sorted by PBN; containment is the
/// prefix test. Both predicates run on the encoded key arena — document
/// order is one u32 slot comparison (arena slots are assigned in document
/// order) and containment a `starts_with` on borrowed byte slices, so the
/// merge pass never touches the `Vec<u32>` number form.
pub fn physical_structural_join(
    td: &TypedDocument,
    ancestors: &[NodeId],
    descendants: &[NodeId],
) -> Vec<(NodeId, NodeId)> {
    physical_structural_join_opts(td, ancestors, descendants, &ExecOptions::default())
}

/// [`physical_structural_join`] with an execution knob.
///
/// Fast path: instead of routing every document-order comparison through
/// a `dyn` closure comparing `Option<usize>` slots, the merge is
/// monomorphized over the arena's flat u32 slot column (`slot_of` is one
/// array load the prefetcher can stream) with slots encoded `slot + 1`
/// and `0` for unassigned nodes — preserving the `Option` order (`None`
/// sorts first) while the hot loop compares plain integers with no
/// indirect calls and no per-join allocation.
pub fn physical_structural_join_opts(
    td: &TypedDocument,
    ancestors: &[NodeId],
    descendants: &[NodeId],
    opts: &ExecOptions,
) -> Vec<(NodeId, NodeId)> {
    let arena = td.pbn().arena();
    let chunks = exec::par_chunk_map(opts, descendants, |chunk| {
        stack_tree_chunk_slots(
            ancestors,
            chunk,
            |n| match arena.slot_of(n) {
                Some(s) => s as u32 + 1,
                None => 0,
            },
            |a, d| keys::is_strict_prefix(arena.key_of(a), arena.key_of(d)),
        )
    });
    exec::concat(chunks)
}

/// The `dyn`-comparator form of [`physical_structural_join_opts`]: the
/// generic Stack-Tree join with per-call slot lookups. Kept as the oracle
/// the slot-column fast path must stay byte-identical to at every thread
/// count.
pub fn physical_structural_join_generic(
    td: &TypedDocument,
    ancestors: &[NodeId],
    descendants: &[NodeId],
    opts: &ExecOptions,
) -> Vec<(NodeId, NodeId)> {
    let arena = td.pbn().arena();
    stack_tree_join_opts(
        ancestors,
        descendants,
        &|a, b| arena.slot_of(a).cmp(&arena.slot_of(b)),
        &|a, d| keys::is_strict_prefix(arena.key_of(a), arena.key_of(d)),
        opts,
    )
}

/// [`stack_tree_chunk`] monomorphized over u32 slot keys: document order
/// is one integer compare on a value loaded straight from the arena's
/// slot column, and both predicates inline — no `dyn` dispatch anywhere
/// in the merge.
///
/// oracle: stack_tree_chunk
fn stack_tree_chunk_slots(
    ancestors: &[NodeId],
    chunk: &[NodeId],
    slot: impl Fn(NodeId) -> u32,
    contains: impl Fn(NodeId, NodeId) -> bool,
) -> Vec<(NodeId, NodeId)> {
    let mut out = Vec::new();
    let Some(&first) = chunk.first() else {
        return out;
    };
    let dslot0 = slot(first);
    let mut stack: Vec<NodeId> = Vec::new();
    let push_clean = |stack: &mut Vec<NodeId>, a: NodeId| {
        while let Some(&top) = stack.last() {
            if contains(top, a) {
                break;
            }
            stack.pop();
        }
        stack.push(a);
    };
    let mut i = exec::partition_point_branchless(ancestors, |&a| slot(a) < dslot0);
    for &a in &ancestors[..i] {
        push_clean(&mut stack, a);
    }
    for &d in chunk {
        let dslot = slot(d);
        while i < ancestors.len() && slot(ancestors[i]) < dslot {
            push_clean(&mut stack, ancestors[i]);
            i += 1;
        }
        while let Some(&top) = stack.last() {
            if contains(top, d) {
                break;
            }
            stack.pop();
        }
        for &a in &stack {
            debug_assert!(contains(a, d));
            out.push((a, d));
        }
    }
    out
}

/// Virtual structural join: inputs sorted by virtual document order;
/// containment is the `vAncestor` predicate. The caller passes the node
/// lists of two *virtual types* (e.g. from the type index). Runs with the
/// view's own [`ExecOptions`] (see [`VirtualDocument::set_exec`]).
pub fn virtual_structural_join(
    vd: &VirtualDocument<'_>,
    ancestors: &[NodeId],
    descendants: &[NodeId],
) -> Vec<(NodeId, NodeId)> {
    // Invariant: join inputs are node lists of virtual types (from the
    // type index), and every node of a virtual type is visible in the
    // view — so it always has a vPBN.
    let vpbn = |n: NodeId| match vd.vpbn_of(n) {
        Some(v) => v,
        None => unreachable!("join input is visible"),
    };
    stack_tree_join_opts(
        ancestors,
        descendants,
        &|a, b| v_cmp(vd.vdg(), &vpbn(a), &vpbn(b)),
        &|a, d| v_ancestor(vd.vdg(), &vpbn(a), &vpbn(d)),
        &vd.exec(),
    )
}

/// Baseline for the F6/A1 experiments: the nested-loop join that tests
/// every (ancestor, descendant) pair.
pub fn nested_loop_join(
    ancestors: &[NodeId],
    descendants: &[NodeId],
    contains: &dyn Fn(NodeId, NodeId) -> bool,
) -> Vec<(NodeId, NodeId)> {
    let mut out = Vec::new();
    for &d in descendants {
        for &a in ancestors {
            if contains(a, d) {
                out.push((a, d));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Must;
    use vh_xml::builder::paper_figure2;

    fn sorted_by_pbn(td: &TypedDocument, mut v: Vec<NodeId>) -> Vec<NodeId> {
        v.sort_by(|&a, &b| td.pbn().pbn_of(a).cmp(td.pbn().pbn_of(b)));
        v
    }

    #[test]
    fn physical_join_matches_nested_loop() {
        let td = TypedDocument::analyze(paper_figure2());
        let books = sorted_by_pbn(
            &td,
            td.nodes_of_type(td.guide().lookup_path(&["data", "book"]).must()),
        );
        let names = sorted_by_pbn(
            &td,
            td.nodes_of_type(
                td.guide()
                    .lookup_path(&["data", "book", "author", "name"])
                    .must(),
            ),
        );
        let fast = physical_structural_join(&td, &books, &names);
        let slow = nested_loop_join(&books, &names, &|a, d| {
            td.pbn().pbn_of(a).is_strict_prefix_of(td.pbn().pbn_of(d))
        });
        assert_eq!(fast.len(), 2);
        let mut slow_sorted = slow;
        slow_sorted.sort();
        let mut fast_sorted = fast;
        fast_sorted.sort();
        assert_eq!(fast_sorted, slow_sorted);
    }

    #[test]
    fn virtual_join_titles_to_names() {
        // In Sam's virtual hierarchy, each title contains one name.
        let td = TypedDocument::analyze(paper_figure2());
        let vd = VirtualDocument::open(&td, "title { author { name } }").must();
        let title_vt = vd.vdg().guide().lookup_path(&["title"]).must();
        let name_vt = vd
            .vdg()
            .guide()
            .lookup_path(&["title", "author", "name"])
            .must();
        let titles = vd.nodes_of_vtype(title_vt).to_vec();
        let names = vd.nodes_of_vtype(name_vt).to_vec();
        let pairs = virtual_structural_join(&vd, &titles, &names);
        assert_eq!(pairs.len(), 2);
        // Each pair stays within one book.
        for (t, n) in &pairs {
            assert_eq!(
                td.pbn().pbn_of(*t).components()[1],
                td.pbn().pbn_of(*n).components()[1],
                "pair crosses books"
            );
        }
    }

    #[test]
    fn counted_joins_match_their_uncounted_twins() {
        let td = TypedDocument::analyze(paper_figure2());
        let vd = VirtualDocument::open(&td, "title { author { name } }").must();
        let title_vt = vd.vdg().guide().lookup_path(&["title"]).must();
        let name_vt = vd
            .vdg()
            .guide()
            .lookup_path(&["title", "author", "name"])
            .must();
        let titles = vd.nodes_of_vtype(title_vt).to_vec();
        let names = vd.nodes_of_vtype(name_vt).to_vec();

        let plain = virtual_structural_join(&vd, &titles, &names);
        let counters = SjoinCounters::default();
        let counted = virtual_structural_join_counted(&vd, &titles, &names, &counters);
        assert_eq!(plain, counted, "counting must not change the pairs");

        let s = counters.snapshot();
        assert_eq!(s.pairs, counted.len() as u64);
        assert!(s.comparisons > 0, "the merge compared document order");
        assert!(s.containment_tests > 0, "the merge tested vAncestor");
    }

    #[test]
    fn counted_physical_join_counts_each_predicate() {
        let td = TypedDocument::analyze(paper_figure2());
        let arena = td.pbn().arena();
        let books = sorted_by_pbn(
            &td,
            td.nodes_of_type(td.guide().lookup_path(&["data", "book"]).must()),
        );
        let names = sorted_by_pbn(
            &td,
            td.nodes_of_type(
                td.guide()
                    .lookup_path(&["data", "book", "author", "name"])
                    .must(),
            ),
        );
        let counters = SjoinCounters::default();
        let pairs = stack_tree_join_counted(
            &books,
            &names,
            &|a, b| arena.slot_of(a).cmp(&arena.slot_of(b)),
            &|a, d| keys::is_strict_prefix(arena.key_of(a), arena.key_of(d)),
            &ExecOptions::default(),
            &counters,
        );
        assert_eq!(pairs, physical_structural_join(&td, &books, &names));
        let s = counters.snapshot();
        assert_eq!(s.pairs, 2);
        assert!(s.comparisons >= books.len() as u64);
    }

    #[test]
    fn virtual_join_equals_nested_loop_with_vancestor() {
        let td = TypedDocument::analyze(paper_figure2());
        for spec in ["title { author { name } }", "title { name { author } }"] {
            let vd = VirtualDocument::open(&td, spec).must();
            let roots_vt = vd.vdg().roots()[0];
            // Join roots against every visible node type.
            for vt_idx in 0..vd.vdg().len() {
                let vt = vh_core::vdg::VTypeId::from_index(vt_idx);
                let anc = vd.nodes_of_vtype(roots_vt).to_vec();
                let desc = vd.nodes_of_vtype(vt).to_vec();
                // Inputs must be in virtual document order for the join.
                let mut anc_v = anc.clone();
                anc_v.sort_by(|&a, &b| {
                    v_cmp(vd.vdg(), &vd.vpbn_of(a).must(), &vd.vpbn_of(b).must())
                });
                let mut desc_v = desc.clone();
                desc_v.sort_by(|&a, &b| {
                    v_cmp(vd.vdg(), &vd.vpbn_of(a).must(), &vd.vpbn_of(b).must())
                });
                let mut fast = virtual_structural_join(&vd, &anc_v, &desc_v);
                let mut slow = nested_loop_join(&anc, &desc, &|a, d| {
                    v_ancestor(vd.vdg(), &vd.vpbn_of(a).must(), &vd.vpbn_of(d).must())
                });
                fast.sort();
                slow.sort();
                assert_eq!(fast, slow, "spec {spec}, vtype {vt_idx}");
            }
        }
    }

    #[test]
    fn byte_key_join_matches_number_comparators() {
        // The arena byte-key comparators must reproduce the Vec<u32>
        // number comparators exactly (memcmp == doc order, starts_with ==
        // prefix containment).
        let td = TypedDocument::analyze(paper_figure2());
        let pbn = |n: NodeId| td.pbn().pbn_of(n);
        let anc = sorted_by_pbn(
            &td,
            td.nodes_of_type(td.guide().lookup_path(&["data", "book"]).must()),
        );
        let desc = sorted_by_pbn(
            &td,
            td.nodes_of_type(
                td.guide()
                    .lookup_path(&["data", "book", "author", "name"])
                    .must(),
            ),
        );
        let by_key = physical_structural_join(&td, &anc, &desc);
        let by_number = stack_tree_join(&anc, &desc, &|a, b| pbn(a).cmp(pbn(b)), &|a, d| {
            pbn(a).is_strict_prefix_of(pbn(d))
        });
        assert_eq!(by_key, by_number);
    }

    #[test]
    fn empty_inputs_yield_no_pairs() {
        let td = TypedDocument::analyze(paper_figure2());
        assert!(physical_structural_join(&td, &[], &[]).is_empty());
        let books = td.nodes_of_type(td.guide().lookup_path(&["data", "book"]).must());
        assert!(physical_structural_join(&td, &books, &[]).is_empty());
    }

    #[test]
    fn chunked_join_is_byte_identical_to_sequential() {
        // A corpus with real nesting: books containing authors containing
        // names, joined at several ancestor/descendant type pairs.
        use vh_xml::ElementBuilder;
        let mut data = ElementBuilder::new("data");
        for i in 0..40 {
            let mut book = ElementBuilder::new("book");
            for a in 0..(i % 4) + 1 {
                book = book.child(
                    ElementBuilder::new("author")
                        .child(ElementBuilder::new("name").text(format!("n{i}.{a}"))),
                );
            }
            data = data.child(book);
        }
        let td = TypedDocument::analyze(data.into_document("big.xml"));
        let pairs = [
            (vec!["data", "book"], vec!["data", "book", "author", "name"]),
            (
                vec!["data", "book", "author"],
                vec!["data", "book", "author", "name"],
            ),
            (vec!["data"], vec!["data", "book", "author"]),
        ];
        for (anc_path, desc_path) in &pairs {
            let anc = sorted_by_pbn(
                &td,
                td.nodes_of_type(td.guide().lookup_path(anc_path).must()),
            );
            let desc = sorted_by_pbn(
                &td,
                td.nodes_of_type(td.guide().lookup_path(desc_path).must()),
            );
            let seq = physical_structural_join(&td, &anc, &desc);
            for threads in [1, 2, 3, 8] {
                let opts = vh_core::ExecOptions {
                    threads,
                    cache: true,
                    par_threshold: 1,
                };
                let par = physical_structural_join_opts(&td, &anc, &desc, &opts);
                assert_eq!(par, seq, "{anc_path:?}//{desc_path:?} t={threads}");
                // The slot-column fast path must be byte-identical to the
                // dyn-comparator oracle at every thread count.
                let generic = physical_structural_join_generic(&td, &anc, &desc, &opts);
                assert_eq!(
                    par, generic,
                    "{anc_path:?}//{desc_path:?} t={threads} oracle"
                );
            }
        }
    }
}
