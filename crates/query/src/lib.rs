#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # vh-query — XPath and mini-XQuery over physical *and* virtual documents
//!
//! The paper's pipeline: Sam writes a transformation, Rhonda queries its
//! result. Without vPBN she must materialize Sam's output and re-index it;
//! with vPBN she writes `virtualDoc("x.xml", "title { author { name } }")`
//! and her path expressions are evaluated directly in the virtual space.
//!
//! This crate provides both sides:
//! * [`doc`] — the [`doc::QueryDoc`] abstraction: one navigation interface,
//!   two implementations ([`doc::PhysicalDoc`] over a stored document using
//!   plain PBN, [`doc::VirtualDoc`] over a
//!   [`vh_core::VirtualDocument`] using vPBN).
//! * [`xpath`] — a location-path language (13 axes, name/kind tests,
//!   predicates with comparisons, positions and functions) with a
//!   document-agnostic evaluator.
//! * [`sjoin`] — stack-based structural joins over PBN- or vPBN-sorted
//!   streams (experiment F6).
//! * [`twig`] — holistic twig joins (TwigStack) running unchanged on
//!   physical and virtual streams.
//! * [`flwr`] — a FLWR (for/let/where/return) subset with element
//!   constructors, `doc(...)` and the paper's **`virtualDoc(...)`**.
//! * [`engine`] — the document registry tying it together, with the
//!   [`engine::QueryRequest`] / [`engine::QueryOutcome`] request API,
//!   per-query tracing and the EXPLAIN renderer.
//! * [`edit`] — crash-safe document mutations: the [`edit::Edit`] model,
//!   its write-ahead-log payload codec, and the receipts/recovery reports
//!   behind `Engine::apply` / `Engine::recover`.
//! * [`api`] — the blessed flat re-export surface for downstream code.
//! * [`error`] — the [`error::QueryError`] taxonomy and [`error::Limits`]
//!   resource guards (recursion depth, step budget, cardinality cap, time
//!   budget) that keep hostile queries from exhausting the process.

pub mod api;
pub mod doc;
pub mod edit;
pub mod engine;
pub mod error;
pub mod flwr;
pub mod sjoin;
pub mod twig;
pub mod xpath;

pub use edit::{Edit, EditReceipt, EditRecovery, ReplayFailure};
pub use engine::{
    Engine, EngineSnapshot, Explain, QueryKind, QueryOutcome, QueryRequest, QueryRequestBuilder,
};
pub use error::{FlwrError, Limits, QueryError, ResourceKind};
pub use vh_core::cache::MaintenancePolicy;
pub use xpath::{parse_xpath, XPath};

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for unit tests.

    /// Unwraps test fixtures that are valid by construction, printing the
    /// `Debug` payload when the assumption is violated.
    pub trait Must<T> {
        /// Returns the success value or fails the test.
        fn must(self) -> T;
    }

    impl<T, E: std::fmt::Debug> Must<T> for Result<T, E> {
        fn must(self) -> T {
            self.unwrap_or_else(|e| unreachable!("test fixture failed: {e:?}"))
        }
    }

    impl<T> Must<T> for Option<T> {
        fn must(self) -> T {
            self.unwrap_or_else(|| unreachable!("test fixture was None"))
        }
    }
}
