//! The [`QueryDoc`] abstraction: one navigation interface over physical and
//! virtual documents.
//!
//! The XPath evaluator is written once against this trait. The physical
//! implementation navigates with plain PBN numbers and the stored indexes;
//! the virtual implementation delegates to [`vh_core::VirtualDocument`],
//! whose every operation is a vPBN comparison. Identical query results over
//! `data { ** }` (identity) versus the physical document is one of the
//! system-level invariants the integration tests pin down.

use std::cmp::Ordering;
use vh_core::VirtualDocument;
use vh_dataguide::TypedDocument;
use vh_xml::{NodeId, NodeKind};

/// Navigation interface required by the XPath evaluator.
///
/// Node sets are materialized `Vec`s in document order; for the data sizes
/// of the experiments this is simpler and not measurably slower than lazy
/// iterators, and it keeps the trait object-safe.
pub trait QueryDoc {
    /// The root nodes (a physical document has one; a virtual hierarchy is
    /// a forest).
    fn roots(&self) -> Vec<NodeId>;
    /// Children of `n`, in document order.
    fn children(&self, n: NodeId) -> Vec<NodeId>;
    /// Parent of `n`.
    fn parent(&self, n: NodeId) -> Option<NodeId>;
    /// The payload of `n`.
    fn kind(&self, n: NodeId) -> &NodeKind;
    /// Document-order comparison between two nodes.
    fn cmp_order(&self, a: NodeId, b: NodeId) -> Ordering;
    /// The string value of `n` (concatenated text of its subtree *in this
    /// document's hierarchy* — virtual subtrees differ from physical ones).
    fn string_value(&self, n: NodeId) -> String;
    /// Attribute lookup on an element.
    fn attribute(&self, n: NodeId, name: &str) -> Option<String>;
    /// All attributes of an element, in document order (used when copying
    /// nodes into constructed results).
    fn attributes(&self, n: NodeId) -> Vec<(String, String)>;

    /// Element name of `n`, if it is an element.
    fn name(&self, n: NodeId) -> Option<&str> {
        self.kind(n).element_name()
    }

    /// Indexed lookup: all elements named `name` below `scope` (the whole
    /// document when `scope` is `None`), in document order. Returns `None`
    /// when no index is available — the evaluator then falls back to a
    /// tree walk. This is the access path `//name` steps take in a
    /// PBN-based system (§4.3's type index).
    fn descendants_named(&self, _scope: Option<NodeId>, _name: &str) -> Option<Vec<NodeId>> {
        None
    }

    /// Descendants of `n` in document order (excluding `n`).
    fn descendants(&self, n: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = self.children(n);
        stack.reverse();
        while let Some(c) = stack.pop() {
            out.push(c);
            let mut kids = self.children(c);
            kids.reverse();
            stack.extend(kids);
        }
        out
    }

    /// Ancestors of `n`, nearest first.
    fn ancestors(&self, n: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.parent(n);
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent(p);
        }
        out
    }

    /// Siblings after `n`, in document order.
    fn following_siblings(&self, n: NodeId) -> Vec<NodeId> {
        match self.parent(n) {
            Some(p) => {
                let sibs = self.children(p);
                let pos = sibs.iter().position(|&s| s == n).unwrap_or(sibs.len());
                sibs[pos + 1..].to_vec()
            }
            None => {
                let roots = self.roots();
                let pos = roots.iter().position(|&s| s == n).unwrap_or(roots.len());
                roots[pos + 1..].to_vec()
            }
        }
    }

    /// Siblings before `n`, in document order.
    fn preceding_siblings(&self, n: NodeId) -> Vec<NodeId> {
        match self.parent(n) {
            Some(p) => {
                let sibs = self.children(p);
                let pos = sibs.iter().position(|&s| s == n).unwrap_or(0);
                sibs[..pos].to_vec()
            }
            None => {
                let roots = self.roots();
                let pos = roots.iter().position(|&s| s == n).unwrap_or(0);
                roots[..pos].to_vec()
            }
        }
    }
}

/// Physical navigation over a [`TypedDocument`] (plain PBN semantics),
/// optionally index-accelerated by a [`vh_storage::StoredDocument`].
pub struct PhysicalDoc<'a> {
    td: &'a TypedDocument,
    store: Option<&'a vh_storage::StoredDocument>,
}

impl<'a> PhysicalDoc<'a> {
    /// Wraps a typed document (no indexes; `//x` steps walk the tree).
    pub fn new(td: &'a TypedDocument) -> Self {
        PhysicalDoc { td, store: None }
    }

    /// Wraps a typed document — the named sibling of
    /// [`Self::with_store`], so the two construction paths read
    /// symmetrically at call sites ([`Self::new`] remains as the
    /// conventional alias).
    pub fn with_document(td: &'a TypedDocument) -> Self {
        Self::new(td)
    }

    /// Wraps a stored document; `//x` steps use the name index with PBN
    /// subtree-range narrowing.
    pub fn with_store(store: &'a vh_storage::StoredDocument) -> Self {
        PhysicalDoc {
            td: store.typed(),
            store: Some(store),
        }
    }

    /// The wrapped document.
    pub fn typed(&self) -> &'a TypedDocument {
        self.td
    }
}

impl<'a> QueryDoc for PhysicalDoc<'a> {
    fn roots(&self) -> Vec<NodeId> {
        self.td.doc().root().into_iter().collect()
    }

    fn children(&self, n: NodeId) -> Vec<NodeId> {
        self.td.doc().children(n).to_vec()
    }

    fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.td.doc().parent(n)
    }

    fn kind(&self, n: NodeId) -> &NodeKind {
        self.td.doc().kind(n)
    }

    fn cmp_order(&self, a: NodeId, b: NodeId) -> Ordering {
        self.td.pbn().pbn_of(a).cmp(self.td.pbn().pbn_of(b))
    }

    fn string_value(&self, n: NodeId) -> String {
        self.td.doc().string_value(n)
    }

    fn attribute(&self, n: NodeId, name: &str) -> Option<String> {
        self.td.doc().attribute(n, name).map(str::to_owned)
    }

    fn attributes(&self, n: NodeId) -> Vec<(String, String)> {
        self.td
            .doc()
            .attributes(n)
            .iter()
            .map(|a| (a.name.clone(), a.value.clone()))
            .collect()
    }

    fn descendants_named(&self, scope: Option<NodeId>, name: &str) -> Option<Vec<NodeId>> {
        let store = self.store?;
        let list = store.names().nodes(name);
        match scope {
            None => Some(list.to_vec()),
            Some(x) => {
                // Elements named `name` inside x's subtree occupy a
                // contiguous run of the PBN-sorted name list.
                let pbn = self.td.pbn();
                let (lo, hi) = vh_pbn::order::subtree_range(pbn.pbn_of(x));
                let start =
                    vh_core::exec::partition_point_branchless(list, |&c| pbn.pbn_of(c) < &lo);
                let end = vh_core::exec::partition_point_branchless(list, |&c| pbn.pbn_of(c) < &hi);
                // Exclude x itself (descendant, not self).
                Some(
                    list[start..end]
                        .iter()
                        .copied()
                        .filter(|&c| c != x)
                        .collect(),
                )
            }
        }
    }
}

/// Virtual navigation over a [`VirtualDocument`] (vPBN semantics).
pub struct VirtualDoc<'a> {
    vd: &'a VirtualDocument<'a>,
}

impl<'a> VirtualDoc<'a> {
    /// Wraps a virtual document.
    pub fn new(vd: &'a VirtualDocument<'a>) -> Self {
        VirtualDoc { vd }
    }

    /// The wrapped virtual document.
    pub fn virtual_doc(&self) -> &'a VirtualDocument<'a> {
        self.vd
    }
}

impl<'a> QueryDoc for VirtualDoc<'a> {
    fn roots(&self) -> Vec<NodeId> {
        self.vd.roots()
    }

    fn children(&self, n: NodeId) -> Vec<NodeId> {
        self.vd.children(n)
    }

    fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.vd.parent(n)
    }

    fn kind(&self, n: NodeId) -> &NodeKind {
        self.vd.typed().doc().kind(n)
    }

    fn cmp_order(&self, a: NodeId, b: NodeId) -> Ordering {
        match (self.vd.vpbn_of(a), self.vd.vpbn_of(b)) {
            (Some(x), Some(y)) => vh_core::order::v_cmp(self.vd.vdg(), &x, &y),
            _ => Ordering::Equal,
        }
    }

    fn string_value(&self, n: NodeId) -> String {
        // The *virtual* string value: text of the virtual subtree.
        let mut out = String::new();
        let mut stack = vec![n];
        while let Some(cur) = stack.pop() {
            if let NodeKind::Text(t) = self.kind(cur) {
                out.push_str(t);
            }
            let mut kids = self.vd.children(cur);
            kids.reverse();
            stack.extend(kids);
        }
        out
    }

    fn attribute(&self, n: NodeId, name: &str) -> Option<String> {
        self.vd.typed().doc().attribute(n, name).map(str::to_owned)
    }

    fn attributes(&self, n: NodeId) -> Vec<(String, String)> {
        self.vd
            .typed()
            .doc()
            .attributes(n)
            .iter()
            .map(|a| (a.name.clone(), a.value.clone()))
            .collect()
    }

    fn descendants_named(&self, scope: Option<NodeId>, name: &str) -> Option<Vec<NodeId>> {
        // Virtual types with this local name; their per-type node lists are
        // the §4.3 type index, and `descendants_of_type` narrows by the
        // derived vPBN scan ranges.
        let vdg = self.vd.vdg();
        let vtypes: Vec<_> = vdg
            .guide()
            .type_ids()
            .filter(|&vt| vdg.guide().name(vt) == name)
            .collect();
        let mut out: Vec<NodeId> = Vec::new();
        match scope {
            None => {
                for vt in vtypes {
                    out.extend_from_slice(self.vd.nodes_of_vtype(vt));
                }
            }
            Some(x) => {
                for vt in vtypes {
                    out.extend(self.vd.descendants_of_type(x, vt));
                }
            }
        }
        out.sort_by(|&a, &b| self.cmp_order(a, b));
        out.dedup();
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Must;
    use vh_xml::builder::paper_figure2;

    #[test]
    fn physical_navigation_matches_the_tree() {
        let td = TypedDocument::analyze(paper_figure2());
        let d = PhysicalDoc::new(&td);
        let root = d.roots()[0];
        assert_eq!(d.name(root), Some("data"));
        assert_eq!(d.children(root).len(), 2);
        assert_eq!(d.descendants(root).len(), td.doc().len() - 1);
        let book2 = d.children(root)[1];
        assert_eq!(d.parent(book2), Some(root));
        assert_eq!(d.following_siblings(d.children(root)[0]), vec![book2]);
        assert_eq!(d.preceding_siblings(book2), vec![d.children(root)[0]]);
        assert_eq!(d.string_value(book2), "YDM");
        assert!(d.cmp_order(root, book2) == Ordering::Less);
    }

    #[test]
    fn virtual_navigation_differs_from_physical() {
        let td = TypedDocument::analyze(paper_figure2());
        let vd = VirtualDocument::open(&td, "title { author { name } }").must();
        let d = VirtualDoc::new(&vd);
        let roots = d.roots();
        assert_eq!(roots.len(), 2, "two titles are virtual roots");
        // The virtual string value of a title includes the author's name,
        // which is *not* below title physically.
        assert_eq!(d.string_value(roots[0]), "XC");
        assert_eq!(td.doc().string_value(roots[0]), "X");
        // Sibling navigation among virtual roots.
        assert_eq!(d.following_siblings(roots[0]), vec![roots[1]]);
        assert_eq!(d.preceding_siblings(roots[1]), vec![roots[0]]);
    }

    #[test]
    fn identity_virtual_navigation_matches_physical() {
        let td = TypedDocument::analyze(paper_figure2());
        let vd = VirtualDocument::open(&td, "data { ** }").must();
        let v = VirtualDoc::new(&vd);
        let p = PhysicalDoc::new(&td);
        assert_eq!(v.roots(), p.roots());
        for n in td.doc().preorder() {
            assert_eq!(v.children(n), p.children(n));
            assert_eq!(v.parent(n), p.parent(n));
            assert_eq!(v.string_value(n), p.string_value(n));
        }
    }
}
