//! Tokenizer for XPath expressions.

use std::fmt;

/// One XPath token.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Tok {
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `@`
    At,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `*`
    Star,
    /// `,`
    Comma,
    /// `::`
    ColonColon,
    /// `|`
    Pipe,
    /// `+`
    Plus,
    /// `-` (standalone; hyphens inside names stay in the name)
    Minus,
    /// `=` `!=` `<` `<=` `>` `>=`
    Cmp(&'static str),
    /// A name (also `and` / `or`, disambiguated by the parser).
    Name(String),
    /// A quoted string literal.
    Literal(String),
    /// A number.
    Number(f64),
    /// `$name` variable reference (used by the FLWR engine).
    Var(String),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Slash => f.write_str("/"),
            Tok::DoubleSlash => f.write_str("//"),
            Tok::LBracket => f.write_str("["),
            Tok::RBracket => f.write_str("]"),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::At => f.write_str("@"),
            Tok::Dot => f.write_str("."),
            Tok::DotDot => f.write_str(".."),
            Tok::Star => f.write_str("*"),
            Tok::Comma => f.write_str(","),
            Tok::ColonColon => f.write_str("::"),
            Tok::Pipe => f.write_str("|"),
            Tok::Plus => f.write_str("+"),
            Tok::Minus => f.write_str("-"),
            Tok::Cmp(op) => f.write_str(op),
            Tok::Name(n) => f.write_str(n),
            Tok::Literal(l) => write!(f, "'{l}'"),
            Tok::Number(n) => write!(f, "{n}"),
            Tok::Var(v) => write!(f, "${v}"),
        }
    }
}

/// Tokenizes `input`; returns the tokens or an error message with offset.
pub(crate) fn tokenize(input: &str) -> Result<Vec<Tok>, (String, usize)> {
    let b = input.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'/' => {
                if b.get(i + 1) == Some(&b'/') {
                    out.push(Tok::DoubleSlash);
                    i += 2;
                } else {
                    out.push(Tok::Slash);
                    i += 1;
                }
            }
            b'[' => {
                out.push(Tok::LBracket);
                i += 1;
            }
            b']' => {
                out.push(Tok::RBracket);
                i += 1;
            }
            b'(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            b')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            b'@' => {
                out.push(Tok::At);
                i += 1;
            }
            b',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            b'*' => {
                out.push(Tok::Star);
                i += 1;
            }
            b'|' => {
                out.push(Tok::Pipe);
                i += 1;
            }
            b'+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            b'-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            b':' if b.get(i + 1) == Some(&b':') => {
                out.push(Tok::ColonColon);
                i += 2;
            }
            b'.' => {
                if b.get(i + 1) == Some(&b'.') {
                    out.push(Tok::DotDot);
                    i += 2;
                } else if b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    let (n, used) = lex_number(&input[i..]);
                    out.push(Tok::Number(n));
                    i += used;
                } else {
                    out.push(Tok::Dot);
                    i += 1;
                }
            }
            b'=' => {
                out.push(Tok::Cmp("="));
                i += 1;
            }
            b'!' if b.get(i + 1) == Some(&b'=') => {
                out.push(Tok::Cmp("!="));
                i += 2;
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Cmp("<="));
                    i += 2;
                } else {
                    out.push(Tok::Cmp("<"));
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Cmp(">="));
                    i += 2;
                } else {
                    out.push(Tok::Cmp(">"));
                    i += 1;
                }
            }
            b'\'' | b'"' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != quote {
                    j += 1;
                }
                if j >= b.len() {
                    return Err(("unterminated string literal".into(), i));
                }
                out.push(Tok::Literal(input[start..j].to_owned()));
                i = j + 1;
            }
            b'$' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                if j == start {
                    return Err(("expected variable name after '$'".into(), i));
                }
                out.push(Tok::Var(input[start..j].to_owned()));
                i = j;
            }
            b'0'..=b'9' => {
                let (n, used) = lex_number(&input[i..]);
                out.push(Tok::Number(n));
                i += used;
            }
            _ if c.is_ascii_alphabetic() || c == b'_' || c >= 0x80 => {
                let start = i;
                let mut j = i;
                while j < b.len() {
                    let d = b[j];
                    // A ':' not followed by another ':' stays in the name
                    // (namespace-style names); '::' is the axis separator.
                    let name_char = d.is_ascii_alphanumeric()
                        || matches!(d, b'_' | b'-' | b'.' | b'#')
                        || d >= 0x80
                        || (d == b':' && b.get(j + 1) != Some(&b':') && j > start);
                    if name_char {
                        j += 1;
                    } else {
                        break;
                    }
                }
                // Trailing '.' belongs to an abbreviation, not the name.
                let mut end = j;
                while end > start && b[end - 1] == b'.' {
                    end -= 1;
                }
                out.push(Tok::Name(input[start..end].to_owned()));
                i = end.max(start + 1);
            }
            _ => return Err((format!("unexpected character '{}'", c as char), i)),
        }
    }
    Ok(out)
}

fn lex_number(s: &str) -> (f64, usize) {
    let b = s.as_bytes();
    let mut j = 0;
    let mut seen_dot = false;
    while j < b.len() {
        match b[j] {
            b'0'..=b'9' => j += 1,
            b'.' if !seen_dot && b.get(j + 1).is_some_and(u8::is_ascii_digit) => {
                seen_dot = true;
                j += 1;
            }
            _ => break,
        }
    }
    (s[..j].parse().unwrap_or(f64::NAN), j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Must;

    #[test]
    fn tokenizes_paths() {
        let t = tokenize("//book/title[1]").must();
        assert_eq!(
            t,
            vec![
                Tok::DoubleSlash,
                Tok::Name("book".into()),
                Tok::Slash,
                Tok::Name("title".into()),
                Tok::LBracket,
                Tok::Number(1.0),
                Tok::RBracket,
            ]
        );
    }

    #[test]
    fn tokenizes_predicates_and_functions() {
        let t = tokenize("book[count(author) >= 2 and title = 'X']").must();
        assert!(t.contains(&Tok::Cmp(">=")));
        assert!(t.contains(&Tok::Name("and".into())));
        assert!(t.contains(&Tok::Literal("X".into())));
    }

    #[test]
    fn tokenizes_operators() {
        let t = tokenize("a | b + 2 - $v").must();
        assert!(t.contains(&Tok::Pipe));
        assert!(t.contains(&Tok::Plus));
        assert!(t.contains(&Tok::Minus));
        // '#' alone is still rejected.
        assert!(tokenize("a # b").is_err());
    }

    #[test]
    fn tokenizes_axes_and_abbreviations() {
        let t = tokenize("ancestor::book/.. /@id").must();
        assert_eq!(t[0], Tok::Name("ancestor".into()));
        assert_eq!(t[1], Tok::ColonColon);
        assert!(t.contains(&Tok::DotDot));
        assert!(t.contains(&Tok::At));
        let t = tokenize("$title/text()").must();
        assert_eq!(t[0], Tok::Var("title".into()));
    }

    #[test]
    fn numbers_and_decimals() {
        assert_eq!(tokenize("3.25").must(), vec![Tok::Number(3.25)]);
        assert_eq!(tokenize(".5").must(), vec![Tok::Number(0.5)]);
        // A name followed by '.' then digits is a name + number (weird but
        // unambiguous in our grammar since names can contain dots).
        let t = tokenize("n1.x").must();
        assert_eq!(t, vec![Tok::Name("n1.x".into())]);
    }

    #[test]
    fn unterminated_literal_errors() {
        assert!(tokenize("'abc").is_err());
    }
}
