//! The XPath evaluator, generic over [`QueryDoc`].
//!
//! Semantics follow XPath 1.0 with the usual simplifications of an embedded
//! engine: predicates see positions in axis order (reverse axes count from
//! the nearest node), comparisons are existential over node sets, `=`/`!=`
//! compare strings unless a number is involved, and the relational
//! operators compare numbers.
//!
//! Internally every context is a `Ctx`: either a real node or the
//! conceptual **document node** (`Ctx::Super`) above the root(s). Virtual
//! hierarchies are forests, so `//title` must reach root-level titles —
//! exactly what the standard expansion
//! `/descendant-or-self::node()/child::title` does when the document node
//! is the starting context.

use crate::doc::QueryDoc;
use crate::error::{Limits, ResourceKind};
use crate::xpath::ast::{ArithOp, Axis, CmpOp, Expr, NodeTest, Step, XPath};
use crate::xpath::parse::XPathError;
use std::cell::Cell;
use std::time::{Duration, Instant};
use vh_xml::{NodeId, NodeKind};

/// The value of an XPath expression.
#[derive(Clone, Debug, PartialEq)]
pub enum XValue {
    /// A node set in document order (or axis order inside predicates).
    Nodes(Vec<NodeId>),
    /// Attribute values selected by an attribute step.
    Attrs(Vec<String>),
    /// A string.
    Str(String),
    /// A number.
    Num(f64),
    /// A boolean.
    Bool(bool),
}

impl XValue {
    /// XPath truth: non-empty node set / attribute set, non-empty string,
    /// non-zero non-NaN number.
    pub fn truthy(&self) -> bool {
        match self {
            XValue::Nodes(ns) => !ns.is_empty(),
            XValue::Attrs(a) => !a.is_empty(),
            XValue::Str(s) => !s.is_empty(),
            XValue::Num(n) => *n != 0.0 && !n.is_nan(),
            XValue::Bool(b) => *b,
        }
    }

    /// The node set, if this value is one.
    pub fn into_nodes(self) -> Vec<NodeId> {
        match self {
            XValue::Nodes(ns) => ns,
            _ => Vec::new(),
        }
    }
}

/// Compares two node-free values with XPath semantics (`Attrs` lists are
/// existential; `=`/`!=` compare strings unless a number is involved;
/// relational operators compare numbers). Used by the FLWR engine when the
/// two sides of a comparison come from *different* documents and node sets
/// have already been lifted to their string values.
pub fn compare_values(l: &XValue, op: CmpOp, r: &XValue) -> bool {
    debug_assert!(!matches!(l, XValue::Nodes(_)) && !matches!(r, XValue::Nodes(_)));
    if let XValue::Attrs(a) = l {
        return a
            .iter()
            .any(|v| compare_values(&XValue::Str(v.clone()), op, r));
    }
    if let XValue::Attrs(a) = r {
        return a
            .iter()
            .any(|v| compare_values(l, op, &XValue::Str(v.clone())));
    }
    let numeric = matches!(l, XValue::Num(_))
        || matches!(r, XValue::Num(_))
        || matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge);
    if numeric {
        let (a, b) = (value_to_number(l), value_to_number(r));
        match op {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    } else {
        let (a, b) = (value_to_string(l), value_to_string(r));
        match op {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            _ => unreachable!("relational handled numerically"),
        }
    }
}

/// XPath string conversion of a node-free value (first item of a list).
pub fn value_to_string(v: &XValue) -> String {
    match v {
        XValue::Nodes(_) => String::new(),
        XValue::Attrs(a) => a.first().cloned().unwrap_or_default(),
        XValue::Str(s) => s.clone(),
        XValue::Num(n) => {
            if n.fract() == 0.0 && n.is_finite() {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        XValue::Bool(b) => b.to_string(),
    }
}

/// XPath number conversion of a node-free value.
pub fn value_to_number(v: &XValue) -> f64 {
    match v {
        XValue::Num(n) => *n,
        XValue::Bool(b) => {
            if *b {
                1.0
            } else {
                0.0
            }
        }
        other => value_to_string(other).trim().parse().unwrap_or(f64::NAN),
    }
}

/// A context: the conceptual document node, or a real node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Ctx {
    /// The document node above the root(s).
    Super,
    /// A real node.
    Node(NodeId),
}

/// Resolver for `$var` bindings: returns the nodes bound to a variable.
pub type VarResolver<'a> = &'a dyn Fn(&str) -> Option<Vec<NodeId>>;

/// Evaluates an absolute path against the document.
pub fn eval_xpath(doc: &dyn QueryDoc, path: &XPath) -> Result<Vec<NodeId>, XPathError> {
    eval_xpath_limited(doc, path, Limits::default())
}

/// [`eval_xpath`] with explicit resource limits.
pub fn eval_xpath_limited(
    doc: &dyn QueryDoc,
    path: &XPath,
    limits: Limits,
) -> Result<Vec<NodeId>, XPathError> {
    match Evaluator::new(doc, None, limits).eval_path(path, Ctx::Super)? {
        XValue::Nodes(ns) => Ok(ns),
        other => Err(XPathError::msg(format!(
            "path evaluated to a non-node value: {other:?}"
        ))),
    }
}

/// Evaluates a (typically relative) path from a context node.
pub fn eval_xpath_from(
    doc: &dyn QueryDoc,
    path: &XPath,
    ctx: NodeId,
) -> Result<Vec<NodeId>, XPathError> {
    match Evaluator::new(doc, None, Limits::default()).eval_path(path, Ctx::Node(ctx))? {
        XValue::Nodes(ns) => Ok(ns),
        other => Err(XPathError::msg(format!(
            "path evaluated to a non-node value: {other:?}"
        ))),
    }
}

/// Evaluates a path that may end in an attribute step. `ctx = None` starts
/// from the document node.
pub fn eval_xpath_value(
    doc: &dyn QueryDoc,
    path: &XPath,
    ctx: Option<NodeId>,
) -> Result<XValue, XPathError> {
    Evaluator::new(doc, None, Limits::default()).eval_path(path, ctx.map_or(Ctx::Super, Ctx::Node))
}

/// Evaluates a path with `$var` support (FLWR engine entry point).
pub fn eval_xpath_with_vars(
    doc: &dyn QueryDoc,
    path: &XPath,
    ctx: Option<NodeId>,
    vars: VarResolver<'_>,
) -> Result<XValue, XPathError> {
    eval_xpath_with_vars_limited(doc, path, ctx, vars, Limits::default())
}

/// [`eval_xpath_with_vars`] with explicit resource limits.
pub fn eval_xpath_with_vars_limited(
    doc: &dyn QueryDoc,
    path: &XPath,
    ctx: Option<NodeId>,
    vars: VarResolver<'_>,
    limits: Limits,
) -> Result<XValue, XPathError> {
    Evaluator::new(doc, Some(vars), limits).eval_path(path, ctx.map_or(Ctx::Super, Ctx::Node))
}

/// Evaluates an expression with `$var` support (FLWR `where` clauses and
/// constructor embeds).
pub fn eval_expr_with_vars(
    doc: &dyn QueryDoc,
    expr: &Expr,
    vars: VarResolver<'_>,
) -> Result<XValue, XPathError> {
    eval_expr_with_vars_limited(doc, expr, vars, Limits::default())
}

/// [`eval_expr_with_vars`] with explicit resource limits.
pub fn eval_expr_with_vars_limited(
    doc: &dyn QueryDoc,
    expr: &Expr,
    vars: VarResolver<'_>,
    limits: Limits,
) -> Result<XValue, XPathError> {
    Evaluator::new(doc, Some(vars), limits).eval_expr(expr, Ctx::Super, 1, 1)
}

/// Evaluates a free-standing expression from a context node (FLWR `where`).
pub fn eval_expr_from(doc: &dyn QueryDoc, expr: &Expr, ctx: NodeId) -> Result<XValue, XPathError> {
    Evaluator::new(doc, None, Limits::default()).eval_expr(expr, Ctx::Node(ctx), 1, 1)
}

/// True when a predicate's value cannot depend on the context position —
/// the condition under which the `//name` index fast path may reorder
/// position bookkeeping. A bare number predicate is a position test; any
/// `position()`/`last()` call (also inside nested path predicates) makes
/// the predicate positional.
fn predicate_is_position_free(e: &Expr) -> bool {
    if matches!(e, Expr::Number(_)) {
        return false;
    }
    fn scan(e: &Expr) -> bool {
        match e {
            Expr::Call(name, args) => name != "position" && name != "last" && args.iter().all(scan),
            Expr::Compare(l, _, r) | Expr::And(l, r) | Expr::Or(l, r) | Expr::Arith(l, _, r) => {
                scan(l) && scan(r)
            }
            Expr::Neg(e) => scan(e),
            Expr::Path(p) => p
                .steps
                .iter()
                .all(|s| s.predicates.iter().all(predicate_is_position_free)),
            Expr::Union(paths) => paths.iter().all(|p| {
                p.steps
                    .iter()
                    .all(|s| s.predicates.iter().all(predicate_is_position_free))
            }),
            Expr::Literal(_) | Expr::Number(_) => true,
        }
    }
    scan(e)
}

struct Evaluator<'d> {
    doc: &'d dyn QueryDoc,
    vars: Option<VarResolver<'d>>,
    limits: Limits,
    depth: Cell<usize>,
    steps: Cell<u64>,
    deadline: Option<Instant>,
}

impl<'d> Evaluator<'d> {
    fn new(doc: &'d dyn QueryDoc, vars: Option<VarResolver<'d>>, limits: Limits) -> Self {
        Evaluator {
            doc,
            vars,
            limits,
            depth: Cell::new(0),
            steps: Cell::new(0),
            deadline: limits
                .time_budget_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
        }
    }

    fn exhausted(resource: ResourceKind, limit: u64) -> XPathError {
        XPathError::ResourceExhausted { resource, limit }
    }

    /// Depth guard around the two mutually recursive entry points
    /// (`eval_path` ↔ `eval_expr` via predicates). Nested predicates and
    /// parenthesized expressions each add a level.
    fn enter(&self) -> Result<(), XPathError> {
        let d = self.depth.get() + 1;
        if d > self.limits.max_depth {
            return Err(Self::exhausted(
                ResourceKind::Depth,
                self.limits.max_depth as u64,
            ));
        }
        self.depth.set(d);
        Ok(())
    }

    fn leave(&self) {
        self.depth.set(self.depth.get() - 1);
    }

    /// Charges `n` evaluation steps (context-node × path-step applications)
    /// against the step budget, and checks the wall-clock deadline if one
    /// was configured.
    fn charge(&self, n: u64) -> Result<(), XPathError> {
        let s = self.steps.get().saturating_add(n);
        self.steps.set(s);
        if s > self.limits.max_steps {
            return Err(Self::exhausted(ResourceKind::Steps, self.limits.max_steps));
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Err(Self::exhausted(
                    ResourceKind::Time,
                    self.limits.time_budget_ms.unwrap_or(0),
                ));
            }
        }
        Ok(())
    }

    /// Caps the cardinality of any intermediate or final context set.
    fn check_cardinality(&self, len: usize) -> Result<(), XPathError> {
        if len > self.limits.max_result {
            return Err(Self::exhausted(
                ResourceKind::Cardinality,
                self.limits.max_result as u64,
            ));
        }
        Ok(())
    }

    fn eval_path(&self, path: &XPath, ctx: Ctx) -> Result<XValue, XPathError> {
        self.enter()?;
        let out = self.eval_path_inner(path, ctx);
        self.leave();
        out
    }

    fn eval_path_inner(&self, path: &XPath, ctx: Ctx) -> Result<XValue, XPathError> {
        let mut current: Vec<Ctx> = if let Some(var) = &path.root_var {
            let resolver = self.vars.ok_or_else(|| {
                XPathError::msg(format!("variable ${var} used outside a FLWR context"))
            })?;
            let nodes =
                resolver(var).ok_or_else(|| XPathError::msg(format!("unbound variable ${var}")))?;
            nodes.into_iter().map(Ctx::Node).collect()
        } else if path.absolute {
            vec![Ctx::Super]
        } else {
            vec![ctx]
        };
        let steps = path.steps.as_slice();
        let mut i = 0;
        while i < steps.len() {
            let step = &steps[i];
            // One unit per context node this step is applied to.
            self.charge(current.len() as u64)?;
            if step.axis == Axis::Attribute {
                if i + 1 != steps.len() {
                    return Err(XPathError::msg(
                        "attribute steps are only supported at the end of a path",
                    ));
                }
                return Ok(XValue::Attrs(self.attribute_step(&current, step)));
            }
            // Index fast path: `//name` (descendant-or-self::node()/
            // child::name) answered from the type/name index when the
            // document provides one and the predicates are position-free.
            if step.axis == Axis::DescendantOrSelf
                && step.test == NodeTest::AnyNode
                && step.predicates.is_empty()
            {
                if let Some(next) = steps.get(i + 1) {
                    if next.axis == Axis::Child {
                        if let NodeTest::Name(name) = &next.test {
                            if next.predicates.iter().all(predicate_is_position_free) {
                                if let Some(found) = self.indexed_descendants(&current, name) {
                                    self.check_cardinality(found.len())?;
                                    current = self.apply_predicates(found, &next.predicates)?;
                                    i += 2;
                                    continue;
                                }
                            }
                        }
                    }
                }
            }
            current = self.apply_step(&current, step)?;
            self.check_cardinality(current.len())?;
            i += 1;
        }
        // The document node never appears in results.
        Ok(XValue::Nodes(
            current
                .into_iter()
                .filter_map(|c| match c {
                    Ctx::Node(n) => Some(n),
                    Ctx::Super => None,
                })
                .collect(),
        ))
    }

    /// Indexed `//name` lookup across a context set; `None` when the
    /// document has no index (fall back to the tree walk).
    fn indexed_descendants(&self, input: &[Ctx], name: &str) -> Option<Vec<Ctx>> {
        let mut merged: Vec<Ctx> = Vec::new();
        for &ctx in input {
            let scope = match ctx {
                Ctx::Super => None,
                Ctx::Node(n) => Some(n),
            };
            let found = self.doc.descendants_named(scope, name)?;
            merged.extend(found.into_iter().map(Ctx::Node));
        }
        self.sort_dedup(&mut merged);
        Some(merged)
    }

    /// Applies one step to a context set: per context, walk the axis,
    /// filter by test, apply predicates positionally, then merge in
    /// document order.
    fn apply_step(&self, input: &[Ctx], step: &Step) -> Result<Vec<Ctx>, XPathError> {
        let mut merged = Vec::new();
        for &ctx in input {
            let axis_nodes = self.axis_nodes(ctx, step.axis);
            let tested = self.filter_test(axis_nodes, &step.test);
            let selected = self.apply_predicates(tested, &step.predicates)?;
            merged.extend(selected);
        }
        self.sort_dedup(&mut merged);
        Ok(merged)
    }

    fn attribute_step(&self, input: &[Ctx], step: &Step) -> Vec<String> {
        let mut out = Vec::new();
        for &ctx in input {
            let Ctx::Node(n) = ctx else { continue };
            if let NodeTest::Name(name) = &step.test {
                if let Some(v) = self.doc.attribute(n, name) {
                    out.push(v);
                }
            }
            // `@*` is not enumerable through the trait: skipped silently.
        }
        out
    }

    /// Contexts on an axis, in axis order (reverse axes nearest-first).
    fn axis_nodes(&self, ctx: Ctx, axis: Axis) -> Vec<Ctx> {
        let node = |n: NodeId| Ctx::Node(n);
        match (ctx, axis) {
            (Ctx::Super, Axis::Child) => self.doc.roots().into_iter().map(node).collect(),
            (Ctx::Super, Axis::Descendant) => {
                let mut out = Vec::new();
                for r in self.doc.roots() {
                    out.push(node(r));
                    out.extend(self.doc.descendants(r).into_iter().map(node));
                }
                out
            }
            (Ctx::Super, Axis::DescendantOrSelf) => {
                let mut out = vec![Ctx::Super];
                out.extend(self.axis_nodes(Ctx::Super, Axis::Descendant));
                out
            }
            (Ctx::Super, Axis::SelfAxis) => vec![Ctx::Super],
            (Ctx::Super, _) => Vec::new(),
            (Ctx::Node(n), axis) => match axis {
                Axis::Child => self.doc.children(n).into_iter().map(node).collect(),
                Axis::Descendant => self.doc.descendants(n).into_iter().map(node).collect(),
                Axis::DescendantOrSelf => {
                    let mut v = vec![node(n)];
                    v.extend(self.doc.descendants(n).into_iter().map(node));
                    v
                }
                Axis::SelfAxis => vec![node(n)],
                Axis::Parent => vec![self.doc.parent(n).map_or(Ctx::Super, node)],
                Axis::Ancestor => {
                    let mut v: Vec<Ctx> = self.doc.ancestors(n).into_iter().map(node).collect();
                    v.push(Ctx::Super);
                    v
                }
                Axis::AncestorOrSelf => {
                    let mut v = vec![node(n)];
                    v.extend(self.doc.ancestors(n).into_iter().map(node));
                    v.push(Ctx::Super);
                    v
                }
                Axis::FollowingSibling => self
                    .doc
                    .following_siblings(n)
                    .into_iter()
                    .map(node)
                    .collect(),
                Axis::PrecedingSibling => {
                    let mut v = self.doc.preceding_siblings(n);
                    v.reverse(); // nearest first
                    v.into_iter().map(node).collect()
                }
                Axis::Following => {
                    // Descendants of following siblings of self and ancestors.
                    let mut out = Vec::new();
                    let mut cur = Some(n);
                    while let Some(c) = cur {
                        for s in self.doc.following_siblings(c) {
                            out.push(s);
                            out.extend(self.doc.descendants(s));
                        }
                        cur = self.doc.parent(c);
                    }
                    out.sort_by(|&a, &b| self.doc.cmp_order(a, b));
                    out.dedup();
                    out.into_iter().map(node).collect()
                }
                Axis::Preceding => {
                    let mut out = Vec::new();
                    let mut cur = Some(n);
                    while let Some(c) = cur {
                        for s in self.doc.preceding_siblings(c) {
                            out.push(s);
                            out.extend(self.doc.descendants(s));
                        }
                        cur = self.doc.parent(c);
                    }
                    // Nearest first = reverse document order.
                    out.sort_by(|&a, &b| self.doc.cmp_order(b, a));
                    out.dedup();
                    out.into_iter().map(node).collect()
                }
                Axis::Attribute => Vec::new(),
            },
        }
    }

    fn filter_test(&self, nodes: Vec<Ctx>, test: &NodeTest) -> Vec<Ctx> {
        nodes
            .into_iter()
            .filter(|&c| match c {
                // The document node matches only node().
                Ctx::Super => matches!(test, NodeTest::AnyNode),
                Ctx::Node(n) => match test {
                    NodeTest::Name(name) => self.doc.name(n) == Some(name.as_str()),
                    NodeTest::AnyElement => self.doc.kind(n).is_element(),
                    NodeTest::Text => self.doc.kind(n).is_text(),
                    NodeTest::AnyNode => true,
                    NodeTest::Comment => matches!(self.doc.kind(n), NodeKind::Comment(_)),
                },
            })
            .collect()
    }

    fn apply_predicates(
        &self,
        mut nodes: Vec<Ctx>,
        predicates: &[Expr],
    ) -> Result<Vec<Ctx>, XPathError> {
        for p in predicates {
            let size = nodes.len();
            let mut kept = Vec::with_capacity(size);
            for (i, &n) in nodes.iter().enumerate() {
                if self.predicate_holds(p, n, i + 1, size)? {
                    kept.push(n);
                }
            }
            nodes = kept;
        }
        Ok(nodes)
    }

    fn predicate_holds(
        &self,
        p: &Expr,
        ctx: Ctx,
        pos: usize,
        size: usize,
    ) -> Result<bool, XPathError> {
        match self.eval_expr(p, ctx, pos, size)? {
            // A bare number predicate is a position test.
            XValue::Num(n) => Ok((n - pos as f64).abs() < f64::EPSILON),
            v => Ok(v.truthy()),
        }
    }

    fn eval_expr(&self, e: &Expr, ctx: Ctx, pos: usize, size: usize) -> Result<XValue, XPathError> {
        self.enter()?;
        let out = self.eval_expr_inner(e, ctx, pos, size);
        self.leave();
        out
    }

    fn eval_expr_inner(
        &self,
        e: &Expr,
        ctx: Ctx,
        pos: usize,
        size: usize,
    ) -> Result<XValue, XPathError> {
        match e {
            Expr::Path(p) => self.eval_path(p, ctx),
            Expr::Literal(s) => Ok(XValue::Str(s.clone())),
            Expr::Number(n) => Ok(XValue::Num(*n)),
            Expr::And(l, r) => Ok(XValue::Bool(
                self.eval_expr(l, ctx, pos, size)?.truthy()
                    && self.eval_expr(r, ctx, pos, size)?.truthy(),
            )),
            Expr::Or(l, r) => Ok(XValue::Bool(
                self.eval_expr(l, ctx, pos, size)?.truthy()
                    || self.eval_expr(r, ctx, pos, size)?.truthy(),
            )),
            Expr::Compare(l, op, r) => {
                let lv = self.eval_expr(l, ctx, pos, size)?;
                let rv = self.eval_expr(r, ctx, pos, size)?;
                Ok(XValue::Bool(self.compare(&lv, *op, &rv)))
            }
            Expr::Arith(l, op, r) => {
                let a = self.to_number(&self.eval_expr(l, ctx, pos, size)?);
                let b = self.to_number(&self.eval_expr(r, ctx, pos, size)?);
                Ok(XValue::Num(match op {
                    ArithOp::Add => a + b,
                    ArithOp::Sub => a - b,
                    ArithOp::Mul => a * b,
                    ArithOp::Div => a / b,
                    ArithOp::Mod => a % b,
                }))
            }
            Expr::Neg(e) => {
                let v = self.to_number(&self.eval_expr(e, ctx, pos, size)?);
                Ok(XValue::Num(-v))
            }
            Expr::Union(paths) => {
                let mut all: Vec<Ctx> = Vec::new();
                for p in paths {
                    match self.eval_path(p, ctx)? {
                        XValue::Nodes(ns) => all.extend(ns.into_iter().map(Ctx::Node)),
                        other => {
                            return Err(XPathError::msg(format!(
                                "union operand evaluated to a non-node value: {other:?}"
                            )))
                        }
                    }
                }
                self.sort_dedup(&mut all);
                Ok(XValue::Nodes(
                    all.into_iter()
                        .filter_map(|c| match c {
                            Ctx::Node(n) => Some(n),
                            Ctx::Super => None,
                        })
                        .collect(),
                ))
            }
            Expr::Call(name, args) => self.eval_call(name, args, ctx, pos, size),
        }
    }

    fn eval_call(
        &self,
        name: &str,
        args: &[Expr],
        ctx: Ctx,
        pos: usize,
        size: usize,
    ) -> Result<XValue, XPathError> {
        let arity = |n: usize| -> Result<(), XPathError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(XPathError::msg(format!(
                    "{name}() expects {n} argument(s), got {}",
                    args.len()
                )))
            }
        };
        match name {
            "count" => {
                arity(1)?;
                match self.eval_expr(&args[0], ctx, pos, size)? {
                    XValue::Nodes(ns) => Ok(XValue::Num(ns.len() as f64)),
                    XValue::Attrs(a) => Ok(XValue::Num(a.len() as f64)),
                    other => Err(XPathError::msg(format!(
                        "count() of a non-node-set: {other:?}"
                    ))),
                }
            }
            "not" => {
                arity(1)?;
                Ok(XValue::Bool(
                    !self.eval_expr(&args[0], ctx, pos, size)?.truthy(),
                ))
            }
            "true" => {
                arity(0)?;
                Ok(XValue::Bool(true))
            }
            "false" => {
                arity(0)?;
                Ok(XValue::Bool(false))
            }
            "position" => {
                arity(0)?;
                Ok(XValue::Num(pos as f64))
            }
            "last" => {
                arity(0)?;
                Ok(XValue::Num(size as f64))
            }
            "contains" => {
                arity(2)?;
                let hay = self.to_string_value(&self.eval_expr(&args[0], ctx, pos, size)?);
                let needle = self.to_string_value(&self.eval_expr(&args[1], ctx, pos, size)?);
                Ok(XValue::Bool(hay.contains(&needle)))
            }
            "starts-with" => {
                arity(2)?;
                let hay = self.to_string_value(&self.eval_expr(&args[0], ctx, pos, size)?);
                let prefix = self.to_string_value(&self.eval_expr(&args[1], ctx, pos, size)?);
                Ok(XValue::Bool(hay.starts_with(&prefix)))
            }
            "string" => {
                arity(1)?;
                let v = self.eval_expr(&args[0], ctx, pos, size)?;
                Ok(XValue::Str(self.to_string_value(&v)))
            }
            "string-length" => {
                arity(1)?;
                let v = self.eval_expr(&args[0], ctx, pos, size)?;
                Ok(XValue::Num(self.to_string_value(&v).chars().count() as f64))
            }
            "number" => {
                arity(1)?;
                let v = self.eval_expr(&args[0], ctx, pos, size)?;
                Ok(XValue::Num(self.to_number(&v)))
            }
            "name" => {
                arity(0)?;
                let n = match ctx {
                    Ctx::Node(n) => self.doc.name(n).unwrap_or_default().to_owned(),
                    Ctx::Super => String::new(),
                };
                Ok(XValue::Str(n))
            }
            "sum" | "avg" | "min" | "max" => {
                arity(1)?;
                let values = self.numeric_values(&self.eval_expr(&args[0], ctx, pos, size)?)?;
                let v = match name {
                    "sum" => values.iter().sum(),
                    "avg" => {
                        if values.is_empty() {
                            f64::NAN
                        } else {
                            values.iter().sum::<f64>() / values.len() as f64
                        }
                    }
                    "min" => values.iter().copied().fold(f64::INFINITY, f64::min),
                    _ => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                };
                Ok(XValue::Num(v))
            }
            "floor" | "ceiling" | "round" => {
                arity(1)?;
                let v = self.to_number(&self.eval_expr(&args[0], ctx, pos, size)?);
                Ok(XValue::Num(match name {
                    "floor" => v.floor(),
                    "ceiling" => v.ceil(),
                    _ => (v + 0.5).floor(), // XPath round() half-up
                }))
            }
            "concat" => {
                if args.len() < 2 {
                    return Err(XPathError::msg("concat() needs at least 2 arguments"));
                }
                let mut out = String::new();
                for a in args {
                    out.push_str(&self.to_string_value(&self.eval_expr(a, ctx, pos, size)?));
                }
                Ok(XValue::Str(out))
            }
            "normalize-space" => {
                arity(1)?;
                let v = self.to_string_value(&self.eval_expr(&args[0], ctx, pos, size)?);
                Ok(XValue::Str(
                    v.split_whitespace().collect::<Vec<_>>().join(" "),
                ))
            }
            "substring" => {
                if args.len() != 2 && args.len() != 3 {
                    return Err(XPathError::msg("substring() takes 2 or 3 arguments"));
                }
                let s = self.to_string_value(&self.eval_expr(&args[0], ctx, pos, size)?);
                // XPath positions are 1-based over characters, rounded.
                let start =
                    (self.to_number(&self.eval_expr(&args[1], ctx, pos, size)?) + 0.5).floor();
                let len = if args.len() == 3 {
                    (self.to_number(&self.eval_expr(&args[2], ctx, pos, size)?) + 0.5).floor()
                } else {
                    f64::INFINITY
                };
                let chars: Vec<char> = s.chars().collect();
                let mut out = String::new();
                for (i, c) in chars.iter().enumerate() {
                    let p = (i + 1) as f64;
                    if p >= start && p < start + len {
                        out.push(*c);
                    }
                }
                Ok(XValue::Str(out))
            }
            other => Err(XPathError::msg(format!("unknown function '{other}'"))),
        }
    }

    fn compare(&self, l: &XValue, op: CmpOp, r: &XValue) -> bool {
        // Existential node-set semantics.
        if let XValue::Nodes(ns) = l {
            return ns.iter().any(|&n| {
                let s = XValue::Str(self.doc.string_value(n));
                self.compare(&s, op, r)
            });
        }
        if let XValue::Nodes(ns) = r {
            return ns.iter().any(|&n| {
                let s = XValue::Str(self.doc.string_value(n));
                self.compare(l, op, &s)
            });
        }
        if let XValue::Attrs(a) = l {
            return a
                .iter()
                .any(|v| self.compare(&XValue::Str(v.clone()), op, r));
        }
        if let XValue::Attrs(a) = r {
            return a
                .iter()
                .any(|v| self.compare(l, op, &XValue::Str(v.clone())));
        }
        let numeric = matches!(l, XValue::Num(_))
            || matches!(r, XValue::Num(_))
            || matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge);
        if numeric {
            let (a, b) = (self.to_number(l), self.to_number(r));
            match op {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
            }
        } else {
            let (a, b) = (self.to_string_value(l), self.to_string_value(r));
            match op {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                _ => unreachable!("relational handled numerically"),
            }
        }
    }

    fn to_string_value(&self, v: &XValue) -> String {
        match v {
            XValue::Nodes(ns) => ns
                .first()
                .map(|&n| self.doc.string_value(n))
                .unwrap_or_default(),
            XValue::Attrs(a) => a.first().cloned().unwrap_or_default(),
            XValue::Str(s) => s.clone(),
            XValue::Num(n) => {
                if n.fract() == 0.0 && n.is_finite() {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            XValue::Bool(b) => b.to_string(),
        }
    }

    /// Per-node numeric values of a node set (or the single value of a
    /// scalar) — the input to the aggregate functions.
    fn numeric_values(&self, v: &XValue) -> Result<Vec<f64>, XPathError> {
        Ok(match v {
            XValue::Nodes(ns) => ns
                .iter()
                .map(|&n| self.doc.string_value(n).trim().parse().unwrap_or(f64::NAN))
                .collect(),
            XValue::Attrs(a) => a
                .iter()
                .map(|s| s.trim().parse().unwrap_or(f64::NAN))
                .collect(),
            other => vec![self.to_number(other)],
        })
    }

    fn to_number(&self, v: &XValue) -> f64 {
        match v {
            XValue::Num(n) => *n,
            XValue::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            other => self
                .to_string_value(other)
                .trim()
                .parse()
                .unwrap_or(f64::NAN),
        }
    }

    fn sort_dedup(&self, ctxs: &mut Vec<Ctx>) {
        // The document node sorts before everything.
        ctxs.sort_by(|&a, &b| match (a, b) {
            (Ctx::Super, Ctx::Super) => std::cmp::Ordering::Equal,
            (Ctx::Super, _) => std::cmp::Ordering::Less,
            (_, Ctx::Super) => std::cmp::Ordering::Greater,
            (Ctx::Node(x), Ctx::Node(y)) => self.doc.cmp_order(x, y),
        });
        ctxs.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::PhysicalDoc;
    use crate::testutil::Must;
    use crate::xpath::parse_xpath;
    use vh_dataguide::TypedDocument;
    use vh_xml::builder::paper_figure2;

    fn eval(doc: &dyn QueryDoc, path: &str) -> Vec<NodeId> {
        eval_xpath(doc, &parse_xpath(path).must()).must()
    }

    fn values(doc: &dyn QueryDoc, nodes: &[NodeId]) -> Vec<String> {
        nodes.iter().map(|&n| doc.string_value(n)).collect()
    }

    #[test]
    fn basic_paths_on_figure2() {
        let td = TypedDocument::analyze(paper_figure2());
        let d = PhysicalDoc::new(&td);
        assert_eq!(eval(&d, "/data").len(), 1);
        assert_eq!(eval(&d, "/data/book").len(), 2);
        assert_eq!(values(&d, &eval(&d, "//title")), vec!["X", "Y"]);
        assert_eq!(values(&d, &eval(&d, "//book/title/text()")), vec!["X", "Y"]);
        assert_eq!(eval(&d, "//nosuch").len(), 0);
        assert_eq!(eval(&d, "/nosuch").len(), 0);
        // The root element is reachable by //data too.
        assert_eq!(eval(&d, "//data").len(), 1);
    }

    #[test]
    fn sams_title_to_author_navigation() {
        // $t/../author with $t bound to each title.
        let td = TypedDocument::analyze(paper_figure2());
        let d = PhysicalDoc::new(&td);
        let titles = eval(&d, "//book/title");
        let rel = parse_xpath("../author").must();
        let authors: Vec<NodeId> = titles
            .iter()
            .flat_map(|&t| eval_xpath_from(&d, &rel, t).must())
            .collect();
        assert_eq!(values(&d, &authors), vec!["C", "D"]);
    }

    #[test]
    fn parent_of_root_is_the_document_node() {
        let td = TypedDocument::analyze(paper_figure2());
        let d = PhysicalDoc::new(&td);
        let root = eval(&d, "/data");
        // ../data from the root: up to the document node, down again.
        let rel = parse_xpath("../data").must();
        let back = eval_xpath_from(&d, &rel, root[0]).must();
        assert_eq!(back, root);
    }

    #[test]
    fn predicates_filter_by_value() {
        let td = TypedDocument::analyze(paper_figure2());
        let d = PhysicalDoc::new(&td);
        let books = eval(&d, "//book[title = 'Y']");
        assert_eq!(books.len(), 1);
        assert_eq!(d.string_value(books[0]), "YDM");
        assert_eq!(eval(&d, "//book[title = 'Z']").len(), 0);
        assert_eq!(eval(&d, "//book[count(author) = 1]").len(), 2);
        assert_eq!(eval(&d, "//book[count(author) > 1]").len(), 0);
        assert_eq!(eval(&d, "//book[not(publisher)]").len(), 0);
    }

    #[test]
    fn positional_predicates() {
        let td = TypedDocument::analyze(paper_figure2());
        let d = PhysicalDoc::new(&td);
        let first = eval(&d, "/data/book[1]/title");
        assert_eq!(values(&d, &first), vec!["X"]);
        let last = eval(&d, "/data/book[last()]/title");
        assert_eq!(values(&d, &last), vec!["Y"]);
        let second = eval(&d, "/data/book[position() = 2]/title");
        assert_eq!(values(&d, &second), vec!["Y"]);
    }

    #[test]
    fn reverse_axes_count_from_nearest() {
        let td = TypedDocument::analyze(paper_figure2());
        let d = PhysicalDoc::new(&td);
        let names = eval(&d, "//name");
        let anc = parse_xpath("ancestor::*[1]").must();
        let nearest = eval_xpath_from(&d, &anc, names[0]).must();
        assert_eq!(d.name(nearest[0]), Some("author"));
        let anc2 = parse_xpath("ancestor::*[2]").must();
        let second = eval_xpath_from(&d, &anc2, names[0]).must();
        assert_eq!(d.name(second[0]), Some("book"));
    }

    #[test]
    fn sibling_and_horizontal_axes() {
        let td = TypedDocument::analyze(paper_figure2());
        let d = PhysicalDoc::new(&td);
        let titles = eval(&d, "//title");
        let fs = parse_xpath("following-sibling::*").must();
        let after_title1 = eval_xpath_from(&d, &fs, titles[0]).must();
        let names: Vec<_> = after_title1.iter().map(|&n| d.name(n).must()).collect();
        assert_eq!(names, vec!["author", "publisher"]);
        let fol = parse_xpath("following::title").must();
        let following_titles = eval_xpath_from(&d, &fol, titles[0]).must();
        assert_eq!(values(&d, &following_titles), vec!["Y"]);
        let prec = parse_xpath("preceding::title").must();
        let preceding_titles = eval_xpath_from(&d, &prec, titles[1]).must();
        assert_eq!(values(&d, &preceding_titles), vec!["X"]);
    }

    #[test]
    fn wildcard_and_node_tests() {
        let td = TypedDocument::analyze(paper_figure2());
        let d = PhysicalDoc::new(&td);
        assert_eq!(eval(&d, "/data/*").len(), 2);
        assert_eq!(eval(&d, "//book/*").len(), 6);
        // All text nodes.
        assert_eq!(eval(&d, "//text()").len(), 6);
        // node() matches elements and text alike.
        assert_eq!(eval(&d, "/data//node()").len(), td.doc().len() - 1);
        // //node() excludes only the document node itself.
        assert_eq!(eval(&d, "//node()").len(), td.doc().len());
    }

    #[test]
    fn attribute_access() {
        let td = TypedDocument::parse(
            "u",
            r#"<lib><b id="1"><t>A</t></b><b id="2"><t>B</t></b></lib>"#,
        )
        .must();
        let d = PhysicalDoc::new(&td);
        let b2 = eval(&d, "//b[@id = '2']");
        assert_eq!(values(&d, &b2), vec!["B"]);
        let path = parse_xpath("//b/@id").must();
        match eval_xpath_value(&d, &path, None).must() {
            XValue::Attrs(a) => assert_eq!(a, vec!["1", "2"]),
            other => panic!("expected attrs, got {other:?}"),
        }
        // Numeric comparison on attributes.
        let b_ge = eval(&d, "//b[@id >= 2]");
        assert_eq!(b_ge.len(), 1);
    }

    #[test]
    fn contains_and_string_functions() {
        let td = TypedDocument::analyze(paper_figure2());
        let d = PhysicalDoc::new(&td);
        assert_eq!(eval(&d, "//book[contains(title, 'X')]").len(), 1);
        assert_eq!(eval(&d, "//book[starts-with(title, 'Y')]").len(), 1);
        assert_eq!(eval(&d, "//book[string-length(title) = 1]").len(), 2);
    }

    #[test]
    fn same_query_physical_vs_identity_virtual() {
        use crate::doc::VirtualDoc;
        use vh_core::VirtualDocument;
        let td = TypedDocument::analyze(paper_figure2());
        let vd = VirtualDocument::open(&td, "data { ** }").must();
        let p = PhysicalDoc::new(&td);
        let v = VirtualDoc::new(&vd);
        for q in [
            "//book/title",
            "//author/name/text()",
            "/data/book[2]/publisher/location",
            "//book[title = 'X']//name",
        ] {
            assert_eq!(eval(&p, q), eval(&v, q), "query {q}");
        }
    }

    #[test]
    fn rhondas_query_over_the_virtual_document() {
        // Figure 6: virtualDoc(..., "title { author { name } }")//title,
        // then count($t/author).
        use crate::doc::VirtualDoc;
        use vh_core::VirtualDocument;
        let td = TypedDocument::analyze(paper_figure2());
        let vd = VirtualDocument::open(&td, "title { author { name } }").must();
        let v = VirtualDoc::new(&vd);
        let titles = eval(&v, "//title");
        assert_eq!(titles.len(), 2);
        let count_authors = parse_xpath("author").must();
        for &t in &titles {
            // In the virtual hierarchy each title has exactly one author
            // child — physically authors are the title's siblings.
            assert_eq!(eval_xpath_from(&v, &count_authors, t).must().len(), 1);
        }
        // And the virtual hierarchy answers //title/author/name.
        let names = eval(&v, "//title/author/name");
        assert_eq!(values(&v, &names), vec!["C", "D"]);
    }

    #[test]
    fn arithmetic_in_predicates() {
        let td = TypedDocument::parse(
            "u",
            "<s><i><p>10</p></i><i><p>25</p></i><i><p>40</p></i></s>",
        )
        .must();
        let d = PhysicalDoc::new(&td);
        assert_eq!(eval(&d, "//i[p > 10 + 5]").len(), 2);
        assert_eq!(eval(&d, "//i[p = 5 * 5]").len(), 1);
        assert_eq!(eval(&d, "//i[p div 2 = 20]").len(), 1);
        assert_eq!(eval(&d, "//i[p mod 2 = 1]").len(), 1);
        assert_eq!(eval(&d, "//i[p > -5]").len(), 3);
        // Precedence: multiplication binds tighter than addition.
        assert_eq!(eval(&d, "//i[p = 5 + 5 * 7]").len(), 1);
    }

    #[test]
    fn aggregate_functions() {
        let td = TypedDocument::parse(
            "u",
            "<s><i><p>10</p></i><i><p>25</p></i><i><p>40</p></i></s>",
        )
        .must();
        let d = PhysicalDoc::new(&td);
        assert_eq!(eval(&d, "/s[sum(i/p) = 75]").len(), 1);
        assert_eq!(eval(&d, "/s[avg(i/p) = 25]").len(), 1);
        assert_eq!(eval(&d, "/s[min(i/p) = 10 and max(i/p) = 40]").len(), 1);
        assert_eq!(eval(&d, "/s[floor(avg(i/p)) = 25]").len(), 1);
        assert_eq!(
            eval(&d, "/s[round(25.5) = 26 and ceiling(25.1) = 26]").len(),
            1
        );
    }

    #[test]
    fn string_function_library() {
        let td = TypedDocument::analyze(paper_figure2());
        let d = PhysicalDoc::new(&td);
        assert_eq!(
            eval(&d, "//book[concat(title, '-', publisher/location) = 'X-W']").len(),
            1
        );
        assert_eq!(eval(&d, "//book[substring(title, 1, 1) = 'Y']").len(), 1);
        assert_eq!(
            eval(
                &d,
                "//book[normalize-space(concat(' ', title, '  ')) = 'X']"
            )
            .len(),
            1
        );
    }

    #[test]
    fn union_merges_in_document_order() {
        let td = TypedDocument::analyze(paper_figure2());
        let d = PhysicalDoc::new(&td);
        let p = parse_xpath("//book[1]").must();
        let books = eval_xpath(&d, &p).must();
        let u = crate::xpath::parse::parse_expr("title | publisher/location | title").must();
        match super::eval_expr_from(&d, &u, books[0]).must() {
            XValue::Nodes(ns) => {
                let names: Vec<_> = ns.iter().map(|&n| d.name(n).must()).collect();
                // Deduplicated, in document order.
                assert_eq!(names, vec!["title", "location"]);
            }
            other => panic!("expected nodes, got {other:?}"),
        }
    }

    #[test]
    fn unknown_function_is_an_eval_error() {
        let td = TypedDocument::analyze(paper_figure2());
        let d = PhysicalDoc::new(&td);
        let p = parse_xpath("//book[frobnicate()]").must();
        assert!(eval_xpath(&d, &p).is_err());
    }

    #[test]
    fn resource_limits_abort_evaluation() {
        let td = TypedDocument::analyze(paper_figure2());
        let d = PhysicalDoc::new(&td);
        let p = parse_xpath("//book/title").must();
        let exhausted_with = |limits: Limits| match eval_xpath_limited(&d, &p, limits) {
            Err(XPathError::ResourceExhausted { resource, .. }) => Some(resource),
            _ => None,
        };
        assert_eq!(
            exhausted_with(Limits {
                max_steps: 2,
                ..Limits::default()
            }),
            Some(ResourceKind::Steps)
        );
        assert_eq!(
            exhausted_with(Limits {
                max_result: 1,
                ..Limits::default()
            }),
            Some(ResourceKind::Cardinality)
        );
        assert_eq!(
            exhausted_with(Limits {
                time_budget_ms: Some(0),
                ..Limits::default()
            }),
            Some(ResourceKind::Time)
        );
        // Depth: the predicate expression pushes past a depth-1 allowance.
        let pred = parse_xpath("//book[title = 'X']").must();
        let e = eval_xpath_limited(
            &d,
            &pred,
            Limits {
                max_depth: 1,
                ..Limits::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(
                e,
                XPathError::ResourceExhausted {
                    resource: ResourceKind::Depth,
                    ..
                }
            ),
            "{e}"
        );
        // Default limits are far above what the query needs.
        assert_eq!(
            eval_xpath_limited(&d, &p, Limits::default()).must().len(),
            2
        );
        // Unlimited switches every guard off.
        assert_eq!(
            eval_xpath_limited(&d, &p, Limits::unlimited()).must().len(),
            2
        );
    }
}
