//! XPath abstract syntax.

use std::fmt;

/// A parsed location path.
#[derive(Clone, Debug, PartialEq)]
pub struct XPath {
    /// True when the path starts at the document root(s) (`/...` or
    /// `//...`); false for relative paths evaluated from a context node.
    pub absolute: bool,
    /// When set, the path is rooted at a variable binding (`$t/author`):
    /// the FLWR engine supplies the nodes bound to the variable as the
    /// starting contexts. Mutually exclusive with `absolute`.
    pub root_var: Option<String>,
    /// The steps, left to right. May be empty for a bare `$var` reference.
    pub steps: Vec<Step>,
}

/// One location step: axis, node test, predicates.
#[derive(Clone, Debug, PartialEq)]
pub struct Step {
    /// The axis to walk.
    pub axis: Axis,
    /// Which nodes on the axis qualify.
    pub test: NodeTest,
    /// Zero or more predicates, applied in order.
    pub predicates: Vec<Expr>,
}

/// The supported axes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `child::` (default).
    Child,
    /// `descendant::`.
    Descendant,
    /// `descendant-or-self::` (the meaning of `//`).
    DescendantOrSelf,
    /// `self::` (`.`).
    SelfAxis,
    /// `parent::` (`..`).
    Parent,
    /// `ancestor::`.
    Ancestor,
    /// `ancestor-or-self::`.
    AncestorOrSelf,
    /// `following-sibling::`.
    FollowingSibling,
    /// `preceding-sibling::`.
    PrecedingSibling,
    /// `following::`.
    Following,
    /// `preceding::`.
    Preceding,
    /// `attribute::` (`@`).
    Attribute,
}

impl Axis {
    /// The axis name as written in the full syntax.
    pub fn name(self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::SelfAxis => "self",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::FollowingSibling => "following-sibling",
            Axis::PrecedingSibling => "preceding-sibling",
            Axis::Following => "following",
            Axis::Preceding => "preceding",
            Axis::Attribute => "attribute",
        }
    }
}

/// A node test.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeTest {
    /// A name test (`book`).
    Name(String),
    /// `*` — any element.
    AnyElement,
    /// `text()`.
    Text,
    /// `node()` — any node.
    AnyNode,
    /// `comment()`.
    Comment,
}

/// A predicate or general expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A relative (or absolute) path evaluated as a node set.
    Path(XPath),
    /// A string literal.
    Literal(String),
    /// A numeric literal. A bare number predicate means a position test.
    Number(f64),
    /// Binary comparison.
    Compare(Box<Expr>, CmpOp, Box<Expr>),
    /// Binary arithmetic (`+ - * div mod`), evaluated over numbers.
    Arith(Box<Expr>, ArithOp, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Union of path results (`a | b`), merged in document order.
    Union(Vec<XPath>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
}

/// Arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `div`
    Div,
    /// `mod`
    Mod,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "div",
            ArithOp::Mod => "mod",
        })
    }
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_names_round_trip() {
        for a in [
            Axis::Child,
            Axis::Descendant,
            Axis::DescendantOrSelf,
            Axis::SelfAxis,
            Axis::Parent,
            Axis::Ancestor,
            Axis::AncestorOrSelf,
            Axis::FollowingSibling,
            Axis::PrecedingSibling,
            Axis::Following,
            Axis::Preceding,
            Axis::Attribute,
        ] {
            assert!(!a.name().is_empty());
        }
    }
}
