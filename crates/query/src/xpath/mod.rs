//! An XPath 1.0 subset: location paths with thirteen axes, node tests,
//! and predicates (comparisons, positions, boolean operators, a small
//! function library).
//!
//! Grammar (abbreviated and full axis syntax):
//!
//! ```text
//! path      ::= '/'? step ('/' step)*  |  '//' step ('/' step)*
//! step      ::= (axis '::')? test predicate*
//!             | '@' name | '.' | '..'
//! test      ::= name | '*' | 'text()' | 'node()' | 'comment()'
//! predicate ::= '[' expr ']'
//! expr      ::= or-expr ; with =, !=, <, <=, >, >=, and, or,
//!               numbers, 'literals', paths, count(...), not(...),
//!               contains(...), position(), last()
//! ```

pub mod ast;
pub mod eval;
mod lex;
pub mod parse;

pub use ast::{Axis, Expr, NodeTest, Step, XPath};
pub use eval::{eval_xpath, eval_xpath_from, XValue};
pub use parse::{parse_xpath, XPathError};
