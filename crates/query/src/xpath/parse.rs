//! Recursive-descent parser for the XPath subset.

use crate::error::ResourceKind;
use crate::xpath::ast::{ArithOp, Axis, CmpOp, Expr, NodeTest, Step, XPath};
use crate::xpath::lex::{tokenize, Tok};
use std::fmt;

/// Maximum nesting depth the parser accepts (parenthesized expressions,
/// nested predicates). Both the parser and the evaluator recurse once per
/// level, so pathological input degrades to an error, not a stack overflow.
pub const MAX_PARSE_DEPTH: usize = 64;

/// XPath parse or evaluation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XPathError {
    /// Malformed input or an evaluation failure, human-readable.
    Message(String),
    /// A resource guard tripped (see [`crate::error::Limits`]).
    ResourceExhausted {
        /// The exhausted resource.
        resource: ResourceKind,
        /// The limit that was hit.
        limit: u64,
    },
}

impl XPathError {
    /// Constructs a plain message error.
    pub fn msg(m: impl Into<String>) -> Self {
        XPathError::Message(m.into())
    }
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XPathError::Message(m) => write!(f, "XPath error: {m}"),
            XPathError::ResourceExhausted { resource, limit } => {
                write!(
                    f,
                    "XPath evaluation exceeded its {resource} limit of {limit}"
                )
            }
        }
    }
}

impl std::error::Error for XPathError {}

/// Parses an XPath location path such as `//book/title[author = 'X']`.
pub fn parse_xpath(input: &str) -> Result<XPath, XPathError> {
    let toks = tokenize(input).map_err(|(m, off)| XPathError::msg(format!("{m} at byte {off}")))?;
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    let path = p.path()?;
    if p.pos != p.toks.len() {
        return Err(XPathError::msg(format!(
            "trailing input at token {} ({})",
            p.pos, p.toks[p.pos]
        )));
    }
    Ok(path)
}

/// Parses a free-standing expression (used by the FLWR engine for `where`
/// clauses).
pub fn parse_expr(input: &str) -> Result<Expr, XPathError> {
    let toks = tokenize(input).map_err(|(m, off)| XPathError::msg(format!("{m} at byte {off}")))?;
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    let e = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(XPathError::msg("trailing input after expression"));
    }
    Ok(e)
}

pub(crate) struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    /// Depth guard wrapped around every recursive production.
    fn descend<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, XPathError>,
    ) -> Result<T, XPathError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(XPathError::ResourceExhausted {
                resource: ResourceKind::Depth,
                limit: MAX_PARSE_DEPTH as u64,
            });
        }
        let out = f(self);
        self.depth -= 1;
        out
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_tok(&mut self, t: &Tok) -> Result<(), XPathError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(XPathError::msg(format!(
                "expected '{t}', found {}",
                self.peek()
                    .map_or("end of input".to_owned(), |x| x.to_string())
            )))
        }
    }

    /// `path ::= '$'var ('/' step)* | '/'? step ('/'|'//' step)* | '//' …`
    pub(crate) fn path(&mut self) -> Result<XPath, XPathError> {
        self.descend(Self::path_inner)
    }

    fn path_inner(&mut self) -> Result<XPath, XPathError> {
        // Variable-rooted path: `$t`, `$t/author`, `$t//name`.
        if let Some(Tok::Var(v)) = self.peek() {
            let root_var = Some(v.clone());
            self.pos += 1;
            let mut steps = Vec::new();
            loop {
                match self.peek() {
                    Some(Tok::Slash) => {
                        self.pos += 1;
                        steps.push(self.step()?);
                    }
                    Some(Tok::DoubleSlash) => {
                        self.pos += 1;
                        steps.push(Step {
                            axis: Axis::DescendantOrSelf,
                            test: NodeTest::AnyNode,
                            predicates: Vec::new(),
                        });
                        steps.push(self.step()?);
                    }
                    _ => break,
                }
            }
            return Ok(XPath {
                absolute: false,
                root_var,
                steps,
            });
        }
        let mut steps = Vec::new();
        let absolute = match self.peek() {
            Some(Tok::Slash) => {
                self.pos += 1;
                true
            }
            Some(Tok::DoubleSlash) => {
                self.pos += 1;
                steps.push(Step {
                    axis: Axis::DescendantOrSelf,
                    test: NodeTest::AnyNode,
                    predicates: Vec::new(),
                });
                true
            }
            _ => false,
        };
        steps.push(self.step()?);
        loop {
            match self.peek() {
                Some(Tok::Slash) => {
                    self.pos += 1;
                    steps.push(self.step()?);
                }
                Some(Tok::DoubleSlash) => {
                    self.pos += 1;
                    steps.push(Step {
                        axis: Axis::DescendantOrSelf,
                        test: NodeTest::AnyNode,
                        predicates: Vec::new(),
                    });
                    steps.push(self.step()?);
                }
                _ => break,
            }
        }
        Ok(XPath {
            absolute,
            root_var: None,
            steps,
        })
    }

    fn step(&mut self) -> Result<Step, XPathError> {
        // Abbreviations first.
        if self.eat(&Tok::Dot) {
            return Ok(Step {
                axis: Axis::SelfAxis,
                test: NodeTest::AnyNode,
                predicates: self.predicates()?,
            });
        }
        if self.eat(&Tok::DotDot) {
            return Ok(Step {
                axis: Axis::Parent,
                test: NodeTest::AnyNode,
                predicates: self.predicates()?,
            });
        }
        if self.eat(&Tok::At) {
            let name = match self.bump() {
                Some(Tok::Name(n)) => n,
                Some(Tok::Star) => {
                    return Ok(Step {
                        axis: Axis::Attribute,
                        test: NodeTest::AnyElement,
                        predicates: self.predicates()?,
                    })
                }
                other => {
                    return Err(XPathError::msg(format!(
                        "expected attribute name after '@', found {other:?}"
                    )))
                }
            };
            return Ok(Step {
                axis: Axis::Attribute,
                test: NodeTest::Name(name),
                predicates: self.predicates()?,
            });
        }
        // Optional explicit axis.
        let axis = if let Some(Tok::Name(n)) = self.peek() {
            if self.toks.get(self.pos + 1) == Some(&Tok::ColonColon) {
                let axis = axis_from_name(n)
                    .ok_or_else(|| XPathError::msg(format!("unknown axis '{n}'")))?;
                self.pos += 2;
                axis
            } else {
                Axis::Child
            }
        } else {
            Axis::Child
        };
        let test = self.node_test()?;
        Ok(Step {
            axis,
            test,
            predicates: self.predicates()?,
        })
    }

    fn node_test(&mut self) -> Result<NodeTest, XPathError> {
        match self.bump() {
            Some(Tok::Star) => Ok(NodeTest::AnyElement),
            Some(Tok::Name(n)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.pos += 1;
                    self.expect_tok(&Tok::RParen)?;
                    match n.as_str() {
                        "text" => Ok(NodeTest::Text),
                        "node" => Ok(NodeTest::AnyNode),
                        "comment" => Ok(NodeTest::Comment),
                        other => Err(XPathError::msg(format!("unknown node test '{other}()'"))),
                    }
                } else {
                    Ok(NodeTest::Name(n))
                }
            }
            other => Err(XPathError::msg(format!(
                "expected a node test, found {}",
                other.map_or("end of input".to_owned(), |t| t.to_string())
            ))),
        }
    }

    fn predicates(&mut self) -> Result<Vec<Expr>, XPathError> {
        let mut out = Vec::new();
        while self.eat(&Tok::LBracket) {
            out.push(self.expr()?);
            self.expect_tok(&Tok::RBracket)?;
        }
        Ok(out)
    }

    /// `expr ::= and-expr ('or' and-expr)*`
    pub(crate) fn expr(&mut self) -> Result<Expr, XPathError> {
        self.descend(Self::expr_inner)
    }

    fn expr_inner(&mut self) -> Result<Expr, XPathError> {
        let mut left = self.and_expr()?;
        while matches!(self.peek(), Some(Tok::Name(n)) if n == "or") {
            self.pos += 1;
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, XPathError> {
        let mut left = self.cmp_expr()?;
        while matches!(self.peek(), Some(Tok::Name(n)) if n == "and") {
            self.pos += 1;
            let right = self.cmp_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn cmp_expr(&mut self) -> Result<Expr, XPathError> {
        let left = self.additive()?;
        if let Some(Tok::Cmp(op)) = self.peek() {
            let op = match *op {
                "=" => CmpOp::Eq,
                "!=" => CmpOp::Ne,
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                _ => unreachable!("lexer produces only known operators"),
            };
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::Compare(Box::new(left), op, Box::new(right)));
        }
        Ok(left)
    }

    /// `additive ::= multiplicative (('+'|'-') multiplicative)*`
    fn additive(&mut self) -> Result<Expr, XPathError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => ArithOp::Add,
                Some(Tok::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::Arith(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    /// `multiplicative ::= unary (('*'|'div'|'mod') unary)*`
    ///
    /// `*` after a complete operand is multiplication; in operand position
    /// it is the wildcard node test (standard XPath disambiguation).
    fn multiplicative(&mut self) -> Result<Expr, XPathError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => ArithOp::Mul,
                Some(Tok::Name(n)) if n == "div" => ArithOp::Div,
                Some(Tok::Name(n)) if n == "mod" => ArithOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::Arith(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    /// `unary ::= '-' unary | union`
    fn unary(&mut self) -> Result<Expr, XPathError> {
        if self.eat(&Tok::Minus) {
            // Self-recursive without passing through expr()/path(), so it
            // needs its own depth guard against `----…x` chains.
            return self.descend(|p| Ok(Expr::Neg(Box::new(p.unary()?))));
        }
        self.union_expr()
    }

    /// `union ::= primary ('|' primary)*` — every operand must be a path.
    fn union_expr(&mut self) -> Result<Expr, XPathError> {
        let first = self.primary()?;
        if self.peek() != Some(&Tok::Pipe) {
            return Ok(first);
        }
        let mut paths = vec![match first {
            Expr::Path(p) => p,
            other => {
                return Err(XPathError::msg(format!(
                    "only paths can be united with '|', found {other:?}"
                )))
            }
        }];
        while self.eat(&Tok::Pipe) {
            match self.primary()? {
                Expr::Path(p) => paths.push(p),
                other => {
                    return Err(XPathError::msg(format!(
                        "only paths can be united with '|', found {other:?}"
                    )))
                }
            }
        }
        Ok(Expr::Union(paths))
    }

    fn primary(&mut self) -> Result<Expr, XPathError> {
        match self.peek() {
            Some(Tok::Literal(_)) => {
                let Some(Tok::Literal(l)) = self.bump() else {
                    unreachable!()
                };
                Ok(Expr::Literal(l))
            }
            Some(Tok::Number(_)) => {
                let Some(Tok::Number(n)) = self.bump() else {
                    unreachable!()
                };
                Ok(Expr::Number(n))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_tok(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Name(n)) if self.toks.get(self.pos + 1) == Some(&Tok::LParen) => {
                // Function call — unless it's a node test like text().
                let name = n.clone();
                if matches!(name.as_str(), "text" | "node" | "comment") {
                    return self.path().map(Expr::Path);
                }
                self.pos += 2;
                let mut args = Vec::new();
                if !self.eat(&Tok::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if self.eat(&Tok::RParen) {
                            break;
                        }
                        self.expect_tok(&Tok::Comma)?;
                    }
                }
                Ok(Expr::Call(name, args))
            }
            _ => self.path().map(Expr::Path),
        }
    }
}

fn axis_from_name(n: &str) -> Option<Axis> {
    Some(match n {
        "child" => Axis::Child,
        "descendant" => Axis::Descendant,
        "descendant-or-self" => Axis::DescendantOrSelf,
        "self" => Axis::SelfAxis,
        "parent" => Axis::Parent,
        "ancestor" => Axis::Ancestor,
        "ancestor-or-self" => Axis::AncestorOrSelf,
        "following-sibling" => Axis::FollowingSibling,
        "preceding-sibling" => Axis::PrecedingSibling,
        "following" => Axis::Following,
        "preceding" => Axis::Preceding,
        "attribute" => Axis::Attribute,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Must;

    #[test]
    fn parses_sams_path() {
        // From Figure 1: //book/title
        let p = parse_xpath("//book/title").must();
        assert!(p.absolute);
        assert_eq!(p.steps.len(), 3);
        assert_eq!(p.steps[0].axis, Axis::DescendantOrSelf);
        assert_eq!(p.steps[1].test, NodeTest::Name("book".into()));
        assert_eq!(p.steps[2].test, NodeTest::Name("title".into()));
    }

    #[test]
    fn parses_parent_abbreviation() {
        // From Figure 1: $t/../author — relative part: ../author
        let p = parse_xpath("../author").must();
        assert!(!p.absolute);
        assert_eq!(p.steps[0].axis, Axis::Parent);
        assert_eq!(p.steps[1].test, NodeTest::Name("author".into()));
    }

    #[test]
    fn parses_predicates() {
        let p = parse_xpath("//book[title = 'X']/author[1]").must();
        let book = &p.steps[1];
        assert_eq!(book.predicates.len(), 1);
        assert!(matches!(
            &book.predicates[0],
            Expr::Compare(l, CmpOp::Eq, r)
                if matches!(**l, Expr::Path(_)) && matches!(**r, Expr::Literal(_))
        ));
        let author = &p.steps[2];
        assert_eq!(author.predicates, vec![Expr::Number(1.0)]);
    }

    #[test]
    fn parses_full_axes() {
        let p = parse_xpath("ancestor::book/descendant-or-self::node()").must();
        assert_eq!(p.steps[0].axis, Axis::Ancestor);
        assert_eq!(p.steps[1].axis, Axis::DescendantOrSelf);
        assert_eq!(p.steps[1].test, NodeTest::AnyNode);
    }

    #[test]
    fn parses_functions_and_boolean_operators() {
        let e = parse_expr("count(author) >= 2 and not(publisher) or title = 'X'").must();
        assert!(matches!(e, Expr::Or(..)));
    }

    #[test]
    fn parses_text_and_attribute_steps() {
        let p = parse_xpath("book/title/text()").must();
        assert_eq!(p.steps[2].test, NodeTest::Text);
        let p = parse_xpath("book/@id").must();
        assert_eq!(p.steps[1].axis, Axis::Attribute);
        assert_eq!(p.steps[1].test, NodeTest::Name("id".into()));
    }

    #[test]
    fn parses_wildcards() {
        let p = parse_xpath("/*/*").must();
        assert_eq!(p.steps[0].test, NodeTest::AnyElement);
        assert_eq!(p.steps.len(), 2);
    }

    #[test]
    fn rejects_malformed_paths() {
        assert!(parse_xpath("//").is_err());
        assert!(parse_xpath("book[").is_err());
        assert!(parse_xpath("book]").is_err());
        assert!(parse_xpath("unknown-axis::x").is_err());
        assert!(
            parse_xpath("book/title[foo()]").is_ok(),
            "unknown fn parses; eval rejects"
        );
        assert!(parse_xpath("book//").is_err());
    }

    #[test]
    fn deeply_nested_input_errors_instead_of_overflowing() {
        let deep = "(".repeat(MAX_PARSE_DEPTH * 2) + "1" + &")".repeat(MAX_PARSE_DEPTH * 2);
        let e = parse_expr(&deep).unwrap_err();
        assert!(matches!(e, XPathError::ResourceExhausted { .. }), "{e}");
        let minus = "-".repeat(MAX_PARSE_DEPTH * 2) + "1";
        let e = parse_expr(&minus).unwrap_err();
        assert!(matches!(e, XPathError::ResourceExhausted { .. }), "{e}");
        // Within the limit still parses.
        let ok = "(".repeat(8) + "1" + &")".repeat(8);
        assert!(parse_expr(&ok).is_ok());
    }

    #[test]
    fn dot_and_self_axis() {
        let p = parse_xpath(".").must();
        assert_eq!(p.steps[0].axis, Axis::SelfAxis);
        let p = parse_xpath("self::book").must();
        assert_eq!(p.steps[0].axis, Axis::SelfAxis);
        assert_eq!(p.steps[0].test, NodeTest::Name("book".into()));
    }
}
