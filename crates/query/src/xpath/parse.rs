//! Recursive-descent parser for the XPath subset.

use crate::xpath::ast::{ArithOp, Axis, CmpOp, Expr, NodeTest, Step, XPath};
use crate::xpath::lex::{tokenize, Tok};
use std::fmt;

/// Parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathError(pub String);

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath error: {}", self.0)
    }
}

impl std::error::Error for XPathError {}

/// Parses an XPath location path such as `//book/title[author = 'X']`.
pub fn parse_xpath(input: &str) -> Result<XPath, XPathError> {
    let toks = tokenize(input).map_err(|(m, off)| XPathError(format!("{m} at byte {off}")))?;
    let mut p = Parser { toks, pos: 0 };
    let path = p.path()?;
    if p.pos != p.toks.len() {
        return Err(XPathError(format!(
            "trailing input at token {} ({})",
            p.pos, p.toks[p.pos]
        )));
    }
    Ok(path)
}

/// Parses a free-standing expression (used by the FLWR engine for `where`
/// clauses).
pub fn parse_expr(input: &str) -> Result<Expr, XPathError> {
    let toks = tokenize(input).map_err(|(m, off)| XPathError(format!("{m} at byte {off}")))?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(XPathError("trailing input after expression".into()));
    }
    Ok(e)
}

pub(crate) struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), XPathError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(XPathError(format!(
                "expected '{t}', found {}",
                self.peek().map_or("end of input".to_owned(), |x| x.to_string())
            )))
        }
    }

    /// `path ::= '$'var ('/' step)* | '/'? step ('/'|'//' step)* | '//' …`
    pub(crate) fn path(&mut self) -> Result<XPath, XPathError> {
        // Variable-rooted path: `$t`, `$t/author`, `$t//name`.
        if let Some(Tok::Var(v)) = self.peek() {
            let root_var = Some(v.clone());
            self.pos += 1;
            let mut steps = Vec::new();
            loop {
                match self.peek() {
                    Some(Tok::Slash) => {
                        self.pos += 1;
                        steps.push(self.step()?);
                    }
                    Some(Tok::DoubleSlash) => {
                        self.pos += 1;
                        steps.push(Step {
                            axis: Axis::DescendantOrSelf,
                            test: NodeTest::AnyNode,
                            predicates: Vec::new(),
                        });
                        steps.push(self.step()?);
                    }
                    _ => break,
                }
            }
            return Ok(XPath {
                absolute: false,
                root_var,
                steps,
            });
        }
        let mut steps = Vec::new();
        let absolute = match self.peek() {
            Some(Tok::Slash) => {
                self.pos += 1;
                true
            }
            Some(Tok::DoubleSlash) => {
                self.pos += 1;
                steps.push(Step {
                    axis: Axis::DescendantOrSelf,
                    test: NodeTest::AnyNode,
                    predicates: Vec::new(),
                });
                true
            }
            _ => false,
        };
        steps.push(self.step()?);
        loop {
            match self.peek() {
                Some(Tok::Slash) => {
                    self.pos += 1;
                    steps.push(self.step()?);
                }
                Some(Tok::DoubleSlash) => {
                    self.pos += 1;
                    steps.push(Step {
                        axis: Axis::DescendantOrSelf,
                        test: NodeTest::AnyNode,
                        predicates: Vec::new(),
                    });
                    steps.push(self.step()?);
                }
                _ => break,
            }
        }
        Ok(XPath {
            absolute,
            root_var: None,
            steps,
        })
    }

    fn step(&mut self) -> Result<Step, XPathError> {
        // Abbreviations first.
        if self.eat(&Tok::Dot) {
            return Ok(Step {
                axis: Axis::SelfAxis,
                test: NodeTest::AnyNode,
                predicates: self.predicates()?,
            });
        }
        if self.eat(&Tok::DotDot) {
            return Ok(Step {
                axis: Axis::Parent,
                test: NodeTest::AnyNode,
                predicates: self.predicates()?,
            });
        }
        if self.eat(&Tok::At) {
            let name = match self.bump() {
                Some(Tok::Name(n)) => n,
                Some(Tok::Star) => {
                    return Ok(Step {
                        axis: Axis::Attribute,
                        test: NodeTest::AnyElement,
                        predicates: self.predicates()?,
                    })
                }
                other => {
                    return Err(XPathError(format!(
                        "expected attribute name after '@', found {other:?}"
                    )))
                }
            };
            return Ok(Step {
                axis: Axis::Attribute,
                test: NodeTest::Name(name),
                predicates: self.predicates()?,
            });
        }
        // Optional explicit axis.
        let axis = if let Some(Tok::Name(n)) = self.peek() {
            if self.toks.get(self.pos + 1) == Some(&Tok::ColonColon) {
                let axis = axis_from_name(n)
                    .ok_or_else(|| XPathError(format!("unknown axis '{n}'")))?;
                self.pos += 2;
                axis
            } else {
                Axis::Child
            }
        } else {
            Axis::Child
        };
        let test = self.node_test()?;
        Ok(Step {
            axis,
            test,
            predicates: self.predicates()?,
        })
    }

    fn node_test(&mut self) -> Result<NodeTest, XPathError> {
        match self.bump() {
            Some(Tok::Star) => Ok(NodeTest::AnyElement),
            Some(Tok::Name(n)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.pos += 1;
                    self.expect(&Tok::RParen)?;
                    match n.as_str() {
                        "text" => Ok(NodeTest::Text),
                        "node" => Ok(NodeTest::AnyNode),
                        "comment" => Ok(NodeTest::Comment),
                        other => Err(XPathError(format!("unknown node test '{other}()'"))),
                    }
                } else {
                    Ok(NodeTest::Name(n))
                }
            }
            other => Err(XPathError(format!(
                "expected a node test, found {}",
                other.map_or("end of input".to_owned(), |t| t.to_string())
            ))),
        }
    }

    fn predicates(&mut self) -> Result<Vec<Expr>, XPathError> {
        let mut out = Vec::new();
        while self.eat(&Tok::LBracket) {
            out.push(self.expr()?);
            self.expect(&Tok::RBracket)?;
        }
        Ok(out)
    }

    /// `expr ::= and-expr ('or' and-expr)*`
    pub(crate) fn expr(&mut self) -> Result<Expr, XPathError> {
        let mut left = self.and_expr()?;
        while matches!(self.peek(), Some(Tok::Name(n)) if n == "or") {
            self.pos += 1;
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, XPathError> {
        let mut left = self.cmp_expr()?;
        while matches!(self.peek(), Some(Tok::Name(n)) if n == "and") {
            self.pos += 1;
            let right = self.cmp_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn cmp_expr(&mut self) -> Result<Expr, XPathError> {
        let left = self.additive()?;
        if let Some(Tok::Cmp(op)) = self.peek() {
            let op = match *op {
                "=" => CmpOp::Eq,
                "!=" => CmpOp::Ne,
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                _ => unreachable!("lexer produces only known operators"),
            };
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::Compare(Box::new(left), op, Box::new(right)));
        }
        Ok(left)
    }

    /// `additive ::= multiplicative (('+'|'-') multiplicative)*`
    fn additive(&mut self) -> Result<Expr, XPathError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => ArithOp::Add,
                Some(Tok::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::Arith(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    /// `multiplicative ::= unary (('*'|'div'|'mod') unary)*`
    ///
    /// `*` after a complete operand is multiplication; in operand position
    /// it is the wildcard node test (standard XPath disambiguation).
    fn multiplicative(&mut self) -> Result<Expr, XPathError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => ArithOp::Mul,
                Some(Tok::Name(n)) if n == "div" => ArithOp::Div,
                Some(Tok::Name(n)) if n == "mod" => ArithOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::Arith(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    /// `unary ::= '-' unary | union`
    fn unary(&mut self) -> Result<Expr, XPathError> {
        if self.eat(&Tok::Minus) {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.union_expr()
    }

    /// `union ::= primary ('|' primary)*` — every operand must be a path.
    fn union_expr(&mut self) -> Result<Expr, XPathError> {
        let first = self.primary()?;
        if self.peek() != Some(&Tok::Pipe) {
            return Ok(first);
        }
        let mut paths = vec![match first {
            Expr::Path(p) => p,
            other => {
                return Err(XPathError(format!(
                    "only paths can be united with '|', found {other:?}"
                )))
            }
        }];
        while self.eat(&Tok::Pipe) {
            match self.primary()? {
                Expr::Path(p) => paths.push(p),
                other => {
                    return Err(XPathError(format!(
                        "only paths can be united with '|', found {other:?}"
                    )))
                }
            }
        }
        Ok(Expr::Union(paths))
    }

    fn primary(&mut self) -> Result<Expr, XPathError> {
        match self.peek() {
            Some(Tok::Literal(_)) => {
                let Some(Tok::Literal(l)) = self.bump() else {
                    unreachable!()
                };
                Ok(Expr::Literal(l))
            }
            Some(Tok::Number(_)) => {
                let Some(Tok::Number(n)) = self.bump() else {
                    unreachable!()
                };
                Ok(Expr::Number(n))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Name(n)) if self.toks.get(self.pos + 1) == Some(&Tok::LParen) => {
                // Function call — unless it's a node test like text().
                let name = n.clone();
                if matches!(name.as_str(), "text" | "node" | "comment") {
                    return self.path().map(Expr::Path);
                }
                self.pos += 2;
                let mut args = Vec::new();
                if !self.eat(&Tok::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if self.eat(&Tok::RParen) {
                            break;
                        }
                        self.expect(&Tok::Comma)?;
                    }
                }
                Ok(Expr::Call(name, args))
            }
            _ => self.path().map(Expr::Path),
        }
    }
}

fn axis_from_name(n: &str) -> Option<Axis> {
    Some(match n {
        "child" => Axis::Child,
        "descendant" => Axis::Descendant,
        "descendant-or-self" => Axis::DescendantOrSelf,
        "self" => Axis::SelfAxis,
        "parent" => Axis::Parent,
        "ancestor" => Axis::Ancestor,
        "ancestor-or-self" => Axis::AncestorOrSelf,
        "following-sibling" => Axis::FollowingSibling,
        "preceding-sibling" => Axis::PrecedingSibling,
        "following" => Axis::Following,
        "preceding" => Axis::Preceding,
        "attribute" => Axis::Attribute,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sams_path() {
        // From Figure 1: //book/title
        let p = parse_xpath("//book/title").unwrap();
        assert!(p.absolute);
        assert_eq!(p.steps.len(), 3);
        assert_eq!(p.steps[0].axis, Axis::DescendantOrSelf);
        assert_eq!(p.steps[1].test, NodeTest::Name("book".into()));
        assert_eq!(p.steps[2].test, NodeTest::Name("title".into()));
    }

    #[test]
    fn parses_parent_abbreviation() {
        // From Figure 1: $t/../author — relative part: ../author
        let p = parse_xpath("../author").unwrap();
        assert!(!p.absolute);
        assert_eq!(p.steps[0].axis, Axis::Parent);
        assert_eq!(p.steps[1].test, NodeTest::Name("author".into()));
    }

    #[test]
    fn parses_predicates() {
        let p = parse_xpath("//book[title = 'X']/author[1]").unwrap();
        let book = &p.steps[1];
        assert_eq!(book.predicates.len(), 1);
        assert!(matches!(
            &book.predicates[0],
            Expr::Compare(l, CmpOp::Eq, r)
                if matches!(**l, Expr::Path(_)) && matches!(**r, Expr::Literal(_))
        ));
        let author = &p.steps[2];
        assert_eq!(author.predicates, vec![Expr::Number(1.0)]);
    }

    #[test]
    fn parses_full_axes() {
        let p = parse_xpath("ancestor::book/descendant-or-self::node()").unwrap();
        assert_eq!(p.steps[0].axis, Axis::Ancestor);
        assert_eq!(p.steps[1].axis, Axis::DescendantOrSelf);
        assert_eq!(p.steps[1].test, NodeTest::AnyNode);
    }

    #[test]
    fn parses_functions_and_boolean_operators() {
        let e = parse_expr("count(author) >= 2 and not(publisher) or title = 'X'").unwrap();
        assert!(matches!(e, Expr::Or(..)));
    }

    #[test]
    fn parses_text_and_attribute_steps() {
        let p = parse_xpath("book/title/text()").unwrap();
        assert_eq!(p.steps[2].test, NodeTest::Text);
        let p = parse_xpath("book/@id").unwrap();
        assert_eq!(p.steps[1].axis, Axis::Attribute);
        assert_eq!(p.steps[1].test, NodeTest::Name("id".into()));
    }

    #[test]
    fn parses_wildcards() {
        let p = parse_xpath("/*/*").unwrap();
        assert_eq!(p.steps[0].test, NodeTest::AnyElement);
        assert_eq!(p.steps.len(), 2);
    }

    #[test]
    fn rejects_malformed_paths() {
        assert!(parse_xpath("//").is_err());
        assert!(parse_xpath("book[").is_err());
        assert!(parse_xpath("book]").is_err());
        assert!(parse_xpath("unknown-axis::x").is_err());
        assert!(parse_xpath("book/title[foo()]").is_ok(), "unknown fn parses; eval rejects");
        assert!(parse_xpath("book//").is_err());
    }

    #[test]
    fn dot_and_self_axis() {
        let p = parse_xpath(".").unwrap();
        assert_eq!(p.steps[0].axis, Axis::SelfAxis);
        let p = parse_xpath("self::book").unwrap();
        assert_eq!(p.steps[0].axis, Axis::SelfAxis);
        assert_eq!(p.steps[0].test, NodeTest::Name("book".into()));
    }
}
