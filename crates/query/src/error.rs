//! The crate-wide error taxonomy and resource limits.
//!
//! Every fallible entry point of `vh-query` reports a [`QueryError`]
//! (historically named `FlwrError`; the alias remains for callers).
//! Evaluation is additionally guarded by [`Limits`]: recursion depth, a
//! step budget, a result-cardinality cap, and an optional wall-clock
//! budget. Exceeding any of them aborts the query with
//! [`QueryError::ResourceExhausted`] instead of looping, ballooning, or
//! blowing the stack.

use crate::xpath::parse::XPathError;
use std::fmt;
use vh_core::VdgError;

/// Which guarded resource a query ran out of.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResourceKind {
    /// Expression/path recursion depth.
    Depth,
    /// Evaluation steps (context-node × path-step applications).
    Steps,
    /// Cardinality of an intermediate or final result.
    Cardinality,
    /// Wall-clock time budget.
    Time,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ResourceKind::Depth => "recursion depth",
            ResourceKind::Steps => "evaluation steps",
            ResourceKind::Cardinality => "result cardinality",
            ResourceKind::Time => "time budget (ms)",
        })
    }
}

/// Per-query resource limits. The defaults are far above anything the
/// paper's workloads need while still bounding hostile input; use
/// [`Limits::unlimited`] to switch every guard off.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Limits {
    /// Maximum recursion depth while evaluating paths and expressions.
    pub max_depth: usize,
    /// Maximum number of step applications in one query.
    pub max_steps: u64,
    /// Maximum cardinality of any node set or FLWR tuple stream.
    pub max_result: usize,
    /// Wall-clock budget in milliseconds (`None` = unlimited).
    pub time_budget_ms: Option<u64>,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_depth: 64,
            max_steps: 4_000_000,
            max_result: 1_000_000,
            time_budget_ms: None,
        }
    }
}

impl Limits {
    /// No guards at all.
    pub fn unlimited() -> Self {
        Limits {
            max_depth: usize::MAX,
            max_steps: u64::MAX,
            max_result: usize::MAX,
            time_budget_ms: None,
        }
    }
}

/// Errors from parsing or evaluating a query.
#[derive(Debug)]
pub enum QueryError {
    /// Syntax error in the FLWR structure.
    Parse(String),
    /// Error in an embedded path or expression.
    XPath(XPathError),
    /// Error compiling a `virtualDoc` specification.
    Vdg(VdgError),
    /// The query refers to an unregistered document URI.
    UnknownDocument(String),
    /// A combination the engine does not support.
    Unsupported(String),
    /// A resource limit was exceeded (see [`Limits`]).
    ResourceExhausted {
        /// The exhausted resource.
        resource: ResourceKind,
        /// The limit that was hit.
        limit: u64,
    },
    /// An [`crate::edit::Edit`] was rejected by the document layer (bad
    /// path, bad position, cyclic move, …).
    Edit(vh_dataguide::EditError),
}

/// The historical name of [`QueryError`], kept for existing callers.
pub type FlwrError = QueryError;

impl QueryError {
    /// Stable machine-readable code for the error class.
    pub fn code(&self) -> &'static str {
        match self {
            QueryError::Parse(_) => "QUERY_SYNTAX",
            QueryError::XPath(XPathError::ResourceExhausted { .. })
            | QueryError::ResourceExhausted { .. } => "QUERY_RESOURCE",
            QueryError::XPath(_) => "QUERY_XPATH",
            QueryError::Vdg(_) => "QUERY_VDG",
            QueryError::UnknownDocument(_) => "QUERY_UNKNOWN_DOCUMENT",
            QueryError::Unsupported(_) => "QUERY_UNSUPPORTED",
            QueryError::Edit(_) => "QUERY_EDIT",
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(m) => write!(f, "FLWR syntax error: {m}"),
            QueryError::XPath(e) => write!(f, "{e}"),
            QueryError::Vdg(e) => write!(f, "{e}"),
            QueryError::UnknownDocument(u) => write!(f, "unknown document '{u}'"),
            QueryError::Unsupported(m) => write!(f, "unsupported query: {m}"),
            QueryError::ResourceExhausted { resource, limit } => {
                write!(f, "query exceeded its {resource} limit of {limit}")
            }
            QueryError::Edit(e) => write!(f, "edit rejected: {e}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::XPath(e) => Some(e),
            QueryError::Vdg(e) => Some(e),
            QueryError::Edit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XPathError> for QueryError {
    fn from(e: XPathError) -> Self {
        match e {
            // Lift evaluation-level exhaustion to the query-level variant so
            // callers match one shape regardless of which layer tripped.
            XPathError::ResourceExhausted { resource, limit } => {
                QueryError::ResourceExhausted { resource, limit }
            }
            other => QueryError::XPath(other),
        }
    }
}

impl From<VdgError> for QueryError {
    fn from(e: VdgError) -> Self {
        QueryError::Vdg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct_per_class() {
        let errors = [
            QueryError::Parse("x".into()),
            QueryError::XPath(XPathError::msg("x")),
            QueryError::Vdg(VdgError::UnknownLabel("x".into())),
            QueryError::UnknownDocument("x".into()),
            QueryError::Unsupported("x".into()),
            QueryError::ResourceExhausted {
                resource: ResourceKind::Depth,
                limit: 1,
            },
            QueryError::Edit(vh_dataguide::EditError::RootTarget),
        ];
        let codes: std::collections::HashSet<_> = errors.iter().map(|e| e.code()).collect();
        assert_eq!(codes.len(), errors.len());
    }

    #[test]
    fn xpath_exhaustion_lifts_to_query_exhaustion() {
        let e = QueryError::from(XPathError::ResourceExhausted {
            resource: ResourceKind::Steps,
            limit: 10,
        });
        assert!(matches!(
            e,
            QueryError::ResourceExhausted {
                resource: ResourceKind::Steps,
                limit: 10
            }
        ));
        assert_eq!(e.code(), "QUERY_RESOURCE");
    }

    #[test]
    fn sources_chain() {
        let e = QueryError::XPath(XPathError::msg("bad"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
